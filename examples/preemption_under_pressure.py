"""KV lifecycle walkthrough: preemption under capacity pressure.

A single CENT-style PIM module serving LLM-7B keeps ~3GB for KV cache
(3072 one-megabyte chunks).  Twelve requests that each grow to 768 tokens
need 4608 chunks -- a 1.5x oversubscription.  The same
:class:`~repro.api.ExperimentSpec` is run under every preemption policy:

* ``preemption.policy="none"`` -- the admit-to-completion contract: each
  request's *final* context is committed at admission, so only eight fit
  and the rest queue outside while committed-but-unused chunks sit idle.
* ``evict-lru`` / ``evict-largest`` / ``evict-youngest`` -- the
  incremental lifecycle contract: admission reserves only the prompt, all
  twelve start immediately, and mid-decode ``CapacityExceeded`` growth is
  resolved by paging a victim out (here: swapped over a 64GB/s host link,
  charged to the clock) and restoring it once capacity frees.

Every policy completes every request; the lifecycle contract admits
strictly more concurrent work and keeps the cache fuller, at the price of
preemption stalls the report itemises (count, requeue delay, overhead).

The evict-lru scenario also ships as JSON:

    python -m repro run examples/specs/preemption_evict_lru.json
    python -m repro run examples/specs/preemption_evict_lru.json \
        --sweep preemption.policy=none,evict-lru,evict-largest,evict-youngest

Run with:  python examples/preemption_under_pressure.py
"""

from repro.analysis.reporting import format_table
from repro.api import (
    ExperimentSpec,
    ModelSpec,
    PreemptionSpec,
    SystemSpec,
    TraceSpec,
    run,
)

POLICIES = ("none", "evict-lru", "evict-largest", "evict-youngest")


def pressure_spec(policy: str) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"preemption-{policy}",
        model=ModelSpec(name="LLM-7B-32K"),
        system=SystemSpec(kind="pim-only", num_modules=1, pimphony="full"),
        preemption=PreemptionSpec(policy=policy, mode="swap", swap_bandwidth_gbps=64.0),
        trace=TraceSpec(
            source="synthetic", num_requests=12, prompt_tokens=256, output_tokens=512
        ),
        seed=5,
        step_stride=4,
    )


def main() -> None:
    reports = {policy: run(pressure_spec(policy)) for policy in POLICIES}

    rows = []
    for policy, report in reports.items():
        rows.append(
            [
                policy,
                report.requests_served,
                report.peak_batch_size,
                report.average_capacity_utilization,
                report.preemptions,
                report.requeue_delay_mean_s * 1e3,
                report.preemption_overhead_s * 1e3,
                report.makespan_s,
            ]
        )
    print(
        format_table(
            [
                "policy",
                "served",
                "peak batch",
                "KV util",
                "preempt",
                "requeue ms",
                "overhead ms",
                "makespan s",
            ],
            rows,
            title="12 requests x 768 tokens on one PIM module (1.5x oversubscribed)",
        )
    )

    baseline = reports["none"]
    for policy in POLICIES[1:]:
        report = reports[policy]
        # The lifecycle contract must not lose work...
        assert report.requests_served == baseline.requests_served == 12
        assert report.total_output_tokens == baseline.total_output_tokens
        # ...and must admit strictly more concurrent requests while
        # keeping the cache strictly fuller than the up-front commitment.
        assert report.peak_batch_size > baseline.peak_batch_size
        assert report.average_capacity_utilization > baseline.average_capacity_utilization
        assert report.preemptions > 0
    print(
        "\nAll policies completed all 12 requests; peak concurrency "
        f"{baseline.peak_batch_size} -> "
        f"{max(reports[p].peak_batch_size for p in POLICIES[1:])} and KV utilisation "
        f"{baseline.average_capacity_utilization:.0%} -> "
        f"{max(reports[p].average_capacity_utilization for p in POLICIES[1:]):.0%} "
        "under the lifecycle contract."
    )


if __name__ == "__main__":
    main()
