"""Quickstart: serve a long-context workload on a PIM system with PIMphony.

This example builds the smallest end-to-end pipeline:

1. pick an LLM configuration (paper Table I),
2. generate a request trace from a LongBench-like context distribution,
3. build a CENT-style PIM-only system with and without PIMphony,
4. run the decode serving simulation and compare throughput.

Run with:  python examples/quickstart.py
"""

from repro.analysis.reporting import format_table
from repro.baselines.cent import cent_system_config
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import get_model
from repro.system.serving import simulate_serving
from repro.workloads.datasets import get_dataset
from repro.workloads.traces import generate_trace


def main() -> None:
    model = get_model("LLM-7B-32K")
    dataset = get_dataset("qmsum")
    trace = generate_trace(
        dataset,
        num_requests=16,
        seed=0,
        context_window=model.context_window,
        output_tokens=32,
    )
    print(
        f"Serving {len(trace)} requests of {dataset.name} "
        f"(mean prompt {trace.mean_prompt_tokens:.0f} tokens) on {model.name}"
    )

    rows = []
    baseline_throughput = None
    for config in PIMphonyConfig.incremental_sweep():
        system = cent_system_config(model, pimphony=config)
        result = simulate_serving(system, trace, step_stride=8)
        if baseline_throughput is None:
            baseline_throughput = result.throughput_tokens_per_s
        rows.append(
            [
                config.label,
                result.throughput_tokens_per_s,
                result.average_batch_size,
                result.average_pim_utilization,
                result.average_capacity_utilization,
                result.throughput_tokens_per_s / baseline_throughput,
            ]
        )

    print()
    print(
        format_table(
            ["config", "tokens/s", "avg batch", "PIM util", "capacity util", "speedup"],
            rows,
            title="CENT-class PIM-only system, LLM-7B-32K on QMSum",
        )
    )


if __name__ == "__main__":
    main()
