"""Quickstart: serve a long-context workload on a PIM system with PIMphony.

This example builds the smallest end-to-end pipeline through the
declarative experiment API:

1. describe the experiment as an :class:`~repro.api.ExperimentSpec`
   (model, system, workload -- all plain data that round-trips to JSON),
2. sweep the PIMphony feature presets with ``with_overrides``,
3. run each spec and compare throughput from the unified ``RunReport``.

The same experiment runs from the command line:

    python -m repro run examples/specs/pim_only_qmsum.json \
        --sweep system.pimphony=baseline,tcp,tcp+dcs,full

Run with:  python examples/quickstart.py
"""

from repro.analysis.reporting import format_table
from repro.api import ExperimentSpec, ModelSpec, SystemSpec, TraceSpec, build, run
from repro.system.serving import simulate_serving


def main() -> None:
    base = ExperimentSpec(
        name="quickstart",
        model=ModelSpec(name="LLM-7B-32K"),
        system=SystemSpec(kind="pim-only", pimphony="baseline"),
        trace=TraceSpec(source="dataset", dataset="qmsum", num_requests=16, output_tokens=32),
        seed=0,
        step_stride=8,
    )
    built = build(base)
    print(
        f"Serving {len(built.trace)} requests of {built.trace.dataset} "
        f"(mean prompt {built.trace.mean_prompt_tokens:.0f} tokens) on {built.model.name}"
    )

    # Parity: the spec-driven run reproduces direct construction exactly.
    direct = simulate_serving(built.system, built.trace, step_stride=8)
    spec_driven = run(base)
    assert spec_driven.throughput_tokens_per_s == direct.throughput_tokens_per_s

    rows = []
    baseline_throughput = None
    for preset in ("baseline", "tcp", "tcp+dcs", "full"):
        report = run(base.with_overrides({"system.pimphony": preset}))
        if baseline_throughput is None:
            baseline_throughput = report.throughput_tokens_per_s
        rows.append(
            [
                preset,
                report.throughput_tokens_per_s,
                report.average_batch_size,
                report.average_pim_utilization,
                report.average_capacity_utilization,
                report.throughput_tokens_per_s / baseline_throughput,
            ]
        )

    print()
    print(
        format_table(
            ["config", "tokens/s", "avg batch", "PIM util", "capacity util", "speedup"],
            rows,
            title="CENT-class PIM-only system, LLM-7B-32K on QMSum",
        )
    )


if __name__ == "__main__":
    main()
