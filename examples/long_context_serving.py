"""Long-context serving: GQA models on LV-Eval workloads, PIM-only vs xPU+PIM.

This is the scenario the paper's introduction motivates: 100K-class contexts
where the KV cache dominates memory and attention dominates the decode step.
The example serves the `multifieldqa` distribution (Table II) on both system
styles -- declaratively, by sweeping ``system.kind`` and ``system.pimphony``
on one :class:`~repro.api.ExperimentSpec` -- and reports how each PIMphony
technique contributes.

The same sweep from the command line:

    python -m repro run examples/specs/xpu_pim_long_context.json \
        --set prefill.mode=none \
        --sweep system.kind=pim-only,xpu-pim \
        --sweep system.pimphony=baseline,tcp,tcp+dcs,full

Run with:  python examples/long_context_serving.py
"""

from repro.analysis.reporting import format_table
from repro.api import ExperimentSpec, ModelSpec, SystemSpec, TraceSpec, build, run, sweep_specs


def main() -> None:
    base = ExperimentSpec(
        name="long-context-serving",
        model=ModelSpec(name="LLM-7B-128K"),
        system=SystemSpec(kind="pim-only", pimphony="baseline"),
        trace=TraceSpec(
            source="dataset", dataset="multifieldqa", num_requests=16, output_tokens=32
        ),
        seed=1,
        step_stride=8,
    )
    built = build(base)
    print(
        f"{built.model.name} on {built.trace.dataset} (LV-Eval): mean prompt "
        f"{built.trace.mean_prompt_tokens / 1024:.1f}K tokens, "
        f"KV cache {built.model.kv_bytes_per_token / 1024:.0f} KiB per token"
    )

    variants = sweep_specs(
        base,
        {
            "system.kind": ["pim-only", "xpu-pim"],
            "system.pimphony": ["baseline", "tcp", "tcp+dcs", "full"],
        },
    )
    reports = {
        (overrides["system.kind"], overrides["system.pimphony"]): run(spec)
        for overrides, spec in variants
    }

    for kind, title in (
        ("pim-only", "PIM-only (CENT-class, 8 x 16GB modules)"),
        ("xpu-pim", "xPU+PIM (NeuPIMs-class, 4 x 32GB modules)"),
    ):
        rows = []
        baseline = None
        for preset in ("baseline", "tcp", "tcp+dcs", "full"):
            report = reports[(kind, preset)]
            if baseline is None:
                baseline = report.throughput_tokens_per_s
            rows.append(
                [
                    preset,
                    report.throughput_tokens_per_s,
                    report.average_batch_size,
                    report.average_pim_utilization,
                    report.throughput_tokens_per_s / baseline,
                ]
            )
        print()
        print(
            format_table(
                ["config", "tokens/s", "avg batch", "PIM util", "speedup"],
                rows,
                title=title,
            )
        )


if __name__ == "__main__":
    main()
