"""Long-context serving: GQA models on LV-Eval workloads, PIM-only vs xPU+PIM.

This is the scenario the paper's introduction motivates: 100K-class contexts
where the KV cache dominates memory and attention dominates the decode step.
The example serves the `multifieldqa` distribution (Table II) on both system
styles and reports how each PIMphony technique contributes.

Run with:  python examples/long_context_serving.py
"""

from repro.analysis.reporting import format_table
from repro.baselines.cent import cent_system_config
from repro.baselines.neupims import neupims_system_config
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import get_model
from repro.system.serving import simulate_serving
from repro.workloads.datasets import get_dataset
from repro.workloads.traces import generate_trace


def serve(system_factory, model, trace, config):
    system = system_factory(model, pimphony=config)
    return simulate_serving(system, trace, step_stride=8)


def main() -> None:
    model = get_model("LLM-7B-128K")
    dataset = get_dataset("multifieldqa")
    trace = generate_trace(
        dataset,
        num_requests=16,
        seed=1,
        context_window=model.context_window,
        output_tokens=32,
    )
    print(
        f"{model.name} on {dataset.name} (LV-Eval): mean prompt "
        f"{trace.mean_prompt_tokens / 1024:.1f}K tokens, "
        f"KV cache {model.kv_bytes_per_token / 1024:.0f} KiB per token"
    )

    for system_name, factory in (
        ("PIM-only (CENT-class, 8 x 16GB modules)", cent_system_config),
        ("xPU+PIM (NeuPIMs-class, 4 x 32GB modules)", neupims_system_config),
    ):
        rows = []
        baseline = None
        for config in PIMphonyConfig.incremental_sweep():
            result = serve(factory, model, trace, config)
            if baseline is None:
                baseline = result.throughput_tokens_per_s
            rows.append(
                [
                    config.label,
                    result.throughput_tokens_per_s,
                    result.average_batch_size,
                    result.average_pim_utilization,
                    result.throughput_tokens_per_s / baseline,
                ]
            )
        print()
        print(
            format_table(
                ["config", "tokens/s", "avg batch", "PIM util", "speedup"],
                rows,
                title=system_name,
            )
        )


if __name__ == "__main__":
    main()
