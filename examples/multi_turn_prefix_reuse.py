"""Prefix/KV reuse walkthrough: multi-turn sessions meet session affinity.

Seven 4-turn conversations arrive at a 4-replica PIM fleet.  Within a
session every follow-up turn's prompt is the previous turn's entire
context plus fresh user input, so most of its prefill work is redundant
-- *if* the request lands on the replica that already holds the
session's KV prefix.  This example runs the same seeded trace through
the four combinations of routing policy (session-affinity vs
round-robin) and per-replica prefix cache (on vs off):

* **affinity + cache** -- follow-up turns hit the replica's prefix cache
  and prefill only their uncached suffix: TTFT collapses.
* **round-robin + cache** -- turns scatter across replicas whose caches
  never hold the session's prefix: the cache buys nothing, which is why
  per-replica hit rates make the policies an apples-to-apples experiment.
* **cache off** -- PR 4 behaviour, bit-identical regardless of policy
  pinning (the parity tests hold the engine to this).

The scenario also ships as JSON:

    python -m repro run examples/specs/multi_turn_prefix_cache.json
    python -m repro run examples/specs/multi_turn_prefix_cache.json \
        --set router.policy=round-robin

Run with:  python examples/multi_turn_prefix_reuse.py
"""

from repro.analysis.reporting import format_table
from repro.api import (
    ExperimentSpec,
    ModelSpec,
    PrefillSpec,
    PrefixCacheSpec,
    RouterSpec,
    SystemSpec,
    TraceSpec,
    run,
)

POLICIES = ("session-affinity", "round-robin")


def multi_turn_spec(policy: str, cache_enabled: bool) -> ExperimentSpec:
    # Seven sessions on four replicas: a session count that is a multiple
    # of the replica count would let round-robin fake perfect affinity.
    return ExperimentSpec(
        name=f"prefix-reuse-{policy}-{'on' if cache_enabled else 'off'}",
        model=ModelSpec(name="LLM-7B-32K"),
        system=SystemSpec(kind="pim-only", num_modules=1, pimphony="full"),
        prefill=PrefillSpec(mode="chunked", chunk_tokens=256),
        prefix_cache=PrefixCacheSpec(enabled=cache_enabled),
        trace=TraceSpec(
            source="multi-turn",
            num_requests=28,
            num_sessions=7,
            turns_per_session=4,
            prompt_tokens=1024,
            followup_tokens=128,
            output_tokens=96,
            turn_gap_s=40.0,
        ),
        router=RouterSpec(replicas=4, policy=policy),
        seed=7,
        step_stride=4,
    )


def main() -> None:
    reports = {
        (policy, enabled): run(multi_turn_spec(policy, enabled))
        for policy in POLICIES
        for enabled in (False, True)
    }

    rows = []
    for (policy, enabled), report in reports.items():
        rows.append(
            [
                policy,
                "on" if enabled else "off",
                report.prefix_hit_rate,
                report.prefix_hit_tokens,
                report.ttft_mean_s * 1e3,
                report.ttft_p95_s * 1e3,
                report.makespan_s,
            ]
        )
    print(
        format_table(
            [
                "routing",
                "cache",
                "hit rate",
                "hit tokens",
                "TTFT mean ms",
                "TTFT p95 ms",
                "makespan s",
            ],
            rows,
            title="7 sessions x 4 turns, 4 replicas (chunked prefill)",
        )
    )

    affinity_on = reports[("session-affinity", True)]
    affinity_off = reports[("session-affinity", False)]
    rr_on = reports[("round-robin", True)]

    # Every configuration completes the same work.
    for report in reports.values():
        assert report.requests_served == 28
        assert report.total_output_tokens == affinity_off.total_output_tokens
    # The cache pays only where the prefix lives.
    assert affinity_on.prefix_hit_rate > 0.5
    assert affinity_on.ttft_p95_s < rr_on.ttft_p95_s
    assert affinity_on.ttft_mean_s < affinity_off.ttft_mean_s

    print(
        "\nPer-replica hit rates under session-affinity: "
        + ", ".join(f"{rate:.0%}" for rate in affinity_on.fleet.prefix_hit_rates)
        + f"\nTTFT p95 {affinity_off.ttft_p95_s:.2f}s -> {affinity_on.ttft_p95_s:.2f}s "
        f"with the cache on (round-robin stays at {rr_on.ttft_p95_s:.2f}s: "
        f"hit rate {rr_on.prefix_hit_rate:.0%})."
    )


if __name__ == "__main__":
    main()
