"""Command-scheduling microscope: inspect PIM command streams cycle by cycle.

This example works at the lowest level of the stack: it compiles a decoder
layer, lowers a small GEMV to an explicit PIM command stream, schedules it
with the static baseline, ping-pong buffering and PIMphony's DCS, and prints
the per-command issue times plus the latency breakdown -- the machinery
behind the paper's Fig. 7, Fig. 8 and Fig. 18.  It also demonstrates the
DPA dispatcher translating virtual KV-cache addresses at run time, then
closes the loop by running the same model end-to-end through the
declarative experiment API (`repro.api`), so the command-level effects are
visible as serving throughput.

Run with:  python examples/command_scheduling_microscope.py
"""

from repro.analysis.breakdown import breakdown_fractions
from repro.analysis.reporting import format_table
from repro.api import ExperimentSpec, ModelSpec, SystemSpec, TraceSpec, build, run
from repro.baselines.pingpong import PingPongScheduler
from repro.compiler.dpa_encoding import encode_attention_loop
from repro.compiler.lowering import lower_gemv_to_commands, lower_operator_to_instructions
from repro.compiler.passes import compile_decoder
from repro.compiler.patterns import detect_attention_patterns
from repro.core.dcs import DCSScheduler
from repro.core.dispatcher import OnModuleDispatcher
from repro.memory.va2pa import VA2PATable
from repro.models.llm import get_model
from repro.pim.config import PIMChannelConfig, cent_module_config
from repro.pim.kernels import caps_for_policy
from repro.pim.scheduling import StaticScheduler
from repro.pim.timing import aimx_timing


def schedule_small_gemv() -> None:
    channel = PIMChannelConfig()
    timing = aimx_timing()
    commands = lower_gemv_to_commands(128, 64, channel, caps_for_policy(channel, "dcs"))
    print(f"Lowered a 128x64 GEMV to {len(commands)} channel commands")

    rows = []
    for scheduler in (
        StaticScheduler(timing, channel),
        PingPongScheduler(timing, channel),
        DCSScheduler(timing, channel),
    ):
        result = scheduler.schedule(commands)
        fractions = breakdown_fractions(result.breakdown)
        rows.append(
            [
                scheduler.name,
                result.makespan,
                result.breakdown.mac_utilization,
                fractions["dt_gbuf"] + fractions["dt_outreg"],
                fractions["pipeline_penalty"],
            ]
        )
    print(
        format_table(
            ["scheduler", "cycles", "MAC util", "I/O share", "stall share"],
            rows,
            title="Schedulers on the same command stream",
        )
    )


def compile_and_dispatch() -> None:
    model = get_model("LLM-7B-128K")
    module = cent_module_config()
    program = compile_decoder(model, context_length=64 * 1024, module=module)
    print(
        f"\nCompiled one decoder layer: {program.total_instructions} module-level "
        f"instructions, instruction buffer {program.instruction_bytes} bytes "
        f"(DPA enabled: {program.dpa_enabled})"
    )

    pattern = detect_attention_patterns(program.graph)[0]
    body = lower_operator_to_instructions(pattern.qkt, channel_mask=0xFFFF, op_size=8)
    dispatcher = OnModuleDispatcher(va2pa=VA2PATable(chunk_bytes=1024 * 1024))
    dispatcher.load_kernel("qkt", encode_attention_loop(body))
    dispatcher.va2pa.map(request_id=1, virtual_chunk=0, physical_chunk=42)
    dispatcher.assign_request(1, initial_tokens=4096)

    before = dispatcher.expanded_length("qkt", 1)
    for _ in range(2048):
        dispatcher.advance_token(1)
    after = dispatcher.expanded_length("qkt", 1)
    print(
        "Dispatcher expands the DPA loop to "
        f"{before} instructions at 4K tokens and {after} at 6K tokens, "
        f"without any host interaction ({dispatcher.host_messages} host messages so far)"
    )


def end_to_end_context() -> None:
    """The same scheduling choices, seen from the serving level.

    DCS and friends are per-command optimisations; the experiment API shows
    their aggregate effect as decode throughput on the same model.
    """
    spec = ExperimentSpec(
        name="microscope-end-to-end",
        model=ModelSpec(name="LLM-7B-128K"),
        system=SystemSpec(kind="pim-only", pimphony="baseline"),
        trace=TraceSpec(source="synthetic", num_requests=8, prompt_tokens=4096,
                        output_tokens=16),
        step_stride=8,
    )
    # Parity: run(spec) reproduces the directly-built engine run exactly.
    built = build(spec)
    assert run(spec).engine_result.total_seconds == built.engine.run(built.trace).total_seconds

    baseline = run(spec)
    full = run(spec.with_overrides({"system.pimphony": "full"}))
    print(
        "\nEnd-to-end, the scheduling/partitioning/DPA choices above move "
        "decode throughput on this model from "
        f"{baseline.throughput_tokens_per_s:.0f} to "
        f"{full.throughput_tokens_per_s:.0f} tokens/s "
        f"({full.throughput_tokens_per_s / baseline.throughput_tokens_per_s:.2f}x)"
    )


def main() -> None:
    schedule_small_gemv()
    compile_and_dispatch()
    end_to_end_context()


if __name__ == "__main__":
    main()
