"""Multi-replica serving demo: scaling, routing policies, prefill TTFT.

Three things the replica router adds over a single serving engine:

1. **Near-linear scaling** -- the same Poisson workload served by 1/2/4/8
   data-parallel CENT replicas; aggregate throughput (tokens over fleet
   makespan) scales almost linearly because replicas are independent.
2. **Routing policies** -- under skewed context-length traffic on
   capacity-constrained replicas, round-robin aliases every heavy request
   onto one replica while capacity-aware routing (via the shadow
   ``can_admit`` protocol) spreads the KV reservations, collapsing p95
   TTFT.
3. **Prefill-aware TTFT** -- with a prefill cost model charged at
   admission, time-to-first-token finally depends on prompt length; the
   chunked variant interleaves prompt processing with ongoing decode.

Run with:  python examples/multi_replica_scaling.py
"""

from repro.analysis.reporting import fleet_summary_table, format_table
from repro.baselines.cent import cent_system_config
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import get_model
from repro.serving import (
    CapacityAwareRouting,
    LeastOutstandingRouting,
    PrefillConfig,
    ReplicaRouter,
    RoundRobinRouting,
    ServingEngine,
    prefill_model_for,
    serve,
)
from repro.workloads.traces import Request, RequestTrace, poisson_arrivals


def replica_scaling(model, system) -> None:
    requests = tuple(
        Request(request_id=index, prompt_tokens=512, output_tokens=32)
        for index in range(192)
    )
    trace = poisson_arrivals(
        RequestTrace(dataset="uniform", requests=requests), rate_rps=2000.0, seed=0
    )
    rows = []
    base = None
    for num_replicas in (1, 2, 4, 8):
        router = ReplicaRouter.homogeneous(
            lambda: ServingEngine(system=system, max_batch_size=16, step_stride=8),
            num_replicas,
            policy=RoundRobinRouting(),
        )
        fleet = router.run(trace, system_name="CENT+PIMphony")
        throughput = fleet.aggregate_throughput_tokens_per_s
        if base is None:
            base = throughput
        rows.append([num_replicas, throughput, throughput / base, fleet.makespan_s])
    print()
    print(
        format_table(
            ["replicas", "tokens/s", "speedup", "makespan s"],
            rows,
            title="Replica scaling: 192 requests, Poisson arrivals at 2000 req/s",
        )
    )


def routing_policy_comparison(model) -> None:
    # Two modules per replica: KV capacity fits only ~4 concurrent
    # 8k-context reservations, so the routing decision is what determines
    # whether heavy requests queue.
    system = cent_system_config(model, num_modules=2, pimphony=PIMphonyConfig.full())
    requests = tuple(
        Request(
            request_id=index,
            prompt_tokens=8192 if index % 4 == 0 else 256,
            output_tokens=32,
        )
        for index in range(64)
    )
    trace = RequestTrace(dataset="skewed", requests=requests)
    for policy in (RoundRobinRouting(), LeastOutstandingRouting(), CapacityAwareRouting()):
        router = ReplicaRouter.homogeneous(
            lambda: ServingEngine(system=system, step_stride=8), 4, policy=policy
        )
        fleet = router.run(trace, system_name="CENT-2mod")
        print()
        print(
            fleet_summary_table(
                fleet,
                title=f"Skewed contexts (every 4th request 8k tokens) under {policy.name}",
            )
        )


def prefill_ttft(model, system) -> None:
    prefill_model = prefill_model_for(system)
    rows = []
    for prompt in (128, 1024, 4096):
        trace = RequestTrace(
            dataset="single",
            requests=(Request(request_id=0, prompt_tokens=prompt, output_tokens=8),),
        )
        no_prefill = serve(system, trace)
        blocking = serve(system, trace, prefill=PrefillConfig(prefill_model))
        chunked = serve(
            system, trace, prefill=PrefillConfig(prefill_model, chunk_tokens=512)
        )
        rows.append(
            [
                prompt,
                no_prefill.ttft_mean_s * 1e3,
                blocking.ttft_mean_s * 1e3,
                chunked.ttft_mean_s * 1e3,
            ]
        )
    print()
    print(
        format_table(
            ["prompt tokens", "no prefill (ms)", "blocking (ms)", "chunked (ms)"],
            rows,
            title="TTFT vs prompt length: context-blind vs prefill-aware",
        )
    )


def main() -> None:
    model = get_model("LLM-7B-32K")
    system = cent_system_config(model, pimphony=PIMphonyConfig.full())
    print(f"Routing {model.name} across data-parallel CENT-class PIM replicas")
    replica_scaling(model, system)
    routing_policy_comparison(model)
    prefill_ttft(model, system)


if __name__ == "__main__":
    main()
