"""Multi-replica serving demo: scaling, routing policies, prefill TTFT.

Three things the replica router adds over a single serving engine, all
expressed declaratively (``router.replicas`` / ``router.policy`` /
``prefill.mode`` axes on one :class:`~repro.api.ExperimentSpec`):

1. **Near-linear scaling** -- the same Poisson workload served by 1/2/4/8
   data-parallel CENT replicas; aggregate throughput (tokens over fleet
   makespan) scales almost linearly because replicas are independent.
2. **Routing policies** -- under skewed context-length traffic on
   capacity-constrained replicas, round-robin aliases every heavy request
   onto one replica while capacity-aware routing (via the shadow
   ``can_admit`` protocol) spreads the KV reservations, collapsing p95
   TTFT.
3. **Prefill-aware TTFT** -- with ``prefill.mode`` set, time-to-first-token
   finally depends on prompt length; the chunked variant interleaves
   prompt processing with ongoing decode.

The fleet scenario also ships as JSON:

    python -m repro run examples/specs/fleet_4replica_poisson.json \
        --sweep router.policy=round-robin,least-outstanding,capacity-aware

Run with:  python examples/multi_replica_scaling.py
"""

from repro.analysis.reporting import format_table
from repro.api import (
    AdmissionSpec,
    ExperimentSpec,
    ModelSpec,
    RouterSpec,
    SystemSpec,
    TraceSpec,
    build,
    run,
)
from repro.serving import CapacityAwareRouting, ReplicaRouter, ServingEngine


def replica_scaling(base: ExperimentSpec) -> None:
    spec = base.with_overrides(
        {
            "admission.max_batch_size": 16,
            "trace.num_requests": 192,
            "trace.prompt_tokens": 512,
            "trace.output_tokens": 32,
            "trace.arrival": "poisson",
            "trace.rate_rps": 2000.0,
        }
    )
    rows = []
    scale_base = None
    for num_replicas in (1, 2, 4, 8):
        report = run(spec.with_overrides({"router.replicas": num_replicas}))
        throughput = report.aggregate_throughput_tokens_per_s
        if scale_base is None:
            scale_base = throughput
        rows.append([num_replicas, throughput, throughput / scale_base, report.makespan_s])
    print()
    print(
        format_table(
            ["replicas", "tokens/s", "speedup", "makespan s"],
            rows,
            title="Replica scaling: 192 requests, Poisson arrivals at 2000 req/s",
        )
    )


def routing_policy_comparison(base: ExperimentSpec) -> None:
    # Two modules per replica: KV capacity fits only ~4 concurrent
    # 8k-context reservations, so the routing decision is what determines
    # whether heavy requests queue.
    spec = base.with_overrides(
        {
            "system.num_modules": 2,
            "trace.num_requests": 64,
            "trace.prompt_tokens": 256,
            "trace.heavy_every": 4,
            "trace.heavy_prompt_tokens": 8192,
            "trace.output_tokens": 32,
            "router.replicas": 4,
        }
    )

    # Parity: the spec-driven fleet equals a hand-constructed router run.
    capacity_spec = spec.with_overrides({"router.policy": "capacity-aware"})
    built = build(capacity_spec)
    direct = ReplicaRouter.homogeneous(
        lambda: ServingEngine(system=built.system, step_stride=8),
        4,
        policy=CapacityAwareRouting(),
    ).run(built.trace)
    assert run(capacity_spec).latency == direct.latency

    for policy in ("round-robin", "least-outstanding", "capacity-aware"):
        report = run(spec.with_overrides({"router.policy": policy}))
        print()
        print(
            report.summary_table(
                title=f"Skewed contexts (every 4th request 8k tokens) under {policy}"
            )
        )


def prefill_ttft(base: ExperimentSpec) -> None:
    rows = []
    for prompt in (128, 1024, 4096):
        single = base.with_overrides(
            {
                "trace.num_requests": 1,
                "trace.prompt_tokens": prompt,
                "trace.output_tokens": 8,
                "step_stride": 1,
            }
        )
        no_prefill = run(single)
        blocking = run(single.with_overrides({"prefill.mode": "blocking"}))
        chunked = run(
            single.with_overrides(
                {"prefill.mode": "chunked", "prefill.chunk_tokens": 512}
            )
        )
        rows.append(
            [
                prompt,
                no_prefill.ttft_mean_s * 1e3,
                blocking.ttft_mean_s * 1e3,
                chunked.ttft_mean_s * 1e3,
            ]
        )
    print()
    print(
        format_table(
            ["prompt tokens", "no prefill (ms)", "blocking (ms)", "chunked (ms)"],
            rows,
            title="TTFT vs prompt length: context-blind vs prefill-aware",
        )
    )


def main() -> None:
    base = ExperimentSpec(
        name="multi-replica-scaling",
        model=ModelSpec(name="LLM-7B-32K"),
        system=SystemSpec(kind="pim-only", pimphony="full"),
        admission=AdmissionSpec(policy="fcfs"),
        trace=TraceSpec(source="synthetic"),
        router=RouterSpec(replicas=1, policy="round-robin"),
        seed=0,
        step_stride=8,
    )
    print("Routing LLM-7B-32K across data-parallel CENT-class PIM replicas")
    replica_scaling(base)
    routing_policy_comparison(base)
    prefill_ttft(base.with_overrides({"router": None}))


if __name__ == "__main__":
    main()
