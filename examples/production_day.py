"""A production day: diurnal traffic, a peak-hour failure, and an autoscaler.

The shipped ``examples/specs/diurnal_autoscale.json`` scenario compresses a
production day into two 60-second diurnal cycles: 24k requests whose
Poisson rate swings sinusoidally between 80 and 320 req/s (amplitude 0.6,
a 4x peak-to-trough ratio), served by xPU replicas capped at batch 8 with
a 0.5s TTFT deadline on every request.  At the first peak (t=30s) replica
0 fails -- its in-flight requests lose their KV and re-warm elsewhere --
and comes back cold ten seconds later.

Two fleets face that day:

* **autoscaled** -- starts at 2 replicas; a reactive queue-depth
  controller (up at mean depth 6, drain below 3.5, 1s interval, 3s cold
  start) grows to at most 6 and drains back through the troughs;
* **static-peak** -- 6 replicas provisioned for the whole day, the
  capacity a static fleet must hold because sizing for anything less
  collapses at peak (a static 2-replica trough fleet attains ~6% of TTFT
  deadlines on this trace).

The autoscaled fleet must hold >= 95% TTFT-deadline attainment through
the swing *and* the failure while spending fewer replica-hours than the
static-peak fleet -- elasticity priced in the capacity-planning currency.

The scenario also runs straight from the CLI:

    python -m repro run examples/specs/diurnal_autoscale.json

Run with:  python examples/production_day.py
"""

import json
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.api import ExperimentSpec, run

SPEC_PATH = Path(__file__).parent / "specs" / "diurnal_autoscale.json"

#: The autoscaled day must keep at least this fraction of requests inside
#: their TTFT deadline.
ATTAINMENT_FLOOR = 0.95


def load_specs() -> dict[str, ExperimentSpec]:
    """The shipped autoscaled spec and its static-peak comparator."""
    autoscaled = json.loads(SPEC_PATH.read_text(encoding="utf-8"))
    static_peak = json.loads(json.dumps(autoscaled))
    static_peak["name"] = "diurnal-static-peak"
    static_peak["router"]["replicas"] = static_peak["autoscaler"]["max_replicas"]
    del static_peak["autoscaler"]
    return {
        "autoscaled": ExperimentSpec.from_dict(autoscaled).validate(),
        "static-peak": ExperimentSpec.from_dict(static_peak).validate(),
    }


def overall_ttft_attainment(report) -> float:
    arrivals = sum(window.arrivals for window in report.windows)
    attained = sum(window.ttft_attained for window in report.windows)
    return attained / arrivals if arrivals else 1.0


def main() -> None:
    reports = {label: run(spec) for label, spec in load_specs().items()}

    rows = []
    for index, window in enumerate(reports["autoscaled"].windows):
        static_window = reports["static-peak"].windows[index]
        rows.append(
            [
                f"{window.start_s:.0f}-{window.end_s:.0f}s",
                window.arrivals,
                f"{window.ttft_attainment:.1%}",
                f"{static_window.ttft_attainment:.1%}",
                f"{window.latency.ttft_p95_s * 1e3:.0f}ms",
            ]
        )
    print(
        format_table(
            ["window", "arrivals", "autoscaled TTFT att", "static-peak TTFT att",
             "autoscaled TTFT p95"],
            rows,
            title="Two diurnal cycles (80-320 req/s), replica 0 down 30-40s",
        )
    )

    summary_rows = []
    for label, report in reports.items():
        timeline = report.fleet_timeline
        summary_rows.append(
            [
                label,
                f"{overall_ttft_attainment(report):.2%}",
                f"{report.goodput:.2%}",
                round(timeline.replica_hours, 4),
                timeline.peak_replicas,
                timeline.scale_ups,
                timeline.scale_downs,
                timeline.restarts,
                timeline.kv_lost_tokens,
            ]
        )
    print()
    print(
        format_table(
            ["fleet", "TTFT att", "goodput", "replica-hours", "peak",
             "ups", "downs", "restarts", "KV lost"],
            summary_rows,
            title="Day summary (one replica_down at peak in both fleets)",
        )
    )

    autoscaled = reports["autoscaled"]
    static_peak = reports["static-peak"]
    attainment = overall_ttft_attainment(autoscaled)
    hours = autoscaled.fleet_timeline.replica_hours
    static_hours = static_peak.fleet_timeline.replica_hours

    # The elastic fleet must survive the day inside the SLO for less money.
    assert attainment >= ATTAINMENT_FLOOR, (
        f"autoscaled TTFT attainment {attainment:.2%} fell below "
        f"{ATTAINMENT_FLOOR:.0%}"
    )
    assert hours < static_hours, (
        f"autoscaled fleet spent {hours:.4f} replica-hours, not less than "
        f"the static-peak fleet's {static_hours:.4f}"
    )
    assert autoscaled.fleet_timeline.failures == 1
    assert autoscaled.fleet_timeline.restarts > 0

    saved = 1.0 - hours / static_hours
    print(
        f"\nAutoscaled fleet held {attainment:.1%} TTFT attainment through a "
        f"4x diurnal swing plus a peak-hour replica failure, spending "
        f"{hours:.3f} replica-hours vs {static_hours:.3f} static-peak "
        f"({saved:.0%} saved)."
    )


if __name__ == "__main__":
    main()
