"""Prefill/decode disaggregation demo: two pools, modelled KV handoff.

Colocated chunked prefill taxes every decode step: each engine iteration
spends a chunk budget on pending prompts before pricing the decode batch,
so a prompt-heavy trace inflates inter-token latency fleet-wide.  The
disaggregated topology (``router.topology = "disaggregated"``) splits the
same ``router.replicas`` worth of hardware into a dedicated prefill pool
and a decode pool: prefill replicas run chunked prefill to completion,
hand the finished KV cache to a decode replica over a modelled
interconnect (per-request KV bytes through
``InterconnectConfig.point_to_point_seconds``), and the decode pool serves
pure token generation.

Two results, both on the shipped ``examples/specs/disagg_prompt_heavy.json``
workload (96 requests, every 2nd with a 16k-token prompt, Poisson 12 req/s):

1. **Decode TPOT collapses at equal hardware** -- 2 prefill + 2 decode
   replicas beat 4 colocated replicas on TPOT p95 by ~1.7x because decode
   steps no longer share the engine with prefill chunks.  TTFT improves
   too: dedicated prefill replicas drain the prompt backlog serially
   instead of time-slicing it against decode.
2. **The topology is honest about the transfer** -- every handoff is
   charged its KV-transfer time before the first decode token, and the
   report carries ``kv_transfer_s`` / per-pool utilization.
3. **Trivial topology is exact** -- with ``disagg.prefill_replicas = 0``
   the builder falls back to the colocated construction, so the report is
   bit-identical to ``router.topology = "colocated"``.

The scenario also ships as JSON:

    python -m repro run examples/specs/disagg_prompt_heavy.json

Run with:  python examples/disaggregation.py
"""

import json
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.api import ExperimentSpec, run

SPEC_PATH = Path(__file__).parent / "specs" / "disagg_prompt_heavy.json"


def compare_topologies(disagg_spec: ExperimentSpec) -> None:
    colocated_spec = disagg_spec.with_overrides(
        {"router.topology": "colocated", "router.disagg": None}
    )
    disagg = run(disagg_spec)
    colocated = run(colocated_spec)

    assert disagg.disagg is not None
    rows = [
        [
            "colocated (4 replicas)",
            colocated.latency.tpot_p95_s * 1e3,
            colocated.latency.ttft_p95_s,
            colocated.requests_served,
            0.0,
        ],
        [
            "disaggregated (2 prefill + 2 decode)",
            disagg.latency.tpot_p95_s * 1e3,
            disagg.latency.ttft_p95_s,
            disagg.requests_served,
            disagg.disagg.kv_transfer_s,
        ],
    ]
    print()
    print(
        format_table(
            ["topology", "TPOT p95 ms", "TTFT p95 s", "served", "KV transfer s"],
            rows,
            title="Equal hardware, prompt-heavy trace: colocated vs disaggregated",
        )
    )
    speedup = colocated.latency.tpot_p95_s / disagg.latency.tpot_p95_s
    print(f"\ndecode TPOT p95 speedup at equal hardware: {speedup:.2f}x")
    print(
        f"handoffs: {disagg.disagg.handoffs}, "
        f"KV moved: {disagg.disagg.kv_transfer_bytes / 1e9:.1f} GB, "
        f"prefill pool utilization: {disagg.disagg.prefill_pool_utilization:.2f}, "
        f"decode pool utilization: {disagg.disagg.decode_pool_utilization:.2f}"
    )


def trivial_topology_parity(disagg_spec: ExperimentSpec) -> None:
    # prefill_replicas=0 keeps the disaggregated label but yields no prefill
    # pool; the builder takes the colocated path, so reports match exactly.
    trivial = run(
        disagg_spec.with_overrides({"router.disagg.prefill_replicas": 0})
    )
    colocated = run(
        disagg_spec.with_overrides(
            {"router.topology": "colocated", "router.disagg": None}
        )
    )
    assert trivial.latency == colocated.latency
    assert trivial.disagg is None
    print("\ntrivial topology (prefill_replicas=0) is bit-identical to colocated: OK")


def main() -> None:
    with open(SPEC_PATH, encoding="utf-8") as handle:
        spec = ExperimentSpec.from_dict(json.load(handle)).validate()
    print("Prefill/decode disaggregation on LLM-7B-32K, 4 xPU replicas total")
    compare_topologies(spec)
    trivial_topology_parity(spec)


if __name__ == "__main__":
    main()
