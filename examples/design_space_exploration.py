"""Design-space exploration: parallelism plans and system capacity.

PIMphony's benefit depends on how the model is spread across PIM modules.
This example sweeps every valid (TP, PP) plan of an 8-module CENT-class
system for two models -- each plan expressed declaratively through
``parallelism.tensor_parallel`` / ``parallelism.pipeline_parallel`` on an
:class:`~repro.api.ExperimentSpec` -- picks the best plan for the baseline
and for PIMphony, and then scales ``system.num_modules`` to show capacity
scalability (the paper's Fig. 15 and Fig. 17(a) analyses).

Run with:  python examples/design_space_exploration.py
"""

from repro.analysis.reporting import format_table
from repro.api import ExperimentSpec, ModelSpec, SystemSpec, TraceSpec, run
from repro.models.llm import get_model
from repro.system.parallelism import enumerate_plans


def base_spec(model_name: str, dataset_name: str, num_requests: int) -> ExperimentSpec:
    return ExperimentSpec(
        name="design-space",
        model=ModelSpec(name=model_name),
        system=SystemSpec(kind="pim-only", num_modules=8, pimphony="full"),
        trace=TraceSpec(
            source="dataset",
            dataset=dataset_name,
            num_requests=num_requests,
            output_tokens=24,
        ),
        seed=0,
        step_stride=8,
    )


def explore_plans(model_name: str, dataset_name: str, num_modules: int = 8) -> None:
    base = base_spec(model_name, dataset_name, num_requests=16).with_overrides(
        {"system.num_modules": num_modules}
    )
    rows = []
    for plan in enumerate_plans(num_modules, get_model(model_name)):
        with_plan = base.with_overrides(
            {
                "parallelism.tensor_parallel": plan.tensor_parallel,
                "parallelism.pipeline_parallel": plan.pipeline_parallel,
            }
        )
        baseline = run(
            with_plan.with_overrides({"system.pimphony": "baseline"})
        ).throughput_tokens_per_s
        pimphony = run(with_plan).throughput_tokens_per_s
        rows.append([str(plan), baseline, pimphony, pimphony / baseline])
    rows.sort(key=lambda row: row[2], reverse=True)
    print()
    print(
        format_table(
            ["plan", "baseline tok/s", "PIMphony tok/s", "speedup"],
            rows,
            title=f"{model_name} on {dataset_name}: parallelism plans over {num_modules} modules",
        )
    )
    print(f"best plan with PIMphony: {rows[0][0]}")


def explore_capacity(model_name: str, dataset_name: str) -> None:
    base = base_spec(model_name, dataset_name, num_requests=24)
    rows = []
    for num_modules in (8, 16, 32, 64):
        report = run(base.with_overrides({"system.num_modules": num_modules}))
        rows.append([num_modules, num_modules * 16, report.throughput_tokens_per_s])
    print()
    print(
        format_table(
            ["modules", "capacity (GB)", "PIMphony tok/s"],
            rows,
            title=f"{model_name} on {dataset_name}: throughput vs system capacity",
        )
    )


def main() -> None:
    explore_plans("LLM-7B-32K", "qmsum")
    explore_plans("LLM-7B-128K", "multifieldqa")
    explore_capacity("LLM-7B-128K", "multifieldqa")


if __name__ == "__main__":
    main()
