"""Design-space exploration: parallelism plans and system capacity.

PIMphony's benefit depends on how the model is spread across PIM modules.
This example sweeps every valid (TP, PP) plan of an 8-module CENT-class
system for two models, picks the best plan for the baseline and for
PIMphony, and then scales the module count to show capacity scalability
(the paper's Fig. 15 and Fig. 17(a) analyses).

Run with:  python examples/design_space_exploration.py
"""

from repro.analysis.reporting import format_table
from repro.baselines.cent import cent_system_config
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import get_model
from repro.system.parallelism import enumerate_plans
from repro.system.serving import simulate_serving
from repro.workloads.datasets import get_dataset
from repro.workloads.traces import generate_trace


def throughput(model, trace, plan, config, num_modules):
    system = cent_system_config(model, num_modules=num_modules, plan=plan, pimphony=config)
    return simulate_serving(system, trace, step_stride=8).throughput_tokens_per_s


def explore_plans(model_name: str, dataset_name: str, num_modules: int = 8) -> None:
    model = get_model(model_name)
    trace = generate_trace(
        get_dataset(dataset_name),
        num_requests=16,
        seed=0,
        context_window=model.context_window,
        output_tokens=24,
    )
    rows = []
    for plan in enumerate_plans(num_modules, model):
        baseline = throughput(model, trace, plan, PIMphonyConfig.baseline(), num_modules)
        pimphony = throughput(model, trace, plan, PIMphonyConfig.full(), num_modules)
        rows.append([str(plan), baseline, pimphony, pimphony / baseline])
    rows.sort(key=lambda row: row[2], reverse=True)
    print()
    print(
        format_table(
            ["plan", "baseline tok/s", "PIMphony tok/s", "speedup"],
            rows,
            title=f"{model_name} on {dataset_name}: parallelism plans over {num_modules} modules",
        )
    )
    print(f"best plan with PIMphony: {rows[0][0]}")


def explore_capacity(model_name: str, dataset_name: str) -> None:
    model = get_model(model_name)
    trace = generate_trace(
        get_dataset(dataset_name),
        num_requests=24,
        seed=0,
        context_window=model.context_window,
        output_tokens=24,
    )
    rows = []
    for num_modules in (8, 16, 32, 64):
        tokens_per_s = simulate_serving(
            cent_system_config(model, num_modules=num_modules, pimphony=PIMphonyConfig.full()),
            trace,
            step_stride=8,
        ).throughput_tokens_per_s
        rows.append([num_modules, num_modules * 16, tokens_per_s])
    print()
    print(
        format_table(
            ["modules", "capacity (GB)", "PIMphony tok/s"],
            rows,
            title=f"{model_name} on {dataset_name}: throughput vs system capacity",
        )
    )


def main() -> None:
    explore_plans("LLM-7B-32K", "qmsum")
    explore_plans("LLM-7B-128K", "multifieldqa")
    explore_capacity("LLM-7B-128K", "multifieldqa")


if __name__ == "__main__":
    main()
