"""Event-driven serving engine demo: arrivals, admission policies, cache.

Three things the engine adds over the legacy ``simulate_serving`` loop,
all driven through the declarative experiment API:

1. **Open-loop arrivals** -- requests arrive through a Poisson process
   (``trace.arrival = "poisson"``) and every ``RunReport`` carries TTFT /
   TPOT and end-to-end latency percentiles per admission policy.
2. **Pluggable admission** -- the same trace served under different
   ``admission.policy`` values shows the packing/fairness trade-off
   (every fourth request lands in an urgent SLO tier via ``tiers``).
3. **Bucketed latency cache** -- a 1k-request sweep evaluated per-step
   versus with ``latency_cache_bucket`` set, demonstrating the >=5x
   wall-clock speedup with sub-percent throughput error.

Run with:  python examples/serving_engine_demo.py
"""

import time

from repro.analysis.reporting import format_table, serving_summary_table
from repro.api import (
    AdmissionSpec,
    ExperimentSpec,
    ModelSpec,
    SystemSpec,
    TraceSpec,
    build,
    run,
)
from repro.serving import FCFSAdmission, ServingEngine


def admission_policy_comparison(base: ExperimentSpec) -> None:
    spec = base.with_overrides(
        {
            "trace.num_requests": 64,
            "trace.arrival": "poisson",
            "trace.rate_rps": 40.0,
            "tiers": [
                {"name": "urgent", "priority": 5, "share": 0.25},
                {"name": "standard", "priority": 0},
            ],
        }
    )

    # Parity: the FCFS spec run equals a hand-constructed engine run.
    built = build(spec)
    direct = ServingEngine(
        system=built.system, admission=FCFSAdmission(), step_stride=8
    ).run(built.trace)
    assert run(spec).engine_result.latency == direct.latency

    results = [
        run(spec.with_overrides({"admission.policy": policy})).engine_result
        for policy in ("fcfs", "capacity-aware", "priority")
    ]
    print()
    print(
        serving_summary_table(
            results,
            title="LLM-7B-32K on QMSum, Poisson arrivals at 40 req/s, 64 requests",
        )
    )


def latency_cache_sweep(base: ExperimentSpec) -> None:
    spec = base.with_overrides(
        {"trace.num_requests": 1000, "trace.output_tokens": 64, "seed": 1, "step_stride": 1}
    )

    start = time.perf_counter()
    uncached = run(spec)
    uncached_wall = time.perf_counter() - start

    cached_spec = spec.with_overrides({"latency_cache_bucket": 512})
    start = time.perf_counter()
    cached = run(cached_spec)
    cached_wall = time.perf_counter() - start

    speedup = uncached_wall / cached_wall
    error = abs(
        cached.throughput_tokens_per_s / uncached.throughput_tokens_per_s - 1.0
    )
    print()
    print(
        format_table(
            ["mode", "wall s", "tokens/s", "p99 ms"],
            [
                ["per-step", uncached_wall, uncached.throughput_tokens_per_s,
                 uncached.latency_p99_s * 1e3],
                ["bucketed cache", cached_wall, cached.throughput_tokens_per_s,
                 cached.latency_p99_s * 1e3],
            ],
            title="1k-request sweep: per-step evaluation vs bucketed latency cache",
        )
    )
    cache_stats = cached.engine_result.metadata["latency_cache"]
    print(
        f"\ncache: {cache_stats['hits']} hits / {cache_stats['misses']} misses "
        f"({cache_stats['hit_rate']:.1%} hit rate), "
        f"wall-clock speedup {speedup:.1f}x, throughput error {error:.3%}"
    )
    if speedup < 5.0:
        # Wall-clock ratios depend on host load; the robust cache properties
        # (hit rate, throughput fidelity) are asserted in the benchmark suite.
        print(
            f"note: measured speedup {speedup:.1f}x is below the typical >=5x "
            "(host under load?)"
        )


def main() -> None:
    base = ExperimentSpec(
        name="serving-engine-demo",
        model=ModelSpec(name="LLM-7B-32K"),
        system=SystemSpec(kind="pim-only", pimphony="full"),
        admission=AdmissionSpec(policy="fcfs"),
        trace=TraceSpec(source="dataset", dataset="qmsum", output_tokens=32),
        seed=0,
        step_stride=8,
    )
    print("Serving LLM-7B-32K on a CENT-class PIM system with PIMphony")
    admission_policy_comparison(base)
    latency_cache_sweep(base)


if __name__ == "__main__":
    main()
