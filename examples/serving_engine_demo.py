"""Event-driven serving engine demo: arrivals, admission policies, cache.

Three things the engine adds over the legacy ``simulate_serving`` loop:

1. **Open-loop arrivals** -- requests arrive through a Poisson process and
   the engine reports TTFT / TPOT and end-to-end latency percentiles per
   admission policy (FCFS, capacity-aware, priority).
2. **Pluggable admission** -- the same trace served under different
   policies shows the packing/fairness trade-off.
3. **Bucketed latency cache** -- a 1k-request sweep evaluated per-step
   versus through the bucketed decode-step cache, demonstrating the >=5x
   wall-clock speedup with sub-percent throughput error.

Run with:  python examples/serving_engine_demo.py
"""

import time
from dataclasses import replace

from repro.analysis.reporting import format_table, serving_summary_table
from repro.baselines.cent import cent_system_config
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import get_model
from repro.serving import (
    CapacityAwareAdmission,
    FCFSAdmission,
    PriorityAdmission,
    StepLatencyCache,
    serve,
)
from repro.workloads.datasets import get_dataset
from repro.workloads.traces import RequestTrace, generate_trace, poisson_arrivals


def admission_policy_comparison(model, system) -> None:
    trace = generate_trace(
        get_dataset("qmsum"),
        num_requests=64,
        seed=0,
        context_window=model.context_window,
        output_tokens=32,
    )
    # Mark every fourth request as urgent so the priority row actually
    # exercises priority scheduling (generated traces default to 0).
    trace = RequestTrace(
        dataset=trace.dataset,
        requests=tuple(
            replace(request, priority=5) if index % 4 == 0 else request
            for index, request in enumerate(trace.requests)
        ),
    )
    open_loop = poisson_arrivals(trace, rate_rps=40.0, seed=0)
    results = [
        serve(system, open_loop, admission=policy, step_stride=8,
              system_name="CENT+PIMphony")
        for policy in (FCFSAdmission(), CapacityAwareAdmission(), PriorityAdmission())
    ]
    print()
    print(
        serving_summary_table(
            results,
            title="LLM-7B-32K on QMSum, Poisson arrivals at 40 req/s, 64 requests",
        )
    )


def latency_cache_sweep(model, system) -> None:
    trace = generate_trace(
        get_dataset("qmsum"),
        num_requests=1000,
        seed=1,
        context_window=model.context_window,
        output_tokens=64,
    )

    start = time.perf_counter()
    uncached = serve(system, trace, step_stride=1)
    uncached_wall = time.perf_counter() - start

    cache = StepLatencyCache(bucket_tokens=512)
    start = time.perf_counter()
    cached = serve(system, trace, step_stride=1, latency_cache=cache)
    cached_wall = time.perf_counter() - start

    speedup = uncached_wall / cached_wall
    error = abs(
        cached.throughput_tokens_per_s / uncached.throughput_tokens_per_s - 1.0
    )
    print()
    print(
        format_table(
            ["mode", "wall s", "tokens/s", "p99 ms"],
            [
                ["per-step", uncached_wall, uncached.throughput_tokens_per_s,
                 uncached.latency_p99_s * 1e3],
                ["bucketed cache", cached_wall, cached.throughput_tokens_per_s,
                 cached.latency_p99_s * 1e3],
            ],
            title="1k-request sweep: per-step evaluation vs bucketed latency cache",
        )
    )
    print(
        f"\ncache: {cache.hits} hits / {cache.misses} misses "
        f"({cache.hit_rate:.1%} hit rate), "
        f"wall-clock speedup {speedup:.1f}x, throughput error {error:.3%}"
    )
    if speedup < 5.0:
        # Wall-clock ratios depend on host load; the robust cache properties
        # (hit rate, throughput fidelity) are asserted in the benchmark suite.
        print(
            f"note: measured speedup {speedup:.1f}x is below the typical >=5x "
            "(host under load?)"
        )


def main() -> None:
    model = get_model("LLM-7B-32K")
    system = cent_system_config(model, pimphony=PIMphonyConfig.full())
    print(f"Serving {model.name} on a CENT-class PIM system with PIMphony")
    admission_policy_comparison(model, system)
    latency_cache_sweep(model, system)


if __name__ == "__main__":
    main()
