"""SLO tiers walkthrough: priority-aware preemption buys premium goodput.

The shipped ``examples/specs/tiered_slo_oversubscribed.json`` scenario puts
eighteen requests that each grow to 768 tokens on a single CENT-style PIM
module (~1.5x KV oversubscription) and splits the trace into two SLO tiers:

* ``premium`` -- every 4th request (``share=0.25``), priority 5, with a
  0.5s TTFT deadline and a 35ms TPOT deadline;
* ``best-effort`` -- the catch-all remainder at priority 0, no deadlines.

The same spec is run under a priority-blind policy (``evict-lru``) and its
tier-aware counterpart (``evict-priority-lru``).  Blind LRU pages premium
requests out alongside everyone else, and the swap stalls blow their TPOT
deadline; the priority-aware policy drains victims from the best-effort
class first, so every premium request stays resident and inside its SLO.
``starvation_limit=4`` keeps the pressure fair inside the best-effort
class: no single victim absorbs every eviction.

The scenario also runs straight from the CLI:

    python -m repro run examples/specs/tiered_slo_oversubscribed.json
    python -m repro run examples/specs/tiered_slo_oversubscribed.json \
        --sweep preemption.policy=evict-lru,evict-priority-lru

Run with:  python examples/tiered_slo_goodput.py
"""

import json
from pathlib import Path

from repro.analysis.reporting import format_table
from repro.api import ExperimentSpec, run
from repro.api.spec import apply_override

SPEC_PATH = Path(__file__).parent / "specs" / "tiered_slo_oversubscribed.json"
POLICIES = ("evict-lru", "evict-priority-lru")


def main() -> None:
    base = json.loads(SPEC_PATH.read_text(encoding="utf-8"))

    reports = {}
    for policy in POLICIES:
        data = json.loads(json.dumps(base))
        apply_override(data, "preemption.policy", policy)
        reports[policy] = run(ExperimentSpec.from_dict(data).validate())

    rows = []
    for policy, report in reports.items():
        premium = report.tier_report("premium")
        best_effort = report.tier_report("best-effort")
        rows.append(
            [
                policy,
                premium.goodput,
                premium.tpot_attainment,
                premium.preemptions,
                best_effort.goodput,
                best_effort.preemptions,
                report.goodput,
            ]
        )
    print(
        format_table(
            [
                "policy",
                "premium goodput",
                "premium TPOT att",
                "premium preempt",
                "BE goodput",
                "BE preempt",
                "all goodput",
            ],
            rows,
            title="18 requests x 768 tokens on one PIM module, premium share 0.25",
        )
    )

    blind = reports["evict-lru"]
    aware = reports["evict-priority-lru"]
    # Tier-aware preemption must strictly improve premium goodput at equal
    # load, without starving the best-effort class outright.
    assert aware.tier_report("premium").goodput > blind.tier_report("premium").goodput
    assert aware.tier_report("premium").preemptions == 0
    assert aware.tier_report("best-effort").goodput > 0.0
    print(
        "\nPremium goodput "
        f"{blind.tier_report('premium').goodput:.0%} -> "
        f"{aware.tier_report('premium').goodput:.0%} under evict-priority-lru; "
        "best-effort keeps "
        f"{aware.tier_report('best-effort').goodput:.0%} goodput."
    )


if __name__ == "__main__":
    main()
