"""Fig. 19 reproduction: KV-cache capacity utilisation with and without DPA."""

from benchmarks._helpers import emit, run_once, serve_workload
from repro.analysis.reporting import format_table
from repro.baselines.cent import cent_system_config
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import get_model

CASES = [
    ("LLM-7B-32K", "qmsum"),
    ("LLM-7B-32K", "musique"),
    ("LLM-7B-128K", "multifieldqa"),
    ("LLM-7B-128K", "loogle-sd"),
]


def build_fig19():
    rows = []
    for model_name, dataset in CASES:
        model = get_model(model_name)
        static = serve_workload(
            cent_system_config, model, dataset, PIMphonyConfig.tcp_dcs(),
            num_requests=32, output_tokens=16, step_stride=8,
        )
        dpa = serve_workload(
            cent_system_config, model, dataset, PIMphonyConfig.full(),
            num_requests=32, output_tokens=16, step_stride=8,
        )
        rows.append(
            [
                dataset,
                model_name,
                static.average_capacity_utilization,
                dpa.average_capacity_utilization,
                static.average_batch_size,
                dpa.average_batch_size,
            ]
        )
    return rows


def test_fig19_capacity_utilization_with_dpa(benchmark):
    rows = run_once(benchmark, build_fig19)
    emit(
        "Fig. 19: KV-cache capacity utilisation without DPA (static T_max) vs with DPA "
        "(paper: ~36% -> ~76% on average)",
        format_table(
            ["dataset", "model", "static util", "DPA util", "static batch", "DPA batch"], rows
        ),
    )
    static_values = [row[2] for row in rows]
    dpa_values = [row[3] for row in rows]
    static_avg = sum(static_values) / len(static_values)
    dpa_avg = sum(dpa_values) / len(dpa_values)
    # Static reservations waste most of the capacity; DPA roughly doubles the
    # average utilisation (paper: 31-40% -> 75.6%).
    assert static_avg < 0.6
    assert dpa_avg > 1.5 * static_avg
    # DPA also admits larger batches on every workload.
    for row in rows:
        assert row[5] >= row[4]
