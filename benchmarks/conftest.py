"""Fixtures shared by the figure/table reproduction benchmarks."""

from __future__ import annotations

import pytest

from repro.core.orchestrator import PIMphonyConfig


@pytest.fixture
def incremental_configs():
    """The paper's incremental configurations: baseline, +TCP, +DCS, +DPA."""
    return PIMphonyConfig.incremental_sweep()
