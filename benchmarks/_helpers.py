"""Shared helpers for the figure/table reproduction benchmarks.

Every benchmark regenerates the rows or series of one table or figure of the
paper and prints them (they land in ``bench_output.txt`` when the suite is
run with ``pytest benchmarks/ --benchmark-only``).  The timed portion wraps
the main computation once via ``benchmark.pedantic`` so pytest-benchmark
reports a single representative runtime per experiment.
"""

from __future__ import annotations

from repro.core.orchestrator import PIMphonyConfig
from repro.system.serving import ServingResult, simulate_serving
from repro.workloads.datasets import get_dataset
from repro.workloads.traces import generate_trace


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)


def emit(title: str, text: str) -> None:
    """Print a labelled block so it is easy to find in bench_output.txt."""
    print(f"\n===== {title} =====")
    print(text)
    print("=" * (12 + len(title)))


def serve_workload(
    system_factory,
    model,
    dataset_name: str,
    pimphony: PIMphonyConfig,
    num_requests: int = 20,
    output_tokens: int = 32,
    step_stride: int = 16,
    seed: int = 0,
    **system_kwargs,
) -> ServingResult:
    """Serve a generated trace on a freshly built system (one configuration)."""
    trace = generate_trace(
        get_dataset(dataset_name),
        num_requests=num_requests,
        seed=seed,
        context_window=model.context_window,
        output_tokens=output_tokens,
    )
    system = system_factory(model, pimphony=pimphony, **system_kwargs)
    return simulate_serving(
        system,
        trace,
        step_stride=step_stride,
        system_name=f"{type(system).__name__}[{pimphony.label}]",
    )
