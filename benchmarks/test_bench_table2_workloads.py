"""Table II reproduction: context-length statistics of the four datasets."""

import numpy as np

from benchmarks._helpers import emit, run_once
from repro.analysis.reporting import format_table
from repro.workloads.datasets import get_dataset, list_datasets

PAPER_STATS = {
    "qmsum": dict(mean=13_966, std=6_182, maximum=30_456, minimum=2_651),
    "musique": dict(mean=16_362, std=1_651, maximum=17_917, minimum=6_820),
    "multifieldqa": dict(mean=60_780, std=31_025, maximum=119_480, minimum=20_333),
    "loogle-sd": dict(mean=50_693, std=26_506, maximum=109_221, minimum=13_347),
}


def sample_statistics(samples_per_dataset: int = 4000):
    rng = np.random.default_rng(0)
    rows = []
    for name in list_datasets():
        stats = get_dataset(name)
        samples = stats.sample(samples_per_dataset, rng)
        rows.append(
            [
                name,
                stats.suite,
                float(samples.mean()),
                float(samples.std()),
                int(samples.max()),
                int(samples.min()),
                PAPER_STATS[name]["mean"],
                PAPER_STATS[name]["maximum"],
            ]
        )
    return rows


def test_table2_context_length_statistics(benchmark):
    rows = run_once(benchmark, sample_statistics)
    emit(
        "Table II: input context length statistics (generated vs paper)",
        format_table(
            ["dataset", "suite", "gen mean", "gen std", "gen max", "gen min", "paper mean", "paper max"],
            rows,
            float_format="{:.0f}",
        ),
    )
    for row in rows:
        name, generated_mean, paper_mean = row[0], row[2], row[6]
        assert abs(generated_mean - paper_mean) / paper_mean < 0.15, name
        assert row[4] <= PAPER_STATS[name]["maximum"]
        assert row[5] >= PAPER_STATS[name]["minimum"]
