"""Ablations of PIMphony design choices called out in DESIGN.md.

Two hardware/software knobs the paper fixes are swept here to show why the
chosen values are sensible:

* the Output Buffer size DCS's I/O-aware buffering provisions per bank
  (the paper expands the 4B OutRegs; we sweep 4B..64B), and
* the DPA allocation chunk size (the paper uses 1MB chunks).
"""

from benchmarks._helpers import emit, run_once
from repro.analysis.reporting import format_table
from repro.memory.chunked_alloc import ChunkedAllocator
from repro.models.llm import get_model
from repro.pim.config import PIMChannelConfig
from repro.pim.kernels import attention_head_cycles
from repro.pim.timing import aimx_timing
from repro.workloads.datasets import get_dataset
from repro.workloads.traces import generate_trace

OBUF_BYTES = [4, 8, 16, 32, 64]
CHUNK_MB = [0.25, 0.5, 1, 4, 16, 64]


def sweep_obuf_sizes():
    timing = aimx_timing()
    rows = []
    for obuf_bytes in OBUF_BYTES:
        channel = PIMChannelConfig(obuf_bytes_per_bank=obuf_bytes)
        breakdown = attention_head_cycles(
            8192, 128, channel, timing, "dcs", group_size=4, row_reuse=True
        )
        rows.append([obuf_bytes, breakdown.total, breakdown.mac_utilization])
    return rows


def sweep_chunk_sizes():
    model = get_model("LLM-7B-128K")
    trace = generate_trace(
        get_dataset("multifieldqa"), 24, seed=0,
        context_window=model.context_window, output_tokens=1,
    )
    capacity = 64 * 1024**3
    rows = []
    for chunk_mb in CHUNK_MB:
        allocator = ChunkedAllocator(
            capacity_bytes=capacity,
            bytes_per_token=model.kv_bytes_per_token,
            chunk_bytes=int(chunk_mb * 1024 * 1024),
        )
        admitted = 0
        for request in trace.requests:
            if not allocator.can_admit(request.prompt_tokens):
                break
            allocator.admit(request.request_id, request.prompt_tokens)
            admitted += 1
        rows.append(
            [
                chunk_mb,
                admitted,
                allocator.capacity_utilization,
                allocator.fragmentation_bytes / 1024**2,
                allocator.table.num_entries,
            ]
        )
    return rows


def build_ablation():
    return sweep_obuf_sizes(), sweep_chunk_sizes()


def test_ablation_obuf_and_chunk_size(benchmark):
    obuf_rows, chunk_rows = run_once(benchmark, build_ablation)
    emit(
        "Ablation: DCS Output Buffer size per bank (attention kernel, GQA g=4)",
        format_table(["OBuf bytes/bank", "cycles", "MAC utilisation"], obuf_rows),
    )
    emit(
        "Ablation: DPA chunk size (64GB module pool, multifieldqa prompts)",
        format_table(
            ["chunk (MB)", "admitted requests", "capacity util", "fragmentation (MB)", "VA2PA entries"],
            chunk_rows,
        ),
    )
    # Expanding the OutRegs into a larger OBuf never slows the kernel down,
    # and the paper's choice (>= 8 entries) captures most of the benefit.
    cycles = [row[1] for row in obuf_rows]
    assert cycles == sorted(cycles, reverse=True)
    assert cycles[-1] >= 0.95 * cycles[2]
    # Small chunks keep fragmentation negligible at the price of a larger
    # VA2PA table; very large chunks start wasting capacity (lower
    # utilisation) -- the paper's 1MB sits on the flat part of the curve.
    utilisations = {row[0]: row[2] for row in chunk_rows}
    table_entries = {row[0]: row[4] for row in chunk_rows}
    assert utilisations[1] > 0.9 * utilisations[0.25]
    assert utilisations[64] < utilisations[1]
    assert table_entries[0.25] > table_entries[16]
