"""Fig. 7 reproduction: static vs dynamic command scheduling on the example stack."""

from benchmarks._helpers import emit, run_once
from repro.analysis.reporting import format_table
from repro.baselines.pingpong import PingPongScheduler
from repro.core.dcs import DCSScheduler
from repro.pim.config import PIMChannelConfig
from repro.pim.isa import mac, read_output, write_input
from repro.pim.scheduling import StaticScheduler
from repro.pim.timing import illustrative_timing


def fig7_stack():
    return [
        write_input(0, 0),
        write_input(1, 1),
        write_input(2, 2),
        mac(3, 0, 0, row=-1),
        mac(4, 1, 0, row=-1),
        mac(5, 2, 0, row=-1),
        read_output(6, 0),
        mac(7, 0, 1, row=-1),
        mac(8, 1, 1, row=-1),
        mac(9, 2, 1, row=-1),
        read_output(10, 1),
    ]


def schedule_all():
    timing = illustrative_timing()
    channel = PIMChannelConfig()
    results = {}
    for scheduler in (
        StaticScheduler(timing, channel),
        PingPongScheduler(timing, channel),
        DCSScheduler(timing, channel),
    ):
        results[scheduler.name] = scheduler.schedule(fig7_stack())
    return results


def test_fig07_static_vs_dynamic_command_schedule(benchmark):
    results = run_once(benchmark, schedule_all)
    rows = [
        [name, result.makespan, " ".join(str(i) for i in result.issue_order())]
        for name, result in results.items()
    ]
    emit(
        "Fig. 7: command-stack makespan (paper: static 34 cycles, DCS 22 cycles)",
        format_table(["scheduler", "cycles", "issue order"], rows),
    )
    assert results["static"].makespan == 34
    assert results["dcs"].makespan <= 24
    assert results["static"].makespan / results["dcs"].makespan > 1.4
