"""Serving-engine benchmark: latency cache effectiveness and lifecycle metrics.

Not a paper figure: regression coverage for the event-driven engine added on
top of the reproduction.  Asserts the *robust* cache properties (hit rate and
throughput fidelity) and reports the measured wall-clock speedup, which the
``examples/serving_engine_demo.py`` sweep pins at >=5x on a full 1k-request
run.
"""

from __future__ import annotations

import time

from repro.analysis.reporting import serving_summary_table
from repro.baselines.cent import cent_system_config
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import get_model
from repro.serving import StepLatencyCache, serve
from repro.workloads.datasets import get_dataset
from repro.workloads.traces import generate_trace, poisson_arrivals

from _helpers import emit, run_once


def _sweep(benchmark=None):
    model = get_model("LLM-7B-32K")
    system = cent_system_config(model, pimphony=PIMphonyConfig.full())
    trace = generate_trace(
        get_dataset("qmsum"),
        num_requests=200,
        seed=1,
        context_window=model.context_window,
        output_tokens=64,
    )

    start = time.perf_counter()
    uncached = serve(system, trace, step_stride=1)
    uncached_wall = time.perf_counter() - start

    cache = StepLatencyCache(bucket_tokens=512)
    start = time.perf_counter()
    cached = serve(system, trace, step_stride=1, latency_cache=cache)
    cached_wall = time.perf_counter() - start
    return uncached, cached, cache, uncached_wall, cached_wall


def test_bench_latency_cache_sweep(benchmark):
    uncached, cached, cache, uncached_wall, cached_wall = run_once(benchmark, _sweep)

    error = abs(cached.throughput_tokens_per_s / uncached.throughput_tokens_per_s - 1.0)
    speedup = uncached_wall / max(cached_wall, 1e-9)
    emit(
        "serving engine latency cache (200-request sweep)",
        f"uncached {uncached_wall:.2f}s, cached {cached_wall:.2f}s "
        f"(speedup {speedup:.1f}x), hit rate {cache.hit_rate:.1%}, "
        f"throughput error {error:.3%}",
    )
    # Timing on shared CI runners is noisy, so assert the robust properties
    # that produce the speedup rather than the wall-clock ratio itself.
    assert cache.hit_rate > 0.8
    assert error < 0.01
    assert cached.total_output_tokens == uncached.total_output_tokens


def test_bench_admission_policies_open_loop(benchmark):
    model = get_model("LLM-7B-32K")
    system = cent_system_config(model, pimphony=PIMphonyConfig.full())
    trace = poisson_arrivals(
        generate_trace(
            get_dataset("qmsum"),
            num_requests=48,
            seed=0,
            context_window=model.context_window,
            output_tokens=32,
        ),
        rate_rps=40.0,
        seed=0,
    )

    def evaluate():
        from repro.serving import CapacityAwareAdmission, FCFSAdmission

        return [
            serve(system, trace, admission=policy, step_stride=8, system_name="CENT+PIMphony")
            for policy in (FCFSAdmission(), CapacityAwareAdmission())
        ]

    results = run_once(benchmark, evaluate)
    emit(
        "admission policies under Poisson arrivals",
        serving_summary_table(results),
    )
    fcfs, packed = results
    assert fcfs.total_output_tokens == packed.total_output_tokens
    for result in results:
        assert result.latency.ttft_mean_s > 0
        assert result.latency.latency_p50_s <= result.latency.latency_p99_s
