"""Router benchmarks: replica scaling, routing policies, prefill TTFT.

Not a paper figure: regression coverage for the PR-2 multi-replica router
and prefill cost model.  Three experiments:

1. **Near-linear scaling** -- the same Poisson workload served by 1/2/4/8
   CENT replicas behind a round-robin router; aggregate throughput (tokens
   over fleet makespan) must reach >=3x at 4 replicas.
2. **Capacity-aware vs round-robin under skew** -- every 4th request
   carries a 8k context on replicas whose KV cache only fits ~4 such
   reservations.  Round-robin aliases all of them onto replica 0, which
   then admits them in capacity-limited waves; capacity-aware spreads the
   reservations through the shadow ``can_admit`` protocol and collapses
   p95 TTFT.
3. **Prefill-aware TTFT** -- with the system's prefill model charged at
   admission, a 4k-context request's TTFT strictly exceeds a 128-context
   request's.
"""

from __future__ import annotations

from repro.analysis.reporting import fleet_summary_table
from repro.baselines.cent import cent_system_config
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import get_model
from repro.serving import (
    CapacityAwareRouting,
    PrefillConfig,
    ReplicaRouter,
    RoundRobinRouting,
    ServingEngine,
    prefill_model_for,
    serve,
)
from repro.workloads.traces import Request, RequestTrace, poisson_arrivals

from _helpers import emit, run_once


def _uniform_poisson_trace(num_requests=192, prompt=512, output=32, rate_rps=2000.0):
    requests = tuple(
        Request(request_id=index, prompt_tokens=prompt, output_tokens=output)
        for index in range(num_requests)
    )
    return poisson_arrivals(
        RequestTrace(dataset="uniform-poisson", requests=requests), rate_rps=rate_rps, seed=0
    )


def test_bench_near_linear_replica_scaling(benchmark):
    model = get_model("LLM-7B-32K")
    system = cent_system_config(model, pimphony=PIMphonyConfig.full())
    trace = _uniform_poisson_trace()

    def sweep():
        fleets = {}
        for num_replicas in (1, 2, 4, 8):
            router = ReplicaRouter.homogeneous(
                lambda: ServingEngine(system=system, max_batch_size=16, step_stride=8),
                num_replicas,
                policy=RoundRobinRouting(),
            )
            fleets[num_replicas] = router.run(trace, system_name="CENT+PIMphony")
        return fleets

    fleets = run_once(benchmark, sweep)
    base = fleets[1].aggregate_throughput_tokens_per_s
    lines = [
        f"{n} replica(s): {fleet.aggregate_throughput_tokens_per_s:8.0f} tokens/s "
        f"(speedup {fleet.aggregate_throughput_tokens_per_s / base:.2f}x, "
        f"makespan {fleet.makespan_s:.2f}s)"
        for n, fleet in fleets.items()
    ]
    emit("replica scaling, Poisson arrivals (192 requests)", "\n".join(lines))

    for n, fleet in fleets.items():
        assert fleet.requests_served == len(trace.requests)
        assert fleet.total_output_tokens == trace.total_output_tokens
    # Acceptance: >=3x aggregate throughput at 4 replicas (measured ~4.0x).
    assert fleets[4].aggregate_throughput_tokens_per_s >= 3.0 * base
    assert fleets[2].aggregate_throughput_tokens_per_s >= 1.6 * base


def test_bench_capacity_aware_beats_round_robin_under_skew(benchmark):
    model = get_model("LLM-7B-32K")
    # Two modules per replica: the KV cache only fits ~4 concurrent
    # 8k-context reservations, making capacity (not compute) the
    # constraint the routing policy has to manage.
    system = cent_system_config(model, num_modules=2, pimphony=PIMphonyConfig.full())
    requests = tuple(
        Request(
            request_id=index,
            prompt_tokens=8192 if index % 4 == 0 else 256,
            output_tokens=32,
        )
        for index in range(64)
    )
    trace = RequestTrace(dataset="skewed-contexts", requests=requests)

    def evaluate():
        fleets = {}
        for policy in (RoundRobinRouting(), CapacityAwareRouting()):
            router = ReplicaRouter.homogeneous(
                lambda: ServingEngine(system=system, step_stride=8), 4, policy=policy
            )
            fleets[policy.name] = (router.dispatch(trace), router.run(trace, "CENT-2mod"))
        return fleets

    fleets = run_once(benchmark, evaluate)
    for name, (_, fleet) in fleets.items():
        emit(f"skewed contexts under {name}", fleet_summary_table(fleet))

    def heavy_histogram(assignments):
        counts = [0, 0, 0, 0]
        for request, assignment in zip(trace.requests, assignments, strict=True):
            if assignment is not None and request.prompt_tokens > 1000:
                counts[assignment] += 1
        return counts

    rr_assignments, rr = fleets["round-robin"]
    ca_assignments, ca = fleets["capacity-aware"]
    # Round-robin aliases the periodic heavy requests onto replica 0;
    # capacity-aware spreads the reservations evenly.
    assert rr.requests_dropped == 0 and ca.requests_dropped == 0
    assert heavy_histogram(rr_assignments) == [16, 0, 0, 0]
    assert max(heavy_histogram(ca_assignments)) <= 5
    # The spread collapses heavy-request queueing: p95 TTFT at least halves
    # (measured ~23x better), at no throughput cost.
    assert ca.latency.ttft_p95_s < 0.5 * rr.latency.ttft_p95_s
    assert ca.total_output_tokens == rr.total_output_tokens


def test_bench_prefill_makes_ttft_context_dependent(benchmark):
    model = get_model("LLM-7B-32K")
    system = cent_system_config(model, pimphony=PIMphonyConfig.full())
    prefill = PrefillConfig(prefill_model_for(system))

    def evaluate():
        results = {}
        for prompt in (128, 4096):
            trace = RequestTrace(
                dataset="single",
                requests=(Request(request_id=0, prompt_tokens=prompt, output_tokens=8),),
            )
            results[prompt] = serve(system, trace, prefill=prefill, system_name="CENT")
        return results

    results = run_once(benchmark, evaluate)
    short, long = results[128], results[4096]
    emit(
        "prefill-aware TTFT (CENT, blocking prefill)",
        f"128-token prompt : TTFT {short.ttft_mean_s * 1e3:9.2f} ms "
        f"(prefill {short.prefill_seconds_total * 1e3:.2f} ms)\n"
        f"4096-token prompt: TTFT {long.ttft_mean_s * 1e3:9.2f} ms "
        f"(prefill {long.prefill_seconds_total * 1e3:.2f} ms)",
    )
    # Acceptance: TTFT must strictly grow with context under the prefill
    # model (it was context-blind before PR 2).
    assert long.ttft_mean_s > short.ttft_mean_s
    assert long.prefill_seconds_total > short.prefill_seconds_total > 0.0
