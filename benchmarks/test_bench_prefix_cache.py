"""Prefix/KV-reuse benchmark: multi-turn sessions with and without reuse.

A seeded multi-turn trace (seven 4-turn conversations, accumulated
prefixes) is served by a 4-replica fleet under session-affinity and
round-robin routing, with the per-replica prefix cache on and off.
Session affinity is what makes the cache pay: a session's turns land on
the replica holding its prefix, so follow-up turns prefill only their
uncached suffix and TTFT collapses.  Round-robin scatters the turns
across caches that never hold the right prefix, making the two policies
an apples-to-apples experiment the per-replica hit rates explain.
"""

from benchmarks._helpers import emit, run_once
from repro.analysis.reporting import format_table
from repro.api import (
    ExperimentSpec,
    PrefillSpec,
    PrefixCacheSpec,
    RouterSpec,
    SystemSpec,
    TraceSpec,
    run,
)

POLICIES = ("session-affinity", "round-robin")


def multi_turn_spec(policy: str, enabled: bool) -> ExperimentSpec:
    # Seven sessions on four replicas on purpose: a multiple of the
    # replica count would let round-robin fake perfect affinity.
    return ExperimentSpec(
        name=f"bench-prefix-{policy}-{'on' if enabled else 'off'}",
        system=SystemSpec(kind="pim-only", num_modules=1),
        prefill=PrefillSpec(mode="chunked", chunk_tokens=256),
        prefix_cache=PrefixCacheSpec(enabled=enabled),
        trace=TraceSpec(
            source="multi-turn",
            num_requests=28,
            num_sessions=7,
            turns_per_session=4,
            prompt_tokens=1024,
            followup_tokens=128,
            output_tokens=96,
            turn_gap_s=40.0,
        ),
        router=RouterSpec(replicas=4, policy=policy),
        seed=7,
        step_stride=4,
    )


def build_comparison():
    rows = []
    reports = {}
    for policy in POLICIES:
        for enabled in (False, True):
            report = run(multi_turn_spec(policy, enabled))
            reports[(policy, enabled)] = report
            rows.append(
                [
                    policy,
                    "on" if enabled else "off",
                    report.prefix_hit_rate,
                    report.prefix_hit_tokens,
                    report.ttft_mean_s * 1e3,
                    report.ttft_p95_s * 1e3,
                    report.latency_p95_s,
                    report.makespan_s,
                ]
            )

    affinity_on = reports[("session-affinity", True)]
    affinity_off = reports[("session-affinity", False)]
    rr_on = reports[("round-robin", True)]

    # Same work under every configuration.
    for report in reports.values():
        assert report.requests_served == 28
        assert report.total_output_tokens == affinity_off.total_output_tokens

    # The cache only pays under affinity: hits concentrate where the
    # session's prefix lives, and TTFT p95 collapses versus both the
    # cache-off run and the scattered round-robin run.
    assert affinity_on.prefix_hit_rate > 0.5
    assert affinity_on.prefix_hit_tokens > rr_on.prefix_hit_tokens
    assert affinity_on.ttft_p95_s < 0.7 * affinity_off.ttft_p95_s
    assert affinity_on.ttft_p95_s < 0.7 * rr_on.ttft_p95_s
    assert affinity_on.ttft_mean_s < 0.5 * affinity_off.ttft_mean_s
    # Parity off the cache path: disabling reuse restores PR 4 behaviour,
    # so both cache-off policies report zero lookups.
    assert affinity_off.prefix_hits == affinity_off.prefix_misses == 0
    return rows


def test_prefix_cache_collapses_multi_turn_ttft(benchmark):
    rows = run_once(benchmark, build_comparison)
    emit(
        "Prefix/KV reuse: 7 sessions x 4 turns on a 4-replica fleet "
        "(chunked prefill; per-replica LRU prefix cache)",
        format_table(
            [
                "routing",
                "cache",
                "hit rate",
                "hit tokens",
                "TTFT mean ms",
                "TTFT p95 ms",
                "p95 s",
                "makespan s",
            ],
            rows,
        ),
    )
