"""Fast-engine throughput benchmarks and the BENCH_engine_throughput.json trend.

Not a paper figure: perf-trend tracking for the vectorized batch-stepping
core.  The smoke test runs the fixed scenarios below in both engine modes,
checks parity, and writes ``BENCH_engine_throughput.json`` (requests per
wall-clock second of simulation, spec-hashed for comparability) which CI
uploads as an artifact and gates against the committed baseline in
``benchmarks/baselines/`` via ``benchmarks/check_bench_throughput.py``.

The slow-marked tests demonstrate the headline claims: >=20x on a
100k-request Poisson trace and a completed 10^6-request run.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.api import ExperimentSpec, run

from _helpers import emit, run_once

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_engine_throughput.json"

#: Fixed scenarios tracked release-over-release.  Decode-dominated on
#: purpose: the fast engine's win scales with output length (scalar work is
#: O(N * K) in generated tokens, fast work is O(event points)).
SCENARIOS = {
    "decode_heavy_poisson_2k": {
        "num_requests": 2_000,
        "output_tokens": 512,
    },
}


def _scenario_spec(num_requests: int, output_tokens: int, mode: str) -> ExperimentSpec:
    return ExperimentSpec.from_dict(
        {
            "name": "bench-engine-throughput",
            "model": {"name": "LLM-7B-32K", "context_window": 2048},
            "system": {"kind": "xpu-only"},
            "allocator": {"mode": "static"},
            "engine": {"mode": mode},
            "admission": {"policy": "fcfs", "max_batch_size": 32},
            "trace": {
                "source": "synthetic",
                "num_requests": num_requests,
                "prompt_tokens": 256,
                "output_tokens": output_tokens,
                "arrival": "poisson",
                "rate_rps": 800.0,
            },
            "seed": 0,
            "step_stride": 1,
        }
    )


def _measure(spec: ExperimentSpec):
    start = time.perf_counter()
    report = run(spec)
    return report, time.perf_counter() - start


def _comparable(report) -> dict:
    payload = report.to_dict()
    for key in ("spec", "spec_hash", "engine_mode"):
        payload.pop(key, None)
    return payload


def test_bench_engine_throughput_trend(benchmark):
    def evaluate():
        results = {}
        for name, scenario in SCENARIOS.items():
            scalar_spec = _scenario_spec(mode="scalar", **scenario)
            fast_spec = _scenario_spec(mode="fast", **scenario)
            scalar_report, scalar_wall = _measure(scalar_spec)
            fast_report, fast_wall = _measure(fast_spec)
            assert _comparable(scalar_report) == _comparable(fast_report), name
            results[name] = {
                "spec_hash": scalar_spec.spec_hash,
                "num_requests": scenario["num_requests"],
                "scalar_requests_per_s": scenario["num_requests"] / scalar_wall,
                "fast_requests_per_s": scenario["num_requests"] / fast_wall,
                "speedup": scalar_wall / max(fast_wall, 1e-9),
            }
        return results

    results = run_once(benchmark, evaluate)
    BENCH_JSON.write_text(json.dumps({"scenarios": results}, indent=2) + "\n")
    lines = [
        f"{name}: scalar {row['scalar_requests_per_s']:.0f} req/s, "
        f"fast {row['fast_requests_per_s']:.0f} req/s "
        f"(speedup {row['speedup']:.1f}x, spec {row['spec_hash']})"
        for name, row in results.items()
    ]
    emit("engine throughput trend (scalar vs fast)", "\n".join(lines))
    for row in results.values():
        assert row["speedup"] > 1.0


@pytest.mark.slow
def test_bench_fast_engine_100k_speedup(benchmark):
    def evaluate():
        scalar_report, scalar_wall = _measure(
            _scenario_spec(num_requests=100_000, output_tokens=1024, mode="scalar")
        )
        fast_report, fast_wall = _measure(
            _scenario_spec(num_requests=100_000, output_tokens=1024, mode="fast")
        )
        assert _comparable(scalar_report) == _comparable(fast_report)
        return scalar_wall, fast_wall

    scalar_wall, fast_wall = run_once(benchmark, evaluate)
    speedup = scalar_wall / max(fast_wall, 1e-9)
    emit(
        "fast engine, 100k-request Poisson trace",
        f"scalar {scalar_wall:.1f}s, fast {fast_wall:.1f}s (speedup {speedup:.1f}x)",
    )
    assert speedup >= 20.0


@pytest.mark.slow
def test_bench_fast_engine_million_requests(benchmark):
    def evaluate():
        return _measure(_scenario_spec(num_requests=1_000_000, output_tokens=256, mode="fast"))

    report, wall = run_once(benchmark, evaluate)
    emit(
        "fast engine, 10^6-request Poisson trace",
        f"completed in {wall:.1f}s "
        f"({report.requests_served} served, {report.requests_dropped} dropped)",
    )
    assert report.requests_served + report.requests_dropped == 1_000_000
    assert report.requests_served > 0
