"""Fig. 4 reproduction: PIM utilisation under short (4K) vs long (32K) context.

The paper shows CENT's MAC utilisation dropping by ~48% when moving from 4K
to 32K contexts (batch size shrinks as the KV cache grows) and PIMphony's
techniques restoring it.
"""

from benchmarks._helpers import emit, run_once
from repro.analysis.reporting import format_table
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import get_model
from repro.models.kv_cache import max_batch_for_capacity
from repro.pim.config import cent_module_config
from repro.system.layers import module_attention_time


def utilisation_for(context: int, config: PIMphonyConfig, capacity_bytes: int):
    """Channel utilisation of one module at the batch the capacity allows."""
    model = get_model("LLM-7B-128K")
    module = cent_module_config()
    batch = max(1, max_batch_for_capacity(model, capacity_bytes, context))
    per_module_batch = max(1, batch // 8)
    _, utilization, _ = module_attention_time(
        context_lengths=[context] * per_module_batch,
        kv_heads_per_module=model.num_kv_heads // 8,
        group_size=model.gqa_group_size,
        head_dim=model.head_dim,
        module=module,
        config=config,
    )
    return batch, utilization


def build_fig4():
    capacity = 128 * 1024**3
    rows = []
    for context in (4096, 32 * 1024):
        for config in PIMphonyConfig.incremental_sweep():
            batch, utilization = utilisation_for(context, config, capacity)
            rows.append([f"{context // 1024}K", config.label, batch, utilization])
    return rows


def test_fig04_pim_utilization_short_vs_long_context(benchmark):
    rows = run_once(benchmark, build_fig4)
    emit(
        "Fig. 4: PIM channel utilisation, 4K vs 32K context (LLM-7B-GQA, CENT-class module)",
        format_table(["context", "config", "system batch", "channel utilisation"], rows),
    )
    by_key = {(row[0], row[1]): row[3] for row in rows}
    # Baseline utilisation degrades substantially from 4K to 32K ...
    assert by_key[("32K", "baseline")] < by_key[("4K", "baseline")]
    # ... while TCP keeps every channel busy at long context.
    assert by_key[("32K", "TCP")] > 0.95
    assert by_key[("32K", "TCP+DCS+DPA")] > 2 * by_key[("32K", "baseline")]
