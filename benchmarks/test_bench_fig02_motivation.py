"""Fig. 2 reproduction: compute intensity and memory footprint of decoding."""

from benchmarks._helpers import emit, run_once
from repro.analysis.reporting import format_table
from repro.models.footprint import A100_CAPACITY_BYTES, memory_footprint
from repro.models.llm import get_model
from repro.models.roofline import decode_compute_intensity_sweep

CONTEXTS = [1024, 4096, 16 * 1024, 32 * 1024, 64 * 1024, 128 * 1024]
BATCHES = [1, 4, 16, 64]


def build_fig2():
    model = get_model("LLM-7B-128K")
    intensity = decode_compute_intensity_sweep(model, CONTEXTS, batch_size=32)
    footprint_grid = [
        [context, batch, memory_footprint(model, context, batch).total_gib]
        for context in CONTEXTS
        for batch in BATCHES
    ]
    return intensity, footprint_grid


def test_fig02_compute_intensity_and_footprint(benchmark):
    intensity, footprint_grid = run_once(benchmark, build_fig2)

    emit(
        "Fig. 2(a): compute intensity (FLOPs/Byte) vs context length (LLM-7B GQA, batch 32)",
        format_table(
            ["context", "FLOPs/Byte", "attention byte share"],
            [[p.context_length, p.compute_intensity, p.attention_byte_fraction] for p in intensity],
        ),
    )
    a100_line = A100_CAPACITY_BYTES / 1024**3
    emit(
        f"Fig. 2(b): memory footprint (GiB) vs context and batch (A100 line = {a100_line:.0f} GiB)",
        format_table(
            ["context", "batch", "footprint GiB", "exceeds A100"],
            [[c, b, g, "yes" if g > a100_line else "no"] for c, b, g in footprint_grid],
        ),
    )

    # Shape assertions: intensity collapses with context; footprint crosses
    # the A100 capacity line within the plotted grid.
    intensities = [p.compute_intensity for p in intensity]
    assert intensities[0] > 2 * intensities[-1]
    gibs = [g for _, _, g in footprint_grid]
    assert min(gibs) < a100_line < max(gibs)
