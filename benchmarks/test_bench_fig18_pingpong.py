"""Fig. 18 reproduction: compute utilisation, ping-pong buffering vs DCS."""

from benchmarks._helpers import emit, run_once
from repro.analysis.reporting import format_table
from repro.models.llm import get_model
from repro.pim.config import cent_module_config
from repro.pim.kernels import attention_head_cycles

TOKENS_PER_CHANNEL = 8 * 1024
GROUPS = [("MHA", 1), ("GQA g=2", 2), ("GQA g=4", 4), ("GQA g=8", 8)]


def build_fig18():
    model = get_model("LLM-7B-128K")
    module = cent_module_config()
    rows = []
    for label, group in GROUPS:
        pingpong = attention_head_cycles(
            TOKENS_PER_CHANNEL, model.head_dim, module.channel, module.timing,
            "pingpong", group_size=group, row_reuse=True,
        )
        dcs = attention_head_cycles(
            TOKENS_PER_CHANNEL, model.head_dim, module.channel, module.timing,
            "dcs", group_size=group, row_reuse=True,
        )
        rows.append(
            [
                label,
                pingpong.mac_utilization,
                dcs.mac_utilization,
                dcs.mac_utilization / pingpong.mac_utilization,
                pingpong.total / dcs.total,
            ]
        )
    return rows


def test_fig18_dcs_vs_pingpong_utilization(benchmark):
    rows = run_once(benchmark, build_fig18)
    emit(
        "Fig. 18: attention compute utilisation, ping-pong buffering vs DCS "
        "(paper: DCS up to 1.4x higher)",
        format_table(
            ["attention", "ping-pong util", "DCS util", "util ratio", "latency speedup"], rows
        ),
    )
    for row in rows:
        assert row[2] > row[1]  # DCS always at least matches ping-pong.
    ratios = [row[3] for row in rows]
    assert max(ratios) > 1.3  # the paper's up-to-1.4x claim.
    # The GQA row-reuse configurations widen the gap relative to plain MHA.
    assert max(ratios[1:]) >= ratios[0]
