"""Fig. 8 reproduction: latency breakdown of static scheduling across GEMV sizes."""

from benchmarks._helpers import emit, run_once
from repro.analysis.breakdown import breakdown_fractions
from repro.analysis.reporting import format_table
from repro.pim.config import PIMChannelConfig
from repro.pim.kernels import fc_gemv_cycles
from repro.pim.timing import aimx_timing

DIMENSIONS = [128, 256, 512, 1024, 2048, 4096]


def build_fig8():
    channel = PIMChannelConfig()
    timing = aimx_timing()
    rows = []
    for dimension in DIMENSIONS:
        breakdown = fc_gemv_cycles(dimension, dimension, channel, timing, policy="static")
        fractions = breakdown_fractions(breakdown)
        rows.append(
            [
                dimension,
                breakdown.total,
                fractions["mac"],
                fractions["dt_gbuf"] + fractions["dt_outreg"],
                fractions["act_pre"],
                fractions["refresh"],
                fractions["pipeline_penalty"],
            ]
        )
    return rows


def test_fig08_latency_breakdown_vs_matrix_dimension(benchmark):
    rows = run_once(benchmark, build_fig8)
    emit(
        "Fig. 8: static-scheduling latency breakdown vs matrix dimension "
        "(paper: MAC utilisation ~15% at d=128)",
        format_table(
            ["dim", "cycles", "MAC", "DT (GBuf+OutReg)", "ACT/PRE", "REF", "pipeline penalty"],
            rows,
        ),
    )
    utilisation = {row[0]: row[2] for row in rows}
    # Small, attention-sized GEMVs are dominated by I/O and stalls ...
    assert utilisation[128] < 0.3
    # ... while large FC-sized GEMVs keep the MAC pipeline mostly busy.
    assert utilisation[4096] > 0.45
    assert utilisation[4096] > 1.5 * utilisation[128]
    # I/O + stall share shrinks monotonically as the dimension grows.
    io_and_stall = [row[3] + row[6] for row in rows]
    assert io_and_stall[0] > io_and_stall[-1]
