"""Percentile-batching micro-benchmark: merged-fleet stats cost one sort.

Not a paper figure: regression coverage for the ``LatencyStats`` percentile
fix.  ``from_records`` computes each metric family's p50/p95/p99 from a
single ``np.percentile`` call, so the merged-fleet stats pass costs
O(n log n) total rather than one sort per percentile, and stays bit-identical
to the one-at-a-time ``percentile`` calls it replaced.
"""

from __future__ import annotations

import random
import time

from repro.serving import LatencyStats, RequestRecord, percentile

from _helpers import emit, run_once


def _records(count: int, seed: int = 0) -> list[RequestRecord]:
    rng = random.Random(seed)
    records = []
    for request_id in range(count):
        arrival = rng.uniform(0.0, 50.0)
        first = arrival + rng.uniform(0.01, 2.0)
        finish = first + rng.uniform(0.1, 20.0)
        records.append(
            RequestRecord(
                request_id=request_id,
                prompt_tokens=256,
                output_tokens=64,
                arrival_s=arrival,
                admitted_s=arrival,
                first_token_s=first,
                finish_s=finish,
            )
        )
    return records


def _time_stats(records: list[RequestRecord]) -> float:
    start = time.perf_counter()
    LatencyStats.from_records(records)
    return time.perf_counter() - start


def test_bench_merged_fleet_percentiles(benchmark):
    def evaluate():
        base = 50_000
        small = _records(base)
        large = _records(4 * base)
        # Warm-up evens out allocator/import noise before the timed pair.
        _time_stats(small)
        small_wall = min(_time_stats(small) for _ in range(3))
        large_wall = min(_time_stats(large) for _ in range(3))
        stats = LatencyStats.from_records(large)
        ttfts = [record.ttft_s for record in large]
        return small_wall, large_wall, stats, ttfts

    small_wall, large_wall, stats, ttfts = run_once(benchmark, evaluate)
    growth = large_wall / max(small_wall, 1e-9)
    emit(
        "merged-fleet percentile cost (50k -> 200k records)",
        f"50k: {small_wall * 1e3:.1f}ms, 200k: {large_wall * 1e3:.1f}ms "
        f"(growth {growth:.1f}x for 4x the records)",
    )
    # O(n log n) predicts ~4.4x for 4x the records; allow generous CI noise
    # but stay far below the ~16x an accidentally quadratic pass would show.
    assert growth < 12.0
    # Batching must not move the numbers: same values as one-at-a-time calls.
    assert stats.ttft_p50_s == percentile(ttfts, 0.50)
    assert stats.ttft_p95_s == percentile(ttfts, 0.95)
    assert stats.ttft_p99_s == percentile(ttfts, 0.99)
