"""Fig. 13 reproduction: PIM-only (CENT) throughput with incremental PIMphony.

Paper setting: 7B models on 8 modules (128GB), 72B models on 32 modules
(512GB); non-GQA models evaluated on LongBench tasks, GQA models on LV-Eval
tasks; each bar adds TCP, then DCS, then DPA.
"""

from benchmarks._helpers import emit, run_once, serve_workload
from repro.analysis.reporting import format_table
from repro.baselines.cent import cent_system_config, default_module_count
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import get_model
from repro.system.parallelism import enumerate_plans

WORKLOADS = [
    ("LLM-7B-32K", "qmsum", 24, 32),
    ("LLM-7B-32K", "musique", 24, 32),
    ("LLM-7B-128K", "multifieldqa", 16, 24),
    ("LLM-7B-128K", "loogle-sd", 16, 24),
    ("LLM-72B-32K", "qmsum", 12, 16),
    ("LLM-72B-128K", "multifieldqa", 8, 16),
]


def _best_throughput(model, dataset, config, requests, outputs):
    """Best throughput across (TP, PP) plans -- the paper's 'optimal TP/PP'."""
    modules = default_module_count(model)
    best = 0.0
    for plan in enumerate_plans(modules, model):
        result = serve_workload(
            cent_system_config,
            model,
            dataset,
            config,
            num_requests=requests,
            output_tokens=outputs,
            step_stride=8,
            num_modules=modules,
            plan=plan,
        )
        best = max(best, result.throughput_tokens_per_s)
    return best


def build_fig13():
    rows = []
    speedups = {}
    for model_name, dataset, requests, outputs in WORKLOADS:
        model = get_model(model_name)
        throughputs = {}
        for config in PIMphonyConfig.incremental_sweep():
            throughputs[config.label] = _best_throughput(
                model, dataset, config, requests, outputs
            )
        speedup = throughputs["TCP+DCS+DPA"] / throughputs["baseline"]
        speedups[(model_name, dataset)] = speedup
        rows.append(
            [
                model_name,
                dataset,
                throughputs["baseline"],
                throughputs["TCP"],
                throughputs["TCP+DCS"],
                throughputs["TCP+DCS+DPA"],
                speedup,
            ]
        )
    return rows, speedups


def test_fig13_pim_only_throughput(benchmark):
    rows, speedups = run_once(benchmark, build_fig13)
    emit(
        "Fig. 13: PIM-only (CENT-class) decode throughput [tokens/s], incremental PIMphony",
        format_table(
            ["model", "dataset", "baseline", "+TCP", "+TCP+DCS", "+TCP+DCS+DPA", "total speedup"],
            rows,
        ),
    )
    # Every workload improves substantially; TCP and DCS never hurt.  DPA's
    # contribution on the PIM-only system can be neutral (attention work per
    # token does not shrink with batch size), so it is only required not to
    # regress materially.
    for row in rows:
        assert row[2] <= row[3] * 1.001 <= row[4] * 1.002
        assert row[5] >= 0.85 * row[4]
        assert row[6] > 1.5
    # GQA / LV-Eval (longer-context) workloads gain more than LongBench ones,
    # the paper's headline trend.
    longbench = speedups[("LLM-7B-32K", "qmsum")]
    lveval = speedups[("LLM-7B-128K", "multifieldqa")]
    assert lveval > longbench
