"""Fig. 14 reproduction: xPU+PIM (NeuPIMs) throughput with incremental PIMphony.

Paper setting: 7B models on 4 modules (128GB), 72B models on 16 modules
(512GB); FC layers run on the per-module matrix units while PIM executes
attention.
"""

from benchmarks._helpers import emit, run_once, serve_workload
from repro.analysis.reporting import format_table
from repro.baselines.neupims import default_module_count, neupims_system_config
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import get_model
from repro.system.parallelism import enumerate_plans

WORKLOADS = [
    ("LLM-7B-32K", "qmsum", 24, 32),
    ("LLM-7B-32K", "musique", 24, 32),
    ("LLM-7B-128K", "multifieldqa", 16, 24),
    ("LLM-7B-128K", "loogle-sd", 16, 24),
    ("LLM-72B-32K", "qmsum", 12, 16),
    ("LLM-72B-128K", "multifieldqa", 8, 16),
]


def _best_throughput(model, dataset, config, requests, outputs):
    """Best throughput across (TP, PP) plans -- the paper's 'optimal TP/PP'."""
    modules = default_module_count(model)
    best = 0.0
    for plan in enumerate_plans(modules, model):
        result = serve_workload(
            neupims_system_config,
            model,
            dataset,
            config,
            num_requests=requests,
            output_tokens=outputs,
            step_stride=8,
            num_modules=modules,
            plan=plan,
        )
        best = max(best, result.throughput_tokens_per_s)
    return best


def build_fig14():
    rows = []
    for model_name, dataset, requests, outputs in WORKLOADS:
        model = get_model(model_name)
        throughputs = {}
        for config in PIMphonyConfig.incremental_sweep():
            throughputs[config.label] = _best_throughput(
                model, dataset, config, requests, outputs
            )
        rows.append(
            [
                model_name,
                dataset,
                throughputs["baseline"],
                throughputs["TCP"],
                throughputs["TCP+DCS"],
                throughputs["TCP+DCS+DPA"],
                throughputs["TCP+DCS+DPA"] / throughputs["baseline"],
            ]
        )
    return rows


def test_fig14_xpu_pim_throughput(benchmark):
    rows = run_once(benchmark, build_fig14)
    emit(
        "Fig. 14: xPU+PIM (NeuPIMs-class) decode throughput [tokens/s], incremental PIMphony",
        format_table(
            ["model", "dataset", "baseline", "+TCP", "+TCP+DCS", "+TCP+DCS+DPA", "total speedup"],
            rows,
        ),
    )
    for row in rows:
        # Techniques never hurt and the full stack always improves throughput.
        assert row[2] <= row[3] * 1.001 <= row[4] * 1.002 <= row[5] * 1.003
        assert row[6] > 1.1
    # Long-context GQA workloads benefit most (PIM-side execution dominates).
    by_workload = {(row[0], row[1]): row[6] for row in rows}
    assert by_workload[("LLM-7B-128K", "multifieldqa")] > by_workload[("LLM-7B-32K", "qmsum")]
