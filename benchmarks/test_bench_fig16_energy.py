"""Fig. 16 reproduction: energy breakdown of CENT vs CENT+PIMphony."""

from benchmarks._helpers import emit, run_once, serve_workload
from repro.analysis.energy_report import serving_energy
from repro.analysis.reporting import format_table
from repro.baselines.cent import cent_system_config
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import get_model
from repro.pim.energy import EnergyModel
from repro.pim.timing import aimx_timing

CASES = [
    ("LLM-7B-32K", "qmsum", 16),
    ("LLM-7B-128K", "multifieldqa", 12),
    ("LLM-72B-32K", "qmsum", 8),
]


def build_fig16():
    timing = aimx_timing()
    energy_model = EnergyModel()
    rows = []
    summaries = {}
    for model_name, dataset, requests in CASES:
        model = get_model(model_name)
        for config in (PIMphonyConfig.baseline(), PIMphonyConfig.full()):
            result = serve_workload(
                cent_system_config,
                model,
                dataset,
                config,
                num_requests=requests,
                output_tokens=16,
                step_stride=8,
            )
            energy = serving_energy(result, timing, energy_model)
            attention = energy["attention"]
            total = attention.total + energy["fc"].total
            rows.append(
                [
                    model_name,
                    dataset,
                    config.label,
                    total,
                    attention.total,
                    attention.fraction("mac"),
                    attention.fraction("io"),
                    attention.fraction("background"),
                    attention.fraction("else"),
                ]
            )
            summaries[(model_name, config.label)] = attention
    return rows, summaries


def test_fig16_energy_breakdown(benchmark):
    rows, summaries = run_once(benchmark, build_fig16)
    emit(
        "Fig. 16: energy of CENT vs CENT+PIMphony "
        "(attention-side fractions: MAC / I/O / background / else)",
        format_table(
            ["model", "dataset", "config", "total J", "attention J", "MAC", "I/O", "background", "else"],
            rows,
        ),
    )
    for model_name, _, _ in CASES:
        baseline = summaries[(model_name, "baseline")]
        pimphony = summaries[(model_name, "TCP+DCS+DPA")]
        # The baseline's attention energy is dominated by runtime-proportional
        # background power (the paper reports ~71%) ...
        assert baseline.fraction("background") > 0.5
        # ... and PIMphony cuts attention energy by shrinking the runtime.
        assert pimphony.total < baseline.total
        assert pimphony.fraction("background") < baseline.fraction("background")
