"""Gate BENCH_engine_throughput.json against the committed baseline.

Usage::

    python benchmarks/check_bench_throughput.py \
        [BENCH_engine_throughput.json] [benchmarks/baselines/BENCH_engine_throughput.json]

Run ``pytest benchmarks/test_bench_fast_engine.py -m "not slow"`` first; it
writes the current ``BENCH_engine_throughput.json`` at the repo root.  The
check fails when a scenario's measured speedup regresses by more than 30%
versus the baseline, when a scenario disappears, or when a spec hash no
longer matches (the scenario definition changed, so the numbers are not
comparable -- regenerate the baseline by copying the fresh file over
``benchmarks/baselines/`` and committing it).

Absolute requests/s are recorded for the trend but not gated: they track the
host machine, while the scalar-vs-fast speedup on the same host does not.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: A scenario may lose at most this fraction of its baseline speedup.
MAX_REGRESSION = 0.30

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_CURRENT = REPO_ROOT / "BENCH_engine_throughput.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "BENCH_engine_throughput.json"


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())["scenarios"]
    except FileNotFoundError:
        raise SystemExit(  # noqa: B904 - the message, not the traceback, is the UX

            f"error: {path} not found -- run "
            "`pytest benchmarks/test_bench_fast_engine.py -m \"not slow\"` first"
        )


def check(current_path: Path, baseline_path: Path) -> int:
    current = _load(current_path)
    baseline = _load(baseline_path)
    failures = []
    for name, expected in baseline.items():
        measured = current.get(name)
        if measured is None:
            failures.append(f"{name}: missing from {current_path}")
            continue
        if measured["spec_hash"] != expected["spec_hash"]:
            failures.append(
                f"{name}: spec hash changed "
                f"({expected['spec_hash']} -> {measured['spec_hash']}); the scenario "
                f"definition moved -- regenerate and commit {baseline_path}"
            )
            continue
        floor = expected["speedup"] * (1.0 - MAX_REGRESSION)
        status = "ok" if measured["speedup"] >= floor else "REGRESSION"
        print(
            f"{name}: speedup {measured['speedup']:.1f}x "
            f"(baseline {expected['speedup']:.1f}x, floor {floor:.1f}x) {status}"
        )
        if measured["speedup"] < floor:
            failures.append(
                f"{name}: speedup {measured['speedup']:.1f}x fell below "
                f"{floor:.1f}x (baseline {expected['speedup']:.1f}x - {MAX_REGRESSION:.0%})"
            )
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    current = Path(argv[1]) if len(argv) > 1 else DEFAULT_CURRENT
    baseline = Path(argv[2]) if len(argv) > 2 else DEFAULT_BASELINE
    return check(current, baseline)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
