"""Fig. 15 reproduction: throughput across (TP, PP) parallelism settings."""

from benchmarks._helpers import emit, run_once, serve_workload
from repro.analysis.reporting import format_table
from repro.baselines.cent import cent_system_config
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import get_model
from repro.system.parallelism import ParallelismPlan

PLANS = [ParallelismPlan(8, 1), ParallelismPlan(4, 2), ParallelismPlan(2, 4), ParallelismPlan(1, 8)]
CASES = [("LLM-7B-32K", "qmsum"), ("LLM-7B-128K", "multifieldqa")]


def build_fig15():
    rows = []
    for model_name, dataset in CASES:
        model = get_model(model_name)
        for plan in PLANS:
            for config in (PIMphonyConfig.baseline(), PIMphonyConfig.full()):
                result = serve_workload(
                    cent_system_config,
                    model,
                    dataset,
                    config,
                    num_requests=16,
                    output_tokens=24,
                    step_stride=8,
                    num_modules=plan.num_modules,
                    plan=plan,
                )
                rows.append(
                    [model_name, dataset, str(plan), config.label, result.throughput_tokens_per_s]
                )
    return rows


def test_fig15_tensor_vs_pipeline_parallelism(benchmark):
    rows = run_once(benchmark, build_fig15)
    emit(
        "Fig. 15: throughput [tokens/s] across (TP, PP) settings on the PIM-only system",
        format_table(["model", "dataset", "plan", "config", "tokens/s"], rows),
    )
    by_key = {(row[0], row[2], row[3]): row[4] for row in rows}
    for model_name, _ in CASES:
        for plan in PLANS:
            # PIMphony improves every parallelism configuration.
            assert (
                by_key[(model_name, str(plan), "TCP+DCS+DPA")]
                >= by_key[(model_name, str(plan), "baseline")]
            )
        # TCP/DCS/DPA most strongly enhance tensor-parallel operation (the
        # paper's observation that TCP mitigates the channel underutilisation
        # TP suffers from under head-first partitioning).
        tp_plan = str(PLANS[0])
        tp_speedup = (
            by_key[(model_name, tp_plan, "TCP+DCS+DPA")]
            / by_key[(model_name, tp_plan, "baseline")]
        )
        assert tp_speedup > 1.3
        # With PIMphony the best configuration improves over the best baseline.
        baseline_series = [by_key[(model_name, str(plan), "baseline")] for plan in PLANS]
        pimphony_series = [by_key[(model_name, str(plan), "TCP+DCS+DPA")] for plan in PLANS]
        assert max(pimphony_series) > max(baseline_series)
