"""Disaggregation benchmark and the BENCH_disagg_tpot.json trend.

Not a paper figure: tracks the prefill/decode disaggregation win on the
shipped prompt-heavy workload (``examples/specs/disagg_prompt_heavy.json``)
release-over-release.  At equal total hardware (4 replicas either way) the
two-pool topology must beat the colocated fleet on decode TPOT p95 --
dedicated prefill replicas keep chunked prompt processing out of the decode
engines -- while honestly charging every KV handoff through the modelled
point-to-point link.  CI uploads ``BENCH_disagg_tpot.json`` as an artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.api import ExperimentSpec, run
from repro.api.spec import apply_override

from _helpers import emit, run_once

REPO_ROOT = Path(__file__).resolve().parents[1]
SPEC_PATH = REPO_ROOT / "examples" / "specs" / "disagg_prompt_heavy.json"
BENCH_JSON = REPO_ROOT / "BENCH_disagg_tpot.json"


def _specs() -> tuple[ExperimentSpec, ExperimentSpec]:
    data = json.loads(SPEC_PATH.read_text())
    disagg = ExperimentSpec.from_dict(data).validate()
    colocated_data = json.loads(json.dumps(data))
    apply_override(colocated_data, "router.topology", "colocated")
    apply_override(colocated_data, "router.disagg", None)
    colocated = ExperimentSpec.from_dict(colocated_data).validate()
    return disagg, colocated


def test_bench_disagg_tpot_trend(benchmark):
    def evaluate():
        disagg_spec, colocated_spec = _specs()
        disagg = run(disagg_spec)
        colocated = run(colocated_spec)
        assert disagg.disagg is not None
        assert disagg.requests_served == colocated.requests_served
        return {
            "spec_hash": disagg_spec.spec_hash,
            "requests_served": disagg.requests_served,
            "colocated_tpot_p95_ms": colocated.latency.tpot_p95_s * 1e3,
            "disagg_tpot_p95_ms": disagg.latency.tpot_p95_s * 1e3,
            "tpot_p95_speedup": colocated.latency.tpot_p95_s / disagg.latency.tpot_p95_s,
            "colocated_ttft_p95_s": colocated.latency.ttft_p95_s,
            "disagg_ttft_p95_s": disagg.latency.ttft_p95_s,
            "kv_transfer_s": disagg.disagg.kv_transfer_s,
            "handoffs": disagg.disagg.handoffs,
            "prefill_pool_utilization": disagg.disagg.prefill_pool_utilization,
            "decode_pool_utilization": disagg.disagg.decode_pool_utilization,
        }

    row = run_once(benchmark, evaluate)
    BENCH_JSON.write_text(json.dumps({"disagg_prompt_heavy": row}, indent=2) + "\n")
    emit(
        "disaggregation TPOT trend (equal hardware)",
        f"colocated TPOT p95 {row['colocated_tpot_p95_ms']:.2f} ms, "
        f"disagg {row['disagg_tpot_p95_ms']:.2f} ms "
        f"(speedup {row['tpot_p95_speedup']:.2f}x, "
        f"{row['handoffs']} handoffs, {row['kv_transfer_s']:.2f} s KV transfer, "
        f"spec {row['spec_hash']})",
    )
    assert row["kv_transfer_s"] > 0
    assert row["handoffs"] == row["requests_served"]
    assert row["tpot_p95_speedup"] > 1.2
