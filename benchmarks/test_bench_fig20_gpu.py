"""Fig. 20 reproduction: throughput of PIMphony systems vs an A100 GPU baseline.

Memory-matched configurations as in the paper: two A100-80GB for the 7B
models, eight for the 72B models; the GPU baseline runs FlashDecoding and
PagedAttention.
"""

from benchmarks._helpers import emit, run_once, serve_workload
from repro.analysis.reporting import format_table
from repro.baselines.cent import cent_system_config
from repro.baselines.gpu import GPUSystemModel
from repro.baselines.neupims import neupims_system_config
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import get_model
from repro.system.serving import simulate_serving
from repro.workloads.datasets import get_dataset
from repro.workloads.traces import generate_trace

CASES = [
    ("LLM-7B-32K", "qmsum", 2, 20, 24),
    ("LLM-72B-32K", "qmsum", 8, 10, 16),
    ("LLM-7B-128K", "multifieldqa", 2, 12, 24),
    ("LLM-72B-128K", "multifieldqa", 8, 6, 16),
]


def build_fig20():
    rows = []
    for model_name, dataset, gpus, requests, outputs in CASES:
        model = get_model(model_name)
        trace = generate_trace(
            get_dataset(dataset), requests, seed=0,
            context_window=model.context_window, output_tokens=outputs,
        )
        gpu = simulate_serving(
            GPUSystemModel(model=model, num_gpus=gpus), trace, step_stride=8
        )
        pim_only = serve_workload(
            cent_system_config, model, dataset, PIMphonyConfig.full(),
            num_requests=requests, output_tokens=outputs, step_stride=8,
        )
        xpu_pim = serve_workload(
            neupims_system_config, model, dataset, PIMphonyConfig.full(),
            num_requests=requests, output_tokens=outputs, step_stride=8,
        )
        rows.append(
            [
                model_name,
                dataset,
                f"{gpus}xA100",
                gpu.throughput_tokens_per_s,
                pim_only.throughput_tokens_per_s,
                xpu_pim.throughput_tokens_per_s,
                pim_only.throughput_tokens_per_s / gpu.throughput_tokens_per_s,
                xpu_pim.throughput_tokens_per_s / gpu.throughput_tokens_per_s,
            ]
        )
    return rows


def test_fig20_gpu_comparison(benchmark):
    rows = run_once(benchmark, build_fig20)
    emit(
        "Fig. 20: decode throughput [tokens/s], GPU (FD+PA) vs PIMphony systems",
        format_table(
            ["model", "dataset", "GPU config", "GPU", "PIM-only+PIMphony", "xPU+PIM+PIMphony",
             "PIM-only speedup", "xPU+PIM speedup"],
            rows,
        ),
    )
    by_model = {row[0]: row for row in rows}
    # PIMphony-enabled systems beat the bandwidth-limited GPU baseline on the
    # memory-hungry non-GQA 7B model ...
    assert by_model["LLM-7B-32K"][6] > 1.0
    # ... and the GPU's compute advantage narrows the gap on the 72B models
    # (relative speedup decreases from 7B to 72B).
    assert by_model["LLM-72B-32K"][6] < by_model["LLM-7B-32K"][6]
    # GQA workloads remain competitive thanks to DCS hiding the extra
    # input-transfer traffic.
    assert by_model["LLM-7B-128K"][6] > 0.8
