"""Autoscaler goodput benchmark and the BENCH_autoscaler_goodput.json trend.

Not a paper figure: the production-day scenario
(``examples/specs/diurnal_autoscale.json``) run as a tracked trend.  Two
diurnal cycles at a 4x peak-to-trough swing with a replica failure at the
first peak are served by the reactive autoscaler and by a static fleet
provisioned for the peak.  The benchmark records TTFT-deadline attainment
and replica-hours for both (spec-hashed for comparability) into
``BENCH_autoscaler_goodput.json``, which CI uploads as an artifact and
gates against the committed baseline in ``benchmarks/baselines/`` via
``benchmarks/check_bench_autoscaler.py``.

The simulation is fully seeded, so unlike the wall-clock throughput
trend these numbers are machine-independent.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

from repro.api import run

from _helpers import emit, run_once

REPO_ROOT = Path(__file__).resolve().parents[1]
BENCH_JSON = REPO_ROOT / "BENCH_autoscaler_goodput.json"

sys.path.insert(0, str(REPO_ROOT / "examples"))
from production_day import load_specs, overall_ttft_attainment  # noqa: E402


def test_bench_autoscaler_goodput_trend(benchmark):
    def evaluate():
        return {label: run(spec) for label, spec in load_specs().items()}

    reports = run_once(benchmark, evaluate)
    autoscaled = reports["autoscaled"]
    static_peak = reports["static-peak"]
    attainment = overall_ttft_attainment(autoscaled)
    hours = autoscaled.fleet_timeline.replica_hours
    static_hours = static_peak.fleet_timeline.replica_hours

    assert attainment >= 0.95
    assert hours < static_hours

    scenario = {
        "spec_hash": autoscaled.spec_hash,
        "static_spec_hash": static_peak.spec_hash,
        "ttft_attainment": attainment,
        "goodput": autoscaled.goodput,
        "replica_hours": hours,
        "static_replica_hours": static_hours,
        "replica_hours_saved_fraction": 1.0 - hours / static_hours,
        "peak_replicas": autoscaled.fleet_timeline.peak_replicas,
        "scale_ups": autoscaled.fleet_timeline.scale_ups,
        "scale_downs": autoscaled.fleet_timeline.scale_downs,
        "failures": autoscaled.fleet_timeline.failures,
        "restarts": autoscaled.fleet_timeline.restarts,
        "kv_lost_tokens": autoscaled.fleet_timeline.kv_lost_tokens,
    }
    BENCH_JSON.write_text(
        json.dumps({"scenarios": {"diurnal_autoscale_day": scenario}}, indent=2) + "\n"
    )
    emit(
        "Autoscaler goodput (production day)",
        json.dumps(scenario, indent=2),
    )
