"""Gate BENCH_autoscaler_goodput.json against the committed baseline.

Usage::

    python benchmarks/check_bench_autoscaler.py \
        [BENCH_autoscaler_goodput.json] [benchmarks/baselines/BENCH_autoscaler_goodput.json]

Run ``pytest benchmarks/test_bench_autoscaler.py`` first; it writes the
current ``BENCH_autoscaler_goodput.json`` at the repo root.  The check
fails when a scenario's TTFT attainment drops below the hard SLO floor,
when its replica-hour savings versus the static-peak fleet regress by
more than 30%, when a scenario disappears, or when a spec hash no longer
matches (the scenario definition changed, so the numbers are not
comparable -- regenerate the baseline by copying the fresh file over
``benchmarks/baselines/`` and committing it).

Unlike the engine-throughput trend, every number here is produced by a
fully seeded simulation, so the gate is machine-independent.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

#: Hard floor on TTFT-deadline attainment: the scenario's SLO claim.
ATTAINMENT_FLOOR = 0.95

#: A scenario may lose at most this fraction of its baseline replica-hour
#: savings.
MAX_REGRESSION = 0.30

REPO_ROOT = Path(__file__).resolve().parents[1]
DEFAULT_CURRENT = REPO_ROOT / "BENCH_autoscaler_goodput.json"
DEFAULT_BASELINE = REPO_ROOT / "benchmarks" / "baselines" / "BENCH_autoscaler_goodput.json"


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())["scenarios"]
    except FileNotFoundError:
        raise SystemExit(  # noqa: B904 - the message, not the traceback, is the UX
            f"error: {path} not found -- run "
            "`pytest benchmarks/test_bench_autoscaler.py` first"
        )


def check(current_path: Path, baseline_path: Path) -> int:
    current = _load(current_path)
    baseline = _load(baseline_path)
    failures = []
    for name, expected in baseline.items():
        measured = current.get(name)
        if measured is None:
            failures.append(f"{name}: missing from {current_path}")
            continue
        if measured["spec_hash"] != expected["spec_hash"]:
            failures.append(
                f"{name}: spec hash changed "
                f"({expected['spec_hash']} -> {measured['spec_hash']}); the scenario "
                f"definition moved -- regenerate and commit {baseline_path}"
            )
            continue
        attainment = measured["ttft_attainment"]
        savings = measured["replica_hours_saved_fraction"]
        savings_floor = expected["replica_hours_saved_fraction"] * (1.0 - MAX_REGRESSION)
        ok = attainment >= ATTAINMENT_FLOOR and savings >= savings_floor
        print(
            f"{name}: TTFT attainment {attainment:.2%} (floor {ATTAINMENT_FLOOR:.0%}), "
            f"replica-hours saved {savings:.1%} "
            f"(baseline {expected['replica_hours_saved_fraction']:.1%}, "
            f"floor {savings_floor:.1%}) {'ok' if ok else 'REGRESSION'}"
        )
        if attainment < ATTAINMENT_FLOOR:
            failures.append(
                f"{name}: TTFT attainment {attainment:.2%} fell below the "
                f"{ATTAINMENT_FLOOR:.0%} SLO floor"
            )
        if savings < savings_floor:
            failures.append(
                f"{name}: replica-hour savings {savings:.1%} fell below "
                f"{savings_floor:.1%} (baseline "
                f"{expected['replica_hours_saved_fraction']:.1%} - {MAX_REGRESSION:.0%})"
            )
    for failure in failures:
        print(f"error: {failure}", file=sys.stderr)
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    current = Path(argv[1]) if len(argv) > 1 else DEFAULT_CURRENT
    baseline = Path(argv[2]) if len(argv) > 2 else DEFAULT_BASELINE
    return check(current, baseline)


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
