"""Fig. 17 reproduction: scalability with system capacity and context length.

(a) throughput vs capacity (128GB--1TB) at a 64K-context workload;
(b)/(c) throughput vs context length (4K--1M) on a fixed 512GB system for
the PIM-only (CENT) and xPU+PIM (NeuPIMs) deployments, baseline vs PIMphony.
"""

from benchmarks._helpers import emit, run_once
from repro.analysis.reporting import format_table
from repro.baselines.cent import cent_system_config
from repro.baselines.neupims import neupims_system_config
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import get_model
from repro.system.serving import simulate_serving
from repro.workloads.datasets import synthetic_dataset
from repro.workloads.traces import generate_trace

CAPACITY_SWEEP_GB = [128, 256, 512, 1024]
CONTEXT_SWEEP = [4 * 1024, 16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024]
MODULE_GB = {"cent": 16, "neupims": 32}


def _context_dataset(context: int):
    """A 3-sigma-spread context distribution centred on ``context``."""
    spread = max(64, context // 6)
    return synthetic_dataset(
        name=f"ctx-{context}",
        mean=float(context),
        std=float(spread),
        minimum=max(64, context - 3 * spread),
        maximum=context + 3 * spread,
        output_tokens=16,
    )


def _run(system_factory, model, num_modules, config, context, requests=12):
    dataset = _context_dataset(context)
    trace = generate_trace(dataset, requests, seed=0, context_window=model.context_window)
    system = system_factory(model, num_modules=num_modules, pimphony=config)
    return simulate_serving(system, trace, step_stride=8)


def build_fig17():
    model = get_model("LLM-7B-128K").with_context_window(2 * 1024 * 1024)
    capacity_rows = []
    for gigabytes in CAPACITY_SWEEP_GB:
        for name, factory in (("cent", cent_system_config), ("neupims", neupims_system_config)):
            modules = gigabytes // MODULE_GB[name]
            result = _run(factory, model, modules, PIMphonyConfig.full(), 64 * 1024)
            capacity_rows.append([name, gigabytes, result.throughput_tokens_per_s])

    context_rows = []
    speedups = {}
    for name, factory in (("cent", cent_system_config), ("neupims", neupims_system_config)):
        modules = 512 // MODULE_GB[name]
        for context in CONTEXT_SWEEP:
            requests = 12 if context <= 256 * 1024 else 4
            baseline = _run(factory, model, modules, PIMphonyConfig.baseline(), context, requests)
            pimphony = _run(factory, model, modules, PIMphonyConfig.full(), context, requests)
            speedup = (
                pimphony.throughput_tokens_per_s / baseline.throughput_tokens_per_s
                if baseline.throughput_tokens_per_s
                else float("inf")
            )
            speedups[(name, context)] = speedup
            context_rows.append(
                [
                    name,
                    context // 1024,
                    baseline.throughput_tokens_per_s,
                    pimphony.throughput_tokens_per_s,
                    speedup,
                    baseline.average_pim_utilization,
                    pimphony.average_pim_utilization,
                ]
            )
    return capacity_rows, context_rows, speedups


def test_fig17_scalability(benchmark):
    capacity_rows, context_rows, speedups = run_once(benchmark, build_fig17)
    emit(
        "Fig. 17(a): PIMphony throughput [tokens/s] vs system capacity at 64K context",
        format_table(["system", "capacity (GB)", "tokens/s"], capacity_rows),
    )
    emit(
        "Fig. 17(b,c): throughput vs context length on 512GB systems (baseline vs PIMphony)",
        format_table(
            ["system", "context (K)", "baseline tok/s", "PIMphony tok/s", "speedup",
             "baseline util", "PIMphony util"],
            context_rows,
        ),
    )
    # (a) throughput grows with capacity for both deployments.
    for name in ("cent", "neupims"):
        series = [row[2] for row in capacity_rows if row[0] == name]
        assert series[-1] > series[0]
    # (b) PIMphony's advantage widens with context length, and is largest on
    # the PIM-only system (the paper reports 46.6x at 1M vs 5x for xPU+PIM).
    assert speedups[("cent", 1024 * 1024)] > speedups[("cent", 4 * 1024)]
    assert speedups[("neupims", 1024 * 1024)] > 1.2
    assert speedups[("cent", 1024 * 1024)] > speedups[("neupims", 1024 * 1024)]
    # Even short contexts retain a gain (paper: ~2.1x at 256 tokens).
    assert speedups[("cent", 4 * 1024)] > 1.2
