"""Table I reproduction: LLM specifications and context windows."""

from benchmarks._helpers import emit, run_once
from repro.analysis.reporting import format_table
from repro.models.llm import get_model, list_models
from repro.models.workload import build_decode_workload


def build_table1():
    rows = []
    for name in list_models():
        model = get_model(name)
        rows.append(
            [
                model.name,
                model.num_layers,
                model.num_heads,
                model.head_dim,
                f"{model.d_model}/{model.ffn_dim}",
                "yes" if model.gqa_enabled else "no",
                model.gqa_group_size,
                model.context_window // 1024,
                round(model.param_count / 1e9, 1),
            ]
        )
    return rows


def test_table1_model_specifications(benchmark):
    rows = run_once(benchmark, build_table1)
    emit(
        "Table I: LLM specification and context window",
        format_table(
            ["model", "nl", "nh", "dh", "d_in/out", "GQA", "g", "CW (K tokens)", "params (B)"],
            rows,
        ),
    )
    # Shape checks against the paper's Table I.
    by_name = {row[0]: row for row in rows}
    assert by_name["LLM-7B-32K"][1:4] == [32, 32, 128]
    assert by_name["LLM-72B-128K"][1:4] == [80, 64, 128]
    assert by_name["LLM-72B-128K"][6] == 8

    # The decode workload builder consumes these configurations directly.
    workload = build_decode_workload(get_model("LLM-7B-32K"), [4096])
    assert workload.total_flops > 0
