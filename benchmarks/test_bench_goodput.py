"""SLO-tier goodput benchmark: priority-aware vs blind preemption.

Runs the shipped oversubscribed tiered scenario (18 requests growing to
768 tokens on one CENT module, ~1.5x KV oversubscription; every 4th
request premium with TTFT/TPOT deadlines, the rest best-effort) under
``evict-lru`` and ``evict-priority-lru`` and records per-tier goodput and
SLO attainment.  The tier-aware policy must buy strictly higher premium
goodput at equal load while best-effort keeps making progress.
"""

from benchmarks._helpers import emit, run_once
from repro.analysis.reporting import format_table
from repro.api import (
    ExperimentSpec,
    ModelSpec,
    PreemptionSpec,
    SystemSpec,
    TierSpec,
    TraceSpec,
    run,
)

POLICIES = ("evict-lru", "evict-priority-lru")


def tiered_pressure_spec(policy: str) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"bench-goodput-{policy}",
        model=ModelSpec(name="LLM-7B-32K"),
        system=SystemSpec(kind="pim-only", num_modules=1, pimphony="full"),
        preemption=PreemptionSpec(
            policy=policy, mode="swap", swap_bandwidth_gbps=64.0, starvation_limit=4
        ),
        trace=TraceSpec(
            source="synthetic", num_requests=18, prompt_tokens=256, output_tokens=512
        ),
        tiers=(
            TierSpec(
                name="premium",
                priority=5,
                share=0.25,
                ttft_deadline_s=0.5,
                tpot_deadline_s=0.035,
            ),
            TierSpec(name="best-effort"),
        ),
        seed=5,
        step_stride=8,
    )


def build_comparison():
    rows = []
    reports = {policy: run(tiered_pressure_spec(policy)) for policy in POLICIES}
    for policy, report in reports.items():
        premium = report.tier_report("premium")
        best_effort = report.tier_report("best-effort")
        rows.append(
            [
                policy,
                premium.goodput,
                premium.ttft_attainment,
                premium.tpot_attainment,
                premium.preemptions,
                best_effort.goodput,
                best_effort.preemptions,
                report.goodput,
                report.makespan_s,
            ]
        )
    blind = reports["evict-lru"]
    aware = reports["evict-priority-lru"]
    # Equal load, equal completed work either way.
    assert aware.requests_served == blind.requests_served == 18
    assert aware.total_output_tokens == blind.total_output_tokens
    # The headline property: tier-aware preemption buys strictly higher
    # premium goodput without zeroing out the best-effort class.
    assert aware.tier_report("premium").goodput > blind.tier_report("premium").goodput
    assert aware.tier_report("premium").preemptions == 0
    assert aware.tier_report("best-effort").goodput > 0.0
    return rows


def test_priority_preemption_buys_premium_goodput(benchmark):
    rows = run_once(benchmark, build_comparison)
    emit(
        "SLO tiers: premium vs best-effort goodput under 1.5x KV oversubscription "
        "(18 requests x 768 tokens on one CENT module, premium share 0.25)",
        format_table(
            [
                "policy",
                "premium goodput",
                "TTFT att",
                "TPOT att",
                "premium preempt",
                "BE goodput",
                "BE preempt",
                "all goodput",
                "makespan s",
            ],
            rows,
        ),
    )
