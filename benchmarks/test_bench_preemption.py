"""Capacity-pressure benchmark: lifecycle preemption vs up-front commit.

Sweeps oversubscription levels on a single CENT module and compares the
admit-to-completion contract (``preemption.policy="none"``) against
evict-LRU preemption.  The lifecycle contract must admit strictly more
concurrent requests and hold strictly higher allocator utilisation at
every capacity-constrained point, while completing the same work.
"""

from benchmarks._helpers import emit, run_once
from repro.analysis.reporting import format_table
from repro.api import (
    ExperimentSpec,
    ModelSpec,
    PreemptionSpec,
    SystemSpec,
    TraceSpec,
    run,
)

#: Requests sweeping the pressure from none (8 fit outright) to 2x.
REQUEST_COUNTS = (8, 12, 16)


def pressure_spec(num_requests: int, policy: str) -> ExperimentSpec:
    return ExperimentSpec(
        name=f"bench-preemption-{policy}-{num_requests}",
        model=ModelSpec(name="LLM-7B-32K"),
        system=SystemSpec(kind="pim-only", num_modules=1, pimphony="full"),
        preemption=PreemptionSpec(policy=policy, mode="swap", swap_bandwidth_gbps=64.0),
        trace=TraceSpec(
            source="synthetic", num_requests=num_requests,
            prompt_tokens=256, output_tokens=512,
        ),
        seed=5,
        step_stride=8,
    )


def build_sweep():
    rows = []
    for num_requests in REQUEST_COUNTS:
        baseline = run(pressure_spec(num_requests, "none"))
        lifecycle = run(pressure_spec(num_requests, "evict-lru"))
        rows.append(
            [
                num_requests,
                baseline.peak_batch_size,
                lifecycle.peak_batch_size,
                baseline.average_capacity_utilization,
                lifecycle.average_capacity_utilization,
                lifecycle.preemptions,
                lifecycle.requeue_delay_mean_s * 1e3,
                baseline.makespan_s,
                lifecycle.makespan_s,
            ]
        )
        # Same work either way.
        assert lifecycle.requests_served == baseline.requests_served == num_requests
        assert lifecycle.total_output_tokens == baseline.total_output_tokens
        if num_requests > 8:
            # Capacity-constrained points: incremental allocation admits
            # strictly more concurrent requests and packs the cache
            # strictly fuller than the up-front-commit baseline.
            assert lifecycle.peak_batch_size > baseline.peak_batch_size
            assert (
                lifecycle.average_capacity_utilization
                > baseline.average_capacity_utilization
            )
            assert lifecycle.preemptions > 0
    return rows


def test_preemption_raises_admissions_and_utilization(benchmark):
    rows = run_once(benchmark, build_sweep)
    emit(
        "KV lifecycle: evict-LRU preemption vs up-front commit on one CENT module "
        "(12 and 16 requests oversubscribe the 3072-chunk KV cache)",
        format_table(
            [
                "requests",
                "peak none",
                "peak lru",
                "util none",
                "util lru",
                "preempt",
                "requeue ms",
                "makespan none",
                "makespan lru",
            ],
            rows,
        ),
    )
