"""Fig. 9 reproduction: QK^T / SV latency breakdown with and without DCS.

The paper evaluates LLM-72B attention kernels under the row-reuse mapping:
static scheduling exposes the extra GBuf traffic the mapping causes, while
DCS overlaps it with MAC execution and realises the ACT/PRE savings.
"""

from benchmarks._helpers import emit, run_once
from repro.analysis.breakdown import normalize_breakdown
from repro.analysis.reporting import format_table
from repro.models.llm import get_model
from repro.pim.config import cent_module_config
from repro.pim.kernels import qkt_cycles, sv_cycles

TOKENS_PER_CHANNEL = 16 * 1024


def build_fig9():
    model = get_model("LLM-72B-128K")
    module = cent_module_config()
    channel, timing = module.channel, module.timing
    rows = []
    for kernel_name, kernel in (("QK^T", qkt_cycles), ("SV", sv_cycles)):
        baseline = kernel(
            TOKENS_PER_CHANNEL, model.head_dim, channel, timing, "static",
            group_size=model.gqa_group_size, row_reuse=True,
        )
        dcs = kernel(
            TOKENS_PER_CHANNEL, model.head_dim, channel, timing, "dcs",
            group_size=model.gqa_group_size, row_reuse=True,
        )
        for label, breakdown in (("static", baseline), ("DCS", dcs)):
            normalized = normalize_breakdown(breakdown, baseline.total)
            rows.append(
                [
                    kernel_name,
                    label,
                    breakdown.total,
                    normalized["mac"],
                    normalized["dt_gbuf"],
                    normalized["dt_outreg"],
                    normalized["act_pre"],
                    normalized["pipeline_penalty"],
                    baseline.total / breakdown.total,
                ]
            )
    return rows


def test_fig09_attention_breakdown_with_and_without_dcs(benchmark):
    rows = run_once(benchmark, build_fig9)
    emit(
        "Fig. 9: LLM-72B attention latency breakdown, row-reuse mapping "
        "(components normalised to the static bar)",
        format_table(
            ["kernel", "scheduler", "cycles", "MAC", "DT-GBuf", "DT-OutReg", "ACT/PRE", "stall", "speedup"],
            rows,
        ),
    )
    speedups = {(row[0], row[1]): row[8] for row in rows}
    assert speedups[("QK^T", "DCS")] > 1.3
    assert speedups[("SV", "DCS")] > 1.3
    # DCS removes most of the pipeline stall the static bar exhibits.
    stalls = {(row[0], row[1]): row[7] for row in rows}
    assert stalls[("QK^T", "DCS")] < stalls[("QK^T", "static")]
