"""Fig. 10(c) reproduction: instruction footprint, static encoding vs DPA."""

from benchmarks._helpers import emit, run_once
from repro.analysis.reporting import format_table
from repro.compiler.dpa_encoding import dpa_instruction_footprint, static_instruction_footprint
from repro.models.llm import get_model

CONTEXTS = [1024, 4096, 16 * 1024, 64 * 1024, 256 * 1024, 1024 * 1024]


def build_fig10():
    model = get_model("LLM-7B-128K")
    rows = []
    for context in CONTEXTS:
        static = static_instruction_footprint(context, kv_heads=model.num_kv_heads)
        dpa = dpa_instruction_footprint(context, kv_heads=model.num_kv_heads)
        rows.append([context, static / 1024, dpa / 1024, static / dpa])
    return rows


def test_fig10_instruction_footprint_vs_context(benchmark):
    rows = run_once(benchmark, build_fig10)
    emit(
        "Fig. 10(c): per-layer attention instruction footprint (KiB) vs context length",
        format_table(["context", "static (KiB)", "DPA (KiB)", "ratio"], rows),
    )
    # Static grows linearly with the context; DPA stays flat.
    assert rows[-1][1] / rows[0][1] > 500
    assert rows[-1][2] == rows[0][2]
    # At 1M tokens the gap is enormous (instruction buffer bloat).
    assert rows[-1][3] > 10_000
