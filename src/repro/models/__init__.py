"""LLM architectural configurations and decode-step workload models."""

from repro.models.footprint import MemoryFootprint, memory_footprint
from repro.models.kv_cache import kv_bytes_per_token, kv_cache_bytes, max_batch_for_capacity
from repro.models.llm import LLMConfig, get_model, list_models
from repro.models.roofline import compute_intensity, decode_compute_intensity_sweep
from repro.models.workload import (
    DecodeStepWorkload,
    Operator,
    OperatorKind,
    build_decode_workload,
)

__all__ = [
    "LLMConfig",
    "get_model",
    "list_models",
    "kv_bytes_per_token",
    "kv_cache_bytes",
    "max_batch_for_capacity",
    "Operator",
    "OperatorKind",
    "DecodeStepWorkload",
    "build_decode_workload",
    "compute_intensity",
    "decode_compute_intensity_sweep",
    "MemoryFootprint",
    "memory_footprint",
]
