"""LLM architectural configurations (paper Table I).

The paper evaluates four decoder-only transformer configurations:

* ``LLM-7B-32K``  -- Qwen1.5-7B-like,  no GQA, 32K context window.
* ``LLM-7B-128K`` -- Llama3.1-8B-like, GQA group size 4, 128K context window.
* ``LLM-72B-32K`` -- Qwen1.5-72B-like, no GQA, 32K context window.
* ``LLM-72B-128K``-- Llama3.1-70B-like, GQA group size 8, 128K context window.

Only the architectural shape matters for performance modelling, so the
configurations carry layer counts and dimensions, not weights.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LLMConfig:
    """Architectural description of a decoder-only transformer.

    Attributes:
        name: Human readable identifier, e.g. ``"LLM-7B-128K"``.
        num_layers: Number of transformer decoder layers (``nl``).
        num_heads: Number of query heads per layer (``nh``).
        head_dim: Per-head feature dimension (``dh``).
        d_model: Model (hidden) dimension, ``nh * dh``.
        ffn_dim: Feed-forward intermediate dimension.
        gqa_group_size: Number of query heads sharing one KV head.  ``1``
            means standard multi-head attention (no GQA).
        context_window: Maximum supported context length in tokens.
        dtype_bytes: Bytes per parameter / activation element (FP16 = 2).
        gated_ffn: Whether the FFN uses a gated (SwiGLU-style) structure
            with three weight matrices instead of two.
    """

    name: str
    num_layers: int
    num_heads: int
    head_dim: int
    d_model: int
    ffn_dim: int
    gqa_group_size: int
    context_window: int
    dtype_bytes: int = 2
    gated_ffn: bool = True

    def __post_init__(self) -> None:
        if self.num_layers <= 0 or self.num_heads <= 0 or self.head_dim <= 0:
            raise ValueError("layer/head/dim counts must be positive")
        if self.d_model != self.num_heads * self.head_dim:
            raise ValueError(
                f"d_model ({self.d_model}) must equal num_heads*head_dim "
                f"({self.num_heads * self.head_dim})"
            )
        if self.gqa_group_size < 1:
            raise ValueError("gqa_group_size must be >= 1")
        if self.num_heads % self.gqa_group_size != 0:
            raise ValueError("num_heads must be divisible by gqa_group_size")
        if self.context_window <= 0:
            raise ValueError("context_window must be positive")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")

    @property
    def gqa_enabled(self) -> bool:
        """Whether grouped-query attention is in use."""
        return self.gqa_group_size > 1

    @property
    def num_kv_heads(self) -> int:
        """Number of distinct key/value heads per layer."""
        return self.num_heads // self.gqa_group_size

    @property
    def kv_dim(self) -> int:
        """Total key (or value) vector width per token per layer."""
        return self.num_kv_heads * self.head_dim

    @property
    def kv_bytes_per_token_per_layer(self) -> int:
        """Bytes of K + V cache appended per token in one layer."""
        return 2 * self.kv_dim * self.dtype_bytes

    @property
    def kv_bytes_per_token(self) -> int:
        """Bytes of K + V cache appended per token across all layers."""
        return self.num_layers * self.kv_bytes_per_token_per_layer

    @property
    def attention_param_count(self) -> int:
        """Attention projection parameters per layer (Q, K, V, O)."""
        q_and_o = 2 * self.d_model * self.d_model
        k_and_v = 2 * self.d_model * self.kv_dim
        return q_and_o + k_and_v

    @property
    def ffn_param_count(self) -> int:
        """Feed-forward parameters per layer."""
        matrices = 3 if self.gated_ffn else 2
        return matrices * self.d_model * self.ffn_dim

    @property
    def param_count(self) -> int:
        """Total decoder parameter count (embeddings excluded)."""
        return self.num_layers * (self.attention_param_count + self.ffn_param_count)

    @property
    def param_bytes(self) -> int:
        """Total decoder parameter footprint in bytes."""
        return self.param_count * self.dtype_bytes

    def with_context_window(self, context_window: int) -> LLMConfig:
        """Return a copy of this config with a different context window."""
        return LLMConfig(
            name=self.name,
            num_layers=self.num_layers,
            num_heads=self.num_heads,
            head_dim=self.head_dim,
            d_model=self.d_model,
            ffn_dim=self.ffn_dim,
            gqa_group_size=self.gqa_group_size,
            context_window=context_window,
            dtype_bytes=self.dtype_bytes,
            gated_ffn=self.gated_ffn,
        )


_MODELS: dict[str, LLMConfig] = {}


def _register(config: LLMConfig) -> LLMConfig:
    _MODELS[config.name] = config
    return config


LLM_7B_32K = _register(
    LLMConfig(
        name="LLM-7B-32K",
        num_layers=32,
        num_heads=32,
        head_dim=128,
        d_model=4096,
        ffn_dim=12288,
        gqa_group_size=1,
        context_window=32 * 1024,
    )
)

LLM_7B_128K = _register(
    LLMConfig(
        name="LLM-7B-128K",
        num_layers=32,
        num_heads=32,
        head_dim=128,
        d_model=4096,
        ffn_dim=12288,
        gqa_group_size=4,
        context_window=128 * 1024,
    )
)

LLM_72B_32K = _register(
    LLMConfig(
        name="LLM-72B-32K",
        num_layers=80,
        num_heads=64,
        head_dim=128,
        d_model=8192,
        ffn_dim=24576,
        gqa_group_size=1,
        context_window=32 * 1024,
    )
)

LLM_72B_128K = _register(
    LLMConfig(
        name="LLM-72B-128K",
        num_layers=80,
        num_heads=64,
        head_dim=128,
        d_model=8192,
        ffn_dim=24576,
        gqa_group_size=8,
        context_window=128 * 1024,
    )
)


def list_models() -> list[str]:
    """Return the names of all registered model configurations."""
    return sorted(_MODELS)


def get_model(name: str) -> LLMConfig:
    """Look up a registered model configuration by name.

    Raises:
        KeyError: if ``name`` is not a registered model.
    """
    try:
        return _MODELS[name]
    except KeyError:
        known = ", ".join(list_models())
        raise KeyError(f"unknown model {name!r}; known models: {known}") from None
