"""KV-cache sizing helpers.

The KV cache stores one key and one value vector per token, per layer, per
KV head.  Its footprint grows linearly with both context length and batch
size and dominates long-context memory demand (paper Fig. 2(b)).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.models.llm import LLMConfig


def kv_bytes_per_token(model: LLMConfig) -> int:
    """Bytes of KV cache appended per generated/prefilled token."""
    return model.kv_bytes_per_token


def kv_cache_bytes(model: LLMConfig, context_length: int, batch_size: int = 1) -> int:
    """Total KV-cache footprint for ``batch_size`` requests at ``context_length``."""
    if context_length < 0:
        raise ValueError("context_length must be non-negative")
    if batch_size < 0:
        raise ValueError("batch_size must be non-negative")
    return model.kv_bytes_per_token * context_length * batch_size


def kv_cache_bytes_for_lengths(model: LLMConfig, context_lengths: Iterable[int]) -> int:
    """Total KV-cache footprint for a batch with per-request context lengths."""
    total = 0
    for length in context_lengths:
        if length < 0:
            raise ValueError("context lengths must be non-negative")
        total += model.kv_bytes_per_token * length
    return total


def max_batch_for_capacity(
    model: LLMConfig,
    capacity_bytes: int,
    context_length: int,
    reserve_params: bool = True,
) -> int:
    """Largest batch size whose KV cache fits in ``capacity_bytes``.

    Args:
        model: LLM configuration.
        capacity_bytes: Total memory capacity available.
        context_length: Context length reserved per request.
        reserve_params: If True, subtract the model parameter footprint from
            the capacity before sizing the KV cache (PIM-only systems hold
            both weights and KV cache in PIM memory).

    Returns:
        The maximum admissible batch size (possibly zero).
    """
    if capacity_bytes < 0:
        raise ValueError("capacity_bytes must be non-negative")
    available = capacity_bytes - (model.param_bytes if reserve_params else 0)
    if available <= 0:
        return 0
    per_request = kv_cache_bytes(model, context_length, batch_size=1)
    if per_request == 0:
        raise ValueError("context_length must be positive to size a batch")
    return available // per_request
