"""Compute-intensity analysis of long-context decoding (paper Fig. 2(a)).

As context length grows, attention (GEMV against the KV cache) dominates the
decode step and the aggregate compute intensity (FLOPs per byte) collapses,
making decoding memory-bandwidth bound.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.models.llm import LLMConfig
from repro.models.workload import build_decode_workload


def compute_intensity(model: LLMConfig, context_length: int, batch_size: int = 1) -> float:
    """FLOPs per byte of one decode step at the given context length."""
    workload = build_decode_workload(model, [context_length] * batch_size)
    return workload.compute_intensity


@dataclass(frozen=True)
class IntensityPoint:
    """One point of the compute-intensity sweep."""

    context_length: int
    batch_size: int
    flops: int
    bytes_moved: int
    compute_intensity: float
    attention_byte_fraction: float


def decode_compute_intensity_sweep(
    model: LLMConfig,
    context_lengths: Sequence[int],
    batch_size: int = 1,
) -> list[IntensityPoint]:
    """Sweep compute intensity across context lengths (Fig. 2(a))."""
    points = []
    for context in context_lengths:
        workload = build_decode_workload(model, [context] * batch_size)
        total_bytes = workload.total_bytes
        attention_fraction = workload.attention_bytes / total_bytes if total_bytes else 0.0
        points.append(
            IntensityPoint(
                context_length=context,
                batch_size=batch_size,
                flops=workload.total_flops,
                bytes_moved=total_bytes,
                compute_intensity=workload.compute_intensity,
                attention_byte_fraction=attention_fraction,
            )
        )
    return points
