"""Per-decode-step operator workload model.

During autoregressive decoding each request processes exactly one new token
per step.  The workload of a decode step therefore consists of matrix-vector
products against the model weights (the FC operators: QKV projection, output
projection and the FFN matrices) and matrix-vector products against the
request's KV cache (the attention operators ``QK^T`` and ``SV``).

Fully-connected operators can be batched into matrix-matrix products across
requests (the weight is shared), whereas attention operators are inherently
per-request because every request owns a distinct KV cache.  This asymmetry
is the source of the memory-bandwidth bottleneck analysed in the paper's
Fig. 2(a).
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.models.llm import LLMConfig


class OperatorKind(enum.Enum):
    """Classification of decode-step operators."""

    FC = "fc"
    ATTENTION_QKT = "qkt"
    ATTENTION_SV = "sv"
    SOFTMAX = "softmax"


@dataclass(frozen=True)
class Operator:
    """One operator instance within a decode step.

    Attributes:
        name: Human readable operator name, e.g. ``"layer0.qkt.head3"``.
        kind: Operator classification.
        in_dim: Reduction (input) dimension of the matrix-vector product.
        out_dim: Output dimension of the matrix-vector product.
        batch: Number of token-vectors processed together (requests sharing
            the same weights for FC operators; always 1 for attention).
        weight_bytes: Bytes of stationary operand (weights or KV cache slice)
            that must be read from memory.
        activation_bytes: Bytes of streaming operand (inputs + outputs).
        flops: Floating point operations (multiply-accumulate counted as 2).
        per_request: Whether the operator is instantiated per request
            (attention) or shared across the batch (FC).
    """

    name: str
    kind: OperatorKind
    in_dim: int
    out_dim: int
    batch: int
    weight_bytes: int
    activation_bytes: int
    flops: int
    per_request: bool

    @property
    def total_bytes(self) -> int:
        """Total bytes moved by the operator."""
        return self.weight_bytes + self.activation_bytes

    @property
    def compute_intensity(self) -> float:
        """FLOPs per byte moved."""
        if self.total_bytes == 0:
            return 0.0
        return self.flops / self.total_bytes


@dataclass
class DecodeStepWorkload:
    """All operators of one decode step for a batch of requests.

    Attributes:
        model: The LLM configuration the workload was built from.
        context_lengths: Per-request context length at this decode step.
        operators: Flat operator list.
    """

    model: LLMConfig
    context_lengths: Sequence[int]
    operators: list[Operator] = field(default_factory=list)

    @property
    def batch_size(self) -> int:
        return len(self.context_lengths)

    @property
    def total_flops(self) -> int:
        return sum(op.flops for op in self.operators)

    @property
    def total_bytes(self) -> int:
        return sum(op.total_bytes for op in self.operators)

    @property
    def compute_intensity(self) -> float:
        """Aggregate FLOPs per byte of the decode step (Fig. 2(a) metric)."""
        total_bytes = self.total_bytes
        if total_bytes == 0:
            return 0.0
        return self.total_flops / total_bytes

    def operators_of_kind(self, *kinds: OperatorKind) -> list[Operator]:
        wanted = set(kinds)
        return [op for op in self.operators if op.kind in wanted]

    @property
    def fc_flops(self) -> int:
        return sum(op.flops for op in self.operators_of_kind(OperatorKind.FC))

    @property
    def attention_flops(self) -> int:
        return sum(
            op.flops
            for op in self.operators_of_kind(OperatorKind.ATTENTION_QKT, OperatorKind.ATTENTION_SV)
        )

    @property
    def fc_bytes(self) -> int:
        return sum(op.total_bytes for op in self.operators_of_kind(OperatorKind.FC))

    @property
    def attention_bytes(self) -> int:
        return sum(
            op.total_bytes
            for op in self.operators_of_kind(OperatorKind.ATTENTION_QKT, OperatorKind.ATTENTION_SV)
        )


def _fc_operator(name: str, in_dim: int, out_dim: int, batch: int, dtype_bytes: int) -> Operator:
    weight_bytes = in_dim * out_dim * dtype_bytes
    activation_bytes = batch * (in_dim + out_dim) * dtype_bytes
    flops = 2 * batch * in_dim * out_dim
    return Operator(
        name=name,
        kind=OperatorKind.FC,
        in_dim=in_dim,
        out_dim=out_dim,
        batch=batch,
        weight_bytes=weight_bytes,
        activation_bytes=activation_bytes,
        flops=flops,
        per_request=False,
    )


def build_decode_workload(
    model: LLMConfig,
    context_lengths: Sequence[int],
    include_softmax: bool = False,
) -> DecodeStepWorkload:
    """Build the operator list for one decode step.

    Args:
        model: LLM configuration.
        context_lengths: Current context length of every request in the batch.
        include_softmax: Whether to emit explicit softmax operators (they are
            executed on the EPU / xPU and carry negligible data movement, so
            they are omitted from performance modelling by default).

    Returns:
        A :class:`DecodeStepWorkload` with per-layer FC operators (batched
        across requests) and per-request, per-KV-head attention operators.
    """
    if any(length < 1 for length in context_lengths):
        raise ValueError("all context lengths must be >= 1")
    batch = len(context_lengths)
    workload = DecodeStepWorkload(model=model, context_lengths=list(context_lengths))
    if batch == 0:
        return workload

    dtype = model.dtype_bytes
    ops = workload.operators
    for layer in range(model.num_layers):
        prefix = f"layer{layer}"
        qkv_out = model.d_model + 2 * model.kv_dim
        ops.append(_fc_operator(f"{prefix}.qkv_proj", model.d_model, qkv_out, batch, dtype))

        for request, context in enumerate(context_lengths):
            for kv_head in range(model.num_kv_heads):
                # One KV head serves `gqa_group_size` query heads: the key
                # matrix is read once but multiplied against g query vectors.
                group = model.gqa_group_size
                kv_slice_bytes = context * model.head_dim * dtype
                qkt_flops = 2 * group * context * model.head_dim
                ops.append(
                    Operator(
                        name=f"{prefix}.qkt.req{request}.kv{kv_head}",
                        kind=OperatorKind.ATTENTION_QKT,
                        in_dim=model.head_dim,
                        out_dim=context,
                        batch=group,
                        weight_bytes=kv_slice_bytes,
                        activation_bytes=group * (model.head_dim + context) * dtype,
                        flops=qkt_flops,
                        per_request=True,
                    )
                )
                if include_softmax:
                    ops.append(
                        Operator(
                            name=f"{prefix}.softmax.req{request}.kv{kv_head}",
                            kind=OperatorKind.SOFTMAX,
                            in_dim=context,
                            out_dim=context,
                            batch=group,
                            weight_bytes=0,
                            activation_bytes=2 * group * context * dtype,
                            flops=5 * group * context,
                            per_request=True,
                        )
                    )
                ops.append(
                    Operator(
                        name=f"{prefix}.sv.req{request}.kv{kv_head}",
                        kind=OperatorKind.ATTENTION_SV,
                        in_dim=context,
                        out_dim=model.head_dim,
                        batch=group,
                        weight_bytes=kv_slice_bytes,
                        activation_bytes=group * (context + model.head_dim) * dtype,
                        flops=2 * group * context * model.head_dim,
                        per_request=True,
                    )
                )

        ops.append(_fc_operator(f"{prefix}.out_proj", model.d_model, model.d_model, batch, dtype))
        if model.gated_ffn:
            ops.append(
                _fc_operator(f"{prefix}.ffn_gate", model.d_model, model.ffn_dim, batch, dtype)
            )
        ops.append(_fc_operator(f"{prefix}.ffn_up", model.d_model, model.ffn_dim, batch, dtype))
        ops.append(_fc_operator(f"{prefix}.ffn_down", model.ffn_dim, model.d_model, batch, dtype))
    return workload
