"""Memory-footprint analysis of long-context decoding (paper Fig. 2(b)).

The decode-time footprint is the model parameters plus the KV cache; the KV
cache grows linearly with both context length and batch size and quickly
exceeds single-accelerator capacity (the A100-80GB line in Fig. 2(b)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.models.kv_cache import kv_cache_bytes
from repro.models.llm import LLMConfig

A100_CAPACITY_BYTES = 80 * 1024**3
"""Capacity of one NVIDIA A100-80GB, the reference line in Fig. 2(b)."""


@dataclass(frozen=True)
class MemoryFootprint:
    """Decode-time memory footprint decomposition."""

    param_bytes: int
    kv_cache_bytes: int
    activation_bytes: int

    @property
    def total_bytes(self) -> int:
        return self.param_bytes + self.kv_cache_bytes + self.activation_bytes

    @property
    def total_gib(self) -> float:
        return self.total_bytes / 1024**3

    def fits(self, capacity_bytes: int) -> bool:
        """Whether this footprint fits in the given capacity."""
        return self.total_bytes <= capacity_bytes


def memory_footprint(model: LLMConfig, context_length: int, batch_size: int) -> MemoryFootprint:
    """Decode-time memory footprint for a batch at a given context length."""
    if context_length < 0 or batch_size < 0:
        raise ValueError("context_length and batch_size must be non-negative")
    activations = batch_size * model.d_model * model.dtype_bytes * 4
    return MemoryFootprint(
        param_bytes=model.param_bytes,
        kv_cache_bytes=kv_cache_bytes(model, context_length, batch_size),
        activation_bytes=activations,
    )
