"""Compose and execute experiments from declarative specs.

:func:`build` resolves every registry key of an
:class:`~repro.api.spec.ExperimentSpec` and assembles the full stack --
model, system, trace (with the seed threaded through generation, arrivals
and sessions), serving engine(s), optional replica router -- without
running anything, so callers can inspect or tweak the pieces.
:func:`run` builds and executes, returning the unified
:class:`~repro.api.report.RunReport`.

The assembled objects are constructed exactly as hand-written experiment
scripts would construct them (same factories, same defaults), which is
what the parity tests in ``tests/api/`` pin: ``run(spec)`` metrics equal a
direct ``ServingEngine``/``ReplicaRouter`` run to the last float.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from collections.abc import Callable, Iterable, Mapping
from typing import Any

import numpy as np

from repro.api.registry import (
    ADMISSION_POLICIES,
    ARRIVAL_PROCESSES,
    PREEMPTION_POLICIES,
    PREFILL_MODELS,
    ROUTING_POLICIES,
    SYSTEMS,
    TRACES,
)
from repro.api.report import RunReport
from repro.api.spec import ExperimentSpec, TierSpec
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import LLMConfig, get_model
from repro.serving.autoscaler import ReactiveAutoscaler
from repro.serving.disagg import DisaggRouter, PrefillPool
from repro.serving.engine import ServingEngine
from repro.serving.fast_engine import FastServingEngine
from repro.serving.fleet_events import DynamicFleetRouter, FleetEvent
from repro.serving.interfaces import DecodeSystem
from repro.serving.latency_cache import StepLatencyCache
from repro.serving.preemption import PreemptionConfig, PreemptionCostModel
from repro.serving.prefill import PrefillConfig
from repro.serving.prefix_cache import PrefixCache
from repro.serving.router import ReplicaRouter
from repro.system.interconnect import InterconnectConfig
from repro.system.parallelism import ParallelismPlan
from repro.workloads.traces import (
    RequestTrace,
    assign_tiers,
    poisson_arrivals,
    random_sessions,
)

#: PIMphony preset factories keyed by :data:`repro.api.spec.PIMPHONY_PRESETS`.
_PIMPHONY_FACTORIES: dict[str, Callable[[], PIMphonyConfig]] = {
    "baseline": PIMphonyConfig.baseline,
    "tcp": PIMphonyConfig.tcp_only,
    "tcp+dcs": PIMphonyConfig.tcp_dcs,
    "full": PIMphonyConfig.full,
}


def derived_seeds(seed: int) -> tuple[int, int, int]:
    """Derive the (trace, arrival, session) seeds from one experiment seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so the three streams
    are independent yet fully determined by the single spec seed --
    identical specs reproduce identical traces, arrival processes and
    session assignments.
    """
    children = np.random.SeedSequence(seed).spawn(3)
    trace_seed, arrival_seed, session_seed = (
        int(child.generate_state(1)[0]) for child in children
    )
    return (trace_seed, arrival_seed, session_seed)


def build_model(spec: ExperimentSpec) -> LLMConfig:
    """Resolve the model name (honouring a context-window override)."""
    model = get_model(spec.model.name)
    if spec.model.context_window is not None:
        model = model.with_context_window(spec.model.context_window)
    return model


def build_system(spec: ExperimentSpec, model: LLMConfig | None = None) -> DecodeSystem:
    """Assemble the system model named by ``spec.system.kind``."""
    model = model if model is not None else build_model(spec)
    pimphony = _PIMPHONY_FACTORIES[spec.system.pimphony]()
    if spec.allocator.mode != "auto":
        pimphony = dataclasses.replace(pimphony, dpa=spec.allocator.mode == "paged")
    plan = None
    if spec.parallelism.tensor_parallel is not None:
        plan = ParallelismPlan(
            tensor_parallel=spec.parallelism.tensor_parallel,
            pipeline_parallel=spec.parallelism.pipeline_parallel,
        )
    num_modules = spec.system.num_modules
    if num_modules is None and plan is not None:
        num_modules = plan.num_modules
    builder = SYSTEMS.get(spec.system.kind)
    return builder(model, num_modules, plan, pimphony)


def build_trace(spec: ExperimentSpec, model: LLMConfig | None = None) -> RequestTrace:
    """Build the trace with the experiment seed threaded all the way through."""
    model = model if model is not None else build_model(spec)
    trace_seed, arrival_seed, session_seed = derived_seeds(spec.seed)
    source = TRACES.get(spec.trace.source)
    trace = source(spec.trace, model.context_window, trace_seed)
    if spec.trace.arrival == "poisson":
        trace = poisson_arrivals(trace, spec.trace.rate_rps, seed=arrival_seed)
    if spec.arrival is not None:
        # First-class arrival process (validation guarantees it never
        # stacks on the legacy trace.arrival shortcut).  "poisson" here is
        # seed-for-seed identical to trace.arrival="poisson" above.
        process = ARRIVAL_PROCESSES.get(spec.arrival.process)
        trace = process(trace, spec.arrival, arrival_seed)
    if spec.trace.num_sessions > 0 and not any(
        request.session is not None for request in trace.requests
    ):
        # Sources that already tag sessions (e.g. "multi-turn") keep their
        # layout; random assignment would sever the prefix relation.
        trace = random_sessions(trace, spec.trace.num_sessions, seed=session_seed)
    if spec.tiers:
        trace = assign_tiers(trace, spec.tiers)
    elif spec.trace.priority_every > 0:
        # Deprecated periodic tagging, expressed through the same tier
        # machinery: a share of 1/N tags exactly every N-th request.
        legacy = TierSpec(
            name=f"priority-{spec.trace.priority_value}",
            priority=spec.trace.priority_value,
            share=1.0 / spec.trace.priority_every,
        )
        trace = assign_tiers(trace, (legacy,))
    return trace


def _preemption_factory(spec: ExperimentSpec) -> Callable[[], PreemptionConfig | None]:
    """Per-engine preemption config factory for ``spec``.

    ``policy="none"`` yields ``None`` so engines take the exact legacy
    admit-to-completion code path (the parity guarantee); anything else
    yields a fresh policy instance per engine with the spec's cost model.
    """
    if spec.preemption.policy == "none":
        return lambda: None
    policy_factory = PREEMPTION_POLICIES.get(spec.preemption.policy)
    cost = PreemptionCostModel(
        mode=spec.preemption.mode,
        swap_bandwidth_bytes_per_s=spec.preemption.swap_bandwidth_gbps * 1e9,
        recompute_per_token_s=spec.preemption.recompute_per_token_s,
    )
    return lambda: PreemptionConfig(policy=policy_factory(), cost=cost)


@dataclass
class BuiltExperiment:
    """The assembled-but-not-yet-run pieces of one experiment.

    ``router`` is ``None`` for single-engine specs, in which case
    ``engines`` holds exactly one engine.  ``disagg`` is set only for the
    disaggregated topology; ``router`` then holds its decode pool and
    ``engines`` the decode engines.  ``dynamic`` is set when the spec
    declares fleet events or an autoscaler; engines are then created
    per-segment by the timeline, so ``engines`` is empty and ``router``
    is ``None``.
    """

    spec: ExperimentSpec
    model: LLMConfig
    system: DecodeSystem
    trace: RequestTrace
    engines: tuple[ServingEngine, ...]
    router: ReplicaRouter | None
    disagg: DisaggRouter | None = None
    dynamic: DynamicFleetRouter | None = None

    @property
    def engine(self) -> ServingEngine:
        """The single engine; raises for fleet experiments."""
        if self.router is not None or self.dynamic is not None:
            raise ValueError("experiment runs a router fleet; use .router")
        return self.engines[0]

    def run(self) -> RunReport:
        """Serve the trace to completion and wrap the unified report."""
        if self.dynamic is not None:
            return RunReport.from_dynamic(self.spec, self.dynamic.run(self.trace))
        if self.disagg is not None:
            return RunReport.from_disagg(self.spec, self.disagg.run(self.trace))
        if self.router is not None:
            return RunReport.from_fleet(self.spec, self.router.run(self.trace))
        result = self.engines[0].run(self.trace)
        return RunReport.from_engine(self.spec, result)


def build(spec: ExperimentSpec) -> BuiltExperiment:
    """Validate ``spec`` and assemble the full engine-or-fleet stack."""
    spec.validate()
    model = build_model(spec)
    system = build_system(spec, model)
    trace = build_trace(spec, model)

    prefill = None
    if spec.prefill.mode != "none":
        prefill_model = PREFILL_MODELS.get(spec.prefill.model)(system, spec.prefill)
        chunk = spec.prefill.chunk_tokens if spec.prefill.mode == "chunked" else None
        prefill = PrefillConfig(model=prefill_model, chunk_tokens=chunk)

    admission_factory = ADMISSION_POLICIES.get(spec.admission.policy)
    preemption_factory = _preemption_factory(spec)
    engine_cls = FastServingEngine if spec.engine.mode == "fast" else ServingEngine

    def engine_factory(engine_prefill: PrefillConfig | None = prefill) -> ServingEngine:
        cache = (
            StepLatencyCache(bucket_tokens=spec.latency_cache_bucket)
            if spec.latency_cache_bucket is not None
            else None
        )
        # One PrefixCache per engine: prefixes live on the replica that
        # served them, which is what session-affinity routing exploits.
        prefix_cache = (
            PrefixCache(capacity_tokens=spec.prefix_cache.capacity_tokens)
            if spec.prefix_cache.enabled
            else None
        )
        return engine_cls(
            system=system,
            admission=admission_factory(),
            max_batch_size=spec.admission.max_batch_size,
            step_stride=spec.step_stride,
            latency_cache=cache,
            prefill=engine_prefill,
            preemption=preemption_factory(),
            prefix_cache=prefix_cache,
        )

    if spec.router is None:
        return BuiltExperiment(
            spec=spec,
            model=model,
            system=system,
            trace=trace,
            engines=(engine_factory(),),
            router=None,
        )

    if spec.fleet_events or spec.autoscaler is not None:
        # Dynamic fleet: replicas come and go mid-run, so engines are
        # created per timeline segment rather than up front.  Validation
        # has already pinned the colocated topology.
        scaler = None
        if spec.autoscaler is not None:
            scaler = ReactiveAutoscaler(
                signal=spec.autoscaler.signal,
                scale_up_threshold=spec.autoscaler.scale_up_threshold,
                scale_down_threshold=spec.autoscaler.scale_down_threshold,
                min_replicas=spec.autoscaler.min_replicas,
                max_replicas=spec.autoscaler.max_replicas,
                interval_s=spec.autoscaler.interval_s,
                cooldown_s=spec.autoscaler.cooldown_s,
                cold_start_s=spec.autoscaler.cold_start_s,
                ewma_alpha=spec.autoscaler.ewma_alpha,
            )
        dynamic = DynamicFleetRouter(
            engine_factory,
            initial_replicas=spec.router.replicas,
            policy=ROUTING_POLICIES.get(spec.router.policy)(),
            events=[
                FleetEvent(at_s=event.at_s, kind=event.kind, replica=event.replica)
                for event in spec.fleet_events
            ],
            autoscaler=scaler,
            probe_context_tokens=spec.router.probe_context_tokens,
        )
        return BuiltExperiment(
            spec=spec,
            model=model,
            system=system,
            trace=trace,
            engines=(),
            router=None,
            dynamic=dynamic,
        )

    disagg_spec = spec.router.disagg
    if (
        spec.router.topology == "disaggregated"
        and disagg_spec is not None
        and disagg_spec.prefill_replicas > 0
    ):
        # Two-pool fleet: dedicated prefill replicas hand finished KV to a
        # decode pool over a priced link.  Decode engines carry no prefill
        # config -- prompts never prefill there -- and validation has
        # already guaranteed chunked prefill is configured for the pool.
        assert prefill is not None
        prefill_pool = PrefillPool(
            system=system,
            prefill=prefill,
            replicas=disagg_spec.prefill_replicas,
            link=InterconnectConfig(
                bandwidth_bytes_per_s=disagg_spec.link_bandwidth_bytes_per_s,
                latency_s=disagg_spec.link_latency_s,
            ),
        )
        decode_router = ReplicaRouter.homogeneous(
            lambda: engine_factory(None),
            spec.router.replicas - disagg_spec.prefill_replicas,
            policy=ROUTING_POLICIES.get(disagg_spec.decode_policy)(),
            probe_context_tokens=spec.router.probe_context_tokens,
            ewma_alpha=spec.router.ewma_alpha,
        )
        return BuiltExperiment(
            spec=spec,
            model=model,
            system=system,
            trace=trace,
            engines=tuple(decode_router.replicas),
            router=decode_router,
            disagg=DisaggRouter(prefill_pool=prefill_pool, decode_router=decode_router),
        )

    router = ReplicaRouter.homogeneous(
        engine_factory,
        spec.router.replicas,
        policy=ROUTING_POLICIES.get(spec.router.policy)(),
        probe_context_tokens=spec.router.probe_context_tokens,
        ewma_alpha=spec.router.ewma_alpha,
    )
    return BuiltExperiment(
        spec=spec,
        model=model,
        system=system,
        trace=trace,
        engines=tuple(router.replicas),
        router=router,
    )


def run(spec: ExperimentSpec) -> RunReport:
    """Build and execute one spec, returning the unified report."""
    return build(spec).run()


def sweep_specs(
    base: ExperimentSpec | Mapping[str, Any],
    axes: Mapping[str, Iterable[Any]],
) -> list[tuple[dict[str, Any], ExperimentSpec]]:
    """Expand a cartesian sweep over dotted-path axes into concrete specs.

    Args:
        base: The spec (or its dict form) every variant starts from.
        axes: Dotted paths to lists of values, e.g.
            ``{"system.pimphony": ["baseline", "full"],
            "router.replicas": [1, 4]}``.

    Returns:
        ``(overrides, spec)`` pairs in deterministic (row-major, axes in
        insertion order) sweep order; with no axes, the base spec alone.
    """
    base_spec = base if isinstance(base, ExperimentSpec) else ExperimentSpec.from_dict(base)
    variants: list[dict[str, Any]] = [{}]
    for path, values in axes.items():
        values = list(values)
        if not values:
            raise ValueError(f"sweep axis {path!r} has no values")
        variants = [{**variant, path: value} for variant in variants for value in values]
    # with_overrides re-serializes the base spec per variant, so variants
    # can never alias each other's nested sub-spec data.
    return [(overrides, base_spec.with_overrides(overrides)) for overrides in variants]


__all__ = [
    "BuiltExperiment",
    "build",
    "build_model",
    "build_system",
    "build_trace",
    "derived_seeds",
    "run",
    "sweep_specs",
]
