"""Declarative experiment API: specs, registries, builder, unified reports.

One front door for every serving experiment::

    from repro.api import ExperimentSpec, SystemSpec, TraceSpec, run

    spec = ExperimentSpec(
        name="pim-only-qmsum",
        system=SystemSpec(kind="pim-only", pimphony="full"),
        trace=TraceSpec(source="dataset", dataset="qmsum", num_requests=16),
        step_stride=8,
    )
    report = run(spec)           # -> RunReport, engine or fleet alike
    print(report.summary_table())

Specs serialize (``to_dict``/``from_dict``/JSON) so the same experiment
runs from a checked-in file via ``python -m repro run spec.json`` -- with
``--set`` overrides and ``--sweep`` cartesian sweeps.  Components are
resolved through string-keyed registries that the concrete classes
self-register into; ``register_system`` / ``register_admission_policy`` /
``register_routing_policy`` / ``register_preemption_policy`` /
``register_prefill_model`` / ``register_trace`` /
``register_arrival_process`` extend the vocabulary.

This module lazily imports its submodules (PEP 562) so component modules
(e.g. :mod:`repro.serving.admission`) can import
:mod:`repro.api.registry` at definition time without an import cycle.
"""

from importlib import import_module
from typing import Any

_EXPORTS = {
    # registry
    "Registry": "registry",
    "register_system": "registry",
    "register_admission_policy": "registry",
    "register_routing_policy": "registry",
    "register_preemption_policy": "registry",
    "register_prefill_model": "registry",
    "register_trace": "registry",
    "register_arrival_process": "registry",
    "SYSTEMS": "registry",
    "ADMISSION_POLICIES": "registry",
    "ROUTING_POLICIES": "registry",
    "PREEMPTION_POLICIES": "registry",
    "PREFILL_MODELS": "registry",
    "TRACES": "registry",
    "ARRIVAL_PROCESSES": "registry",
    # spec
    "ExperimentSpec": "spec",
    "ArrivalSpec": "spec",
    "AutoscalerSpec": "spec",
    "BurstSpec": "spec",
    "DisaggSpec": "spec",
    "FleetEventSpec": "spec",
    "WarpPhaseSpec": "spec",
    "ModelSpec": "spec",
    "SystemSpec": "spec",
    "ParallelismSpec": "spec",
    "AllocatorSpec": "spec",
    "EngineSpec": "spec",
    "AdmissionSpec": "spec",
    "PreemptionSpec": "spec",
    "PrefillSpec": "spec",
    "PrefixCacheSpec": "spec",
    "TierSpec": "spec",
    "TraceSpec": "spec",
    "RouterSpec": "spec",
    "apply_override": "spec",
    "PIMPHONY_PRESETS": "spec",
    "TOPOLOGIES": "spec",
    # build
    "BuiltExperiment": "build",
    "build": "build",
    "build_model": "build",
    "build_system": "build",
    "build_trace": "build",
    "derived_seeds": "build",
    "run": "build",
    "sweep_specs": "build",
    # report
    "DisaggReport": "report",
    "FleetTimelineReport": "report",
    "RunReport": "report",
    "TierReport": "report",
    # cli
    "main": "cli",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str) -> Any:
    submodule = _EXPORTS.get(name)
    if submodule is None:
        raise AttributeError(f"module 'repro.api' has no attribute {name!r}")
    value = getattr(import_module(f"repro.api.{submodule}"), name)
    globals()[name] = value
    return value


def __dir__() -> list[str]:
    return sorted(set(globals()) | set(__all__))
