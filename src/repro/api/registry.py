"""String-keyed component registries behind the declarative experiment API.

An :class:`~repro.api.spec.ExperimentSpec` names every pluggable piece of an
experiment -- the system model, the admission policy, the routing policy,
the prefill model, the trace source -- by a registry key, and
:func:`~repro.api.build.build` resolves those keys here.  The concrete
implementations self-register at import time from their defining modules
(e.g. :mod:`repro.serving.admission` registers ``"fcfs"``), so extending
the experiment vocabulary is one call:

    from repro.api import register_admission_policy

    class DeadlineAdmission: ...

    register_admission_policy("deadline", DeadlineAdmission)

after which ``{"admission": {"policy": "deadline"}}`` works in any spec.

This module deliberately imports nothing from the rest of :mod:`repro` so
any component module can depend on it without creating an import cycle.

Registered factory signatures:

* **system** -- ``factory(model, num_modules, plan, pimphony) -> DecodeSystem``
  (``num_modules`` and ``plan`` may be ``None`` for the kind's defaults).
* **admission policy** -- ``factory() -> AdmissionPolicy``.
* **routing policy** -- ``factory() -> RoutingPolicy``.
* **preemption policy** -- ``factory() -> PreemptionPolicy``.
* **prefill model** -- ``factory(system, spec: PrefillSpec) -> PrefillModel``.
* **trace** -- ``factory(spec: TraceSpec, context_window, seed) -> RequestTrace``.
* **arrival process** -- ``factory(trace, spec: ArrivalSpec, seed) -> RequestTrace``
  (attaches arrival timestamps to an already-generated trace).
"""

from __future__ import annotations

from collections.abc import Callable, Iterator
from typing import Any

#: Factory signatures vary per registry kind (see module docstring).
Factory = Callable[..., Any]


class Registry:
    """A named mapping from string keys to component factories."""

    def __init__(self, kind: str) -> None:
        self.kind = kind
        self._entries: dict[str, Factory] = {}

    def register(
        self, name: str, factory: Factory | None = None, *, overwrite: bool = False
    ) -> Factory | Callable[[Factory], Factory]:
        """Register ``factory`` under ``name``; usable as a decorator.

        Args:
            name: Registry key (non-empty string).
            factory: The component factory; omit to use as a decorator.
            overwrite: Allow replacing an existing entry (off by default so
                typos do not silently shadow built-ins).
        """
        if not isinstance(name, str) or not name:
            raise ValueError(f"{self.kind} registry keys must be non-empty strings")

        def _add(value: Factory) -> Factory:
            if not callable(value):
                raise TypeError(f"{self.kind} {name!r} must be registered with a callable")
            if name in self._entries and not overwrite:
                raise ValueError(
                    f"{self.kind} {name!r} is already registered; "
                    "pass overwrite=True to replace it"
                )
            self._entries[name] = value
            return value

        if factory is None:
            return _add
        return _add(factory)

    def get(self, name: str) -> Factory:
        """Look up a factory; unknown keys list what *is* registered."""
        try:
            return self._entries[name]
        except KeyError:
            known = ", ".join(sorted(self._entries)) or "<none>"
            raise KeyError(
                f"unknown {self.kind} {name!r}; registered {self.kind} keys: {known}"
            ) from None

    def names(self) -> list[str]:
        """Sorted registry keys."""
        return sorted(self._entries)

    def __contains__(self, name: object) -> bool:
        return name in self._entries

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._entries)


SYSTEMS = Registry("system")
ADMISSION_POLICIES = Registry("admission policy")
ROUTING_POLICIES = Registry("routing policy")
PREEMPTION_POLICIES = Registry("preemption policy")
PREFILL_MODELS = Registry("prefill model")
TRACES = Registry("trace source")
ARRIVAL_PROCESSES = Registry("arrival process")

register_system = SYSTEMS.register
register_admission_policy = ADMISSION_POLICIES.register
register_routing_policy = ROUTING_POLICIES.register
register_preemption_policy = PREEMPTION_POLICIES.register
register_prefill_model = PREFILL_MODELS.register
register_trace = TRACES.register
register_arrival_process = ARRIVAL_PROCESSES.register

__all__ = [
    "Registry",
    "SYSTEMS",
    "ADMISSION_POLICIES",
    "ROUTING_POLICIES",
    "PREEMPTION_POLICIES",
    "PREFILL_MODELS",
    "TRACES",
    "ARRIVAL_PROCESSES",
    "register_system",
    "register_admission_policy",
    "register_routing_policy",
    "register_preemption_policy",
    "register_prefill_model",
    "register_trace",
    "register_arrival_process",
]
