"""``python -m repro`` -- run declarative experiments from the command line.

Subcommands:

* ``run SPEC.json [--set key=value] [--sweep key=a,b,c] [--format table|json]
  [--output FILE] [--profile]`` -- execute one spec, or the cartesian
  product of the ``--sweep`` axes, and print a table or a JSON report;
  ``--profile`` additionally prints the cProfile top-20 (cumulative) of
  the engine loop to stderr.
* ``validate SPEC.json [--set key=value]`` -- type/range/registry-key check
  a spec without running it.
* ``list [systems|admission|routing|preemption|prefill|topologies|traces|
  tiers|models|datasets]`` -- show the registered component vocabulary
  specs can name (``tiers`` lists the :class:`TierSpec` fields ``--set
  tiers.N.field`` paths can target; ``topologies`` the fleet topologies
  ``router.topology`` accepts).

``--set`` and ``--sweep`` take dotted paths into the spec
(``trace.num_requests=64``, ``system.pimphony=baseline,full``); values are
parsed as JSON when possible (so ``router=null`` and ``true`` work) and
fall back to plain strings.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections.abc import Sequence
from typing import Any

from repro.analysis.reporting import format_table
from repro.api.registry import (
    ADMISSION_POLICIES,
    ARRIVAL_PROCESSES,
    PREEMPTION_POLICIES,
    PREFILL_MODELS,
    ROUTING_POLICIES,
    SYSTEMS,
    TRACES,
)
from repro.api.spec import ExperimentSpec, apply_override


def _parse_value(text: str) -> Any:
    """JSON literal if it parses, plain string otherwise."""
    try:
        return json.loads(text)
    except json.JSONDecodeError:
        return text


def _parse_assignment(argument: str, flag: str) -> tuple[str, str]:
    path, separator, value = argument.partition("=")
    if not separator or not path:
        raise SystemExit(f"{flag} expects key=value, got {argument!r}")
    return path, value


def _load_spec_dict(path: str) -> dict[str, Any]:
    if path == "-":
        data = json.load(sys.stdin)
    else:
        with open(path, encoding="utf-8") as handle:
            data = json.load(handle)
    if not isinstance(data, dict):
        raise SystemExit(f"spec {path!r} must contain a JSON object")
    return data


def _spec_dict_from_args(args: argparse.Namespace) -> dict[str, Any]:
    data = _load_spec_dict(args.spec)
    for assignment in args.set or []:
        path, raw = _parse_assignment(assignment, "--set")
        apply_override(data, path, _parse_value(raw))
    return data


def _sweep_axes_from_args(args: argparse.Namespace) -> dict[str, list[Any]]:
    axes: dict[str, list[Any]] = {}
    for assignment in args.sweep or []:
        path, raw = _parse_assignment(assignment, "--sweep")
        values = [_parse_value(part) for part in raw.split(",") if part != ""]
        if not values:
            raise SystemExit(f"--sweep {path} has no values")
        axes[path] = values
    return axes


def _sweep_table(rows: list[tuple[dict[str, Any], Any]]) -> str:
    axis_names = list(rows[0][0]) if rows else []
    headers = axis_names + [
        "replicas",
        "served",
        "dropped",
        "tokens/s",
        "agg tokens/s",
        "TTFT p95 ms",
        "p99 ms",
    ]
    table_rows = []
    for overrides, report in rows:
        row = [str(overrides[name]) for name in axis_names]
        row += [
            report.num_replicas,
            report.requests_served,
            report.requests_dropped,
            report.throughput_tokens_per_s,
            report.aggregate_throughput_tokens_per_s,
            report.ttft_p95_s * 1e3,
            report.latency_p99_s * 1e3,
        ]
        table_rows.append(row)
    return format_table(headers, table_rows, title="sweep results")


def _command_run(args: argparse.Namespace) -> int:
    from repro.api.build import run, sweep_specs

    try:
        base = _spec_dict_from_args(args)
        axes = _sweep_axes_from_args(args)
        expanded = sweep_specs(base, axes)
        if args.profile:
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                reports = [(overrides, run(spec)) for overrides, spec in expanded]
            finally:
                profiler.disable()
                # Stats go to stderr so stdout stays valid JSON for pipes.
                stats = pstats.Stats(profiler, stream=sys.stderr)
                stats.sort_stats("cumulative").print_stats(20)
        else:
            reports = [(overrides, run(spec)) for overrides, spec in expanded]
    except (OSError, ValueError, KeyError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if len(reports) == 1 and not axes:
        payload: dict[str, Any] = reports[0][1].to_dict()
    else:
        payload = {
            "sweep_axes": {path: values for path, values in axes.items()},
            "runs": [
                {"overrides": overrides, **report.to_dict()}
                for overrides, report in reports
            ],
        }

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")

    if args.format == "json":
        print(json.dumps(payload, indent=2))
    else:
        if len(reports) == 1 and not axes:
            print(reports[0][1].summary_table())
        else:
            print(_sweep_table(reports))
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    try:
        data = _spec_dict_from_args(args)
        spec = ExperimentSpec.from_dict(data).validate()
    except (OSError, ValueError, KeyError) as error:
        print(f"invalid spec: {error}", file=sys.stderr)
        return 2
    print(f"ok: {spec.name} ({spec.spec_hash})")
    return 0


def _tier_fields() -> list[str]:
    import dataclasses

    from repro.api.spec import TierSpec

    return [field.name for field in dataclasses.fields(TierSpec)]


def _command_list(args: argparse.Namespace) -> int:
    from repro.api.spec import TOPOLOGIES
    from repro.models.llm import list_models
    from repro.workloads.datasets import list_datasets

    sections = {
        "systems": lambda: SYSTEMS.names(),
        "admission": lambda: ADMISSION_POLICIES.names(),
        "routing": lambda: ROUTING_POLICIES.names(),
        "preemption": lambda: PREEMPTION_POLICIES.names(),
        "prefill": lambda: PREFILL_MODELS.names(),
        "topologies": lambda: list(TOPOLOGIES),
        "traces": lambda: TRACES.names(),
        "arrivals": lambda: ARRIVAL_PROCESSES.names(),
        "tiers": _tier_fields,
        "models": list_models,
        "datasets": list_datasets,
    }
    selected = [args.what] if args.what else list(sections)
    for section in selected:
        print(f"{section}: {', '.join(sections[section]())}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run declarative PIMphony serving experiments from JSON specs.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser("run", help="execute a spec (or a --sweep over it)")
    run_parser.add_argument("spec", help="path to an ExperimentSpec JSON file ('-' for stdin)")
    run_parser.add_argument(
        "--set",
        action="append",
        metavar="KEY=VALUE",
        help="override a spec field by dotted path (repeatable)",
    )
    run_parser.add_argument(
        "--sweep",
        action="append",
        metavar="KEY=V1,V2,...",
        help="sweep a spec field over comma-separated values (repeatable; cartesian)",
    )
    run_parser.add_argument(
        "--format", choices=("table", "json"), default="table", help="stdout format"
    )
    run_parser.add_argument("--output", metavar="FILE", help="also write the JSON report to FILE")
    run_parser.add_argument(
        "--profile",
        action="store_true",
        help="cProfile the run and print the top-20 cumulative entries to stderr",
    )
    run_parser.set_defaults(handler=_command_run)

    validate_parser = subparsers.add_parser("validate", help="check a spec without running it")
    validate_parser.add_argument("spec", help="path to an ExperimentSpec JSON file")
    validate_parser.add_argument(
        "--set", action="append", metavar="KEY=VALUE", help="override before validating"
    )
    validate_parser.set_defaults(handler=_command_validate)

    list_parser = subparsers.add_parser(
        "list", help="show registered components, models and datasets"
    )
    list_parser.add_argument(
        "what",
        nargs="?",
        choices=(
            "systems",
            "admission",
            "routing",
            "preemption",
            "prefill",
            "topologies",
            "traces",
            "arrivals",
            "tiers",
            "models",
            "datasets",
        ),
        help="restrict to one section",
    )
    list_parser.set_defaults(handler=_command_list)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return args.handler(args)


__all__ = ["build_parser", "main"]
