"""Declarative, serializable experiment specifications.

An :class:`ExperimentSpec` is the single front door to the simulator: it
names every axis of a serving experiment -- model, system, parallelism,
allocator mode, admission, preemption, prefill, trace, router/replicas,
seed -- as plain data.  Specs are frozen, compare by value, round-trip through
``to_dict``/``from_dict`` and JSON, and validate eagerly with field-level
error messages, so sweeps, CI smoke runs and paper figures can be driven
from checked-in JSON files instead of hand-wired constructor calls.

Construction-time validation (``__post_init__``) checks types and ranges;
:meth:`ExperimentSpec.validate` additionally resolves every registry key
(system kind, admission/routing policy, prefill model, trace source, model
and dataset names) so a typo fails before anything is built.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
from collections.abc import Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any, TypeVar

from repro.api.registry import (
    ADMISSION_POLICIES,
    ARRIVAL_PROCESSES,
    PREEMPTION_POLICIES,
    PREFILL_MODELS,
    ROUTING_POLICIES,
    SYSTEMS,
    TRACES,
    Registry,
)
from repro.memory.lifecycle import PREEMPTION_COST_MODES

_SubSpecT = TypeVar("_SubSpecT")

#: PIMphony feature presets accepted by :attr:`SystemSpec.pimphony`
#: (resolved to :class:`~repro.core.orchestrator.PIMphonyConfig` factories
#: in :mod:`repro.api.build`).
PIMPHONY_PRESETS = ("baseline", "tcp", "tcp+dcs", "full")

#: Allocator overrides accepted by :attr:`AllocatorSpec.mode`.
ALLOCATOR_MODES = ("auto", "static", "paged")

#: Arrival processes accepted by :attr:`TraceSpec.arrival`.
ARRIVAL_MODES = ("all-at-once", "poisson")

#: Engine cores accepted by :attr:`EngineSpec.mode`.
ENGINE_MODES = ("scalar", "fast")

#: Prefill charging disciplines accepted by :attr:`PrefillSpec.mode`.
PREFILL_MODES = ("none", "blocking", "chunked")

#: Preemption cost disciplines accepted by :attr:`PreemptionSpec.mode`
#: (aliases the canonical tuple next to the lifecycle types).
PREEMPTION_MODES = PREEMPTION_COST_MODES

#: Fleet topologies accepted by :attr:`RouterSpec.topology`.
TOPOLOGIES = ("colocated", "disaggregated")

#: Fleet timeline event kinds accepted by :attr:`FleetEventSpec.kind`.
FLEET_EVENT_KINDS = ("replica_down", "replica_up")

#: Autoscaler feedback signals accepted by :attr:`AutoscalerSpec.signal`.
SCALER_SIGNALS = ("queue-depth", "ttft-ewma")


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ValueError(message)


def _is_int(value: object) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


def _check_positive_int(value: object, where: str, optional: bool = False) -> None:
    if value is None and optional:
        return
    _require(
        _is_int(value) and value > 0,
        f"{where} must be a positive integer"
        + (" or null" if optional else "")
        + f", got {value!r}",
    )


def _check_non_negative_int(value: object, where: str) -> None:
    _require(
        _is_int(value) and value >= 0,
        f"{where} must be a non-negative integer, got {value!r}",
    )


def _check_choice(value: object, choices: tuple[str, ...], where: str) -> None:
    _require(
        value in choices,
        f"{where} must be one of {', '.join(repr(c) for c in choices)}, got {value!r}",
    )


def _check_name(value: object, where: str) -> None:
    _require(
        isinstance(value, str) and bool(value),
        f"{where} must be a non-empty string, got {value!r}",
    )


def _check_non_negative_float(value: object, where: str) -> None:
    _require(
        isinstance(value, (int, float)) and not isinstance(value, bool) and value >= 0,
        f"{where} must be a non-negative number, got {value!r}",
    )


def _check_positive_float(value: object, where: str) -> None:
    _require(
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
        and value > 0,
        f"{where} must be a positive finite number, got {value!r}",
    )


def _check_finite_non_negative_float(value: object, where: str) -> None:
    _require(
        isinstance(value, (int, float))
        and not isinstance(value, bool)
        and math.isfinite(value)
        and value >= 0,
        f"{where} must be a finite non-negative number, got {value!r}",
    )


def _from_mapping(cls: type[_SubSpecT], data: Mapping[str, Any], where: str) -> _SubSpecT:
    """Build a sub-spec dataclass from a mapping, rejecting unknown keys."""
    if not isinstance(data, Mapping):
        raise ValueError(f"{where} must be a mapping, got {type(data).__name__}")
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = sorted(set(data) - known)
    if unknown:
        raise ValueError(
            f"{where}: unknown field(s) {', '.join(repr(k) for k in unknown)}; "
            f"known fields: {', '.join(sorted(known))}"
        )
    return cls(**data)


@dataclass(frozen=True)
class ModelSpec:
    """Which LLM to serve.

    Attributes:
        name: A registered model name (see
            :func:`repro.models.llm.list_models`).
        context_window: Optional override of the model's context window.
    """

    name: str = "LLM-7B-32K"
    context_window: int | None = None

    def __post_init__(self) -> None:
        _check_name(self.name, "model.name")
        _check_positive_int(self.context_window, "model.context_window", optional=True)


@dataclass(frozen=True)
class SystemSpec:
    """Which hardware system model serves decode.

    Attributes:
        kind: Registered system kind (``"pim-only"``, ``"xpu-pim"``,
            ``"xpu-only"``, ``"gpu"``, or anything added via
            :func:`repro.api.register_system`).
        num_modules: Module/device count; ``None`` uses the kind's
            paper-matched default.
        pimphony: PIMphony feature preset (:data:`PIMPHONY_PRESETS`).
    """

    kind: str = "pim-only"
    num_modules: int | None = None
    pimphony: str = "full"

    def __post_init__(self) -> None:
        _check_name(self.kind, "system.kind")
        _check_positive_int(self.num_modules, "system.num_modules", optional=True)
        _check_choice(self.pimphony, PIMPHONY_PRESETS, "system.pimphony")


@dataclass(frozen=True)
class ParallelismSpec:
    """(TP, PP) decomposition of the module pool.

    Leaving both ``None`` picks the system kind's default plan (the most
    tensor-parallel valid factorisation).  Setting them pins the plan; the
    product must then match ``system.num_modules`` when that is set too.
    """

    tensor_parallel: int | None = None
    pipeline_parallel: int | None = None

    def __post_init__(self) -> None:
        _check_positive_int(self.tensor_parallel, "parallelism.tensor_parallel", optional=True)
        _check_positive_int(self.pipeline_parallel, "parallelism.pipeline_parallel", optional=True)
        _require(
            (self.tensor_parallel is None) == (self.pipeline_parallel is None),
            "parallelism.tensor_parallel and parallelism.pipeline_parallel must be "
            "set together (or both left null for the system default)",
        )


@dataclass(frozen=True)
class AllocatorSpec:
    """KV-cache allocator mode.

    ``"auto"`` follows the system (PIM systems allocate chunked exactly when
    the DPA technique is enabled; ``xpu-only``/``gpu`` page by default);
    ``"static"`` forces ``T_max`` reservations (disabling DPA / paging) and
    ``"paged"`` forces chunked allocation (enabling them).
    """

    mode: str = "auto"

    def __post_init__(self) -> None:
        _check_choice(self.mode, ALLOCATOR_MODES, "allocator.mode")


@dataclass(frozen=True)
class EngineSpec:
    """Which serving-engine core drives the experiment.

    ``"scalar"`` (the default) is the reference
    :class:`~repro.serving.engine.ServingEngine`, advancing one latency
    evaluation per Python iteration.  ``"fast"`` is the vectorized
    :class:`~repro.serving.fast_engine.FastServingEngine`, which jumps
    whole spans of uneventful decode evaluations at once; it is pinned
    bit-for-bit against the scalar core by the parity suite, so the two
    modes report identical metrics and differ only in wall-clock cost.
    """

    mode: str = "scalar"

    def __post_init__(self) -> None:
        _check_choice(self.mode, ENGINE_MODES, "engine.mode")


@dataclass(frozen=True)
class AdmissionSpec:
    """Admission policy and batching limits at each engine.

    Attributes:
        policy: Registered admission policy key (``"fcfs"``,
            ``"capacity-aware"``, ``"priority"``, ...).
        max_batch_size: Optional hard cap on concurrent requests.
    """

    policy: str = "fcfs"
    max_batch_size: int | None = None

    def __post_init__(self) -> None:
        _check_name(self.policy, "admission.policy")
        _check_positive_int(self.max_batch_size, "admission.max_batch_size", optional=True)


@dataclass(frozen=True)
class PrefillSpec:
    """How prompt-processing latency is charged.

    Attributes:
        mode: ``"none"`` (legacy free prefill), ``"blocking"`` or
            ``"chunked"`` (see :mod:`repro.serving.prefill`).
        model: Registered prefill model key; ``"system"`` uses the system's
            own analytic ``prefill_seconds``, ``"linear"`` the closed form
            below.
        chunk_tokens: Prompt tokens interleaved per decode step in chunked
            mode.
        per_token_s / per_token_sq_s / base_s: Coefficients of the
            ``"linear"`` model (``base + a*t + b*t^2``).
    """

    mode: str = "none"
    model: str = "system"
    chunk_tokens: int = 512
    per_token_s: float = 0.0
    per_token_sq_s: float = 0.0
    base_s: float = 0.0

    def __post_init__(self) -> None:
        _check_choice(self.mode, PREFILL_MODES, "prefill.mode")
        _check_name(self.model, "prefill.model")
        _check_positive_int(self.chunk_tokens, "prefill.chunk_tokens")
        _check_non_negative_float(self.per_token_s, "prefill.per_token_s")
        _check_non_negative_float(self.per_token_sq_s, "prefill.per_token_sq_s")
        _check_non_negative_float(self.base_s, "prefill.base_s")


@dataclass(frozen=True)
class PreemptionSpec:
    """How mid-decode KV capacity pressure is resolved.

    Attributes:
        policy: Registered preemption policy key.  ``"none"`` (default)
            keeps the admit-to-completion contract: each request's final
            context is committed at admission, growth never fails, and
            pre-lifecycle behaviour is reproduced exactly.  Any other key
            (``"evict-lru"``, ``"evict-largest"``, ``"evict-youngest"``,
            or anything added via
            :func:`repro.api.register_preemption_policy`) switches the
            engine to incremental allocation with victim eviction.
        mode: ``"swap"`` pages victims' KV to host memory and back at
            ``swap_bandwidth_gbps``; ``"recompute"`` drops it and re-runs
            prefill at restore (charged through the prefill model when one
            is configured, else ``recompute_per_token_s`` per token).
        swap_bandwidth_gbps: Host link bandwidth for the ``"swap"`` mode.
        recompute_per_token_s: Fallback re-prefill cost for the
            ``"recompute"`` mode when no prefill model is configured.
        starvation_limit: Cross-tier anti-starvation knob: a request that
            has already been preempted this many times becomes ineligible
            as a victim while any other candidate remains, so a saturating
            premium flood cannot evict the same best-effort request
            forever.  ``null`` (the default) disables the guard and
            reproduces pre-tier victim selection exactly.
    """

    policy: str = "none"
    mode: str = "recompute"
    swap_bandwidth_gbps: float = 64.0
    recompute_per_token_s: float = 0.0
    starvation_limit: int | None = None

    def __post_init__(self) -> None:
        _check_name(self.policy, "preemption.policy")
        _check_choice(self.mode, PREEMPTION_MODES, "preemption.mode")
        _check_non_negative_float(self.swap_bandwidth_gbps, "preemption.swap_bandwidth_gbps")
        _require(
            self.swap_bandwidth_gbps > 0,
            f"preemption.swap_bandwidth_gbps must be positive, got {self.swap_bandwidth_gbps!r}",
        )
        _check_non_negative_float(self.recompute_per_token_s, "preemption.recompute_per_token_s")
        _check_positive_int(self.starvation_limit, "preemption.starvation_limit", optional=True)


@dataclass(frozen=True)
class PrefixCacheSpec:
    """Per-replica prefix/KV reuse for multi-turn sessions.

    Attributes:
        enabled: Attach a :class:`~repro.serving.prefix_cache.PrefixCache`
            to every engine.  Disabled (the default) reproduces the
            no-cache arithmetic bit-for-bit, which the parity tests pin.
        capacity_tokens: Token budget shared by the cached prefixes of
            one replica (LRU eviction); ``null`` retains prefixes
            unboundedly.
    """

    enabled: bool = False
    capacity_tokens: int | None = None

    def __post_init__(self) -> None:
        _require(
            isinstance(self.enabled, bool),
            f"prefix_cache.enabled must be a boolean, got {self.enabled!r}",
        )
        _check_positive_int(
            self.capacity_tokens, "prefix_cache.capacity_tokens", optional=True
        )


@dataclass(frozen=True)
class TierSpec:
    """One workload SLO tier: which requests belong to it and what it buys.

    Tiers make service classes first-class in the experiment spec: trace
    building tags every matched request with the tier's name, priority and
    TTFT/TPOT deadlines, priority-aware preemption policies read the
    priority when picking victims, and the :class:`~repro.api.report.RunReport`
    gains a per-tier metrics section (goodput, SLO attainment, preemptions,
    latency percentiles).

    Membership is declared by exactly one predicate (or neither):

    * ``sessions`` claims every request whose session id is listed.
    * ``share`` claims that fraction of the remaining trace,
      deterministically in trace order (``share=0.25`` tags every 4th
      request, reproducing the deprecated ``trace.priority_every`` pattern).
    * Neither makes the tier the single *catch-all* for leftover requests.

    Attributes:
        name: Tier label carried into request records and the report.
        priority: Scheduling priority (larger is more urgent); consulted by
            priority admission and the ``evict-priority-*`` preemption
            policies.
        share: Fraction of the trace in ``(0, 1]`` claimed by this tier.
        sessions: Session ids claimed by this tier.
        ttft_deadline_s: Time-to-first-token SLO deadline in seconds;
            ``null`` means the tier has no TTFT deadline (always attained).
        tpot_deadline_s: Per-output-token (TPOT) SLO deadline in seconds.
    """

    name: str = "default"
    priority: int = 0
    share: float | None = None
    sessions: tuple[int, ...] | None = None
    ttft_deadline_s: float | None = None
    tpot_deadline_s: float | None = None

    def __post_init__(self) -> None:
        _check_name(self.name, "name")
        _require(
            _is_int(self.priority),
            f"priority must be an integer, got {self.priority!r}",
        )
        if self.share is not None:
            _require(
                isinstance(self.share, (int, float))
                and not isinstance(self.share, bool)
                and 0 < self.share <= 1,
                f"share must be within (0, 1] or null, got {self.share!r}",
            )
        if self.sessions is not None:
            _require(
                isinstance(self.sessions, (list, tuple))
                and len(self.sessions) > 0
                and all(_is_int(session) and session >= 0 for session in self.sessions),
                "sessions must be a non-empty list of non-negative session ids "
                f"or null, got {self.sessions!r}",
            )
            object.__setattr__(self, "sessions", tuple(self.sessions))
        _require(
            self.share is None or self.sessions is None,
            "share and sessions are mutually exclusive: a tier claims a "
            "fraction of the trace or a set of sessions, not both",
        )
        for value, where in (
            (self.ttft_deadline_s, "ttft_deadline_s"),
            (self.tpot_deadline_s, "tpot_deadline_s"),
        ):
            if value is not None:
                _require(
                    isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and math.isfinite(value)
                    and value > 0,
                    f"{where} must be a positive number or null, got {value!r}",
                )

    @property
    def is_catch_all(self) -> bool:
        """Whether this tier claims leftover requests (no predicate)."""
        return self.share is None and self.sessions is None


def _spec_list_from_data(
    cls: type[_SubSpecT], value: Any, where: str
) -> tuple[_SubSpecT, ...]:
    """Parse a list of sub-spec mappings, prefixing errors with the index."""
    if isinstance(value, (str, bytes, Mapping)) or not isinstance(value, Sequence):
        raise ValueError(f"{where} must be a list of mappings, got {type(value).__name__}")
    items: list[_SubSpecT] = []
    for index, item in enumerate(value):
        if isinstance(item, cls):
            items.append(item)
            continue
        try:
            items.append(_from_mapping(cls, item, f"{where}[{index}]"))
        except ValueError as error:
            message = str(error)
            if message.startswith(f"{where}[{index}]"):
                raise
            raise ValueError(f"{where}[{index}].{message}") from None
    return tuple(items)


def _tiers_from_data(value: Any) -> tuple[TierSpec, ...]:
    """Parse the ``tiers`` list, prefixing errors with the exact tier index."""
    if isinstance(value, (str, bytes, Mapping)) or not isinstance(value, Sequence):
        raise ValueError(f"tiers must be a list of tier mappings, got {type(value).__name__}")
    tiers: list[TierSpec] = []
    for index, item in enumerate(value):
        if isinstance(item, TierSpec):
            tiers.append(item)
            continue
        try:
            tiers.append(_from_mapping(TierSpec, item, f"tiers[{index}]"))
        except ValueError as error:
            message = str(error)
            if message.startswith(f"tiers[{index}]"):
                raise
            raise ValueError(f"tiers[{index}].{message}") from None
    return tuple(tiers)


@dataclass(frozen=True)
class TraceSpec:
    """What workload arrives, when, and with which metadata.

    Attributes:
        source: Registered trace source (``"dataset"`` samples a registered
            context-length distribution; ``"synthetic"`` builds fixed-shape
            requests, optionally with every ``heavy_every``-th request
            promoted to ``heavy_prompt_tokens``).
        dataset: Dataset name for the ``"dataset"`` source.
        num_requests: Requests in the trace.
        output_tokens: Per-request generation length (``None`` uses the
            dataset default).
        prompt_tokens: Prompt length for the ``"synthetic"`` source.
        heavy_every: In the synthetic source, promote every N-th request
            (0 disables).
        heavy_prompt_tokens: Prompt length of promoted requests.
        arrival: ``"all-at-once"`` (closed loop) or ``"poisson"``.
        rate_rps: Mean Poisson arrival rate (required when poisson).
        num_sessions: When positive, assign each request a random session
            id in ``[0, num_sessions)`` (seeded from the experiment seed).
            The ``"multi-turn"`` source instead reads this as the number
            of conversations (its requests arrive pre-tagged).
        turns_per_session: Turns per conversation for the ``"multi-turn"``
            source (each follow-up turn's prompt is the previous turn's
            full context plus ``followup_tokens``); ``num_requests`` must
            then equal ``num_sessions * turns_per_session``.
        followup_tokens: New user tokens added per follow-up turn.
        turn_gap_s: Deterministic inter-turn arrival spacing of the
            ``"multi-turn"`` source (0 leaves arrivals to ``arrival``).
        priority_every: Deprecated in favour of :attr:`ExperimentSpec.tiers`
            (a tier with ``share=1/N`` tags the same requests).  When
            positive, mark every N-th request with ``priority_value`` so
            priority admission has work to do; mutually exclusive with a
            non-empty tier list.
        priority_value: Priority assigned by ``priority_every``.
    """

    source: str = "dataset"
    dataset: str = "qmsum"
    num_requests: int = 16
    output_tokens: int | None = None
    prompt_tokens: int = 512
    heavy_every: int = 0
    heavy_prompt_tokens: int = 8192
    arrival: str = "all-at-once"
    rate_rps: float = 0.0
    num_sessions: int = 0
    turns_per_session: int = 0
    followup_tokens: int = 64
    turn_gap_s: float = 0.0
    priority_every: int = 0
    priority_value: int = 1

    def __post_init__(self) -> None:
        _check_name(self.source, "trace.source")
        _check_name(self.dataset, "trace.dataset")
        _check_positive_int(self.num_requests, "trace.num_requests")
        _check_positive_int(self.output_tokens, "trace.output_tokens", optional=True)
        _check_positive_int(self.prompt_tokens, "trace.prompt_tokens")
        _check_non_negative_int(self.heavy_every, "trace.heavy_every")
        _check_positive_int(self.heavy_prompt_tokens, "trace.heavy_prompt_tokens")
        _check_choice(self.arrival, ARRIVAL_MODES, "trace.arrival")
        _check_non_negative_float(self.rate_rps, "trace.rate_rps")
        _require(
            self.arrival != "poisson" or self.rate_rps > 0,
            "trace.rate_rps must be positive when trace.arrival is 'poisson', "
            f"got {self.rate_rps!r}",
        )
        _check_non_negative_int(self.num_sessions, "trace.num_sessions")
        _check_non_negative_int(self.turns_per_session, "trace.turns_per_session")
        _check_positive_int(self.followup_tokens, "trace.followup_tokens")
        _check_non_negative_float(self.turn_gap_s, "trace.turn_gap_s")
        _require(
            not (self.turn_gap_s > 0 and self.arrival == "poisson"),
            "trace.turn_gap_s and trace.arrival='poisson' are mutually exclusive: "
            "the Poisson process would overwrite the source's deterministic "
            "turn arrivals; set turn_gap_s to 0 or keep arrival='all-at-once'",
        )
        _check_non_negative_int(self.priority_every, "trace.priority_every")
        _require(
            _is_int(self.priority_value),
            f"trace.priority_value must be an integer, got {self.priority_value!r}",
        )


@dataclass(frozen=True)
class BurstSpec:
    """One flash-crowd window of the ``"burst"`` arrival process.

    Inside ``[start_s, start_s + duration_s)`` the baseline rate is scaled
    by ``multiplier`` (above 1 is a flash crowd, below 1 a lull).  Windows
    must not overlap.
    """

    start_s: float = 0.0
    duration_s: float = 1.0
    multiplier: float = 2.0

    def __post_init__(self) -> None:
        _check_finite_non_negative_float(self.start_s, "start_s")
        _check_positive_float(self.duration_s, "duration_s")
        _check_positive_float(self.multiplier, "multiplier")


@dataclass(frozen=True)
class WarpPhaseSpec:
    """One phase of the ``"trace-warped"`` process's time-dilation profile.

    From ``start_s`` (on the replayed log's source timeline) until the next
    phase begins, a source interval of length ``dt`` maps to ``dt * factor``
    of simulated time -- factors above 1 stretch the log (lower load),
    below 1 compress it (higher load).
    """

    start_s: float = 0.0
    factor: float = 1.0

    def __post_init__(self) -> None:
        _check_finite_non_negative_float(self.start_s, "start_s")
        _check_positive_float(self.factor, "factor")


@dataclass(frozen=True)
class ArrivalSpec:
    """First-class arrival process, replacing the fixed-rate assumption.

    When present, this sub-spec overrides the legacy ``trace.arrival``
    switch: the registered process (see
    :func:`repro.api.register_arrival_process`) attaches every request's
    arrival timestamp.  ``"poisson"`` with the same derived seed is
    equivalence-pinned against ``trace.arrival='poisson'``.  Fields not
    read by the selected process are ignored, mirroring :class:`TraceSpec`.

    Attributes:
        process: Registered arrival process (``"poisson"``, ``"replay"``,
            ``"diurnal"``, ``"burst"``, ``"trace-warped"``).
        rate_rps: Mean/baseline rate for the rate-driven processes.
        period_s: Diurnal oscillation period in seconds.
        amplitude: Diurnal relative swing in ``[0, 1]`` (the peak-to-trough
            load ratio is ``(1 + a) / (1 - a)``).
        phase_s: Diurnal time offset; ``period_s / 4`` starts at the trough.
        bursts: Flash-crowd windows of the ``"burst"`` process.
        times: Source timestamps for ``"replay"``/``"trace-warped"`` (one
            per request, finite, non-negative, non-decreasing).
        warp: Time-dilation phases of the ``"trace-warped"`` process.
    """

    process: str = "poisson"
    rate_rps: float = 0.0
    period_s: float = 3600.0
    amplitude: float = 0.5
    phase_s: float = 0.0
    bursts: tuple[BurstSpec, ...] = ()
    times: tuple[float, ...] | None = None
    warp: tuple[WarpPhaseSpec, ...] = ()

    def __post_init__(self) -> None:
        _check_name(self.process, "arrival.process")
        _check_non_negative_float(self.rate_rps, "arrival.rate_rps")
        _require(
            self.process not in ("poisson", "diurnal", "burst") or self.rate_rps > 0,
            f"arrival.rate_rps must be positive when arrival.process is "
            f"{self.process!r}, got {self.rate_rps!r}",
        )
        _check_positive_float(self.period_s, "arrival.period_s")
        _require(
            isinstance(self.amplitude, (int, float))
            and not isinstance(self.amplitude, bool)
            and 0 <= self.amplitude <= 1,
            f"arrival.amplitude must lie within [0, 1], got {self.amplitude!r}",
        )
        _require(
            isinstance(self.phase_s, (int, float))
            and not isinstance(self.phase_s, bool)
            and math.isfinite(self.phase_s),
            f"arrival.phase_s must be a finite number, got {self.phase_s!r}",
        )
        _require(
            isinstance(self.bursts, (list, tuple))
            and all(isinstance(burst, BurstSpec) for burst in self.bursts),
            f"arrival.bursts must be a list of BurstSpec, got {self.bursts!r}",
        )
        object.__setattr__(self, "bursts", tuple(self.bursts))
        _require(
            isinstance(self.warp, (list, tuple))
            and all(isinstance(phase, WarpPhaseSpec) for phase in self.warp),
            f"arrival.warp must be a list of WarpPhaseSpec, got {self.warp!r}",
        )
        object.__setattr__(self, "warp", tuple(self.warp))
        if self.times is not None:
            _require(
                isinstance(self.times, (list, tuple)) and len(self.times) > 0,
                f"arrival.times must be a non-empty list of timestamps or null, "
                f"got {self.times!r}",
            )
            cleaned: list[float] = []
            for index, value in enumerate(self.times):
                _require(
                    isinstance(value, (int, float))
                    and not isinstance(value, bool)
                    and math.isfinite(value)
                    and value >= 0,
                    f"arrival.times[{index}] must be a finite non-negative "
                    f"number, got {value!r}",
                )
                cleaned.append(float(value))
            for index in range(1, len(cleaned)):
                _require(
                    cleaned[index] >= cleaned[index - 1],
                    f"arrival.times must be non-decreasing; arrival.times[{index}] "
                    f"({cleaned[index]!r}) precedes arrival.times[{index - 1}] "
                    f"({cleaned[index - 1]!r})",
                )
            object.__setattr__(self, "times", tuple(cleaned))


def _arrival_from_data(value: Any) -> ArrivalSpec | None:
    """Parse the ``arrival`` mapping, descending into ``bursts``/``warp``."""
    if value is None:
        return None
    if isinstance(value, ArrivalSpec):
        return value
    if not isinstance(value, Mapping):
        raise ValueError(f"arrival must be a mapping, got {type(value).__name__}")
    data: dict[str, Any] = dict(value)
    if data.get("bursts") is not None and "bursts" in data:
        data["bursts"] = _spec_list_from_data(BurstSpec, data["bursts"], "arrival.bursts")
    if data.get("warp") is not None and "warp" in data:
        data["warp"] = _spec_list_from_data(WarpPhaseSpec, data["warp"], "arrival.warp")
    return _from_mapping(ArrivalSpec, data, "arrival")


@dataclass(frozen=True)
class DisaggSpec:
    """Shape of a disaggregated prefill/decode fleet and its KV link.

    Used when ``router.topology`` is ``"disaggregated"``: out of
    ``router.replicas`` total engines, ``prefill_replicas`` run chunked
    prefill to completion and hand the finished KV cache to one of the
    remaining decode replicas over a point-to-point link (a
    :class:`~repro.system.interconnect.InterconnectConfig` priced from the
    request's actual KV bytes).  ``prefill_replicas=0`` is the trivial
    topology: one colocated pool, bit-identical to ``topology="colocated"``.

    Attributes:
        prefill_replicas: Engines dedicated to prefill (the remaining
            ``router.replicas - prefill_replicas`` serve decode).
        link_bandwidth_bytes_per_s: KV-transfer link bandwidth.
        link_latency_s: Per-handoff link latency in seconds.
        decode_policy: Routing policy placing finished prefills onto
            decode replicas (any registered routing policy;
            ``"kv-balanced"`` spreads reserved KV tokens evenly).
    """

    prefill_replicas: int = 1
    link_bandwidth_bytes_per_s: float = 64e9
    link_latency_s: float = 2e-6
    decode_policy: str = "kv-balanced"

    def __post_init__(self) -> None:
        _check_non_negative_int(self.prefill_replicas, "router.disagg.prefill_replicas")
        _check_non_negative_float(
            self.link_bandwidth_bytes_per_s, "router.disagg.link_bandwidth_bytes_per_s"
        )
        _require(
            self.link_bandwidth_bytes_per_s > 0,
            "router.disagg.link_bandwidth_bytes_per_s must be positive, "
            f"got {self.link_bandwidth_bytes_per_s!r}",
        )
        _check_non_negative_float(self.link_latency_s, "router.disagg.link_latency_s")
        _check_name(self.decode_policy, "router.disagg.decode_policy")


@dataclass(frozen=True)
class RouterSpec:
    """Data-parallel fleet shape and routing policy.

    Attributes:
        replicas: Identical engines behind the router (>= 1).
        policy: Registered routing policy key (``"round-robin"``,
            ``"least-outstanding"``, ``"capacity-aware"``,
            ``"session-affinity"``, ...).
        probe_context_tokens: Context used to probe per-replica step
            latency for the router's service-time estimates.
        ewma_alpha: Weight of measured per-replica TPOT folded back into
            the router's service-time estimates after each run (``0``
            disables the feedback loop and keeps probe-only estimates).
        topology: ``"colocated"`` (every replica prefills and decodes) or
            ``"disaggregated"`` (dedicated prefill and decode pools with a
            modelled KV handoff; requires :attr:`disagg`).
        disagg: Pool split and KV-link model for the disaggregated
            topology (:class:`DisaggSpec`); must be ``null`` otherwise.
    """

    replicas: int = 1
    policy: str = "round-robin"
    probe_context_tokens: int = 1024
    ewma_alpha: float = 0.3
    topology: str = "colocated"
    disagg: DisaggSpec | None = None

    def __post_init__(self) -> None:
        _check_positive_int(self.replicas, "router.replicas")
        _check_name(self.policy, "router.policy")
        _check_positive_int(self.probe_context_tokens, "router.probe_context_tokens")
        _check_non_negative_float(self.ewma_alpha, "router.ewma_alpha")
        _require(
            self.ewma_alpha <= 1.0,
            f"router.ewma_alpha must be within [0, 1], got {self.ewma_alpha!r}",
        )
        _check_choice(self.topology, TOPOLOGIES, "router.topology")
        _require(
            self.disagg is None or isinstance(self.disagg, DisaggSpec),
            f"router.disagg must be a DisaggSpec or null, got {type(self.disagg).__name__}",
        )


def _router_from_data(value: Any) -> RouterSpec | None:
    """Parse the ``router`` mapping, descending into the nested ``disagg``."""
    if value is None:
        return None
    if isinstance(value, RouterSpec):
        return value
    if not isinstance(value, Mapping):
        raise ValueError(f"router must be a mapping, got {type(value).__name__}")
    data: dict[str, Any] = dict(value)
    if "disagg" in data:
        disagg = data["disagg"]
        if disagg is not None and not isinstance(disagg, DisaggSpec):
            data["disagg"] = _from_mapping(DisaggSpec, disagg, "router.disagg")
    return _from_mapping(RouterSpec, data, "router")


@dataclass(frozen=True)
class FleetEventSpec:
    """One scripted fleet timeline event.

    ``"replica_down"`` fails the replica at ``at_s``: its in-flight
    requests lose their KV (charged as lost tokens plus a re-warm through
    the normal admission/prefill path on another replica) and the slot
    stops accepting work.  ``"replica_up"`` brings the same slot back with
    a cold engine.  Per slot, events must alternate down/up in time,
    starting with ``"replica_down"``.

    Attributes:
        at_s: Event timestamp on the simulation clock.
        kind: ``"replica_down"`` or ``"replica_up"``.
        replica: Index of the affected replica in ``[0, router.replicas)``.
    """

    at_s: float = 0.0
    kind: str = "replica_down"
    replica: int = 0

    def __post_init__(self) -> None:
        _check_finite_non_negative_float(self.at_s, "at_s")
        _check_choice(self.kind, FLEET_EVENT_KINDS, "kind")
        _check_non_negative_int(self.replica, "replica")


def _fleet_events_from_data(value: Any) -> tuple[FleetEventSpec, ...]:
    """Parse the ``fleet_events`` list, prefixing errors with the index."""
    return _spec_list_from_data(FleetEventSpec, value, "fleet_events")


@dataclass(frozen=True)
class AutoscalerSpec:
    """Reactive replica autoscaler riding on the fleet timeline.

    Every ``interval_s`` the controller samples a load signal over the
    accepting replicas and compares it against the two thresholds: above
    ``scale_up_threshold`` it adds a replica (accepting work only after
    ``cold_start_s``), below ``scale_down_threshold`` it drains one (the
    drained replica finishes its in-flight requests but accepts no new
    work).  ``cooldown_s`` rate-limits consecutive decisions.

    Attributes:
        signal: ``"queue-depth"`` (mean outstanding requests per accepting
            replica) or ``"ttft-ewma"`` (EWMA of the router's estimated
            time-to-first-token at dispatch, in seconds).
        scale_up_threshold: Signal level that triggers adding a replica.
        scale_down_threshold: Signal level that triggers draining one.
        min_replicas: Never drain below this many accepting replicas.
        max_replicas: Never grow beyond this many live replicas.
        interval_s: Evaluation period of the controller.
        cooldown_s: Minimum time between two scaling decisions.
        cold_start_s: Delay before a freshly added replica accepts work
            (model load, weight warm-up); its replica-hours start at the
            scale-up decision, so cold starts are paid for, not free.
        ewma_alpha: Smoothing weight of the ``"ttft-ewma"`` signal.
    """

    signal: str = "queue-depth"
    scale_up_threshold: float = 4.0
    scale_down_threshold: float = 1.0
    min_replicas: int = 1
    max_replicas: int = 8
    interval_s: float = 5.0
    cooldown_s: float = 30.0
    cold_start_s: float = 10.0
    ewma_alpha: float = 0.3

    def __post_init__(self) -> None:
        _check_choice(self.signal, SCALER_SIGNALS, "autoscaler.signal")
        _check_positive_float(self.scale_up_threshold, "autoscaler.scale_up_threshold")
        _check_finite_non_negative_float(
            self.scale_down_threshold, "autoscaler.scale_down_threshold"
        )
        _require(
            self.scale_down_threshold < self.scale_up_threshold,
            "autoscaler.scale_down_threshold must be below scale_up_threshold "
            f"(got {self.scale_down_threshold!r} >= {self.scale_up_threshold!r}); "
            "equal thresholds would oscillate every interval",
        )
        _check_positive_int(self.min_replicas, "autoscaler.min_replicas")
        _check_positive_int(self.max_replicas, "autoscaler.max_replicas")
        _require(
            self.min_replicas <= self.max_replicas,
            f"autoscaler.min_replicas ({self.min_replicas}) must not exceed "
            f"autoscaler.max_replicas ({self.max_replicas})",
        )
        _check_positive_float(self.interval_s, "autoscaler.interval_s")
        _check_finite_non_negative_float(self.cooldown_s, "autoscaler.cooldown_s")
        _check_finite_non_negative_float(self.cold_start_s, "autoscaler.cold_start_s")
        _require(
            isinstance(self.ewma_alpha, (int, float))
            and not isinstance(self.ewma_alpha, bool)
            and 0 <= self.ewma_alpha <= 1,
            f"autoscaler.ewma_alpha must lie within [0, 1], got {self.ewma_alpha!r}",
        )


@dataclass(frozen=True)
class ExperimentSpec:
    """One complete, reproducible serving experiment as data.

    ``router=None`` runs a single :class:`~repro.serving.engine.ServingEngine`;
    a :class:`RouterSpec` runs a :class:`~repro.serving.router.ReplicaRouter`
    fleet.  Either way :func:`repro.api.run` returns the same
    :class:`~repro.api.report.RunReport`.

    Attributes:
        name: Label carried into reports.
        tiers: Workload SLO tiers (:class:`TierSpec`); trace building tags
            matched requests with tier name, priority and deadlines, and
            the report grows per-tier goodput/attainment sections.  An
            empty list keeps the untiered schema (and ``spec_hash``)
            bit-for-bit.
        seed: Single seed threaded through trace generation, the arrival
            process and session assignment (identical specs reproduce
            identical traces).
        step_stride: Decode steps advanced per latency evaluation.
        latency_cache_bucket: When set, each engine memoises decode-step
            latencies with this bucket size (tokens).
    """

    name: str = "experiment"
    model: ModelSpec = field(default_factory=ModelSpec)
    system: SystemSpec = field(default_factory=SystemSpec)
    parallelism: ParallelismSpec = field(default_factory=ParallelismSpec)
    allocator: AllocatorSpec = field(default_factory=AllocatorSpec)
    engine: EngineSpec = field(default_factory=EngineSpec)
    admission: AdmissionSpec = field(default_factory=AdmissionSpec)
    preemption: PreemptionSpec = field(default_factory=PreemptionSpec)
    prefill: PrefillSpec = field(default_factory=PrefillSpec)
    prefix_cache: PrefixCacheSpec = field(default_factory=PrefixCacheSpec)
    trace: TraceSpec = field(default_factory=TraceSpec)
    arrival: ArrivalSpec | None = None
    tiers: tuple[TierSpec, ...] = ()
    router: RouterSpec | None = None
    fleet_events: tuple[FleetEventSpec, ...] = ()
    autoscaler: AutoscalerSpec | None = None
    window_s: float | None = None
    seed: int = 0
    step_stride: int = 1
    latency_cache_bucket: int | None = None

    def __post_init__(self) -> None:
        _check_name(self.name, "name")
        _require(
            isinstance(self.model, ModelSpec),
            f"model must be a ModelSpec, got {type(self.model).__name__}",
        )
        _require(
            isinstance(self.system, SystemSpec),
            f"system must be a SystemSpec, got {type(self.system).__name__}",
        )
        _require(
            isinstance(self.parallelism, ParallelismSpec),
            f"parallelism must be a ParallelismSpec, got {type(self.parallelism).__name__}",
        )
        _require(
            isinstance(self.allocator, AllocatorSpec),
            f"allocator must be an AllocatorSpec, got {type(self.allocator).__name__}",
        )
        _require(
            isinstance(self.engine, EngineSpec),
            f"engine must be an EngineSpec, got {type(self.engine).__name__}",
        )
        _require(
            isinstance(self.admission, AdmissionSpec),
            f"admission must be an AdmissionSpec, got {type(self.admission).__name__}",
        )
        _require(
            isinstance(self.preemption, PreemptionSpec),
            f"preemption must be a PreemptionSpec, got {type(self.preemption).__name__}",
        )
        _require(
            isinstance(self.prefill, PrefillSpec),
            f"prefill must be a PrefillSpec, got {type(self.prefill).__name__}",
        )
        _require(
            isinstance(self.prefix_cache, PrefixCacheSpec),
            f"prefix_cache must be a PrefixCacheSpec, got {type(self.prefix_cache).__name__}",
        )
        _require(
            isinstance(self.trace, TraceSpec),
            f"trace must be a TraceSpec, got {type(self.trace).__name__}",
        )
        _require(
            self.router is None or isinstance(self.router, RouterSpec),
            f"router must be a RouterSpec or null, got {type(self.router).__name__}",
        )
        _require(
            self.arrival is None or isinstance(self.arrival, ArrivalSpec),
            f"arrival must be an ArrivalSpec or null, got {type(self.arrival).__name__}",
        )
        _require(
            isinstance(self.fleet_events, (list, tuple)),
            f"fleet_events must be a list of FleetEventSpec, "
            f"got {type(self.fleet_events).__name__}",
        )
        for index, event in enumerate(self.fleet_events):
            _require(
                isinstance(event, FleetEventSpec),
                f"fleet_events[{index}] must be a FleetEventSpec, "
                f"got {type(event).__name__}",
            )
        object.__setattr__(self, "fleet_events", tuple(self.fleet_events))
        _require(
            self.autoscaler is None or isinstance(self.autoscaler, AutoscalerSpec),
            f"autoscaler must be an AutoscalerSpec or null, "
            f"got {type(self.autoscaler).__name__}",
        )
        if self.window_s is not None:
            _check_positive_float(self.window_s, "window_s")
        if self.arrival is not None:
            _require(
                self.trace.arrival == "all-at-once",
                "arrival and trace.arrival are mutually exclusive ways to "
                "attach timestamps; keep trace.arrival='all-at-once' when the "
                f"arrival sub-spec is present (got {self.trace.arrival!r})",
            )
            _require(
                self.trace.turn_gap_s <= 0,
                "arrival and trace.turn_gap_s are mutually exclusive: the "
                "arrival process would overwrite the multi-turn source's "
                "deterministic turn arrivals; set turn_gap_s to 0 or drop "
                "the arrival sub-spec",
            )
        self._check_tiers()
        _require(
            _is_int(self.seed) and self.seed >= 0,
            f"seed must be a non-negative integer, got {self.seed!r}",
        )
        _check_positive_int(self.step_stride, "step_stride")
        _check_positive_int(self.latency_cache_bucket, "latency_cache_bucket", optional=True)
        if self.system.num_modules is not None and self.parallelism.tensor_parallel is not None:
            product = self.parallelism.tensor_parallel * self.parallelism.pipeline_parallel
            _require(
                product == self.system.num_modules,
                f"parallelism TP{self.parallelism.tensor_parallel} x "
                f"PP{self.parallelism.pipeline_parallel} covers {product} modules "
                f"but system.num_modules is {self.system.num_modules}",
            )

    def _check_tiers(self) -> None:
        """Cross-tier validation; errors name the exact tier index."""
        _require(
            isinstance(self.tiers, (list, tuple)),
            f"tiers must be a list of TierSpec, got {type(self.tiers).__name__}",
        )
        for index, tier in enumerate(self.tiers):
            _require(
                isinstance(tier, TierSpec),
                f"tiers[{index}] must be a TierSpec, got {type(tier).__name__}",
            )
        object.__setattr__(self, "tiers", tuple(self.tiers))
        names: dict[str, int] = {}
        claimed_sessions: dict[int, int] = {}
        catch_all: int | None = None
        total_share = 0.0
        for index, tier in enumerate(self.tiers):
            _require(
                tier.name not in names,
                f"tiers[{index}].name {tier.name!r} duplicates "
                f"tiers[{names.get(tier.name)}].name",
            )
            names[tier.name] = index
            if tier.share is not None:
                total_share += tier.share
            if tier.is_catch_all:
                _require(
                    catch_all is None,
                    f"tiers[{index}] and tiers[{catch_all}] are both catch-all "
                    "tiers (neither share nor sessions); at most one tier may "
                    "claim leftover requests",
                )
                catch_all = index
            for session in tier.sessions or ():
                _require(
                    session not in claimed_sessions,
                    f"tiers[{index}].sessions lists session {session} already "
                    f"claimed by tiers[{claimed_sessions.get(session)}]",
                )
                claimed_sessions[session] = index
        _require(
            total_share <= 1.0 + 1e-9,
            f"tiers[*].share values must sum to at most 1, got {total_share!r}",
        )
        _require(
            not (self.tiers and self.trace.priority_every > 0),
            "tiers and trace.priority_every are mutually exclusive: the tier "
            "list replaces periodic priority tagging; drop the deprecated "
            "trace.priority_every or the tiers",
        )

    # -- registry-key validation -------------------------------------------

    def validate(self) -> ExperimentSpec:
        """Resolve every registry key, failing fast with the field path.

        Returns ``self`` so it chains: ``run(spec.validate())``.

        Raises:
            ValueError: naming the offending field and the registered keys.
        """
        from repro.models.llm import list_models
        from repro.workloads.datasets import list_datasets

        def _check_key(registry: Registry, key: str, where: str) -> None:
            if key not in registry:
                known = ", ".join(registry.names()) or "<none>"
                raise ValueError(
                    f"{where}: unknown {registry.kind} {key!r}; "
                    f"registered keys: {known}"
                )

        _check_key(SYSTEMS, self.system.kind, "system.kind")
        _check_key(ADMISSION_POLICIES, self.admission.policy, "admission.policy")
        _check_key(PREEMPTION_POLICIES, self.preemption.policy, "preemption.policy")
        if self.router is not None:
            _check_key(ROUTING_POLICIES, self.router.policy, "router.policy")
            if self.router.topology == "disaggregated":
                if self.router.disagg is None:
                    raise ValueError(
                        "router.topology: 'disaggregated' requires router.disagg "
                        "(pool split and KV-link model)"
                    )
                disagg = self.router.disagg
                _check_key(ROUTING_POLICIES, disagg.decode_policy, "router.disagg.decode_policy")
                if disagg.prefill_replicas >= self.router.replicas:
                    raise ValueError(
                        f"router.disagg.prefill_replicas: {disagg.prefill_replicas} prefill "
                        f"replicas leave no decode replica out of router.replicas="
                        f"{self.router.replicas}"
                    )
                if disagg.prefill_replicas > 0:
                    if self.prefill.mode != "chunked":
                        raise ValueError(
                            "router.disagg: a disaggregated prefill pool runs chunked "
                            "prefill; set prefill.mode='chunked' (got "
                            f"{self.prefill.mode!r})"
                        )
                    if self.prefix_cache.enabled:
                        raise ValueError(
                            "router.disagg: prefix_cache is not supported with a "
                            "disaggregated prefill pool (handoff KV never revisits "
                            "the prefill replica)"
                        )
            elif self.router.disagg is not None:
                raise ValueError(
                    "router.disagg: requires router.topology='disaggregated' "
                    f"(got {self.router.topology!r})"
                )
        if self.arrival is not None:
            _check_key(ARRIVAL_PROCESSES, self.arrival.process, "arrival.process")
            if self.arrival.process in ("replay", "trace-warped"):
                if self.arrival.times is None:
                    raise ValueError(
                        f"arrival.times: the {self.arrival.process!r} process "
                        "replays explicit timestamps; provide one per request"
                    )
                if len(self.arrival.times) != self.trace.num_requests:
                    raise ValueError(
                        "arrival.times: expected trace.num_requests="
                        f"{self.trace.num_requests} timestamps, "
                        f"got {len(self.arrival.times)}"
                    )
            if self.arrival.process == "trace-warped" and not self.arrival.warp:
                raise ValueError(
                    "arrival.warp: the 'trace-warped' process requires at "
                    "least one (start_s, factor) phase"
                )
            windows = sorted(
                (burst.start_s, burst.duration_s) for burst in self.arrival.bursts
            )
            for (start_a, duration_a), (start_b, _) in zip(windows, windows[1:], strict=False):
                if start_b < start_a + duration_a:
                    raise ValueError(
                        "arrival.bursts: windows overlap (the window starting "
                        f"at {start_b!r} begins before the window at "
                        f"{start_a!r} ends at {start_a + duration_a!r})"
                    )
            warp_starts = [phase.start_s for phase in self.arrival.warp]
            for start_a, start_b in zip(warp_starts, warp_starts[1:], strict=False):
                if start_b <= start_a:
                    raise ValueError(
                        "arrival.warp: phase starts must be strictly "
                        f"increasing, got {start_b!r} after {start_a!r}"
                    )
        if self.fleet_events or self.autoscaler is not None:
            if self.router is None:
                raise ValueError(
                    "fleet_events/autoscaler: the fleet timeline needs a "
                    "replica fleet; set router (e.g. router.replicas)"
                )
            if self.router.topology != "colocated":
                raise ValueError(
                    "fleet_events/autoscaler: the fleet timeline supports "
                    f"only the 'colocated' topology, got {self.router.topology!r}"
                )
        if self.fleet_events:
            per_slot: dict[int, list[FleetEventSpec]] = {}
            for event in self.fleet_events:
                per_slot.setdefault(event.replica, []).append(event)
            assert self.router is not None
            for replica, events in sorted(per_slot.items()):
                if replica >= self.router.replicas:
                    raise ValueError(
                        f"fleet_events: replica {replica} is outside the fleet "
                        f"(router.replicas={self.router.replicas})"
                    )
                events.sort(key=lambda event: event.at_s)
                for previous, current in zip(events, events[1:], strict=False):
                    if current.at_s <= previous.at_s:
                        raise ValueError(
                            f"fleet_events: replica {replica} has two events at "
                            f"indistinguishable times ({previous.at_s!r} and "
                            f"{current.at_s!r}); event times must be strictly "
                            "increasing per replica"
                        )
                for index, event in enumerate(events):
                    expected = "replica_down" if index % 2 == 0 else "replica_up"
                    if event.kind != expected:
                        raise ValueError(
                            f"fleet_events: replica {replica}'s events must "
                            "alternate replica_down/replica_up starting with "
                            f"replica_down; event at t={event.at_s!r} is "
                            f"{event.kind!r} but {expected!r} was expected"
                        )
        if self.autoscaler is not None:
            assert self.router is not None
            if not (
                self.autoscaler.min_replicas
                <= self.router.replicas
                <= self.autoscaler.max_replicas
            ):
                raise ValueError(
                    f"autoscaler: router.replicas={self.router.replicas} must "
                    "start inside [autoscaler.min_replicas, autoscaler.max_replicas] "
                    f"= [{self.autoscaler.min_replicas}, {self.autoscaler.max_replicas}]"
                )
        if self.prefill.mode != "none":
            _check_key(PREFILL_MODELS, self.prefill.model, "prefill.model")
        _check_key(TRACES, self.trace.source, "trace.source")
        if self.model.name not in list_models():
            raise ValueError(
                f"model.name: unknown model {self.model.name!r}; "
                f"registered models: {', '.join(list_models())}"
            )
        if self.trace.source == "dataset" and self.trace.dataset not in list_datasets():
            raise ValueError(
                f"trace.dataset: unknown dataset {self.trace.dataset!r}; "
                f"registered datasets: {', '.join(list_datasets())}"
            )
        for index, tier in enumerate(self.tiers):
            if (
                tier.sessions is not None
                and self.trace.num_sessions == 0
                and self.trace.source != "multi-turn"
            ):
                raise ValueError(
                    f"tiers[{index}].sessions: the trace defines no sessions "
                    "(set trace.num_sessions or use the 'multi-turn' source)"
                )
        return self

    # -- serialization ------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Plain-data representation; ``from_dict`` round-trips it exactly."""
        data = dataclasses.asdict(self)
        if self.preemption.starvation_limit is None:
            # A disabled guard keeps the pre-tier preemption schema (and
            # spec_hash) bit-for-bit.
            del data["preemption"]["starvation_limit"]
        if not self.tiers:
            # Untiered specs keep the pre-tier schema -- and therefore the
            # same canonical JSON and spec_hash -- bit-for-bit.
            del data["tiers"]
        else:
            data["tiers"] = [dataclasses.asdict(tier) for tier in self.tiers]
        if self.router is not None:
            # Colocated fleets keep the pre-disaggregation router schema
            # (and spec_hash) bit-for-bit.
            if self.router.topology == "colocated":
                del data["router"]["topology"]
            if self.router.disagg is None:
                del data["router"]["disagg"]
        # Static-world specs (no arrival process, no fleet timeline, no
        # windowing) keep the pre-timeline schema and spec_hash bit-for-bit.
        if self.arrival is None:
            del data["arrival"]
        else:
            arrival = dict(data["arrival"])
            arrival["bursts"] = [dataclasses.asdict(burst) for burst in self.arrival.bursts]
            arrival["warp"] = [dataclasses.asdict(phase) for phase in self.arrival.warp]
            if self.arrival.times is not None:
                arrival["times"] = list(self.arrival.times)
            data["arrival"] = arrival
        if not self.fleet_events:
            del data["fleet_events"]
        else:
            data["fleet_events"] = [dataclasses.asdict(event) for event in self.fleet_events]
        if self.autoscaler is None:
            del data["autoscaler"]
        if self.window_s is None:
            del data["window_s"]
        return data

    @staticmethod
    def from_dict(data: Mapping[str, Any]) -> ExperimentSpec:
        """Build a spec from nested mappings (e.g. parsed JSON).

        Missing sub-specs take their defaults; unknown keys raise with the
        field path so spec typos fail fast.
        """
        if not isinstance(data, Mapping):
            raise ValueError(f"experiment spec must be a mapping, got {type(data).__name__}")
        known = {f.name for f in dataclasses.fields(ExperimentSpec)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"experiment spec: unknown field(s) {', '.join(repr(k) for k in unknown)}; "
                f"known fields: {', '.join(sorted(known))}"
            )
        kwargs: dict[str, Any] = {}
        sub_specs = {
            "model": ModelSpec,
            "system": SystemSpec,
            "parallelism": ParallelismSpec,
            "allocator": AllocatorSpec,
            "engine": EngineSpec,
            "admission": AdmissionSpec,
            "preemption": PreemptionSpec,
            "prefill": PrefillSpec,
            "prefix_cache": PrefixCacheSpec,
            "trace": TraceSpec,
        }
        for key, value in data.items():
            if key in sub_specs:
                kwargs[key] = _from_mapping(sub_specs[key], value, key)
            elif key == "router":
                kwargs[key] = _router_from_data(value)
            elif key == "tiers":
                kwargs[key] = _tiers_from_data(value)
            elif key == "arrival":
                kwargs[key] = _arrival_from_data(value)
            elif key == "fleet_events":
                kwargs[key] = _fleet_events_from_data(value)
            elif key == "autoscaler":
                if value is None or isinstance(value, AutoscalerSpec):
                    kwargs[key] = value
                else:
                    kwargs[key] = _from_mapping(AutoscalerSpec, value, "autoscaler")
            else:
                kwargs[key] = value
        return ExperimentSpec(**kwargs)

    def to_json(self, indent: int | None = 2) -> str:
        """Canonical JSON encoding (sorted keys)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @staticmethod
    def from_json(text: str) -> ExperimentSpec:
        """Parse a spec from its JSON encoding."""
        return ExperimentSpec.from_dict(json.loads(text))

    @property
    def spec_hash(self) -> str:
        """Stable short hash of the canonical JSON (for report provenance)."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:12]

    def with_overrides(self, overrides: Mapping[str, Any]) -> ExperimentSpec:
        """Return a copy with dotted-path overrides applied.

        ``spec.with_overrides({"system.pimphony": "baseline",
        "trace.num_requests": 64})`` is the programmatic form of the CLI's
        ``--set`` flags; it round-trips through ``to_dict`` so overrides are
        validated exactly like JSON input.
        """
        data = self.to_dict()
        for path, value in overrides.items():
            apply_override(data, path, value)
        return ExperimentSpec.from_dict(data)


def _list_index(node: list, part: str, path: str) -> int:
    """Resolve a list index path component; ``len(node)`` is the append slot."""
    if not part.isdigit():
        raise ValueError(
            f"invalid override path {path!r}: {part!r} must be a list index "
            f"(0..{len(node)})"
        )
    index = int(part)
    if index > len(node):
        raise ValueError(
            f"invalid override path {path!r}: index {index} is out of range "
            f"for a list of length {len(node)} (use {len(node)} to append)"
        )
    return index


def apply_override(data: dict[str, Any], path: str, value: Any) -> None:
    """Set ``value`` at a dotted ``path`` inside a nested spec dict.

    Intermediate mappings are created as needed (so ``router.replicas=4``
    works even when the base spec has ``router: null``).  Numeric path
    components index into lists, which are also created on demand: on an
    untiered spec ``tiers.0.name=premium`` creates the ``tiers`` list and
    its first tier; an index equal to the list length appends a new entry.
    """
    parts = path.split(".")
    if not all(parts):
        raise ValueError(f"invalid override path {path!r}")
    node: Any = data
    for position, part in enumerate(parts[:-1]):
        # The next component decides what this step must contain: a list
        # when it is numeric, a mapping otherwise.
        want_list = parts[position + 1].isdigit()
        if isinstance(node, list):
            index = _list_index(node, part, path)
            if index == len(node):
                node.append([] if want_list else {})
            child = node[index]
            if not isinstance(child, list if want_list else dict):
                child = [] if want_list else {}
                node[index] = child
        else:
            child = node.get(part)
            if isinstance(child, list) and not want_list:
                raise ValueError(
                    f"invalid override path {path!r}: {parts[position + 1]!r} "
                    f"must be a list index (0..{len(child)})"
                )
            if not isinstance(child, list if want_list else dict):
                child = [] if want_list else {}
                node[part] = child
        node = child
    last = parts[-1]
    if isinstance(node, list):
        index = _list_index(node, last, path)
        if index == len(node):
            node.append(value)
        else:
            node[index] = value
    else:
        node[last] = value


__all__ = [
    "ALLOCATOR_MODES",
    "ARRIVAL_MODES",
    "ENGINE_MODES",
    "FLEET_EVENT_KINDS",
    "PIMPHONY_PRESETS",
    "PREEMPTION_MODES",
    "PREFILL_MODES",
    "SCALER_SIGNALS",
    "TOPOLOGIES",
    "ArrivalSpec",
    "AutoscalerSpec",
    "BurstSpec",
    "DisaggSpec",
    "FleetEventSpec",
    "ModelSpec",
    "SystemSpec",
    "ParallelismSpec",
    "AllocatorSpec",
    "EngineSpec",
    "AdmissionSpec",
    "PreemptionSpec",
    "PrefillSpec",
    "PrefixCacheSpec",
    "TierSpec",
    "TraceSpec",
    "RouterSpec",
    "WarpPhaseSpec",
    "ExperimentSpec",
    "apply_override",
]
