"""The unified result type of the declarative experiment API.

``run(spec)`` always returns a :class:`RunReport`, whether the spec ran a
single :class:`~repro.serving.engine.ServingEngine` or a multi-replica
:class:`~repro.serving.router.ReplicaRouter` fleet --
``ServingResult`` / ``EngineResult`` / ``FleetResult`` become internal
details behind the :meth:`RunReport.from_engine` and
:meth:`RunReport.from_fleet` adapters.  Provenance is carried in typed
fields (``spec``, ``spec_hash``, ``seed``, ``num_replicas``, policy names)
instead of loose metadata dicts, so downstream tooling reads attributes
rather than guessing dictionary keys.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.analysis.reporting import fleet_summary_table, tier_summary_table
from repro.serving.engine import EngineResult
from repro.serving.lifecycle import LatencyStats, RequestRecord, WindowStats, windowed_stats
from repro.serving.router import FleetResult

if TYPE_CHECKING:
    from collections.abc import Sequence

    from repro.api.spec import ExperimentSpec
    from repro.serving.autoscaler import ScalingDecision
    from repro.serving.disagg import DisaggResult
    from repro.serving.fleet_events import DynamicFleetResult, SegmentRecord


@dataclass(frozen=True)
class TierReport:
    """Per-tier slice of one run: goodput, SLO attainment, pressure, latency.

    Counts are over the run's request records; a request that never
    finished (or was dropped) counts against goodput and against any
    deadline its tier configured.  A record without a deadline attains
    that SLO vacuously, so ``goodput`` reduces to the finished fraction
    for tiers with no deadlines.

    Attributes:
        name: Tier name (``"untiered"`` for the leftover bucket).
        priority: The tier's scheduling priority.
        num_requests: Requests tagged into this tier that reached an engine.
        requests_finished: Of those, how many ran to completion.
        goodput_requests: Finished inside every configured deadline.
        ttft_attained / tpot_attained: Requests meeting each deadline
            (vacuously when the tier sets none).
        preemptions: Evictions suffered by this tier's requests.
        latency: TTFT / TPOT / end-to-end statistics over the tier's
            finished requests.
    """

    name: str
    priority: int
    num_requests: int
    requests_finished: int
    goodput_requests: int
    ttft_attained: int
    tpot_attained: int
    preemptions: int
    latency: LatencyStats

    @property
    def goodput(self) -> float:
        """Fraction of the tier's requests finishing inside their SLO."""
        return self.goodput_requests / self.num_requests if self.num_requests else 0.0

    @property
    def ttft_attainment(self) -> float:
        """Fraction of the tier's requests meeting the TTFT deadline."""
        return self.ttft_attained / self.num_requests if self.num_requests else 0.0

    @property
    def tpot_attainment(self) -> float:
        """Fraction of the tier's requests meeting the TPOT deadline."""
        return self.tpot_attained / self.num_requests if self.num_requests else 0.0

    @staticmethod
    def from_records(name: str, priority: int, records: Sequence[RequestRecord]) -> TierReport:
        return TierReport(
            name=name,
            priority=priority,
            num_requests=len(records),
            requests_finished=sum(1 for record in records if record.finished),
            goodput_requests=sum(1 for record in records if record.slo_ok),
            ttft_attained=sum(1 for record in records if record.ttft_ok),
            tpot_attained=sum(1 for record in records if record.tpot_ok),
            preemptions=sum(record.preemptions for record in records),
            latency=LatencyStats.from_records(records),
        )


def _tier_reports(
    spec: ExperimentSpec, records: Sequence[RequestRecord]
) -> tuple[TierReport, ...]:
    """Slice a run's request records into the spec's tiers, in spec order.

    Records whose tier matches no spec tier (including ``None``) land in a
    trailing ``"untiered"`` bucket.  Requests dropped at the *router*
    never reach an engine and leave no record, so they appear in no tier
    slice -- the all-up rollup still counts them via ``num_requests``.
    """
    if not spec.tiers:
        return ()
    buckets: dict[str, list[RequestRecord]] = {tier.name: [] for tier in spec.tiers}
    leftovers: list[RequestRecord] = []
    for record in records:
        if record.tier in buckets:
            buckets[record.tier].append(record)
        else:
            leftovers.append(record)
    reports = [
        TierReport.from_records(tier.name, tier.priority, buckets[tier.name])
        for tier in spec.tiers
    ]
    if leftovers and "untiered" not in buckets:
        reports.append(TierReport.from_records("untiered", 0, leftovers))
    return tuple(reports)


@dataclass(frozen=True)
class DisaggReport:
    """Two-pool accounting of a disaggregated run (absent for colocated).

    Attributes:
        prefill_replicas / decode_replicas: The fleet split (their sum is
            the run's total hardware, ``RunReport.num_replicas``).
        handoffs: Requests whose finished KV crossed the link.
        kv_transfer_s: Total simulated link time charged before first
            decode, summed over handoffs.
        kv_transfer_bytes: Total KV bytes shipped over the link.
        prefill_dropped: Requests no prefill replica could ever hold.
        prefill_busy_seconds: Prefill service time summed over the pool.
        prefill_makespan_s: When the last prefill replica drained.
        prefill_pool_utilization / decode_pool_utilization: Mean busy
            fraction of each pool over its makespan.
    """

    prefill_replicas: int
    decode_replicas: int
    handoffs: int
    kv_transfer_s: float
    kv_transfer_bytes: int
    prefill_dropped: int
    prefill_busy_seconds: float
    prefill_makespan_s: float
    prefill_pool_utilization: float
    decode_pool_utilization: float

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class FleetTimelineReport:
    """Timeline accounting of a dynamic-fleet run (absent for static fleets).

    Attributes:
        replica_seconds: Total provisioned replica time across segments
            (the capacity bill an autoscaler tries to shrink).
        peak_replicas: Peak concurrently provisioned replicas -- what a
            static fleet would have had to hold for the whole run.
        failures: ``replica_down`` events applied.
        restarts: Victim re-dispatches after failures.
        kv_lost_tokens: Reserved KV tokens lost to failures (re-warmed on
            the victims' new replicas).
        scale_ups / scale_downs: Autoscaler decisions by direction.
        segments: Per-engine-lifetime billing records.
        decisions: The autoscaler's full decision log.
    """

    replica_seconds: float
    peak_replicas: int
    failures: int
    restarts: int
    kv_lost_tokens: int
    scale_ups: int
    scale_downs: int
    segments: tuple[SegmentRecord, ...] = ()
    decisions: tuple[ScalingDecision, ...] = ()

    @property
    def replica_hours(self) -> float:
        """Provisioned replica-hours (the capacity-planning currency)."""
        return self.replica_seconds / 3600.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "replica_seconds": self.replica_seconds,
            "replica_hours": self.replica_hours,
            "peak_replicas": self.peak_replicas,
            "failures": self.failures,
            "restarts": self.restarts,
            "kv_lost_tokens": self.kv_lost_tokens,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "segments": [dataclasses.asdict(segment) for segment in self.segments],
            "decisions": [dataclasses.asdict(decision) for decision in self.decisions],
        }


def _windows(spec: ExperimentSpec, records: Sequence[RequestRecord]) -> tuple[WindowStats, ...]:
    """Per-interval stats when the spec asks for them (else empty)."""
    if spec.window_s is None:
        return ()
    return windowed_stats(records, spec.window_s)


@dataclass(frozen=True)
class RunReport:
    """Metrics plus provenance of one executed :class:`ExperimentSpec`.

    Attributes:
        spec: The exact spec that ran (round-trips to JSON).
        spec_hash: Short stable hash of the spec's canonical JSON.
        seed: The experiment seed the trace/arrivals/sessions derive from.
        num_replicas: Engines that served the trace (1 for engine runs).
        routing_policy: Router policy name, or ``None`` for engine runs.
        system_kind: Registry key of the system model.
        admission_policy: Admission policy name at each engine.
        prefill_mode: ``"none"`` / ``"blocking"`` / ``"chunked"``.
        engine_mode: ``"scalar"`` or ``"fast"`` -- which engine core ran
            the experiment (parity-pinned, so metrics are identical).
        num_requests: Requests in the input trace.
        requests_served / requests_dropped: Fleet-wide admission outcomes.
        total_output_tokens: Tokens generated across all replicas.
        busy_seconds: Summed busy decode time across replicas.
        makespan_s: Wall-clock completion time (slowest replica).
        average_batch_size: Step-weighted mean decode batch size.
        peak_batch_size: Largest batch observed on any replica.
        average_pim_utilization: Step-weighted mean PIM busy fraction.
        average_capacity_utilization: Step-weighted mean KV occupancy.
        load_imbalance: Max-over-mean of per-replica busy seconds.
        latency: TTFT / TPOT / end-to-end percentile statistics (merged
            over the union of request records for fleets).
        replica_results: The underlying per-engine results (escape hatch).
        preemption_policy: Preemption policy name at each engine
            (``"none"`` under the admit-to-completion contract).
        preemptions: Victim evictions across all replicas.
        recompute_tokens: Tokens re-prefilled by recompute-mode restores.
        preemption_overhead_s: Clock charged to page-out/page-in work.
        requeue_delay_mean_s: Mean paged-out-to-restored stall per
            preemption (union of request records for fleets).
        prefix_cache_enabled: Whether each engine carried a prefix cache.
        prefix_hits / prefix_misses: Prefix-cache lookups across replicas.
        prefix_hit_tokens: Prompt tokens discounted from prefill/restore
            work by cache hits.
        prefix_evictions: Session prefixes evicted under capacity pressure.
        tier_reports: Per-tier goodput/attainment/latency slices
            (:class:`TierReport`), in spec order plus a trailing
            ``"untiered"`` bucket when leftover requests exist; empty for
            untiered specs.
    """

    spec: ExperimentSpec
    spec_hash: str
    seed: int
    num_replicas: int
    routing_policy: str | None
    system_kind: str
    admission_policy: str
    prefill_mode: str
    num_requests: int
    requests_served: int
    requests_dropped: int
    total_output_tokens: int
    busy_seconds: float
    makespan_s: float
    average_batch_size: float
    peak_batch_size: int
    average_pim_utilization: float
    average_capacity_utilization: float
    load_imbalance: float
    latency: LatencyStats
    replica_results: tuple[EngineResult, ...] = field(repr=False, compare=False)
    engine_mode: str = "scalar"
    preemption_policy: str = "none"
    preemptions: int = 0
    recompute_tokens: int = 0
    preemption_overhead_s: float = 0.0
    requeue_delay_mean_s: float = 0.0
    prefix_cache_enabled: bool = False
    prefix_hits: int = 0
    prefix_misses: int = 0
    prefix_hit_tokens: int = 0
    prefix_evictions: int = 0
    #: Per-tier metric slices (empty for untiered specs, whose report
    #: schema stays bit-compatible with the pre-tier API).
    tier_reports: tuple[TierReport, ...] = ()
    #: Two-pool handoff accounting (``None`` for colocated runs, whose
    #: report schema stays bit-compatible with the pre-disagg API).
    disagg: DisaggReport | None = None
    #: Per-interval SLO attainment / goodput series (empty unless the spec
    #: sets ``window_s``; reports without windows stay bit-compatible).
    windows: tuple[WindowStats, ...] = ()
    #: Dynamic-fleet timeline accounting (``None`` for static fleets).
    fleet_timeline: FleetTimelineReport | None = None
    _fleet: FleetResult | None = field(default=None, repr=False, compare=False)

    # -- derived metrics ----------------------------------------------------

    @property
    def throughput_tokens_per_s(self) -> float:
        """Tokens per busy decode second (the single-engine metric)."""
        if self.busy_seconds <= 0:
            return 0.0
        return self.total_output_tokens / self.busy_seconds

    @property
    def aggregate_throughput_tokens_per_s(self) -> float:
        """Tokens per wall-clock second across the fleet (tokens/makespan)."""
        if self.makespan_s <= 0:
            return 0.0
        return self.total_output_tokens / self.makespan_s

    @property
    def ttft_mean_s(self) -> float:
        return self.latency.ttft_mean_s

    @property
    def ttft_p95_s(self) -> float:
        return self.latency.ttft_p95_s

    @property
    def tpot_mean_s(self) -> float:
        return self.latency.tpot_mean_s

    @property
    def latency_p50_s(self) -> float:
        return self.latency.latency_p50_s

    @property
    def latency_p95_s(self) -> float:
        return self.latency.latency_p95_s

    @property
    def latency_p99_s(self) -> float:
        return self.latency.latency_p99_s

    @property
    def prefix_hit_rate(self) -> float:
        """Fleet-wide prefix-cache hit fraction (0 when the cache is off)."""
        lookups = self.prefix_hits + self.prefix_misses
        return self.prefix_hits / lookups if lookups else 0.0

    @property
    def goodput_requests(self) -> int:
        """Requests finishing inside their SLO, summed over every tier.

        Meaningful for tiered runs only (0 when the spec declares no
        tiers, since there are no deadlines to attain).
        """
        return sum(tier.goodput_requests for tier in self.tier_reports)

    @property
    def goodput(self) -> float:
        """All-up goodput fraction over the input trace (tiered runs).

        Router-dropped requests never reach an engine yet still count
        against the denominator -- an operator buys finished-in-SLO
        requests out of everything submitted.
        """
        if not self.tier_reports or self.num_requests <= 0:
            return 0.0
        return self.goodput_requests / self.num_requests

    def tier_report(self, name: str) -> TierReport:
        """The named tier's slice; raises ``KeyError`` for unknown names."""
        for tier in self.tier_reports:
            if tier.name == name:
                return tier
        raise KeyError(
            f"no tier named {name!r}; tiers: "
            f"{', '.join(tier.name for tier in self.tier_reports) or '<none>'}"
        )

    # -- adapters -----------------------------------------------------------

    @staticmethod
    def from_engine(spec: ExperimentSpec, result: EngineResult) -> RunReport:
        """Wrap a single-engine run; metrics are the engine's, verbatim."""
        return RunReport(
            spec=spec,
            spec_hash=spec.spec_hash,
            seed=spec.seed,
            num_replicas=1,
            routing_policy=None,
            system_kind=spec.system.kind,
            admission_policy=result.admission_policy,
            prefill_mode=result.prefill_mode,
            num_requests=spec.trace.num_requests,
            requests_served=result.requests_served,
            requests_dropped=result.requests_dropped,
            total_output_tokens=result.total_output_tokens,
            busy_seconds=result.total_seconds,
            makespan_s=result.makespan_s,
            average_batch_size=result.average_batch_size,
            peak_batch_size=result.peak_batch_size,
            average_pim_utilization=result.average_pim_utilization,
            average_capacity_utilization=result.average_capacity_utilization,
            load_imbalance=1.0,
            latency=result.latency,
            replica_results=(result,),
            engine_mode=spec.engine.mode,
            preemption_policy=result.preemption_policy,
            preemptions=result.preemptions,
            recompute_tokens=result.recompute_tokens,
            preemption_overhead_s=result.preemption_overhead_s,
            requeue_delay_mean_s=result.requeue_delay_mean_s,
            prefix_cache_enabled=result.prefix_cache_enabled,
            prefix_hits=result.prefix_hits,
            prefix_misses=result.prefix_misses,
            prefix_hit_tokens=result.prefix_hit_tokens,
            prefix_evictions=result.prefix_evictions,
            tier_reports=_tier_reports(spec, result.request_records),
            windows=_windows(spec, result.request_records),
        )

    @staticmethod
    def from_fleet(spec: ExperimentSpec, fleet: FleetResult) -> RunReport:
        """Wrap a routed fleet run; metrics are the fleet merge, verbatim."""
        replicas = fleet.replica_results
        total_steps = sum(result.steps for result in replicas)

        def _step_weighted(metric: str) -> float:
            if total_steps == 0:
                return 0.0
            return (
                sum(getattr(result, metric) * result.steps for result in replicas)
                / total_steps
            )

        total_preemptions = sum(result.preemptions for result in replicas)
        total_stall = sum(
            record.stall_s for record in fleet.request_records if record.preemptions
        )
        return RunReport(
            spec=spec,
            spec_hash=spec.spec_hash,
            seed=spec.seed,
            num_replicas=fleet.num_replicas,
            routing_policy=fleet.policy,
            system_kind=spec.system.kind,
            admission_policy=replicas[0].admission_policy if replicas else "fcfs",
            prefill_mode=replicas[0].prefill_mode if replicas else "none",
            num_requests=spec.trace.num_requests,
            requests_served=fleet.requests_served,
            requests_dropped=fleet.requests_dropped,
            total_output_tokens=fleet.total_output_tokens,
            busy_seconds=fleet.busy_seconds,
            makespan_s=fleet.makespan_s,
            average_batch_size=_step_weighted("average_batch_size"),
            peak_batch_size=max((result.peak_batch_size for result in replicas), default=0),
            average_pim_utilization=_step_weighted("average_pim_utilization"),
            average_capacity_utilization=_step_weighted("average_capacity_utilization"),
            load_imbalance=fleet.load_imbalance,
            latency=fleet.latency,
            replica_results=replicas,
            engine_mode=spec.engine.mode,
            preemption_policy=replicas[0].preemption_policy if replicas else "none",
            preemptions=total_preemptions,
            recompute_tokens=sum(result.recompute_tokens for result in replicas),
            preemption_overhead_s=sum(
                result.preemption_overhead_s for result in replicas
            ),
            requeue_delay_mean_s=(
                total_stall / total_preemptions if total_preemptions else 0.0
            ),
            prefix_cache_enabled=any(
                result.prefix_cache_enabled for result in replicas
            ),
            prefix_hits=fleet.prefix_hits,
            prefix_misses=fleet.prefix_misses,
            prefix_hit_tokens=fleet.prefix_hit_tokens,
            prefix_evictions=sum(result.prefix_evictions for result in replicas),
            tier_reports=_tier_reports(spec, fleet.request_records),
            windows=_windows(spec, fleet.request_records),
            _fleet=fleet,
        )

    @staticmethod
    def from_dynamic(spec: ExperimentSpec, result: DynamicFleetResult) -> RunReport:
        """Wrap a dynamic-fleet run (fleet events and/or autoscaler).

        The merged fleet metrics drive the report exactly as
        :meth:`from_fleet` does -- records are already stitched back to
        original arrivals, so TTFT and latency include failure stalls and
        re-warms.  ``num_replicas`` reports the spec's *initial* fleet
        (``router.replicas``); the timeline block carries what the fleet
        actually did: peak replicas, replica-hours billed, failures,
        restarts, KV lost, and the autoscaler's decision log.
        """
        assert spec.router is not None
        report = RunReport.from_fleet(spec, result.fleet)
        scale_ups = sum(1 for decision in result.decisions if decision.action == "scale_up")
        return dataclasses.replace(
            report,
            num_replicas=spec.router.replicas,
            fleet_timeline=FleetTimelineReport(
                replica_seconds=result.replica_seconds,
                peak_replicas=result.peak_replicas,
                failures=result.failures,
                restarts=result.restarts,
                kv_lost_tokens=result.kv_lost_tokens,
                scale_ups=scale_ups,
                scale_downs=len(result.decisions) - scale_ups,
                segments=result.segments,
                decisions=result.decisions,
            ),
        )

    @staticmethod
    def from_disagg(spec: ExperimentSpec, result: DisaggResult) -> RunReport:
        """Wrap a disaggregated two-pool run.

        The decode fleet's stitched records drive every latency metric (so
        TTFT spans prefill + transfer + decode); ``num_replicas`` counts
        *total* hardware -- both pools -- which is what makes the report
        comparable against an equal-hardware colocated fleet, and
        ``prefill_mode`` reports the spec's prefill discipline (the pool's)
        rather than the decode engines' ``"none"``.
        """
        assert spec.router is not None
        report = RunReport.from_fleet(spec, result.fleet)
        return dataclasses.replace(
            report,
            num_replicas=spec.router.replicas,
            prefill_mode=spec.prefill.mode,
            disagg=DisaggReport(
                prefill_replicas=result.prefill_replicas,
                decode_replicas=result.decode_replicas,
                handoffs=result.handoffs,
                kv_transfer_s=result.kv_transfer_s,
                kv_transfer_bytes=result.kv_transfer_bytes,
                prefill_dropped=result.prefill_dropped,
                prefill_busy_seconds=result.prefill_busy_seconds,
                prefill_makespan_s=result.prefill_makespan_s,
                prefill_pool_utilization=result.prefill_pool_utilization,
                decode_pool_utilization=result.decode_pool_utilization,
            ),
        )

    # -- views --------------------------------------------------------------

    @property
    def fleet(self) -> FleetResult:
        """The run as a :class:`FleetResult` (engine runs wrap as N=1)."""
        if self._fleet is not None:
            return self._fleet
        return FleetResult.from_replicas(self.routing_policy or "single", self.replica_results)

    @property
    def engine_result(self) -> EngineResult:
        """The single engine's result; raises for multi-replica runs."""
        if len(self.replica_results) != 1:
            raise ValueError(
                f"run has {len(self.replica_results)} replicas; "
                "use replica_results or fleet instead"
            )
        return self.replica_results[0]

    def summary_table(self, title: str = "") -> str:
        """Render the run with the fleet summary table (N=1 included).

        Tiered runs append a per-tier goodput/attainment table after the
        fleet rows; untiered runs print the fleet table alone, unchanged.
        """
        table = fleet_summary_table(self.fleet, title=title or self.spec.name)
        if self.tier_reports:
            table += "\n\n" + tier_summary_table(self.tier_reports, title="SLO tiers")
        return table

    def to_dict(self) -> dict[str, Any]:
        """JSON-safe representation: spec, provenance, metrics, replicas.

        Tiered runs add an all-up ``goodput`` pair and a ``tiers`` section
        to ``metrics``; disaggregated runs add ``kv_transfer_s`` /
        ``handoffs`` to ``metrics`` and a top-level ``disagg`` section;
        windowed runs add a ``windows`` series to ``metrics``; dynamic
        fleets add ``replica_hours`` / ``peak_replicas`` and a top-level
        ``fleet_timeline`` section.  Colocated untiered static runs emit
        the exact pre-tier schema, so their report JSON stays
        bit-identical.
        """
        metrics: dict[str, Any] = {
            "num_requests": self.num_requests,
            "requests_served": self.requests_served,
            "requests_dropped": self.requests_dropped,
            "total_output_tokens": self.total_output_tokens,
            "busy_seconds": self.busy_seconds,
            "makespan_s": self.makespan_s,
            "throughput_tokens_per_s": self.throughput_tokens_per_s,
            "aggregate_throughput_tokens_per_s": self.aggregate_throughput_tokens_per_s,
            "average_batch_size": self.average_batch_size,
            "peak_batch_size": self.peak_batch_size,
            "average_pim_utilization": self.average_pim_utilization,
            "average_capacity_utilization": self.average_capacity_utilization,
            "load_imbalance": self.load_imbalance,
            "preemptions": self.preemptions,
            "recompute_tokens": self.recompute_tokens,
            "preemption_overhead_s": self.preemption_overhead_s,
            "requeue_delay_mean_s": self.requeue_delay_mean_s,
            "prefix_cache_enabled": self.prefix_cache_enabled,
            "prefix_hits": self.prefix_hits,
            "prefix_misses": self.prefix_misses,
            "prefix_hit_rate": self.prefix_hit_rate,
            "prefix_hit_tokens": self.prefix_hit_tokens,
            "prefix_evictions": self.prefix_evictions,
            "latency": dataclasses.asdict(self.latency),
        }
        if self.tier_reports:
            metrics["goodput"] = self.goodput
            metrics["goodput_requests"] = self.goodput_requests
            metrics["tiers"] = {
                tier.name: {
                    "priority": tier.priority,
                    "num_requests": tier.num_requests,
                    "requests_finished": tier.requests_finished,
                    "goodput_requests": tier.goodput_requests,
                    "goodput": tier.goodput,
                    "goodput_rps": (
                        tier.goodput_requests / self.makespan_s
                        if self.makespan_s > 0
                        else 0.0
                    ),
                    "ttft_attainment": tier.ttft_attainment,
                    "tpot_attainment": tier.tpot_attainment,
                    "preemptions": tier.preemptions,
                    "latency": dataclasses.asdict(tier.latency),
                }
                for tier in self.tier_reports
            }
        if self.windows:
            metrics["windows"] = {
                "window_s": self.spec.window_s,
                "series": [
                    {
                        "start_s": window.start_s,
                        "end_s": window.end_s,
                        "arrivals": window.arrivals,
                        "finished": window.finished,
                        "goodput_requests": window.goodput_requests,
                        "goodput_fraction": window.goodput_fraction,
                        "ttft_attainment": window.ttft_attainment,
                        "tpot_attainment": window.tpot_attainment,
                        "ttft_p95_ms": window.latency.ttft_p95_s * 1e3,
                        "latency_p95_ms": window.latency.latency_p95_s * 1e3,
                    }
                    for window in self.windows
                ],
            }
        if self.fleet_timeline is not None:
            metrics["replica_hours"] = self.fleet_timeline.replica_hours
            metrics["peak_replicas"] = self.fleet_timeline.peak_replicas
        if self.disagg is not None:
            metrics["kv_transfer_s"] = self.disagg.kv_transfer_s
            metrics["handoffs"] = self.disagg.handoffs
        data: dict[str, Any] = {
            "spec": self.spec.to_dict(),
            "spec_hash": self.spec_hash,
            "seed": self.seed,
            "num_replicas": self.num_replicas,
            "routing_policy": self.routing_policy,
            "system_kind": self.system_kind,
            "admission_policy": self.admission_policy,
            "prefill_mode": self.prefill_mode,
            "engine_mode": self.engine_mode,
            "preemption_policy": self.preemption_policy,
            "metrics": metrics,
            "replicas": [
                {
                    "system": result.system_name,
                    "requests_served": result.requests_served,
                    "requests_dropped": result.requests_dropped,
                    "total_output_tokens": result.total_output_tokens,
                    "throughput_tokens_per_s": result.throughput_tokens_per_s,
                    "makespan_s": result.makespan_s,
                    "ttft_p95_ms": result.latency.ttft_p95_s * 1e3,
                    "latency_p99_ms": result.latency.latency_p99_s * 1e3,
                    "preemptions": result.preemptions,
                    "prefix_hits": result.prefix_hits,
                    "prefix_misses": result.prefix_misses,
                    "prefix_hit_rate": result.prefix_hit_rate,
                }
                for result in self.replica_results
            ],
        }
        if self.disagg is not None:
            data["disagg"] = self.disagg.to_dict()
        if self.fleet_timeline is not None:
            data["fleet_timeline"] = self.fleet_timeline.to_dict()
        return data


__all__ = ["DisaggReport", "FleetTimelineReport", "RunReport", "TierReport"]
