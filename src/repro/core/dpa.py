"""Dynamic PIM Access (DPA) controller, paper Sec. VI.

DPA is the PIM-side mechanism that makes dynamic KV-cache memory management
possible: compact ``DYN-LOOP`` / ``DYN-MODI`` instructions whose loop bounds
and operand addresses are resolved at dispatch time against a per-module
VA2PA table, plus lazy chunk-granular allocation on the host side.  The
controller below owns the allocator and translation table of one module and
tracks the per-request token state that the on-module dispatcher needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.dpa_encoding import dpa_instruction_footprint, static_instruction_footprint
from repro.memory.chunked_alloc import DEFAULT_CHUNK_BYTES, ChunkedAllocator
from repro.memory.lifecycle import PreemptedState
from repro.memory.static_alloc import StaticAllocator
from repro.memory.va2pa import VA2PATable


@dataclass
class DPAController:
    """Per-module dynamic memory controller.

    Attributes:
        capacity_bytes: KV-cache capacity of the module.
        bytes_per_token: KV bytes appended per token (model dependent, for
            the shard of heads/layers this module owns).
        chunk_bytes: Allocation granularity (1MB in the paper).
    """

    capacity_bytes: int
    bytes_per_token: int
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    allocator: ChunkedAllocator = field(init=False)
    token_lengths: dict[int, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.allocator = ChunkedAllocator(
            capacity_bytes=self.capacity_bytes,
            bytes_per_token=self.bytes_per_token,
            chunk_bytes=self.chunk_bytes,
        )

    @property
    def va2pa(self) -> VA2PATable:
        return self.allocator.table

    # -- request lifecycle -------------------------------------------------

    def can_admit(self, tokens: int) -> bool:
        """Whether a request whose context grows to ``tokens`` fits now.

        Pair with :meth:`reserve` of the same ``tokens`` for a
        no-mid-decode-failure guarantee; pairing with :meth:`admit` (which
        commits only the prefix) keeps lazy, may-fail-while-growing
        semantics.
        """
        return self.allocator.can_admit(tokens)

    def could_ever_fit(self, tokens: int) -> bool:
        """Whether ``tokens`` of context fits an empty module at all."""
        return self.allocator.could_ever_fit(tokens)

    def admit(self, request_id: int, initial_tokens: int) -> None:
        """Admit a request: allocate its prefix chunks and register metadata."""
        self.allocator.admit(request_id, initial_tokens)
        self.token_lengths[request_id] = initial_tokens

    def reserve(
        self, request_id: int, initial_tokens: int, final_tokens: int | None = None
    ) -> None:
        """Admit a request, committing chunks for its final context up front.

        Omitting ``final_tokens`` commits only the prefix (the incremental
        lifecycle contract); growth then claims chunks on demand.
        """
        self.allocator.reserve(request_id, initial_tokens, final_tokens)
        self.token_lengths[request_id] = initial_tokens

    def step(self, request_id: int, new_tokens: int = 1) -> None:
        """Advance a request by ``new_tokens`` generated tokens.

        Token progression is handled by the on-module dispatcher without
        host intervention; the host is only involved when a new chunk must
        be mapped (tracked by the allocator's ``host_interventions``).

        Raises:
            CapacityExceeded: if a new chunk is required but none is free.
        """
        self.allocator.grow(request_id, new_tokens)
        self.token_lengths[request_id] += new_tokens

    def grow(self, request_id: int, count: int = 1) -> None:
        """Lifecycle-contract alias of :meth:`step`."""
        self.step(request_id, count)

    def append_token(self, request_id: int, count: int = 1) -> None:
        """Legacy-protocol alias of :meth:`step`."""
        self.step(request_id, count)

    def preempt(self, request_id: int) -> PreemptedState:
        """Page a request's chunks out and forget its dispatcher state."""
        state = self.allocator.preempt(request_id)
        self.token_lengths.pop(request_id, None)
        return state

    def restore(self, request_id: int, state: PreemptedState) -> None:
        """Re-map a preempted request's chunks and re-register metadata."""
        self.allocator.restore(request_id, state)
        self.token_lengths[request_id] = state.tokens

    def release(self, request_id: int) -> None:
        self.allocator.release(request_id)
        self.token_lengths.pop(request_id, None)

    # -- metrics -------------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes backing live tokens across the module's requests."""
        return self.allocator.used_bytes

    @property
    def num_requests(self) -> int:
        return self.allocator.num_requests

    @property
    def capacity_utilization(self) -> float:
        return self.allocator.capacity_utilization

    @property
    def host_interventions(self) -> int:
        return self.allocator.host_interventions

    def instruction_footprint(self, context_length: int, kv_heads: int, layers: int = 1) -> int:
        """Instruction-buffer bytes with DPA encoding (context independent)."""
        return dpa_instruction_footprint(context_length, kv_heads=kv_heads, layers=layers)

    @staticmethod
    def static_instruction_footprint(context_length: int, kv_heads: int, layers: int = 1) -> int:
        """Instruction-buffer bytes a static compiler would need."""
        return static_instruction_footprint(context_length, kv_heads=kv_heads, layers=layers)


def make_static_allocator(
    capacity_bytes: int, bytes_per_token: int, max_context_tokens: int
) -> StaticAllocator:
    """Factory for the baseline worst-case (``T_max``) allocator."""
    return StaticAllocator(
        capacity_bytes=capacity_bytes,
        max_context_tokens=max_context_tokens,
        bytes_per_token=bytes_per_token,
    )
