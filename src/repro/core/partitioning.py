"""Intra-module attention partitioning: HFP (baseline) vs. TCP (PIMphony).

Head/Batch-First Partitioning (HFP) assigns whole (request, KV-head) pairs
to channels.  With long contexts the number of such pairs resident in one
module shrinks (a single request can fill a channel), so channels idle and
imbalance between requests of different lengths caps throughput at the
slowest channel (paper Sec. IV-A/B, Fig. 6(b,c)).

Token-Centric Partitioning (TCP) splits the *token* dimension of every
(request, KV-head) pair across all channels of the module, so every channel
works on an equal token share regardless of batch composition
(Fig. 6(d,e)).  ``SV`` partial results are reduced once per module through
the PIM HUB's GPR/EPU; the reduction cost is modelled explicitly and is
negligible (<0.2% of attention latency in the paper).
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.pim.config import PIMChannelConfig
from repro.pim.kernels import attention_head_cycles
from repro.pim.simulator import CycleBreakdown, ZERO_BREAKDOWN
from repro.pim.timing import PIMTiming


@dataclass(frozen=True)
class AttentionTask:
    """One (request, KV-head) attention slice to be mapped onto channels.

    Attributes:
        request_id: Owning request.
        kv_head: KV-head index within the layer.
        context_length: Tokens currently in this request's KV cache.
        group_size: Query heads sharing this KV head (GQA group size).
    """

    request_id: int
    kv_head: int
    context_length: int
    group_size: int = 1

    def __post_init__(self) -> None:
        if self.context_length < 0:
            raise ValueError("context_length must be non-negative")
        if self.group_size < 1:
            raise ValueError("group_size must be >= 1")


@dataclass(frozen=True)
class TaskSlice:
    """A share of one attention task assigned to a specific channel."""

    task: AttentionTask
    tokens: int


@dataclass
class ChannelAssignment:
    """Result of partitioning attention tasks across a module's channels."""

    num_channels: int
    slices: dict[int, list[TaskSlice]] = field(default_factory=dict)
    strategy: str = ""

    def __post_init__(self) -> None:
        if self.num_channels <= 0:
            raise ValueError("num_channels must be positive")
        for channel in range(self.num_channels):
            self.slices.setdefault(channel, [])

    def add(self, channel: int, task: AttentionTask, tokens: int) -> None:
        if channel < 0 or channel >= self.num_channels:
            raise ValueError(f"channel {channel} outside 0..{self.num_channels - 1}")
        if tokens < 0:
            raise ValueError("tokens must be non-negative")
        if tokens > 0:
            self.slices[channel].append(TaskSlice(task=task, tokens=tokens))

    def tokens_per_channel(self) -> list[int]:
        return [
            sum(task_slice.tokens for task_slice in self.slices[channel])
            for channel in range(self.num_channels)
        ]

    @property
    def active_channels(self) -> int:
        return sum(1 for tokens in self.tokens_per_channel() if tokens > 0)

    @property
    def load_balance(self) -> float:
        """Mean channel load divided by max channel load (1.0 = balanced)."""
        loads = self.tokens_per_channel()
        peak = max(loads, default=0)
        if peak == 0:
            return 0.0
        return sum(loads) / (len(loads) * peak)


class Partitioner:
    """Base class for intra-module attention partitioning strategies."""

    name = "base"

    def partition(
        self, tasks: Sequence[AttentionTask], num_channels: int
    ) -> ChannelAssignment:
        raise NotImplementedError


class HeadFirstPartitioner(Partitioner):
    """Baseline HFP: whole (request, KV-head) pairs per channel, round-robin.

    Tasks are placed on the currently least-loaded channel, which is the
    strongest reasonable version of the baseline (simple round-robin is
    strictly worse under length imbalance).
    """

    name = "hfp"

    def partition(
        self, tasks: Sequence[AttentionTask], num_channels: int
    ) -> ChannelAssignment:
        assignment = ChannelAssignment(num_channels=num_channels, strategy=self.name)
        loads = [0] * num_channels
        ordered = sorted(tasks, key=lambda task: -task.context_length)
        for task in ordered:
            channel = min(range(num_channels), key=lambda index: loads[index])
            assignment.add(channel, task, task.context_length)
            loads[channel] += task.context_length
        return assignment


class TokenCentricPartitioner(Partitioner):
    """PIMphony TCP: split every task's tokens across all channels."""

    name = "tcp"

    def partition(
        self, tasks: Sequence[AttentionTask], num_channels: int
    ) -> ChannelAssignment:
        assignment = ChannelAssignment(num_channels=num_channels, strategy=self.name)
        for task in tasks:
            base, remainder = divmod(task.context_length, num_channels)
            for channel in range(num_channels):
                tokens = base + (1 if channel < remainder else 0)
                assignment.add(channel, task, tokens)
        return assignment


@dataclass(frozen=True)
class AssignmentEvaluation:
    """Latency and utilisation of a partitioned attention step on a module."""

    channel_cycles: tuple[float, ...]
    module_cycles: float
    reduction_cycles: float
    channel_utilization: float
    breakdown: CycleBreakdown

    @property
    def total_cycles(self) -> float:
        return self.module_cycles + self.reduction_cycles


def _reduction_cycles(
    assignment: ChannelAssignment, head_dim: int, timing: PIMTiming
) -> float:
    """Cost of the per-module SV partial-result reduction through the HUB.

    Only TCP needs it: each channel contributes one ``head_dim`` wide partial
    vector per (request, KV-head, query) and the EPU reduces them.  Channels
    stream their partials to the GPR over independent per-channel links, so
    the reduction time is governed by one channel's contribution stream.
    """
    if assignment.strategy != "tcp":
        return 0.0
    contributions = 0
    for channel in range(assignment.num_channels):
        for task_slice in assignment.slices[channel]:
            contributions += task_slice.task.group_size
    tiles = -(-head_dim // 16)
    per_channel_contributions = contributions / max(1, assignment.num_channels)
    return float(per_channel_contributions * tiles * timing.dram.t_ccds)


def evaluate_assignment(
    assignment: ChannelAssignment,
    head_dim: int,
    channel: PIMChannelConfig,
    timing: PIMTiming,
    policy: str,
    row_reuse: bool = True,
) -> AssignmentEvaluation:
    """Evaluate the attention latency of an assignment on one module.

    Each channel executes the ``QK^T`` + ``SV`` kernels of its assigned token
    slices back to back; the module finishes when its slowest channel does.
    Channel utilisation is the mean busy fraction across all channels, which
    is the quantity plotted in paper Fig. 4.
    """
    channel_cycles: list[float] = []
    channel_breakdowns: list[CycleBreakdown] = []
    for index in range(assignment.num_channels):
        breakdown = ZERO_BREAKDOWN
        for task_slice in assignment.slices[index]:
            breakdown = breakdown + attention_head_cycles(
                tokens=task_slice.tokens,
                head_dim=head_dim,
                channel=channel,
                timing=timing,
                policy=policy,
                group_size=task_slice.task.group_size,
                row_reuse=row_reuse,
            )
        channel_cycles.append(breakdown.total)
        channel_breakdowns.append(breakdown)

    module_cycles = max(channel_cycles, default=0.0)
    reduction = _reduction_cycles(assignment, head_dim, timing)
    if module_cycles > 0:
        utilization = sum(channel_cycles) / (len(channel_cycles) * module_cycles)
    else:
        utilization = 0.0

    aggregate = ZERO_BREAKDOWN
    for breakdown in channel_breakdowns:
        aggregate = aggregate + breakdown
    return AssignmentEvaluation(
        channel_cycles=tuple(channel_cycles),
        module_cycles=module_cycles,
        reduction_cycles=reduction,
        channel_utilization=utilization,
        breakdown=aggregate,
    )


def tasks_from_batch(
    context_lengths: Iterable[int],
    num_kv_heads: int,
    group_size: int = 1,
) -> list[AttentionTask]:
    """Build the attention task list of one decode step for one module."""
    tasks = []
    for request_id, context in enumerate(context_lengths):
        for kv_head in range(num_kv_heads):
            tasks.append(
                AttentionTask(
                    request_id=request_id,
                    kv_head=kv_head,
                    context_length=context,
                    group_size=group_size,
                )
            )
    return tasks
