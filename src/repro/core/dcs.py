"""Dynamic PIM Command Scheduling (DCS), paper Sec. V.

DCS extends the PIM controller with a Dependency Table (which command last
touched each GBuf / OBuf entry) and a Status Table (when that access
completes), allowing I/O transfer commands and ``MAC`` commands to issue
out of order with respect to each other whenever no true per-entry data
dependency exists.  Combined with I/O-aware buffering (the expanded Output
Buffers), this hides input/output transfer time behind computation.
"""

from __future__ import annotations

from repro.pim.config import PIMChannelConfig
from repro.pim.scheduling import TableDrivenScheduler
from repro.pim.timing import PIMTiming


class DCSScheduler(TableDrivenScheduler):
    """PIMphony's dependency-aware, entry-granular command scheduler."""

    name = "dcs"

    def __init__(self, timing: PIMTiming, channel: PIMChannelConfig | None = None) -> None:
        super().__init__(
            timing,
            channel,
            gbuf_regions=0,
            out_regions=0,
            handoff_penalty=0,
            mac_pipelining=True,
        )

    @property
    def metadata_table_bytes(self) -> int:
        """SRAM footprint of the D-Table and S-Table (paper: 576B/controller).

        Each GBuf entry needs a command id and expiration timestamp (6B) and
        each OBuf entry additionally needs the ``is-MAC`` flag.
        """
        gbuf_entries = self.channel.gbuf_entries
        obuf_entries = self.channel.obuf_entries
        return gbuf_entries * 6 + obuf_entries * 12
