"""On-module PIM instruction dispatcher, paper Sec. VI-C and Fig. 11(a).

The dispatcher lives in the PIM HUB and expands compact DPA-encoded
instruction sequences into executable instruction streams at run time.  It
holds three structures: an instruction buffer with the DPA-encoded kernels,
a configuration buffer with per-request metadata (request id, current token
length), and the VA2PA table used to resolve virtual row addresses.  Token
progression after every decoding step is handled locally, so the host is
only contacted when a request is assigned, grows past its mapped chunks, or
completes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.dpa_encoding import EncodedLoop
from repro.memory.va2pa import VA2PATable
from repro.pim.isa import PIMInstruction, PIMOpcode


@dataclass
class RequestContext:
    """Per-request entry of the dispatcher's configuration buffer."""

    request_id: int
    token_length: int
    tokens_per_iteration: int = 16

    @property
    def loop_bound(self) -> int:
        """Iterations of the DPA loop for the current token length."""
        return -(-self.token_length // self.tokens_per_iteration)


@dataclass
class OnModuleDispatcher:
    """Expands DPA-encoded instruction sequences per request at run time."""

    va2pa: VA2PATable
    instruction_buffer: dict[str, EncodedLoop] = field(default_factory=dict)
    config_buffer: dict[int, RequestContext] = field(default_factory=dict)
    host_messages: int = 0

    # -- host-facing setup ----------------------------------------------------

    def load_kernel(self, name: str, encoded: EncodedLoop) -> None:
        """Install a DPA-encoded kernel into the instruction buffer."""
        self.instruction_buffer[name] = encoded

    def assign_request(self, request_id: int, initial_tokens: int) -> None:
        """Register a new request's metadata (one host->module message)."""
        if request_id in self.config_buffer:
            raise ValueError(f"request {request_id} already assigned")
        self.config_buffer[request_id] = RequestContext(
            request_id=request_id, token_length=initial_tokens
        )
        self.host_messages += 1

    def complete_request(self, request_id: int) -> None:
        """Release a request's metadata (one module->host message)."""
        if request_id in self.config_buffer:
            del self.config_buffer[request_id]
            self.host_messages += 1

    # -- decode-time operation -------------------------------------------------

    def advance_token(self, request_id: int, count: int = 1) -> None:
        """Increment a request's token length locally (no host involvement)."""
        context = self._context(request_id)
        context.token_length += count

    def dispatch(self, kernel_name: str, request_id: int) -> list[PIMInstruction]:
        """Expand a DPA kernel into the executable stream for one request.

        The ``DYN-LOOP`` bound is resolved from the request's current token
        length and every ``MAC`` row operand is translated through the VA2PA
        table, so the emitted stream addresses the physically allocated,
        possibly non-contiguous KV-cache chunks.
        """
        encoded = self.instruction_buffer.get(kernel_name)
        if encoded is None:
            raise KeyError(f"kernel {kernel_name!r} is not loaded")
        context = self._context(request_id)

        body = [
            instruction
            for instruction in encoded.instructions
            if not instruction.opcode.is_control
        ]
        stream: list[PIMInstruction] = []
        for iteration in range(context.loop_bound):
            for instruction in body:
                if instruction.opcode is PIMOpcode.MAC:
                    virtual_address = iteration * self.va2pa.chunk_bytes // max(
                        1, context.loop_bound
                    )
                    physical = self._translate_or_identity(request_id, virtual_address)
                    stream.append(
                        PIMInstruction(
                            opcode=instruction.opcode,
                            ch_mask=instruction.ch_mask,
                            op_size=instruction.op_size,
                            gbuf_idx=instruction.gbuf_idx,
                            out_idx=instruction.out_idx,
                            row=physical // self.va2pa.chunk_bytes,
                            col=iteration,
                        )
                    )
                else:
                    stream.append(instruction)
        return stream

    def expanded_length(self, kernel_name: str, request_id: int) -> int:
        """Number of instructions :meth:`dispatch` would emit (cheap)."""
        encoded = self.instruction_buffer.get(kernel_name)
        if encoded is None:
            raise KeyError(f"kernel {kernel_name!r} is not loaded")
        context = self._context(request_id)
        return context.loop_bound * encoded.body_instructions

    # -- helpers ---------------------------------------------------------------

    def _context(self, request_id: int) -> RequestContext:
        context = self.config_buffer.get(request_id)
        if context is None:
            raise KeyError(f"request {request_id} is not assigned to this module")
        return context

    def _translate_or_identity(self, request_id: int, virtual_address: int) -> int:
        try:
            return self.va2pa.translate(request_id, virtual_address)
        except KeyError:
            return virtual_address

    @property
    def buffer_bytes(self) -> int:
        """Approximate SRAM footprint of the dispatcher's buffers."""
        instruction_bytes = sum(
            encoded.encoded_bytes for encoded in self.instruction_buffer.values()
        )
        config_bytes = 16 * len(self.config_buffer)
        return instruction_bytes + config_bytes + self.va2pa.table_bytes
