"""PIMphony core: TCP partitioning, DCS scheduling, DPA memory management."""

from repro.core.dcs import DCSScheduler
from repro.core.dispatcher import OnModuleDispatcher
from repro.core.dpa import DPAController
from repro.core.orchestrator import PIMphony, PIMphonyConfig
from repro.core.partitioning import (
    AttentionTask,
    ChannelAssignment,
    HeadFirstPartitioner,
    TokenCentricPartitioner,
    evaluate_assignment,
)

__all__ = [
    "AttentionTask",
    "ChannelAssignment",
    "HeadFirstPartitioner",
    "TokenCentricPartitioner",
    "evaluate_assignment",
    "DCSScheduler",
    "DPAController",
    "OnModuleDispatcher",
    "PIMphony",
    "PIMphonyConfig",
]
