"""The PIMphony orchestrator facade.

:class:`PIMphonyConfig` selects which of the three co-designed techniques
are active -- Token-Centric Partitioning (TCP), Dynamic Command Scheduling
(DCS) and Dynamic PIM Access (DPA) -- exactly as the paper's incremental
evaluation does (baseline, +TCP, +TCP+DCS, +TCP+DCS+DPA).
:class:`PIMphony` turns a configuration into the concrete strategy objects
(partitioner, scheduler policy, allocator factory) the system models use.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dcs import DCSScheduler
from repro.core.dpa import DPAController, make_static_allocator
from repro.core.partitioning import HeadFirstPartitioner, Partitioner, TokenCentricPartitioner
from repro.memory.chunked_alloc import ChunkedAllocator
from repro.memory.static_alloc import StaticAllocator
from repro.pim.config import PIMChannelConfig
from repro.pim.scheduling import StaticScheduler
from repro.pim.simulator import CommandScheduler
from repro.pim.timing import PIMTiming


@dataclass(frozen=True)
class PIMphonyConfig:
    """Feature selection for the PIMphony orchestrator.

    Attributes:
        tcp: Enable Token-Centric PIM Partitioning.
        dcs: Enable Dynamic PIM Command Scheduling (with I/O-aware buffering).
        dpa: Enable Dynamic PIM Access (lazy chunked KV-cache allocation).
        row_reuse: Use the row-reuse mapping for attention kernels.
        name: Optional label; derived from the enabled features when empty.
    """

    tcp: bool = True
    dcs: bool = True
    dpa: bool = True
    row_reuse: bool = True
    name: str = ""

    @property
    def label(self) -> str:
        if self.name:
            return self.name
        if not (self.tcp or self.dcs or self.dpa):
            return "baseline"
        parts = []
        if self.tcp:
            parts.append("TCP")
        if self.dcs:
            parts.append("DCS")
        if self.dpa:
            parts.append("DPA")
        return "+".join(parts)

    @staticmethod
    def baseline() -> PIMphonyConfig:
        """Conventional PIM system: HFP, static scheduling, static memory."""
        return PIMphonyConfig(tcp=False, dcs=False, dpa=False, name="baseline")

    @staticmethod
    def tcp_only() -> PIMphonyConfig:
        return PIMphonyConfig(tcp=True, dcs=False, dpa=False)

    @staticmethod
    def tcp_dcs() -> PIMphonyConfig:
        return PIMphonyConfig(tcp=True, dcs=True, dpa=False)

    @staticmethod
    def full() -> PIMphonyConfig:
        """All three techniques enabled (the complete PIMphony system)."""
        return PIMphonyConfig(tcp=True, dcs=True, dpa=True)

    @staticmethod
    def incremental_sweep() -> list["PIMphonyConfig"]:
        """The four configurations of the paper's incremental evaluation."""
        return [
            PIMphonyConfig.baseline(),
            PIMphonyConfig.tcp_only(),
            PIMphonyConfig.tcp_dcs(),
            PIMphonyConfig.full(),
        ]


class PIMphony:
    """Facade bundling the concrete strategies selected by a configuration."""

    def __init__(self, config: PIMphonyConfig | None = None) -> None:
        self.config = config if config is not None else PIMphonyConfig.full()

    # -- strategy accessors --------------------------------------------------

    @property
    def scheduling_policy(self) -> str:
        """Kernel-estimator policy name implied by the configuration."""
        return "dcs" if self.config.dcs else "static"

    def partitioner(self) -> Partitioner:
        """Intra-module attention partitioner implied by the configuration."""
        return TokenCentricPartitioner() if self.config.tcp else HeadFirstPartitioner()

    def scheduler(
        self, timing: PIMTiming, channel: PIMChannelConfig | None = None
    ) -> CommandScheduler:
        """Exact command-level scheduler implied by the configuration."""
        if self.config.dcs:
            return DCSScheduler(timing, channel)
        return StaticScheduler(timing, channel)

    def make_allocator(
        self,
        capacity_bytes: int,
        bytes_per_token: int,
        max_context_tokens: int,
    ) -> ChunkedAllocator | StaticAllocator:
        """KV-cache allocator implied by the configuration."""
        if self.config.dpa:
            controller = DPAController(
                capacity_bytes=capacity_bytes, bytes_per_token=bytes_per_token
            )
            return controller.allocator
        return make_static_allocator(capacity_bytes, bytes_per_token, max_context_tokens)

    def dpa_controller(self, capacity_bytes: int, bytes_per_token: int) -> DPAController:
        """Build a DPA controller for one module (requires DPA enabled)."""
        if not self.config.dpa:
            raise ValueError("DPA is disabled in this configuration")
        return DPAController(capacity_bytes=capacity_bytes, bytes_per_token=bytes_per_token)

    def __repr__(self) -> str:
        return f"PIMphony({self.config.label})"
