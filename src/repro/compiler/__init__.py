"""MLIR-style compiler substrate: IR, pattern detection, lowering, passes."""

from repro.compiler.dpa_encoding import (
    dpa_instruction_footprint,
    encode_attention_loop,
    static_instruction_footprint,
)
from repro.compiler.ir import Graph, Operation, OpType, TensorType, build_decoder_graph
from repro.compiler.lowering import expand_program_to_commands, lower_gemv_to_commands
from repro.compiler.passes import CompiledProgram, PassManager, compile_decoder
from repro.compiler.patterns import AttentionPattern, detect_attention_patterns, is_pim_amenable

__all__ = [
    "TensorType",
    "OpType",
    "Operation",
    "Graph",
    "build_decoder_graph",
    "AttentionPattern",
    "detect_attention_patterns",
    "is_pim_amenable",
    "lower_gemv_to_commands",
    "expand_program_to_commands",
    "encode_attention_loop",
    "static_instruction_footprint",
    "dpa_instruction_footprint",
    "PassManager",
    "CompiledProgram",
    "compile_decoder",
]
