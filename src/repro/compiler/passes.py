"""Compiler pass pipeline producing PIM instruction streams.

The pipeline mirrors the paper's Fig. 12: the decoder graph is pattern
matched, PIM-amenable kernels are assigned a partitioning (HFP or TCP), the
kernels are lowered to module-level instruction streams, and -- when DPA is
enabled -- token-dependent loops are re-encoded with ``DYN-LOOP`` /
``DYN-MODI`` so the stream size no longer grows with the context length.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compiler.dpa_encoding import (
    dpa_instruction_footprint,
    encode_attention_loop,
    static_instruction_footprint,
)
from repro.compiler.ir import Graph, build_decoder_graph
from repro.compiler.lowering import lower_operator_to_instructions
from repro.compiler.patterns import detect_attention_patterns, detect_fc_operations
from repro.models.llm import LLMConfig
from repro.pim.config import PIMModuleConfig
from repro.pim.isa import PIMInstruction


@dataclass
class CompiledProgram:
    """Output of the compilation pipeline for one decoder layer."""

    graph: Graph
    attention_instructions: list[PIMInstruction] = field(default_factory=list)
    fc_instructions: list[PIMInstruction] = field(default_factory=list)
    partitioning: str = "tcp"
    dpa_enabled: bool = True
    instruction_bytes: int = 0
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def total_instructions(self) -> int:
        return len(self.attention_instructions) + len(self.fc_instructions)


class CompilerPass:
    """Base class for compilation passes."""

    name = "pass"

    def run(self, program: CompiledProgram) -> CompiledProgram:
        raise NotImplementedError


class PatternDetectionPass(CompilerPass):
    """Annotate the program with detected attention and FC patterns."""

    name = "pattern-detection"

    def run(self, program: CompiledProgram) -> CompiledProgram:
        patterns = detect_attention_patterns(program.graph)
        fc_ops = detect_fc_operations(program.graph)
        program.metadata["attention_patterns"] = patterns
        program.metadata["fc_operations"] = fc_ops
        return program


class PartitioningPass(CompilerPass):
    """Record the intra-module partitioning strategy for attention kernels."""

    name = "partitioning"

    def __init__(self, strategy: str, module: PIMModuleConfig) -> None:
        if strategy not in ("hfp", "tcp"):
            raise ValueError("partitioning strategy must be 'hfp' or 'tcp'")
        self.strategy = strategy
        self.module = module

    def run(self, program: CompiledProgram) -> CompiledProgram:
        program.partitioning = self.strategy
        if self.strategy == "tcp":
            channel_mask = (1 << self.module.num_channels) - 1
        else:
            channel_mask = 1
        program.metadata["attention_channel_mask"] = channel_mask
        return program


class LoweringPass(CompilerPass):
    """Lower matched kernels to module-level PIM instructions."""

    name = "lowering"

    def __init__(self, module: PIMModuleConfig, context_length: int) -> None:
        self.module = module
        self.context_length = context_length

    def run(self, program: CompiledProgram) -> CompiledProgram:
        patterns = program.metadata.get("attention_patterns", [])
        fc_ops = program.metadata.get("fc_operations", [])
        channel_mask = int(
            program.metadata.get(
                "attention_channel_mask", (1 << self.module.num_channels) - 1
            )
        )
        active_channels = max(1, bin(channel_mask).count("1"))
        token_groups = max(1, -(-self.context_length // 16))
        op_size = max(1, token_groups // active_channels)

        attention_instructions: list[PIMInstruction] = []
        for pattern in patterns:
            attention_instructions.extend(
                lower_operator_to_instructions(pattern.qkt, channel_mask, op_size)
            )
            attention_instructions.extend(
                lower_operator_to_instructions(pattern.sv, channel_mask, op_size)
            )
        fc_instructions: list[PIMInstruction] = []
        full_mask = (1 << self.module.num_channels) - 1
        for operation in fc_ops:
            weight_name = str(operation.attr("weight", ""))
            weight_type = program.graph.values.get(weight_name)
            rows = weight_type.shape[0] if weight_type is not None else 1
            fc_instructions.extend(
                lower_operator_to_instructions(
                    operation, full_mask, max(1, rows // (16 * self.module.num_channels))
                )
            )
        program.attention_instructions = attention_instructions
        program.fc_instructions = fc_instructions
        return program


class DPAEncodingPass(CompilerPass):
    """Re-encode attention loops with DPA and account instruction footprints."""

    name = "dpa-encoding"

    def __init__(self, enabled: bool, context_length: int, kv_heads: int) -> None:
        self.enabled = enabled
        self.context_length = context_length
        self.kv_heads = kv_heads

    def run(self, program: CompiledProgram) -> CompiledProgram:
        program.dpa_enabled = self.enabled
        if self.enabled and program.attention_instructions:
            encoded = encode_attention_loop(tuple(program.attention_instructions[:3]))
            program.metadata["encoded_attention_loop"] = encoded
            program.instruction_bytes = dpa_instruction_footprint(
                self.context_length, kv_heads=self.kv_heads
            ) + len(program.fc_instructions) * 8
        else:
            program.instruction_bytes = static_instruction_footprint(
                self.context_length, kv_heads=self.kv_heads
            ) + len(program.fc_instructions) * 8
        return program


@dataclass
class PassManager:
    """Runs an ordered list of compiler passes."""

    passes: list[CompilerPass] = field(default_factory=list)

    def add(self, compiler_pass: CompilerPass) -> PassManager:
        self.passes.append(compiler_pass)
        return self

    def run(self, program: CompiledProgram) -> CompiledProgram:
        for compiler_pass in self.passes:
            program = compiler_pass.run(program)
        return program


def compile_decoder(
    model: LLMConfig,
    context_length: int,
    module: PIMModuleConfig,
    partitioning: str = "tcp",
    dpa_enabled: bool = True,
) -> CompiledProgram:
    """Compile one decoder layer for a PIM module (offline, as in the paper)."""
    graph = build_decoder_graph(model, context_length)
    manager = PassManager()
    manager.add(PatternDetectionPass())
    manager.add(PartitioningPass(partitioning, module))
    manager.add(LoweringPass(module, context_length))
    manager.add(DPAEncodingPass(dpa_enabled, context_length, model.num_kv_heads))
    return manager.run(CompiledProgram(graph=graph))
