"""A small tensor-operation IR standing in for the paper's MLIR dialects.

The IR captures exactly what PIMphony's compiler passes need: a graph of
named operations over typed tensor values, with enough attributes to detect
transformer-decoder patterns (``QK^T`` / softmax / ``SV`` / FC) and lower
the PIM-amenable ones to PIM instruction streams.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.models.llm import LLMConfig


class OpType(enum.Enum):
    """Operation kinds the decoder front-end emits."""

    MATMUL = "matmul"
    SOFTMAX = "softmax"
    ELEMENTWISE = "elementwise"
    CONCAT_KV = "concat_kv"
    ROPE = "rope"
    LAYERNORM = "layernorm"


@dataclass(frozen=True)
class TensorType:
    """Shape and element width of an IR value."""

    shape: tuple[int, ...]
    dtype_bytes: int = 2

    def __post_init__(self) -> None:
        if any(dim <= 0 for dim in self.shape):
            raise ValueError("all tensor dimensions must be positive")
        if self.dtype_bytes <= 0:
            raise ValueError("dtype_bytes must be positive")

    @property
    def num_elements(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count

    @property
    def num_bytes(self) -> int:
        return self.num_elements * self.dtype_bytes


@dataclass
class Operation:
    """One IR operation.

    Attributes:
        name: Unique operation name within its graph.
        op_type: Operation kind.
        inputs: Names of input values.
        outputs: Names of output values.
        attrs: Free-form attributes (e.g. ``{"role": "qkt"}``,
            ``{"dynamic_dim": "context_length"}``).
    """

    name: str
    op_type: OpType
    inputs: list[str] = field(default_factory=list)
    outputs: list[str] = field(default_factory=list)
    attrs: dict[str, object] = field(default_factory=dict)

    def attr(self, key: str, default: object = None) -> object:
        return self.attrs.get(key, default)

    @property
    def role(self) -> str:
        """Semantic role tag used by pattern matching (may be empty)."""
        return str(self.attrs.get("role", ""))


@dataclass
class Graph:
    """A dataflow graph of operations over named values."""

    name: str
    operations: list[Operation] = field(default_factory=list)
    values: dict[str, TensorType] = field(default_factory=dict)

    def add_value(self, name: str, value_type: TensorType) -> str:
        if name in self.values:
            raise ValueError(f"value {name!r} already defined")
        self.values[name] = value_type
        return name

    def add_operation(self, operation: Operation) -> Operation:
        if any(existing.name == operation.name for existing in self.operations):
            raise ValueError(f"operation {operation.name!r} already defined")
        for value in operation.inputs:
            if value not in self.values:
                raise ValueError(f"operation {operation.name!r} uses undefined value {value!r}")
        for value in operation.outputs:
            if value not in self.values:
                raise ValueError(
                    f"operation {operation.name!r} produces undefined value {value!r}"
                )
        self.operations.append(operation)
        return operation

    def operation(self, name: str) -> Operation:
        for operation in self.operations:
            if operation.name == name:
                return operation
        raise KeyError(f"no operation named {name!r}")

    def producers(self, value: str) -> list[Operation]:
        return [op for op in self.operations if value in op.outputs]

    def consumers(self, value: str) -> list[Operation]:
        return [op for op in self.operations if value in op.inputs]

    def operations_of_type(self, op_type: OpType) -> list[Operation]:
        return [op for op in self.operations if op.op_type is op_type]


def build_decoder_graph(model: LLMConfig, context_length: int, layer: int = 0) -> Graph:
    """Build the IR graph of one decoder layer's decode step.

    The graph mirrors Fig. 1 of the paper: QKV projection, per-KV-head
    ``QK^T``, softmax and ``SV`` against the KV cache (whose token dimension
    is tagged dynamic), output projection and the FFN matrices.
    """
    if context_length <= 0:
        raise ValueError("context_length must be positive")
    graph = Graph(name=f"{model.name}.layer{layer}.decode")
    dtype = model.dtype_bytes

    hidden = graph.add_value("hidden", TensorType((1, model.d_model), dtype))
    qkv_out_dim = model.d_model + 2 * model.kv_dim
    graph.add_value("qkv_weight", TensorType((model.d_model, qkv_out_dim), dtype))
    graph.add_value("qkv", TensorType((1, qkv_out_dim), dtype))
    graph.add_operation(
        Operation(
            name="qkv_proj",
            op_type=OpType.MATMUL,
            inputs=[hidden, "qkv_weight"],
            outputs=["qkv"],
            attrs={"role": "fc", "weight": "qkv_weight"},
        )
    )

    graph.add_value("kv_cache_k", TensorType((context_length, model.kv_dim), dtype))
    graph.add_value("kv_cache_v", TensorType((context_length, model.kv_dim), dtype))
    graph.add_value("kv_cache_k_next", TensorType((context_length + 1, model.kv_dim), dtype))
    graph.add_value("kv_cache_v_next", TensorType((context_length + 1, model.kv_dim), dtype))
    graph.add_operation(
        Operation(
            name="append_kv",
            op_type=OpType.CONCAT_KV,
            inputs=["qkv", "kv_cache_k", "kv_cache_v"],
            outputs=["kv_cache_k_next", "kv_cache_v_next"],
            attrs={"dynamic_dim": "context_length"},
        )
    )

    for kv_head in range(model.num_kv_heads):
        scores = f"scores_kv{kv_head}"
        probs = f"probs_kv{kv_head}"
        attended = f"attended_kv{kv_head}"
        graph.add_value(scores, TensorType((model.gqa_group_size, context_length + 1), dtype))
        graph.add_value(probs, TensorType((model.gqa_group_size, context_length + 1), dtype))
        graph.add_value(attended, TensorType((model.gqa_group_size, model.head_dim), dtype))
        graph.add_operation(
            Operation(
                name=f"qkt_kv{kv_head}",
                op_type=OpType.MATMUL,
                inputs=["qkv", "kv_cache_k_next"],
                outputs=[scores],
                attrs={
                    "role": "qkt",
                    "kv_head": kv_head,
                    "dynamic_dim": "context_length",
                    "group_size": model.gqa_group_size,
                },
            )
        )
        graph.add_operation(
            Operation(
                name=f"softmax_kv{kv_head}",
                op_type=OpType.SOFTMAX,
                inputs=[scores],
                outputs=[probs],
                attrs={"kv_head": kv_head},
            )
        )
        graph.add_operation(
            Operation(
                name=f"sv_kv{kv_head}",
                op_type=OpType.MATMUL,
                inputs=[probs, "kv_cache_v_next"],
                outputs=[attended],
                attrs={
                    "role": "sv",
                    "kv_head": kv_head,
                    "dynamic_dim": "context_length",
                    "group_size": model.gqa_group_size,
                },
            )
        )

    graph.add_value("attn_concat", TensorType((1, model.d_model), dtype))
    graph.add_operation(
        Operation(
            name="concat_heads",
            op_type=OpType.ELEMENTWISE,
            inputs=[f"attended_kv{h}" for h in range(model.num_kv_heads)],
            outputs=["attn_concat"],
        )
    )

    graph.add_value("out_weight", TensorType((model.d_model, model.d_model), dtype))
    graph.add_value("attn_out", TensorType((1, model.d_model), dtype))
    graph.add_operation(
        Operation(
            name="out_proj",
            op_type=OpType.MATMUL,
            inputs=["attn_concat", "out_weight"],
            outputs=["attn_out"],
            attrs={"role": "fc", "weight": "out_weight"},
        )
    )

    ffn_matrices = ["ffn_gate", "ffn_up"] if model.gated_ffn else ["ffn_up"]
    for matrix in ffn_matrices:
        graph.add_value(f"{matrix}_weight", TensorType((model.d_model, model.ffn_dim), dtype))
        graph.add_value(f"{matrix}_out", TensorType((1, model.ffn_dim), dtype))
        graph.add_operation(
            Operation(
                name=matrix,
                op_type=OpType.MATMUL,
                inputs=["attn_out", f"{matrix}_weight"],
                outputs=[f"{matrix}_out"],
                attrs={"role": "fc", "weight": f"{matrix}_weight"},
            )
        )
    graph.add_value("ffn_down_weight", TensorType((model.ffn_dim, model.d_model), dtype))
    graph.add_value("layer_out", TensorType((1, model.d_model), dtype))
    graph.add_operation(
        Operation(
            name="ffn_down",
            op_type=OpType.MATMUL,
            inputs=["ffn_up_out", "ffn_down_weight"],
            outputs=["layer_out"],
            attrs={"role": "fc", "weight": "ffn_down_weight"},
        )
    )
    return graph
