"""Lowering of kernels to explicit PIM command streams.

Two levels of code generation are provided:

* :func:`lower_gemv_to_commands` emits the explicit per-channel command
  stream of a (small) GEMV for the exact command-level simulator -- used by
  the microbenchmarks (Fig. 7--9) and for cross-validating the closed-form
  kernel estimators.
* :func:`expand_program_to_commands` expands a phase-level
  :class:`~repro.pim.kernels.KernelProgram` into an explicit command stream,
  assigning buffer entries round-robin and DRAM rows following the
  row-reuse mapping.
* :func:`lower_operator_to_instructions` emits module-level
  :class:`~repro.pim.isa.PIMInstruction` sequences (with ``Op-size``
  repetition counts) for a matched IR operation, which is what the PIM HUB's
  instruction sequencer consumes.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.compiler.ir import Operation
from repro.pim.config import ELEMENTS_PER_TILE, PIMChannelConfig
from repro.pim.isa import PIMCommand, PIMInstruction, PIMOpcode
from repro.pim.kernels import BufferCaps, KernelProgram


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def lower_gemv_to_commands(
    in_dim: int,
    out_dim: int,
    channel: PIMChannelConfig,
    caps: BufferCaps,
    tiles_per_row: int = 32,
) -> list[PIMCommand]:
    """Emit the explicit command stream of a channel GEMV.

    The mapping matches :func:`repro.pim.kernels.build_fc_gemv_program`:
    input tiles are kept resident when they fit in the GBuf, otherwise they
    are streamed in blocks with per-block partial-sum drains.  Weight tiles
    are visited row-major so consecutive MACs reuse the open DRAM row.
    """
    if in_dim <= 0 or out_dim <= 0:
        return []
    n_in = _ceil_div(in_dim, ELEMENTS_PER_TILE)
    n_og = _ceil_div(out_dim, channel.num_banks)
    block = min(n_in, caps.gbuf_entries)

    commands: list[PIMCommand] = []
    cmd_id = 0

    def next_id() -> int:
        nonlocal cmd_id
        value = cmd_id
        cmd_id += 1
        return value

    for block_start in range(0, n_in, block):
        block_tiles = min(block, n_in - block_start)
        for tile in range(block_tiles):
            commands.append(
                PIMCommand(cmd_id=next_id(), opcode=PIMOpcode.WR_INP, gbuf_idx=tile)
            )
        for group in range(n_og):
            out_entry = group % caps.obuf_entries
            for tile in range(block_tiles):
                # DRAM address of the weight tile for (output group, input
                # tile): group-major layout, independent of input blocking.
                weight_tile_index = group * n_in + block_start + tile
                row = weight_tile_index // tiles_per_row
                col = weight_tile_index % tiles_per_row
                commands.append(
                    PIMCommand(
                        cmd_id=next_id(),
                        opcode=PIMOpcode.MAC,
                        gbuf_idx=tile,
                        out_idx=out_entry,
                        row=row,
                        col=col,
                    )
                )
            commands.append(
                PIMCommand(cmd_id=next_id(), opcode=PIMOpcode.RD_OUT, out_idx=out_entry)
            )
    return commands


def expand_program_to_commands(
    program: KernelProgram,
    caps: BufferCaps,
    tiles_per_row: int = 32,
    max_commands: int = 2_000_000,
) -> list[PIMCommand]:
    """Expand a phase-level kernel program into explicit commands.

    Buffer entries are assigned round-robin within each phase and DRAM rows
    advance with every ``tiles_per_row`` MAC commands, which matches the
    row-reuse mapping assumed by the program builders.

    Raises:
        ValueError: if the expansion would exceed ``max_commands`` (guards
            against accidentally expanding a 1M-token kernel).
    """
    total = program.n_wr_inp + program.n_mac + program.n_rd_out
    if total > max_commands:
        raise ValueError(
            f"program expands to {total} commands, above the limit of {max_commands}"
        )
    commands: list[PIMCommand] = []
    cmd_id = 0
    mac_counter = 0
    for segment in program.segments:
        for _ in range(segment.repeat):
            gbuf_cursor = 0
            out_cursor = 0
            for phase in segment.phases:
                for index in range(phase.count):
                    if phase.opcode is PIMOpcode.WR_INP:
                        entry = (gbuf_cursor + index) % caps.gbuf_entries
                        commands.append(
                            PIMCommand(cmd_id=cmd_id, opcode=PIMOpcode.WR_INP, gbuf_idx=entry)
                        )
                    elif phase.opcode is PIMOpcode.MAC:
                        entry = (gbuf_cursor + index) % caps.gbuf_entries
                        out_entry = out_cursor % caps.obuf_entries
                        row = mac_counter // tiles_per_row
                        col = mac_counter % tiles_per_row
                        mac_counter += 1
                        commands.append(
                            PIMCommand(
                                cmd_id=cmd_id,
                                opcode=PIMOpcode.MAC,
                                gbuf_idx=entry,
                                out_idx=out_entry,
                                row=row,
                                col=col,
                            )
                        )
                    else:
                        out_entry = out_cursor % caps.obuf_entries
                        commands.append(
                            PIMCommand(cmd_id=cmd_id, opcode=PIMOpcode.RD_OUT, out_idx=out_entry)
                        )
                    cmd_id += 1
                if phase.opcode is PIMOpcode.RD_OUT:
                    out_cursor += phase.count
    return commands


def lower_operator_to_instructions(
    operation: Operation,
    channel_mask: int,
    op_size: int,
    gbuf_base: int = 0,
    out_base: int = 0,
) -> list[PIMInstruction]:
    """Lower a matched IR matmul to a module-level instruction triple.

    The PIM HUB's instruction sequencer expands ``op_size`` repetitions into
    channel commands, so one ``WR-INP`` / ``MAC`` / ``RD-OUT`` triple with
    appropriate repetition counts describes an entire GEMV slice.
    """
    if operation.role not in ("qkt", "sv", "fc"):
        raise ValueError(f"operation {operation.name!r} is not PIM-amenable")
    if op_size < 1:
        raise ValueError("op_size must be >= 1")
    return [
        PIMInstruction(
            opcode=PIMOpcode.WR_INP,
            ch_mask=channel_mask,
            op_size=op_size,
            gpr_addr=0,
            gbuf_idx=gbuf_base,
        ),
        PIMInstruction(
            opcode=PIMOpcode.MAC,
            ch_mask=channel_mask,
            op_size=op_size,
            gbuf_idx=gbuf_base,
            out_idx=out_base,
            row=0,
            col=0,
        ),
        PIMInstruction(
            opcode=PIMOpcode.RD_OUT,
            ch_mask=channel_mask,
            op_size=max(1, op_size // 8),
            gpr_addr=0,
            out_idx=out_base,
        ),
    ]


def instruction_stream_commands(instructions: Sequence[PIMInstruction]) -> int:
    """Total channel commands an instruction stream expands to."""
    total = 0
    for instruction in instructions:
        if instruction.opcode.is_control:
            continue
        total += instruction.op_size * len(instruction.target_channels)
    return total
