"""Decoder pattern detection (the paper's custom pattern-matching passes).

PIMphony's compiler identifies PIM-amenable kernels -- the per-KV-head
``QK^T`` -> softmax -> ``SV`` chains and the FC matrix-vector products --
so that subsequent passes can attach partitioning and dynamic-address
metadata and emit PIM instruction streams.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compiler.ir import Graph, Operation, OpType


@dataclass(frozen=True)
class AttentionPattern:
    """A matched ``QK^T`` -> softmax -> ``SV`` chain for one KV head."""

    kv_head: int
    qkt: Operation
    softmax: Operation
    sv: Operation
    group_size: int
    dynamic: bool

    @property
    def name(self) -> str:
        return f"attention_kv{self.kv_head}"


def is_pim_amenable(operation: Operation) -> bool:
    """Whether an operation should be offloaded to PIM.

    Matrix-vector style matmuls (attention against the KV cache, FC layers
    during decoding) are PIM-amenable; softmax and elementwise glue run on
    the EPU or the xPU.
    """
    if operation.op_type is not OpType.MATMUL:
        return False
    return operation.role in ("qkt", "sv", "fc")


def detect_attention_patterns(graph: Graph) -> list[AttentionPattern]:
    """Find every per-KV-head attention chain in a decoder graph."""
    patterns: list[AttentionPattern] = []
    for qkt in graph.operations_of_type(OpType.MATMUL):
        if qkt.role != "qkt":
            continue
        kv_head = int(qkt.attr("kv_head", -1))
        scores = qkt.outputs[0]
        softmax_ops = [
            op for op in graph.consumers(scores) if op.op_type is OpType.SOFTMAX
        ]
        if not softmax_ops:
            continue
        softmax = softmax_ops[0]
        probs = softmax.outputs[0]
        sv_ops = [
            op
            for op in graph.consumers(probs)
            if op.op_type is OpType.MATMUL and op.role == "sv"
        ]
        if not sv_ops:
            continue
        sv = sv_ops[0]
        patterns.append(
            AttentionPattern(
                kv_head=kv_head,
                qkt=qkt,
                softmax=softmax,
                sv=sv,
                group_size=int(qkt.attr("group_size", 1)),
                dynamic=bool(qkt.attr("dynamic_dim", "")),
            )
        )
    patterns.sort(key=lambda pattern: pattern.kv_head)
    return patterns


def detect_fc_operations(graph: Graph) -> list[Operation]:
    """Find the fully-connected (weight) matmuls of a decoder graph."""
    return [op for op in graph.operations_of_type(OpType.MATMUL) if op.role == "fc"]
