"""DPA instruction encoding and the instruction-footprint model (Fig. 10).

Conventional PIM compilers must emit one instruction sequence entry per
token-dependent repetition, because loop bounds and operand addresses are
fixed at compile time; the instruction footprint therefore grows linearly
with the context length.  DPA encodes the same computation as a compact
``DYN-LOOP`` / ``DYN-MODI`` wrapped body whose size is independent of the
context length (Fig. 10(c)).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pim.isa import INSTRUCTION_BYTES, PIMInstruction, PIMOpcode


@dataclass(frozen=True)
class EncodedLoop:
    """A DPA-encoded attention loop."""

    instructions: tuple[PIMInstruction, ...]
    body_instructions: int
    loop_bound_source: str

    @property
    def encoded_bytes(self) -> int:
        return sum(instruction.encoded_bytes for instruction in self.instructions)


def encode_attention_loop(
    body: tuple[PIMInstruction, ...] | list[PIMInstruction],
    loop_bound_source: str = "token_length",
    row_stride: int = 1,
) -> EncodedLoop:
    """Wrap an attention instruction body into a DPA dynamic loop.

    Args:
        body: The per-iteration instruction body (typically the WR-INP /
            MAC / RD-OUT triple of one token group).
        loop_bound_source: Runtime value providing the loop bound.
        row_stride: Stride applied to the MAC row operand per iteration.
    """
    body_tuple = tuple(body)
    if not body_tuple:
        raise ValueError("loop body must contain at least one instruction")
    loop = PIMInstruction(
        opcode=PIMOpcode.DYN_LOOP,
        op_size=1,
        loop_bound_source=loop_bound_source,
    )
    modifiers = tuple(
        PIMInstruction(
            opcode=PIMOpcode.DYN_MODI,
            op_size=1,
            stride=row_stride,
            target_field="row",
        )
        for instruction in body_tuple
        if instruction.opcode is PIMOpcode.MAC
    )
    return EncodedLoop(
        instructions=(loop,) + modifiers + body_tuple,
        body_instructions=len(body_tuple),
        loop_bound_source=loop_bound_source,
    )


def static_instruction_footprint(
    context_length: int,
    instructions_per_token_group: int = 3,
    tokens_per_group: int = 16,
    layers: int = 1,
    kv_heads: int = 1,
) -> int:
    """Instruction-buffer bytes required by a statically compiled kernel.

    One instruction group (WR-INP / MAC / RD-OUT) is emitted per token group
    per KV head per layer, so the footprint grows linearly with the maximum
    context length the kernel must support.
    """
    if context_length < 0:
        raise ValueError("context_length must be non-negative")
    groups = -(-context_length // tokens_per_group)
    instructions = groups * instructions_per_token_group * layers * kv_heads
    return instructions * INSTRUCTION_BYTES


def dpa_instruction_footprint(
    context_length: int,
    instructions_per_token_group: int = 3,
    layers: int = 1,
    kv_heads: int = 1,
) -> int:
    """Instruction-buffer bytes required with DPA encoding.

    The loop body plus one ``DYN-LOOP`` and one ``DYN-MODI`` per MAC operand
    is emitted once per KV head per layer; the footprint is independent of
    the context length.
    """
    if context_length < 0:
        raise ValueError("context_length must be non-negative")
    del context_length  # footprint is context-independent by construction
    per_kernel = instructions_per_token_group + 2
    return per_kernel * INSTRUCTION_BYTES * layers * kv_heads
