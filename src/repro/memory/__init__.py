"""KV-cache memory management: static reservation vs. lazy chunk allocation."""

from repro.memory.capacity import CapacityTracker, CapacityUsage
from repro.memory.chunked_alloc import AllocationError, ChunkedAllocator
from repro.memory.static_alloc import StaticAllocator
from repro.memory.va2pa import VA2PATable

__all__ = [
    "AllocationError",
    "StaticAllocator",
    "ChunkedAllocator",
    "VA2PATable",
    "CapacityTracker",
    "CapacityUsage",
]
