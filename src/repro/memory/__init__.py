"""KV-cache memory management: static reservation vs. lazy chunk allocation."""

from repro.memory.capacity import CapacityTracker, CapacityUsage
from repro.memory.chunked_alloc import ChunkedAllocator
from repro.memory.lifecycle import CapacityExceeded, PreemptedState
from repro.memory.static_alloc import AllocationError, StaticAllocator
from repro.memory.va2pa import VA2PATable

__all__ = [
    "AllocationError",
    "CapacityExceeded",
    "PreemptedState",
    "StaticAllocator",
    "ChunkedAllocator",
    "VA2PATable",
    "CapacityTracker",
    "CapacityUsage",
]
