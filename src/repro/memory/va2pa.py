"""Virtual-to-physical address translation table (paper Sec. VI-C).

The on-module dispatcher keeps, per request, a mapping from virtual chunk
indices (the logical, contiguous view of that request's KV cache) to
physical chunk indices in the module's DRAM.  The table is what allows DPA
instructions to reference dynamically allocated, non-contiguous memory.
"""

from __future__ import annotations

import types
from dataclasses import dataclass, field
from collections.abc import Mapping


class TranslationError(KeyError):
    """Raised when a virtual address has no physical mapping."""


@dataclass
class VA2PATable:
    """Per-module VA-to-PA chunk translation table.

    Mappings are stored per request so the hot lifecycle operations --
    ``chunks_of`` and ``release`` on one request -- cost O(chunks of that
    request) instead of O(all mappings in the table), which dominated
    serving-sweep profiles when thousands of requests churn through the
    allocator.

    Attributes:
        chunk_bytes: Size of one allocation chunk.
    """

    chunk_bytes: int
    _per_request: dict[int, dict[int, int]] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")

    def map(self, request_id: int, virtual_chunk: int, physical_chunk: int) -> None:
        """Install a mapping for one virtual chunk of a request."""
        if virtual_chunk < 0 or physical_chunk < 0:
            raise ValueError("chunk indices must be non-negative")
        mappings = self._per_request.setdefault(request_id, {})
        existing = mappings.get(virtual_chunk)
        if existing is not None and existing != physical_chunk:
            raise ValueError(
                f"virtual chunk {(request_id, virtual_chunk)} is already mapped to {existing}"
            )
        mappings[virtual_chunk] = physical_chunk

    def translate(self, request_id: int, virtual_address: int) -> int:
        """Translate a virtual byte address of a request to a physical one."""
        if virtual_address < 0:
            raise ValueError("virtual_address must be non-negative")
        virtual_chunk, offset = divmod(virtual_address, self.chunk_bytes)
        physical = self._per_request.get(request_id, {}).get(virtual_chunk)
        if physical is None:
            raise TranslationError(f"no mapping for request {request_id} chunk {virtual_chunk}")
        return physical * self.chunk_bytes + offset

    def chunks_of(self, request_id: int) -> list[int]:
        """Physical chunks mapped for a request, in virtual order."""
        mappings = self._per_request.get(request_id, {})
        return [physical for _, physical in sorted(mappings.items())]

    def release(self, request_id: int) -> list[int]:
        """Remove all mappings of a request and return the freed chunks."""
        freed = self.chunks_of(request_id)
        self._per_request.pop(request_id, None)
        return freed

    @property
    def entries(self) -> Mapping[tuple[int, int], int]:
        """Flat ``(request_id, virtual_chunk) -> physical_chunk`` view.

        Kept for compatibility with the original flat-dict storage, but
        read-only: it is rebuilt on access, so a write through it could
        only corrupt a throwaway copy -- mutating raises instead.  Use
        :meth:`map` / :meth:`release` to change mappings.
        """
        return types.MappingProxyType({
            (request_id, virtual): physical
            for request_id, mappings in self._per_request.items()
            for virtual, physical in mappings.items()
        })

    @property
    def num_entries(self) -> int:
        return sum(len(mappings) for mappings in self._per_request.values())

    @property
    def table_bytes(self) -> int:
        """Approximate SRAM footprint of the table (8B per entry)."""
        return 8 * self.num_entries
