"""Virtual-to-physical address translation table (paper Sec. VI-C).

The on-module dispatcher keeps, per request, a mapping from virtual chunk
indices (the logical, contiguous view of that request's KV cache) to
physical chunk indices in the module's DRAM.  The table is what allows DPA
instructions to reference dynamically allocated, non-contiguous memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class TranslationError(KeyError):
    """Raised when a virtual address has no physical mapping."""


@dataclass
class VA2PATable:
    """Per-module VA-to-PA chunk translation table.

    Attributes:
        chunk_bytes: Size of one allocation chunk.
        entries: Mapping ``(request_id, virtual_chunk) -> physical_chunk``.
    """

    chunk_bytes: int
    entries: dict[tuple[int, int], int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.chunk_bytes <= 0:
            raise ValueError("chunk_bytes must be positive")

    def map(self, request_id: int, virtual_chunk: int, physical_chunk: int) -> None:
        """Install a mapping for one virtual chunk of a request."""
        if virtual_chunk < 0 or physical_chunk < 0:
            raise ValueError("chunk indices must be non-negative")
        key = (request_id, virtual_chunk)
        if key in self.entries and self.entries[key] != physical_chunk:
            raise ValueError(f"virtual chunk {key} is already mapped to {self.entries[key]}")
        self.entries[key] = physical_chunk

    def translate(self, request_id: int, virtual_address: int) -> int:
        """Translate a virtual byte address of a request to a physical one."""
        if virtual_address < 0:
            raise ValueError("virtual_address must be non-negative")
        virtual_chunk, offset = divmod(virtual_address, self.chunk_bytes)
        key = (request_id, virtual_chunk)
        if key not in self.entries:
            raise TranslationError(f"no mapping for request {request_id} chunk {virtual_chunk}")
        return self.entries[key] * self.chunk_bytes + offset

    def chunks_of(self, request_id: int) -> list[int]:
        """Physical chunks mapped for a request, in virtual order."""
        mapped = [
            (virtual, physical)
            for (req, virtual), physical in self.entries.items()
            if req == request_id
        ]
        return [physical for _, physical in sorted(mapped)]

    def release(self, request_id: int) -> list[int]:
        """Remove all mappings of a request and return the freed chunks."""
        freed = self.chunks_of(request_id)
        self.entries = {
            key: value for key, value in self.entries.items() if key[0] != request_id
        }
        return freed

    @property
    def num_entries(self) -> int:
        return len(self.entries)

    @property
    def table_bytes(self) -> int:
        """Approximate SRAM footprint of the table (8B per entry)."""
        return 8 * len(self.entries)
