"""Static, maximum-context KV-cache allocation (the baseline of Sec. VI-A).

Conventional PIM systems compile instruction sequences with fixed physical
addresses, so every request must reserve KV-cache space for the maximum
context length ``T_max`` up front.  Capacity utilisation is therefore the
ratio of *actual* to *reserved* tokens, which the paper measures at ~36% on
real long-context workloads (Fig. 19 baseline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    # Imported lazily at runtime: repro.memory.lifecycle subclasses
    # AllocationError, so a module-level import here would be circular.
    from repro.memory.lifecycle import PreemptedState


class AllocationError(RuntimeError):
    """Raised when a reservation does not fit into the remaining capacity."""


@dataclass
class StaticAllocator:
    """Reserves ``T_max`` worth of KV cache per admitted request.

    Attributes:
        capacity_bytes: Total bytes available for KV cache.
        max_context_tokens: ``T_max`` used to size every reservation.
        bytes_per_token: KV bytes appended per token (model dependent).
    """

    capacity_bytes: int
    max_context_tokens: int
    bytes_per_token: int
    _reservations: dict[int, int] = field(default_factory=dict, repr=False)
    _used_tokens: dict[int, int] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        if self.max_context_tokens <= 0 or self.bytes_per_token <= 0:
            raise ValueError("max_context_tokens and bytes_per_token must be positive")

    @property
    def reservation_bytes(self) -> int:
        """Bytes reserved per request."""
        return self.max_context_tokens * self.bytes_per_token

    @property
    def allocated_bytes(self) -> int:
        return sum(self._reservations.values())

    @property
    def free_bytes(self) -> int:
        return self.capacity_bytes - self.allocated_bytes

    @property
    def num_requests(self) -> int:
        return len(self._reservations)

    def can_admit(self, tokens: int | None = None) -> bool:
        """Whether one more request's worst-case reservation fits.

        Args:
            tokens: Optional context length of the candidate request.
                Static reservations are always ``T_max`` so the value only
                rules out requests longer than the maximum; it is accepted
                for signature parity with :class:`ChunkedAllocator` (the
                legacy no-argument form still works).
        """
        if tokens is not None and tokens > self.max_context_tokens:
            return False
        return self.free_bytes >= self.reservation_bytes

    def could_ever_fit(self, tokens: int) -> bool:
        """Whether ``tokens`` of context fits an *empty* allocator at all."""
        return tokens <= self.max_context_tokens and self.capacity_bytes >= self.reservation_bytes

    def admit(self, request_id: int, initial_tokens: int) -> None:
        """Reserve worst-case space for a new request.

        Raises:
            AllocationError: if the reservation does not fit.
            ValueError: if the request is already admitted or too long.
        """
        if request_id in self._reservations:
            raise ValueError(f"request {request_id} already admitted")
        if initial_tokens > self.max_context_tokens:
            raise ValueError("initial context exceeds the static maximum")
        if not self.can_admit():
            raise AllocationError("insufficient capacity for a worst-case reservation")
        self._reservations[request_id] = self.reservation_bytes
        self._used_tokens[request_id] = initial_tokens

    def reserve(
        self, request_id: int, initial_tokens: int, final_tokens: int | None = None
    ) -> None:
        """Admit a request that will grow to ``final_tokens`` of context.

        The reservation is ``T_max`` regardless of ``final_tokens``; the
        argument exists so both allocators share one admission signature
        (and may be omitted under the incremental lifecycle contract).

        Raises:
            AllocationError: if the worst-case reservation does not fit or
                the request's final context exceeds the static maximum.
        """
        if final_tokens is None:
            final_tokens = initial_tokens
        if final_tokens < initial_tokens:
            raise ValueError("final_tokens must be >= initial_tokens")
        if final_tokens > self.max_context_tokens:
            raise AllocationError("final context exceeds the static maximum")
        self.admit(request_id, initial_tokens)

    def grow(self, request_id: int, count: int = 1) -> None:
        """Record generated tokens; the reservation never grows or shrinks.

        A ``T_max`` reservation already covers any in-window growth, so
        unlike the chunked allocator this never raises
        :class:`~repro.memory.lifecycle.CapacityExceeded` -- static
        systems feel capacity pressure at admission, not mid-decode.
        """
        if request_id not in self._reservations:
            raise KeyError(f"request {request_id} is not admitted")
        new_total = self._used_tokens[request_id] + count
        if new_total > self.max_context_tokens:
            raise AllocationError("request exceeded the static maximum context")
        self._used_tokens[request_id] = new_total

    def append_token(self, request_id: int, count: int = 1) -> None:
        """Legacy alias of :meth:`grow` (kept for the PR 1 protocol)."""
        self.grow(request_id, count)

    def preempt(self, request_id: int) -> PreemptedState:
        """Free a request's reservation and return a restore receipt.

        Raises:
            KeyError: if the request is not admitted.
        """
        from repro.memory.lifecycle import PreemptedState

        if request_id not in self._reservations:
            raise KeyError(f"request {request_id} is not admitted")
        tokens = self._used_tokens.pop(request_id)
        del self._reservations[request_id]
        return PreemptedState(
            request_id=request_id,
            tokens=tokens,
            kv_bytes=tokens * self.bytes_per_token,
        )

    def restore(self, request_id: int, state: PreemptedState) -> None:
        """Re-admit a preempted request with its saved context.

        Raises:
            CapacityExceeded: if a worst-case reservation does not fit yet.
        """
        from repro.memory.lifecycle import CapacityExceeded

        if request_id in self._reservations:
            raise ValueError(f"request {request_id} already admitted")
        if not self.can_admit(state.tokens):
            raise CapacityExceeded("insufficient capacity to restore request")
        self._reservations[request_id] = self.reservation_bytes
        self._used_tokens[request_id] = state.tokens

    def release(self, request_id: int) -> None:
        """Free a request's reservation."""
        self._reservations.pop(request_id, None)
        self._used_tokens.pop(request_id, None)

    @property
    def used_bytes(self) -> int:
        """Bytes actually backing live tokens."""
        return sum(tokens * self.bytes_per_token for tokens in self._used_tokens.values())

    @property
    def capacity_utilization(self) -> float:
        """Live-token bytes divided by reserved bytes (Fig. 19 metric)."""
        reserved = self.allocated_bytes
        if reserved == 0:
            return 0.0
        return self.used_bytes / reserved
