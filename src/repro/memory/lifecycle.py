"""The request-lifecycle vocabulary shared by every KV-cache allocator.

PR 1 unified admission behind ``can_admit``/``reserve``/``release``, but
that contract only speaks admit-to-completion: once a request is in, the
allocator has promised its *final* context and nothing can be paged out.
The types here extend the vocabulary so allocators can support true
incremental growth and preemption:

* :class:`CapacityExceeded` -- raised by ``grow``/``restore`` when a
  request needs memory the allocator cannot hand out right now.  It
  subclasses :class:`AllocationError`, so legacy callers that treated any
  allocation failure as fatal keep working unchanged.
* :class:`PreemptedState` -- the token receipt ``preempt`` returns and
  ``restore`` consumes.  It records exactly what the victim held so a
  later restore rebuilds the same reservation, and exposes ``kv_bytes``
  for swap-cost models.

The full contract (``can_admit`` / ``reserve`` / ``grow`` / ``preempt`` /
``restore`` / ``release`` / ``could_ever_fit``) is specified by
:class:`repro.serving.interfaces.KVLifecycle` and implemented by
:class:`~repro.memory.static_alloc.StaticAllocator`,
:class:`~repro.memory.chunked_alloc.ChunkedAllocator` and
:class:`~repro.core.dpa.DPAController`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.static_alloc import AllocationError

#: How evicted KV state is materialised again: ``"swap"`` pages the bytes
#: out to host memory and back; ``"recompute"`` drops them and re-runs
#: prefill at restore.  Single source of truth for
#: :class:`repro.serving.preemption.PreemptionCostModel` and
#: :class:`repro.api.spec.PreemptionSpec`.
PREEMPTION_COST_MODES = ("swap", "recompute")


class CapacityExceeded(AllocationError):
    """A request needs memory the allocator cannot provide right now.

    Raised by ``grow`` when a new chunk is required but none is free, and
    by ``restore``/``reserve`` when the requested reservation does not fit
    the remaining capacity.  Catching it is how the serving engine decides
    to run its preemption policy; callers that do not preempt can keep
    catching the :class:`AllocationError` base class.
    """


@dataclass(frozen=True)
class PreemptedState:
    """What a preempted request held, as returned by ``preempt``.

    Attributes:
        request_id: The evicted request.
        tokens: Live context tokens at preemption time; ``restore`` maps
            chunks for exactly this many tokens again.
        kv_bytes: Bytes of live KV cache evicted (tokens times the
            allocator's per-token footprint) -- the quantity swap-based
            cost models charge for paging out and back in.
        committed_chunks: Chunks the allocator had *committed* to the
            request (mapped now or promised for growth).  Zero for
            allocators without chunk commitments; ``restore`` re-commits
            at least this many so a request admitted through the legacy
            reserve-to-final contract keeps its no-mid-decode-failure
            guarantee across a preemption round-trip.
    """

    request_id: int
    tokens: int
    kv_bytes: int
    committed_chunks: int = 0

    def __post_init__(self) -> None:
        if self.tokens <= 0:
            raise ValueError("a preempted request must hold at least one token")
        if self.kv_bytes < 0 or self.committed_chunks < 0:
            raise ValueError("kv_bytes and committed_chunks must be non-negative")


__all__ = [
    "AllocationError",
    "CapacityExceeded",
    "PREEMPTION_COST_MODES",
    "PreemptedState",
]
