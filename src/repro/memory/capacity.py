"""Capacity-utilisation accounting across a serving run (paper Fig. 19)."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CapacityUsage:
    """A single capacity sample."""

    step: int
    allocated_bytes: int
    used_bytes: int

    @property
    def utilization(self) -> float:
        if self.allocated_bytes == 0:
            return 0.0
        return self.used_bytes / self.allocated_bytes


@dataclass
class CapacityTracker:
    """Accumulates capacity samples over the decode steps of a serving run."""

    samples: list[CapacityUsage] = field(default_factory=list)

    def record(self, step: int, allocated_bytes: int, used_bytes: int) -> None:
        if allocated_bytes < 0 or used_bytes < 0:
            raise ValueError("byte counts must be non-negative")
        self.samples.append(
            CapacityUsage(step=step, allocated_bytes=allocated_bytes, used_bytes=used_bytes)
        )

    @property
    def average_utilization(self) -> float:
        """Mean of per-sample utilisation over samples with allocations."""
        meaningful = [s.utilization for s in self.samples if s.allocated_bytes > 0]
        if not meaningful:
            return 0.0
        return sum(meaningful) / len(meaningful)

    @property
    def peak_allocated_bytes(self) -> int:
        if not self.samples:
            return 0
        return max(s.allocated_bytes for s in self.samples)
