"""Lazy, chunk-granular KV-cache allocation enabled by DPA (Sec. VI).

Instead of reserving ``T_max`` per request, memory is handed out in fixed
chunks (1MB by default, matching the paper) on demand as a request's KV
cache grows.  Internal fragmentation is limited to the final, partially
filled chunk of each request, which raises capacity utilisation to ~75% on
the paper's workloads (Fig. 19 with DPA).

The allocator implements the full request-lifecycle contract
(:class:`~repro.serving.interfaces.KVLifecycle`): ``reserve`` without a
``final_tokens`` commitment admits a request against only its *current*
context (true incremental allocation), ``grow`` raises
:class:`~repro.memory.lifecycle.CapacityExceeded` when the chunks run out
mid-decode, and ``preempt``/``restore`` page a victim's chunks out and
back in so a preemption policy can resolve the pressure.  Passing
``final_tokens`` keeps the legacy admit-to-completion guarantee: the final
context is committed up front and growth inside it never fails.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.lifecycle import CapacityExceeded, PreemptedState
from repro.memory.va2pa import VA2PATable

DEFAULT_CHUNK_BYTES = 1 * 1024 * 1024
"""Default allocation chunk size (1MB, as in the paper)."""


@dataclass
class ChunkedAllocator:
    """On-demand chunk allocator backed by a VA2PA translation table.

    Attributes:
        capacity_bytes: Total bytes available for KV cache.
        bytes_per_token: KV bytes appended per token.
        chunk_bytes: Allocation granularity.
    """

    capacity_bytes: int
    bytes_per_token: int
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    _table: VA2PATable = field(init=False, repr=False)
    _free_chunks: list[int] = field(init=False, repr=False)
    _tokens: dict[int, int] = field(default_factory=dict, repr=False)
    _committed: dict[int, int] = field(default_factory=dict, repr=False)
    _committed_total: int = field(default=0, repr=False)
    host_interventions: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        if self.bytes_per_token <= 0 or self.chunk_bytes <= 0:
            raise ValueError("bytes_per_token and chunk_bytes must be positive")
        self._table = VA2PATable(chunk_bytes=self.chunk_bytes)
        self._free_chunks = list(range(self.capacity_bytes // self.chunk_bytes))[::-1]

    # -- sizing helpers ---------------------------------------------------

    @property
    def total_chunks(self) -> int:
        return self.capacity_bytes // self.chunk_bytes

    @property
    def free_chunk_count(self) -> int:
        return len(self._free_chunks)

    @property
    def allocated_chunk_count(self) -> int:
        return self.total_chunks - self.free_chunk_count

    @property
    def allocated_bytes(self) -> int:
        return self.allocated_chunk_count * self.chunk_bytes

    @property
    def table(self) -> VA2PATable:
        """The VA2PA translation table maintained by the dispatcher."""
        return self._table

    def chunks_needed(self, tokens: int) -> int:
        """Chunks required to back ``tokens`` worth of KV cache."""
        if tokens <= 0:
            return 0
        return -(-(tokens * self.bytes_per_token) // self.chunk_bytes)

    @property
    def committed_chunk_count(self) -> int:
        """Chunks promised to live requests (mapped now or reserved for growth)."""
        return self._committed_total

    @property
    def uncommitted_chunk_count(self) -> int:
        """Chunks available for new reservations."""
        return self.total_chunks - self.committed_chunk_count

    def committed_chunks_for(self, request_id: int) -> int:
        """Chunks currently committed to one admitted request (0 if unknown).

        Exposed so schedulers (the fast engine's span planner) can predict
        whether a run of uniform grows can possibly raise
        :class:`CapacityExceeded` without mutating allocator state.
        """
        return self._committed.get(request_id, 0)

    def can_admit(self, tokens: int) -> bool:
        """Whether a request needing ``tokens`` of context fits right now.

        Admission is checked against the *uncommitted* capacity.  Under the
        legacy contract, ``tokens`` is the request's final context and
        pairing with :meth:`reserve` of the same value guarantees no
        mid-decode failure.  Under the incremental lifecycle contract,
        ``tokens`` is the request's *current* context and growth past it
        may raise :class:`CapacityExceeded`, to be resolved by preemption.
        """
        return self.chunks_needed(tokens) <= self.uncommitted_chunk_count

    def could_ever_fit(self, tokens: int) -> bool:
        """Whether ``tokens`` of context fits an *empty* allocator at all."""
        return self.chunks_needed(tokens) <= self.total_chunks

    # -- allocation lifecycle ----------------------------------------------

    def reserve(
        self, request_id: int, initial_tokens: int, final_tokens: int | None = None
    ) -> None:
        """Admit a request, mapping chunks for its current prefix.

        With ``final_tokens`` (the legacy admit-to-completion contract) the
        remainder up to the final context is *committed* up front and
        materialises lazily as the request grows -- growth inside the
        commitment never fails.  Without it (the incremental lifecycle
        contract) only ``initial_tokens`` is committed, and :meth:`grow`
        claims further chunks on demand, which may raise
        :class:`CapacityExceeded` under pressure.

        Raises:
            CapacityExceeded: if the committed context does not fit.
        """
        if request_id in self._tokens:
            raise ValueError(f"request {request_id} already admitted")
        if final_tokens is None:
            final_tokens = initial_tokens
        if final_tokens < initial_tokens:
            raise ValueError("final_tokens must be >= initial_tokens")
        committed = self.chunks_needed(final_tokens)
        if committed > self.uncommitted_chunk_count:
            raise CapacityExceeded("insufficient free chunks to admit request")
        for virtual_chunk in range(self.chunks_needed(initial_tokens)):
            self._table.map(request_id, virtual_chunk, self._free_chunks.pop())
        self._tokens[request_id] = initial_tokens
        self._committed[request_id] = committed
        self._committed_total += committed
        self.host_interventions += 1

    def admit(self, request_id: int, initial_tokens: int) -> None:
        """Admit a request committing only its current prefix.

        Equivalent to :meth:`reserve` without ``final_tokens``: the
        commitment grows with :meth:`grow`, which may fail mid-decode when
        the allocator fills up.

        Raises:
            CapacityExceeded: if the request's current KV cache does not fit.
        """
        self.reserve(request_id, initial_tokens)

    def grow(self, request_id: int, count: int = 1) -> None:
        """Grow a request's KV cache, allocating a new chunk when needed.

        Growth within the request's commitment always succeeds; growth past
        it must claim uncommitted chunks.

        Raises:
            CapacityExceeded: if a new chunk is required but none is free --
                the signal a preemption policy resolves by evicting a victim.
        """
        if request_id not in self._tokens:
            raise KeyError(f"request {request_id} is not admitted")
        current = self._tokens[request_id]
        have = self.chunks_needed(current)
        need = self.chunks_needed(current + count)
        committed = self._committed[request_id]
        if need > committed:
            if need - committed > self.uncommitted_chunk_count:
                raise CapacityExceeded("out of chunks while growing the KV cache")
            self._committed[request_id] = need
            self._committed_total += need - committed
        for virtual_chunk in range(have, need):
            self._table.map(request_id, virtual_chunk, self._free_chunks.pop())
        if need > have:
            self.host_interventions += 1
        self._tokens[request_id] = current + count

    def append_token(self, request_id: int, count: int = 1) -> None:
        """Legacy alias of :meth:`grow` (kept for the PR 1 protocol)."""
        self.grow(request_id, count)

    def preempt(self, request_id: int) -> PreemptedState:
        """Page a request out: free its chunks and return a restore receipt.

        Raises:
            KeyError: if the request is not admitted.
        """
        if request_id not in self._tokens:
            raise KeyError(f"request {request_id} is not admitted")
        freed = self._table.release(request_id)
        self._free_chunks.extend(freed)
        tokens = self._tokens.pop(request_id)
        committed = self._committed.pop(request_id)
        self._committed_total -= committed
        self.host_interventions += 1
        return PreemptedState(
            request_id=request_id,
            tokens=tokens,
            kv_bytes=tokens * self.bytes_per_token,
            committed_chunks=committed,
        )

    def restore(self, request_id: int, state: PreemptedState) -> None:
        """Re-admit a preempted request with exactly what it held.

        Chunks for ``state.tokens`` are mapped again and the commitment is
        re-established at its pre-preemption level, so a request admitted
        through the legacy reserve-to-final contract resumes with the same
        no-mid-decode-failure guarantee.

        Raises:
            CapacityExceeded: if the restored reservation does not fit yet.
        """
        if request_id in self._tokens:
            raise ValueError(f"request {request_id} already admitted")
        mapped = self.chunks_needed(state.tokens)
        committed = max(mapped, state.committed_chunks)
        if committed > self.uncommitted_chunk_count:
            raise CapacityExceeded("insufficient free chunks to restore request")
        for virtual_chunk in range(mapped):
            self._table.map(request_id, virtual_chunk, self._free_chunks.pop())
        self._tokens[request_id] = state.tokens
        self._committed[request_id] = committed
        self._committed_total += committed
        self.host_interventions += 1

    def release(self, request_id: int) -> None:
        """Free every chunk owned by or committed to a request."""
        if request_id not in self._tokens:
            return
        freed = self._table.release(request_id)
        self._free_chunks.extend(freed)
        del self._tokens[request_id]
        self._committed_total -= self._committed.pop(request_id)
        self.host_interventions += 1

    # -- metrics ------------------------------------------------------------

    @property
    def num_requests(self) -> int:
        return len(self._tokens)

    @property
    def used_bytes(self) -> int:
        """Bytes backing live tokens (excludes last-chunk fragmentation)."""
        return sum(tokens * self.bytes_per_token for tokens in self._tokens.values())

    @property
    def capacity_utilization(self) -> float:
        """Live-token bytes divided by allocated bytes (Fig. 19 metric)."""
        allocated = self.allocated_bytes
        if allocated == 0:
            return 0.0
        return self.used_bytes / allocated

    @property
    def fragmentation_bytes(self) -> int:
        """Bytes allocated but not backing live tokens."""
        return self.allocated_bytes - self.used_bytes
