"""Lazy, chunk-granular KV-cache allocation enabled by DPA (Sec. VI).

Instead of reserving ``T_max`` per request, memory is handed out in fixed
chunks (1MB by default, matching the paper) on demand as a request's KV
cache grows.  Internal fragmentation is limited to the final, partially
filled chunk of each request, which raises capacity utilisation to ~75% on
the paper's workloads (Fig. 19 with DPA).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.static_alloc import AllocationError
from repro.memory.va2pa import VA2PATable

DEFAULT_CHUNK_BYTES = 1 * 1024 * 1024
"""Default allocation chunk size (1MB, as in the paper)."""


@dataclass
class ChunkedAllocator:
    """On-demand chunk allocator backed by a VA2PA translation table.

    Attributes:
        capacity_bytes: Total bytes available for KV cache.
        bytes_per_token: KV bytes appended per token.
        chunk_bytes: Allocation granularity.
    """

    capacity_bytes: int
    bytes_per_token: int
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    _table: VA2PATable = field(init=False, repr=False)
    _free_chunks: list[int] = field(init=False, repr=False)
    _tokens: dict[int, int] = field(default_factory=dict, repr=False)
    _committed: dict[int, int] = field(default_factory=dict, repr=False)
    _committed_total: int = field(default=0, repr=False)
    host_interventions: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.capacity_bytes < 0:
            raise ValueError("capacity_bytes must be non-negative")
        if self.bytes_per_token <= 0 or self.chunk_bytes <= 0:
            raise ValueError("bytes_per_token and chunk_bytes must be positive")
        self._table = VA2PATable(chunk_bytes=self.chunk_bytes)
        self._free_chunks = list(range(self.capacity_bytes // self.chunk_bytes))[::-1]

    # -- sizing helpers ---------------------------------------------------

    @property
    def total_chunks(self) -> int:
        return self.capacity_bytes // self.chunk_bytes

    @property
    def free_chunk_count(self) -> int:
        return len(self._free_chunks)

    @property
    def allocated_chunk_count(self) -> int:
        return self.total_chunks - self.free_chunk_count

    @property
    def allocated_bytes(self) -> int:
        return self.allocated_chunk_count * self.chunk_bytes

    @property
    def table(self) -> VA2PATable:
        """The VA2PA translation table maintained by the dispatcher."""
        return self._table

    def chunks_needed(self, tokens: int) -> int:
        """Chunks required to back ``tokens`` worth of KV cache."""
        if tokens <= 0:
            return 0
        return -(-(tokens * self.bytes_per_token) // self.chunk_bytes)

    @property
    def committed_chunk_count(self) -> int:
        """Chunks promised to live requests (mapped now or reserved for growth)."""
        return self._committed_total

    @property
    def uncommitted_chunk_count(self) -> int:
        """Chunks available for new reservations."""
        return self.total_chunks - self.committed_chunk_count

    def can_admit(self, final_tokens: int) -> bool:
        """Whether a request growing to ``final_tokens`` of context fits.

        Admission is checked against the *uncommitted* capacity.  Paired
        with :meth:`reserve` of the same ``final_tokens``, an admitted
        request never runs out of chunks mid-decode: every live
        reservation's final context is already accounted for.  (Pairing it
        with :meth:`admit`, which commits only the prefix, keeps the legacy
        may-fail-while-growing behaviour.)
        """
        return self.chunks_needed(final_tokens) <= self.uncommitted_chunk_count

    # -- allocation lifecycle ----------------------------------------------

    def reserve(self, request_id: int, initial_tokens: int, final_tokens: int) -> None:
        """Admit a request, mapping its prefix and committing its final size.

        Chunks for ``initial_tokens`` are mapped immediately; the remainder
        up to ``final_tokens`` is only committed, and materialises lazily as
        :meth:`append_token` grows the request.

        Raises:
            AllocationError: if the committed final context does not fit.
        """
        if request_id in self._tokens:
            raise ValueError(f"request {request_id} already admitted")
        if final_tokens < initial_tokens:
            raise ValueError("final_tokens must be >= initial_tokens")
        committed = self.chunks_needed(final_tokens)
        if committed > self.uncommitted_chunk_count:
            raise AllocationError("insufficient free chunks to admit request")
        for virtual_chunk in range(self.chunks_needed(initial_tokens)):
            self._table.map(request_id, virtual_chunk, self._free_chunks.pop())
        self._tokens[request_id] = initial_tokens
        self._committed[request_id] = committed
        self._committed_total += committed
        self.host_interventions += 1

    def admit(self, request_id: int, initial_tokens: int) -> None:
        """Admit a request committing only its current prefix.

        The commitment then grows with :meth:`append_token`, which may fail
        mid-decode when the allocator fills up; callers that know a request's
        final context should use :meth:`reserve` instead.

        Raises:
            AllocationError: if the request's current KV cache does not fit.
        """
        self.reserve(request_id, initial_tokens, initial_tokens)

    def append_token(self, request_id: int, count: int = 1) -> None:
        """Grow a request's KV cache, allocating a new chunk when needed.

        Growth within the request's reservation always succeeds; growth past
        it must claim uncommitted chunks.

        Raises:
            AllocationError: if a new chunk is required but none is free.
        """
        if request_id not in self._tokens:
            raise KeyError(f"request {request_id} is not admitted")
        current = self._tokens[request_id]
        have = self.chunks_needed(current)
        need = self.chunks_needed(current + count)
        committed = self._committed[request_id]
        if need > committed:
            if need - committed > self.uncommitted_chunk_count:
                raise AllocationError("out of chunks while growing the KV cache")
            self._committed[request_id] = need
            self._committed_total += need - committed
        for virtual_chunk in range(have, need):
            self._table.map(request_id, virtual_chunk, self._free_chunks.pop())
        if need > have:
            self.host_interventions += 1
        self._tokens[request_id] = current + count

    def release(self, request_id: int) -> None:
        """Free every chunk owned by or committed to a request."""
        if request_id not in self._tokens:
            return
        freed = self._table.release(request_id)
        self._free_chunks.extend(freed)
        del self._tokens[request_id]
        self._committed_total -= self._committed.pop(request_id)
        self.host_interventions += 1

    # -- metrics ------------------------------------------------------------

    @property
    def num_requests(self) -> int:
        return len(self._tokens)

    @property
    def used_bytes(self) -> int:
        """Bytes backing live tokens (excludes last-chunk fragmentation)."""
        return sum(tokens * self.bytes_per_token for tokens in self._tokens.values())

    @property
    def capacity_utilization(self) -> float:
        """Live-token bytes divided by allocated bytes (Fig. 19 metric)."""
        allocated = self.allocated_bytes
        if allocated == 0:
            return 0.0
        return self.used_bytes / allocated

    @property
    def fragmentation_bytes(self) -> int:
        """Bytes allocated but not backing live tokens."""
        return self.allocated_bytes - self.used_bytes
