"""Per-module decode-step timing of attention and FC layers on PIM.

These helpers aggregate the channel-level kernel estimators of
``repro.pim.kernels`` into module-level times, applying the intra-module
partitioning strategy (HFP vs TCP) for attention.  They are the hot path of
the serving simulator, so per-unique-context kernel estimates are cached
within a call instead of re-evaluated per task.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from repro.core.orchestrator import PIMphonyConfig
from repro.pim.config import PIMModuleConfig
from repro.pim.kernels import attention_head_cycles, fc_gemv_cycles
from repro.pim.simulator import CycleBreakdown, ZERO_BREAKDOWN


@dataclass(frozen=True)
class ModuleLayerTimes:
    """Timing of one decoder layer's PIM work on one module.

    Attributes:
        attention_cycles: End-to-end attention time (slowest channel).
        fc_cycles: End-to-end FC time on PIM (zero when FC runs on an xPU).
        attention_utilization: Mean channel busy fraction during attention.
        attention_breakdown: Aggregate breakdown across channels (for energy).
        fc_breakdown: Aggregate FC breakdown across channels (for energy).
    """

    attention_cycles: float
    fc_cycles: float
    attention_utilization: float
    attention_breakdown: CycleBreakdown
    fc_breakdown: CycleBreakdown

    @property
    def total_cycles(self) -> float:
        return self.attention_cycles + self.fc_cycles


def _policy_of(config: PIMphonyConfig) -> str:
    return "dcs" if config.dcs else "static"


def module_attention_time(
    context_lengths: Sequence[int],
    kv_heads_per_module: int,
    group_size: int,
    head_dim: int,
    module: PIMModuleConfig,
    config: PIMphonyConfig,
) -> tuple[float, float, CycleBreakdown]:
    """Attention time of one layer on one module for a batch of requests.

    Returns:
        ``(module_cycles, channel_utilization, aggregate_breakdown)`` where
        ``module_cycles`` is the time of the slowest channel and the
        aggregate breakdown sums all channels' busy components (for energy).
    """
    active = [length for length in context_lengths if length > 0]
    if not active or kv_heads_per_module <= 0:
        return 0.0, 0.0, ZERO_BREAKDOWN

    policy = _policy_of(config)
    channel = module.channel
    timing = module.timing
    num_channels = module.num_channels
    row_reuse = config.row_reuse

    cycles_cache: dict[int, CycleBreakdown] = {}

    def head_cycles(tokens: int) -> CycleBreakdown:
        if tokens <= 0:
            return ZERO_BREAKDOWN
        if tokens not in cycles_cache:
            cycles_cache[tokens] = attention_head_cycles(
                tokens=tokens,
                head_dim=head_dim,
                channel=channel,
                timing=timing,
                policy=policy,
                group_size=group_size,
                row_reuse=row_reuse,
            )
        return cycles_cache[tokens]

    if config.tcp:
        # Every channel processes an equal token share of every task; the
        # per-channel time is identical across channels by construction.
        per_channel = ZERO_BREAKDOWN
        for length in active:
            share = -(-length // num_channels)
            slice_breakdown = head_cycles(share)
            per_channel = per_channel + slice_breakdown.scaled(kv_heads_per_module)
        module_cycles = per_channel.total
        utilization = 1.0 if module_cycles > 0 else 0.0
        aggregate = per_channel.scaled(num_channels)
        return module_cycles, utilization, aggregate

    # HFP: whole (request, KV head) tasks are placed on the least loaded
    # channel; the module finishes with its slowest channel.
    channel_cycles = [0.0] * num_channels
    aggregate = ZERO_BREAKDOWN
    tasks: list[int] = []
    for length in active:
        tasks.extend([length] * kv_heads_per_module)
    tasks.sort(reverse=True)
    for length in tasks:
        breakdown = head_cycles(length)
        target = min(range(num_channels), key=lambda index: channel_cycles[index])
        channel_cycles[target] += breakdown.total
        aggregate = aggregate + breakdown
    module_cycles = max(channel_cycles)
    if module_cycles > 0:
        utilization = sum(channel_cycles) / (num_channels * module_cycles)
    else:
        utilization = 0.0
    return module_cycles, utilization, aggregate


#: FC matrices of one decoder layer as (in_dim multiplier, out_dim multiplier)
#: pairs over (d_model, kv_dim, ffn_dim); resolved per model below.
def _layer_fc_shapes(
    d_model: int, kv_dim: int, ffn_dim: int, gated_ffn: bool
) -> list[tuple[int, int]]:
    shapes = [
        (d_model, d_model + 2 * kv_dim),  # QKV projection
        (d_model, d_model),  # output projection
        (d_model, ffn_dim),  # FFN up
        (ffn_dim, d_model),  # FFN down
    ]
    if gated_ffn:
        shapes.append((d_model, ffn_dim))  # FFN gate
    return shapes


def module_fc_time(
    batch_size: int,
    d_model: int,
    kv_dim: int,
    ffn_dim: int,
    gated_ffn: bool,
    tensor_parallel: int,
    module: PIMModuleConfig,
    config: PIMphonyConfig,
) -> tuple[float, CycleBreakdown]:
    """FC time of one layer on one module when FC runs on PIM (CENT-style).

    Weight matrices are sharded column-wise across the ``tensor_parallel``
    modules of the stage and further column-wise across the module's
    channels, so each channel runs a GEMV with the full reduction dimension
    and a slice of the output dimension, once per request in the batch.
    """
    if batch_size <= 0:
        return 0.0, ZERO_BREAKDOWN
    policy = _policy_of(config)
    channel = module.channel
    timing = module.timing
    shard = tensor_parallel * module.num_channels

    per_channel = ZERO_BREAKDOWN
    for in_dim, out_dim in _layer_fc_shapes(d_model, kv_dim, ffn_dim, gated_ffn):
        out_per_channel = max(channel.num_banks, out_dim // shard)
        per_channel = per_channel + fc_gemv_cycles(
            in_dim=in_dim,
            out_dim=out_per_channel,
            channel=channel,
            timing=timing,
            policy=policy,
            n_vectors=batch_size,
            row_reuse=config.row_reuse,
        )
    aggregate = per_channel.scaled(module.num_channels)
    return per_channel.total, aggregate
