"""Heterogeneous xPU + PIM system (NeuPIMs-style deployment).

Compute-intensive FC layers run on matrix units co-located with each module
(the xPU); memory-bound attention runs on the PIM channels.  Following
NeuPIMs, the two are overlapped with sub-batch interleaving, so a layer's
time is governed by the slower of the two engines plus a small
synchronisation overhead.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.api.registry import register_system
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import LLMConfig
from repro.pim.config import PIMModuleConfig, neupims_module_config
from repro.pim.simulator import ZERO_BREAKDOWN
from repro.serving.interfaces import StepResult
from repro.serving.prefill import transformer_prefill_flops
from repro.system.interconnect import InterconnectConfig
from repro.system.layers import module_attention_time
from repro.system.parallelism import ParallelismPlan
from repro.system.pipeline import StageCost, pipeline_decode_step
from repro.system.xpu import XPUConfig, fc_layer_seconds

#: Fraction of the slower engine's time added per layer for xPU/PIM
#: synchronisation under sub-batch interleaving.
SYNC_OVERHEAD_FRAC = 0.05


@dataclass
class XPUPIMSystem:
    """Heterogeneous system with per-module xPU compute and PIM attention."""

    model: LLMConfig
    num_modules: int
    plan: ParallelismPlan
    pimphony: PIMphonyConfig = field(default_factory=PIMphonyConfig.full)
    module: PIMModuleConfig = field(default_factory=neupims_module_config)
    xpu: XPUConfig = field(default_factory=XPUConfig)
    interconnect: InterconnectConfig = field(
        default_factory=lambda: InterconnectConfig(bandwidth_bytes_per_s=300e9, latency_s=1e-6)
    )

    def __post_init__(self) -> None:
        if self.num_modules <= 0:
            raise ValueError("num_modules must be positive")
        if self.plan.num_modules != self.num_modules:
            raise ValueError(
                f"plan {self.plan} covers {self.plan.num_modules} modules, "
                f"system has {self.num_modules}"
            )
        self.plan.validate_for(self.model)

    # -- capacity ------------------------------------------------------------

    @property
    def total_capacity_bytes(self) -> int:
        return self.num_modules * self.module.capacity_bytes

    @property
    def kv_capacity_bytes(self) -> int:
        return max(0, self.total_capacity_bytes - self.model.param_bytes)

    @property
    def kv_bytes_per_token(self) -> int:
        return self.model.kv_bytes_per_token

    @property
    def max_context_tokens(self) -> int:
        return self.model.context_window

    @property
    def dynamic_memory(self) -> bool:
        return self.pimphony.dpa

    @property
    def total_pim_channels(self) -> int:
        return self.num_modules * self.module.num_channels

    # -- timing ----------------------------------------------------------------

    def _stage_cost(self, microbatch: Sequence[int]) -> StageCost:
        if not microbatch:
            return StageCost(seconds=0.0, pim_utilization=0.0)
        tensor_parallel = self.plan.tensor_parallel
        layers = self.plan.layers_per_stage(self.model)
        timing = self.module.timing

        attention_cycles, utilization, attention_breakdown = module_attention_time(
            context_lengths=microbatch,
            kv_heads_per_module=self.plan.kv_heads_per_module(self.model),
            group_size=self.model.gqa_group_size,
            head_dim=self.model.head_dim,
            module=self.module,
            config=self.pimphony,
        )
        attention_seconds = timing.cycles_to_seconds(attention_cycles)
        fc_seconds = fc_layer_seconds(
            xpu=self.xpu,
            batch_size=len(microbatch),
            d_model=self.model.d_model,
            kv_dim=self.model.kv_dim,
            ffn_dim=self.model.ffn_dim,
            gated_ffn=self.model.gated_ffn,
            tensor_parallel=tensor_parallel,
            dtype_bytes=self.model.dtype_bytes,
        )
        layer_seconds = max(attention_seconds, fc_seconds) * (1.0 + SYNC_OVERHEAD_FRAC)
        sync_bytes = len(microbatch) * self.model.d_model * self.model.dtype_bytes
        layer_seconds += 2 * self.interconnect.all_reduce_seconds(sync_bytes, tensor_parallel)
        stage_seconds = layers * layer_seconds
        stage_seconds += self.interconnect.point_to_point_seconds(sync_bytes)

        if layer_seconds > 0:
            pim_busy_fraction = min(1.0, attention_seconds / max(layer_seconds, 1e-30))
        else:
            pim_busy_fraction = 0.0
        return StageCost(
            seconds=stage_seconds,
            pim_utilization=utilization * pim_busy_fraction,
            attention_breakdown=attention_breakdown.scaled(layers),
        )

    def decode_step(self, context_lengths: Sequence[int]) -> StepResult:
        step = pipeline_decode_step(
            context_lengths, self.plan.pipeline_parallel, self._stage_cost
        )
        return StepResult(
            seconds=step.seconds,
            pim_utilization=step.pim_utilization,
            attention_breakdown=step.attention_breakdown.scaled(self.plan.tensor_parallel),
            fc_breakdown=ZERO_BREAKDOWN,
        )

    def prefill_seconds(self, prompt_tokens: int) -> float:
        """Prefill latency: the prompt GEMMs run on the xPUs, not on PIM.

        Prefill is compute bound, which is exactly the regime PIM's GEMV
        engines are worst at, so the heterogeneous system keeps the whole
        prompt pass (attention included) on the matrix units.  A single
        prompt flows through the pipeline stages sequentially (no overlap
        to exploit), so only the ``tensor_parallel`` modules of a stage
        work on it at any instant -- the rate uses TP width, not the full
        module count.
        """
        if prompt_tokens <= 0:
            return 0.0
        fc_flops, attention_flops = transformer_prefill_flops(self.model, prompt_tokens)
        tensor_parallel = self.plan.tensor_parallel
        compute_flops_per_s = (
            tensor_parallel * self.xpu.peak_tflops * 1e12 * self.xpu.compute_efficiency
        )
        weight_stream_seconds = self.model.param_bytes / (
            tensor_parallel * self.xpu.memory_bandwidth_bytes
        )
        return max((fc_flops + attention_flops) / compute_flops_per_s, weight_stream_seconds)


def _build_xpu_pim(
    model: LLMConfig,
    num_modules: int | None,
    plan: ParallelismPlan | None,
    pimphony: PIMphonyConfig,
) -> XPUPIMSystem:
    """Experiment-API builder: NeuPIMs-class deployment, paper-matched defaults."""
    from repro.baselines.neupims import neupims_system_config

    return neupims_system_config(model, num_modules=num_modules, plan=plan, pimphony=pimphony)


# Self-registration: "xpu-pim" is the NeuPIMs-class deployment of this system.
register_system("xpu-pim", _build_xpu_pim)
