"""Pipeline-parallel decode-step timing shared by the system models.

One decode step gives every active request one new token.  The batch is
split into micro-batches that circulate through the pipeline stages; in
steady state the step period is bounded below both by the bottleneck
stage's total work (it must serve every micro-batch once per step) and by
the pipeline depth times the largest micro-batch (a micro-batch cannot
re-enter the pipeline before its previous token has left it):

    T_step = max( sum_i t_i,  stages * max_i t_i )

Fewer, larger micro-batches amortise per-micro-batch overheads (weight
streaming on an xPU); more, smaller micro-batches keep the pipeline free of
bubbles.  The runtime picks whichever granularity yields the shorter step,
mirroring the micro-batch tuning real serving systems perform.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.pim.simulator import CycleBreakdown, ZERO_BREAKDOWN


@dataclass(frozen=True)
class StageCost:
    """Cost of one pipeline stage processing one micro-batch."""

    seconds: float
    pim_utilization: float
    attention_breakdown: CycleBreakdown = ZERO_BREAKDOWN
    fc_breakdown: CycleBreakdown = ZERO_BREAKDOWN


@dataclass(frozen=True)
class PipelineStep:
    """Timing of one decode step across the whole pipeline."""

    seconds: float
    pim_utilization: float
    attention_breakdown: CycleBreakdown
    fc_breakdown: CycleBreakdown
    num_microbatches: int


def split_microbatches(contexts: Sequence[int], count: int) -> list[list[int]]:
    """Split a batch into ``count`` micro-batches, balancing token totals."""
    count = max(1, min(count, len(contexts)))
    buckets: list[list[int]] = [[] for _ in range(count)]
    loads = [0] * count
    for context in sorted(contexts, reverse=True):
        target = loads.index(min(loads))
        buckets[target].append(context)
        loads[target] += context
    return [bucket for bucket in buckets if bucket]


def _evaluate(
    microbatches: list[list[int]],
    stages: int,
    stage_cost: Callable[[Sequence[int]], StageCost],
) -> PipelineStep:
    costs = [stage_cost(microbatch) for microbatch in microbatches]
    times = [cost.seconds for cost in costs]
    total_work = sum(times)
    step_seconds = max(total_work, stages * max(times))

    attention_total = ZERO_BREAKDOWN
    fc_total = ZERO_BREAKDOWN
    busy_weighted_utilization = 0.0
    for cost in costs:
        attention_total = attention_total + cost.attention_breakdown
        fc_total = fc_total + cost.fc_breakdown
        busy_weighted_utilization += cost.seconds * cost.pim_utilization
    utilization = busy_weighted_utilization / step_seconds if step_seconds > 0 else 0.0

    return PipelineStep(
        seconds=step_seconds,
        pim_utilization=min(1.0, utilization),
        attention_breakdown=attention_total,
        fc_breakdown=fc_total,
        num_microbatches=len(microbatches),
    )


def pipeline_decode_step(
    contexts: Sequence[int],
    stages: int,
    stage_cost: Callable[[Sequence[int]], StageCost],
) -> PipelineStep:
    """Best-achievable decode-step timing over micro-batch granularities.

    Args:
        contexts: Context length of every active request.
        stages: Pipeline depth (PP degree).
        stage_cost: Callback returning the cost of one stage processing one
            micro-batch (the same layers run in every stage, so one
            representative stage suffices).

    Returns:
        The :class:`PipelineStep` of the better micro-batch granularity.
    """
    active = [context for context in contexts if context > 0]
    if not active:
        return PipelineStep(
            seconds=0.0,
            pim_utilization=0.0,
            attention_breakdown=ZERO_BREAKDOWN,
            fc_breakdown=ZERO_BREAKDOWN,
            num_microbatches=0,
        )
    if stages < 1:
        raise ValueError("stages must be >= 1")

    candidate_counts = sorted({min(stages, len(active)), len(active)})
    best: PipelineStep | None = None
    for count in candidate_counts:
        step = _evaluate(split_microbatches(active, count), stages, stage_cost)
        if best is None or step.seconds < best.seconds:
            best = step
    assert best is not None
    return best
