"""Tensor / pipeline parallelism plans across PIM modules (paper Sec. II-C).

Tensor parallelism (TP) shards attention heads and FC weight columns across
the modules of a stage and requires an all-reduce per projection; pipeline
parallelism (PP) assigns consecutive layers to different modules and keeps
them busy with different micro-batches.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.models.llm import LLMConfig


@dataclass(frozen=True)
class ParallelismPlan:
    """A (TP, PP) decomposition of the module pool.

    Attributes:
        tensor_parallel: Modules a stage shards its heads/weights across.
        pipeline_parallel: Number of pipeline stages.
    """

    tensor_parallel: int
    pipeline_parallel: int

    def __post_init__(self) -> None:
        if self.tensor_parallel < 1 or self.pipeline_parallel < 1:
            raise ValueError("parallelism degrees must be >= 1")

    @property
    def num_modules(self) -> int:
        return self.tensor_parallel * self.pipeline_parallel

    def kv_heads_per_module(self, model: LLMConfig) -> int:
        """KV heads a module handles in one of its layers."""
        shard = model.num_kv_heads // self.tensor_parallel
        return max(1, shard)

    def layers_per_stage(self, model: LLMConfig) -> int:
        """Layers executed by each pipeline stage."""
        return -(-model.num_layers // self.pipeline_parallel)

    def validate_for(self, model: LLMConfig) -> None:
        """Check that the plan divides the model cleanly enough to be used."""
        if self.tensor_parallel > model.num_kv_heads:
            raise ValueError(
                f"TP={self.tensor_parallel} exceeds the {model.num_kv_heads} KV heads"
            )
        if self.pipeline_parallel > model.num_layers:
            raise ValueError(
                f"PP={self.pipeline_parallel} exceeds the {model.num_layers} layers"
            )

    def __str__(self) -> str:
        return f"TP{self.tensor_parallel}xPP{self.pipeline_parallel}"


def enumerate_plans(num_modules: int, model: LLMConfig) -> list[ParallelismPlan]:
    """All valid (TP, PP) factorisations of ``num_modules`` for a model."""
    if num_modules <= 0:
        raise ValueError("num_modules must be positive")
    plans = []
    for tensor_parallel in range(1, num_modules + 1):
        if num_modules % tensor_parallel != 0:
            continue
        plan = ParallelismPlan(
            tensor_parallel=tensor_parallel,
            pipeline_parallel=num_modules // tensor_parallel,
        )
        try:
            plan.validate_for(model)
        except ValueError:
            continue
        plans.append(plan)
    return plans


def best_plan(
    num_modules: int,
    model: LLMConfig,
    evaluate: Callable[[ParallelismPlan], float],
) -> tuple[ParallelismPlan, float]:
    """Pick the plan maximising ``evaluate(plan)`` (a throughput callback)."""
    plans = enumerate_plans(num_modules, model)
    if not plans:
        raise ValueError("no valid parallelism plan for this module count")
    scored = [(plan, float(evaluate(plan))) for plan in plans]
    scored.sort(key=lambda item: item[1], reverse=True)
    return scored[0]
