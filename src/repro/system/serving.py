"""Backward-compatible facade over the event-driven serving engine.

The serving stack now lives in :mod:`repro.serving` -- admission policies,
the :class:`~repro.serving.engine.ServingEngine` event loop, per-request
lifecycle metrics and the decode-step latency cache.  This module keeps the
historical import surface (``StepResult``, ``DecodeSystem``,
``ServingResult``, ``simulate_serving``) working unchanged: on traces
without arrival timestamps (the only kind that existed before, every
request at time 0) whose requests fit the context window, the FCFS engine
reproduces the legacy synchronous loop's results exactly.  Traces carrying
timestamps -- e.g. from :func:`~repro.workloads.traces.poisson_arrivals`
-- are served open-loop, with arrival-gated admission and idle gaps.
Requests whose output would outgrow the context window are clamped to it
(the legacy loop generated past its own reservation, risking mid-decode
allocation failure).
"""

from __future__ import annotations

from repro.memory.static_alloc import AllocationError
from repro.serving.engine import EngineResult, ServingEngine
from repro.serving.interfaces import DecodeSystem, ServingResult, StepResult
from repro.workloads.traces import RequestTrace

__all__ = [
    "AllocationError",
    "DecodeSystem",
    "EngineResult",
    "ServingResult",
    "StepResult",
    "simulate_serving",
]


def simulate_serving(
    system: DecodeSystem,
    trace: RequestTrace,
    max_batch_size: int | None = None,
    step_stride: int = 1,
    system_name: str = "",
) -> EngineResult:
    """Run a decode serving simulation of ``trace`` on ``system``.

    Thin wrapper over :class:`~repro.serving.engine.ServingEngine` with the
    legacy defaults (FCFS admission, exact per-step latency evaluation).
    Arrival timestamps on the trace are honoured; a trace without them
    (every ``arrival_s`` at 0) whose requests fit the context window
    reproduces the legacy closed-loop loop's numbers exactly.  The
    returned :class:`EngineResult` is a
    :class:`ServingResult` extended with TTFT/TPOT and latency percentiles.

    Args:
        system: System model implementing :class:`DecodeSystem`.
        trace: Request trace to serve.
        max_batch_size: Optional hard cap on concurrent requests.
        step_stride: Advance this many decode steps per latency evaluation;
            contexts change slowly, so strides of 4-16 keep large sweeps
            cheap with negligible error.
        system_name: Label stored in the result.

    Returns:
        An :class:`EngineResult` with throughput and utilisation metrics.

    Raises:
        AllocationError: if a single request cannot fit the system's memory.
    """
    engine = ServingEngine(
        system=system,
        max_batch_size=max_batch_size,
        step_stride=step_stride,
    )
    return engine.run(trace, system_name=system_name)
