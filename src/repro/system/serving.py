"""Decode serving loop shared by all system models.

The loop admits requests from a trace subject to the system's KV-cache
capacity and allocation policy (static ``T_max`` reservations or DPA-style
chunked allocation), advances every active request by one token per decode
step, and reports throughput, batch-size, utilisation and capacity metrics.
Any object implementing the small :class:`DecodeSystem` protocol -- the
PIM-only system, the xPU+PIM system and the GPU baseline -- can be served.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Protocol, Sequence

from repro.memory.chunked_alloc import ChunkedAllocator
from repro.memory.static_alloc import AllocationError, StaticAllocator
from repro.pim.simulator import CycleBreakdown, ZERO_BREAKDOWN
from repro.workloads.traces import RequestTrace


@dataclass(frozen=True)
class StepResult:
    """Outcome of one decode step for the whole active batch.

    Attributes:
        seconds: Wall-clock time of the step.
        pim_utilization: Mean PIM channel busy fraction during the step
            (zero for systems without PIM).
        attention_breakdown: System-wide attention cycle breakdown (energy).
        fc_breakdown: System-wide FC cycle breakdown when FC runs on PIM.
    """

    seconds: float
    pim_utilization: float
    attention_breakdown: CycleBreakdown = ZERO_BREAKDOWN
    fc_breakdown: CycleBreakdown = ZERO_BREAKDOWN


class DecodeSystem(Protocol):
    """Interface the serving loop requires from a system model."""

    @property
    def kv_capacity_bytes(self) -> int: ...

    @property
    def kv_bytes_per_token(self) -> int: ...

    @property
    def max_context_tokens(self) -> int: ...

    @property
    def dynamic_memory(self) -> bool: ...

    @property
    def total_pim_channels(self) -> int: ...

    def decode_step(self, context_lengths: Sequence[int]) -> StepResult: ...


@dataclass
class ServingResult:
    """Aggregate metrics of one serving run."""

    system_name: str
    dataset: str
    total_output_tokens: int
    total_seconds: float
    steps: int
    average_batch_size: float
    peak_batch_size: int
    average_pim_utilization: float
    average_capacity_utilization: float
    attention_breakdown: CycleBreakdown = ZERO_BREAKDOWN
    fc_breakdown: CycleBreakdown = ZERO_BREAKDOWN
    total_pim_channels: int = 0
    requests_served: int = 0
    metadata: dict = field(default_factory=dict)

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.total_output_tokens / self.total_seconds

    @property
    def average_step_seconds(self) -> float:
        if self.steps == 0:
            return 0.0
        return self.total_seconds / self.steps


@dataclass
class _ActiveRequest:
    request_id: int
    context: int
    remaining: int


def _make_allocator(system: DecodeSystem) -> ChunkedAllocator | StaticAllocator:
    if system.dynamic_memory:
        return ChunkedAllocator(
            capacity_bytes=system.kv_capacity_bytes,
            bytes_per_token=system.kv_bytes_per_token,
        )
    return StaticAllocator(
        capacity_bytes=system.kv_capacity_bytes,
        max_context_tokens=system.max_context_tokens,
        bytes_per_token=system.kv_bytes_per_token,
    )


def _can_admit(allocator: ChunkedAllocator | StaticAllocator, prompt_tokens: int) -> bool:
    if isinstance(allocator, ChunkedAllocator):
        return allocator.can_admit(prompt_tokens)
    return allocator.can_admit()


def simulate_serving(
    system: DecodeSystem,
    trace: RequestTrace,
    max_batch_size: int | None = None,
    step_stride: int = 1,
    system_name: str = "",
) -> ServingResult:
    """Run a decode serving simulation of ``trace`` on ``system``.

    Args:
        system: System model implementing :class:`DecodeSystem`.
        trace: Request trace to serve.
        max_batch_size: Optional hard cap on concurrent requests.
        step_stride: Advance this many decode steps per latency evaluation;
            contexts change slowly, so strides of 4-16 keep large sweeps
            cheap with negligible error.
        system_name: Label stored in the result.

    Returns:
        A :class:`ServingResult` with throughput and utilisation metrics.

    Raises:
        AllocationError: if a single request cannot fit the system's memory.
    """
    if step_stride < 1:
        raise ValueError("step_stride must be >= 1")
    allocator = _make_allocator(system)
    pending = deque(trace.requests)
    active: dict[int, _ActiveRequest] = {}
    # Chunked allocation admits against the request's *final* context length
    # so a request never runs out of chunks mid-decode; static allocation
    # already reserves T_max which bounds any admissible request.
    committed_chunks = 0
    chunk_commitment: dict[int, int] = {}

    total_seconds = 0.0
    total_tokens = 0
    steps = 0
    batch_samples: list[int] = []
    utilization_samples: list[float] = []
    capacity_samples: list[float] = []
    attention_total = ZERO_BREAKDOWN
    fc_total = ZERO_BREAKDOWN
    peak_batch = 0
    served = 0

    while pending or active:
        # Admit as many pending requests as the allocator allows.
        while pending:
            if max_batch_size is not None and len(active) >= max_batch_size:
                break
            request = pending[0]
            final_context = min(
                request.prompt_tokens + request.output_tokens, system.max_context_tokens
            )
            prompt = max(1, final_context - request.output_tokens)
            if isinstance(allocator, ChunkedAllocator):
                needed = allocator.chunks_needed(final_context)
                if committed_chunks + needed > allocator.total_chunks:
                    break
                committed_chunks += needed
                chunk_commitment[request.request_id] = needed
            elif not _can_admit(allocator, prompt):
                break
            pending.popleft()
            allocator.admit(request.request_id, prompt)
            active[request.request_id] = _ActiveRequest(
                request_id=request.request_id,
                context=prompt,
                remaining=request.output_tokens,
            )
            served += 1

        if not active:
            raise AllocationError(
                "no request fits the system's KV-cache capacity; "
                "increase capacity or shorten the workload"
            )

        stride = min(step_stride, min(entry.remaining for entry in active.values()))
        contexts = [entry.context for entry in active.values()]
        step = system.decode_step(contexts)

        total_seconds += step.seconds * stride
        total_tokens += len(active) * stride
        steps += stride
        batch_samples.append(len(active))
        utilization_samples.append(step.pim_utilization)
        peak_batch = max(peak_batch, len(active))
        attention_total = attention_total + step.attention_breakdown.scaled(stride)
        fc_total = fc_total + step.fc_breakdown.scaled(stride)
        if allocator.capacity_bytes > 0:
            # Fraction of the KV-cache capacity holding live tokens (the
            # Fig. 19 metric): static reservations waste the gap between the
            # actual and the maximum context; DPA only loses admission
            # headroom and last-chunk fragmentation.
            capacity_samples.append(allocator.used_bytes / allocator.capacity_bytes)

        finished: list[int] = []
        for entry in active.values():
            allocator.append_token(entry.request_id, stride)
            entry.context += stride
            entry.remaining -= stride
            if entry.remaining <= 0:
                finished.append(entry.request_id)
        for request_id in finished:
            allocator.release(request_id)
            del active[request_id]
            committed_chunks -= chunk_commitment.pop(request_id, 0)

    def _mean(samples: list[float]) -> float:
        return sum(samples) / len(samples) if samples else 0.0

    return ServingResult(
        system_name=system_name or type(system).__name__,
        dataset=trace.dataset,
        total_output_tokens=total_tokens,
        total_seconds=total_seconds,
        steps=steps,
        average_batch_size=_mean([float(b) for b in batch_samples]),
        peak_batch_size=peak_batch,
        average_pim_utilization=_mean(utilization_samples),
        average_capacity_utilization=_mean(capacity_samples),
        attention_breakdown=attention_total,
        fc_breakdown=fc_total,
        total_pim_channels=system.total_pim_channels,
        requests_served=served,
    )
