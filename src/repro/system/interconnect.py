"""Inter-module interconnect model for TP synchronisation."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class InterconnectConfig:
    """Bandwidth/latency of the link connecting PIM modules.

    Defaults model a CXL-class fabric (the CENT deployment); the NeuPIMs
    style system uses a faster accelerator interconnect.
    """

    bandwidth_bytes_per_s: float = 64e9
    latency_s: float = 2e-6

    def __post_init__(self) -> None:
        if self.bandwidth_bytes_per_s <= 0 or self.latency_s < 0:
            raise ValueError("bandwidth must be positive and latency non-negative")

    def all_reduce_seconds(self, bytes_per_module: float, participants: int) -> float:
        """Time of a ring all-reduce over ``participants`` modules.

        ``bytes_per_module`` may be fractional: KV-footprint models hand
        back float byte counts (per-token sizes divided across heads).
        """
        if participants <= 1 or bytes_per_module <= 0:
            return 0.0
        moved = 2.0 * (participants - 1) / participants * bytes_per_module
        return moved / self.bandwidth_bytes_per_s + 2.0 * self.latency_s

    def point_to_point_seconds(self, num_bytes: float) -> float:
        """Time to move ``num_bytes`` over the link (stage hops, KV handoff)."""
        if num_bytes <= 0:
            return 0.0
        return num_bytes / self.bandwidth_bytes_per_s + self.latency_s
