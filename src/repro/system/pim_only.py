"""PIM-only multi-module system (CENT-style deployment).

All decode work -- FC layers and attention -- executes on the PIM modules.
Modules are organised by a (TP, PP) parallelism plan; within each module the
attention work is partitioned across channels with HFP or TCP and kernels
are scheduled statically or with DCS, according to the active
:class:`~repro.core.orchestrator.PIMphonyConfig`.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import register_system
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import LLMConfig
from repro.pim.config import PIMModuleConfig, cent_module_config
from repro.pim.kernels import attention_head_cycles
from repro.pim.simulator import CycleBreakdown, ZERO_BREAKDOWN
from repro.serving.interfaces import StepResult
from repro.serving.prefill import transformer_prefill_flops
from repro.system.interconnect import InterconnectConfig
from repro.system.layers import module_attention_time, module_fc_time
from repro.system.parallelism import ParallelismPlan
from repro.system.pipeline import StageCost, pipeline_decode_step


@dataclass
class PIMOnlySystem:
    """A pool of PIM modules serving decode without any xPU.

    Attributes:
        model: LLM being served.
        num_modules: PIM modules in the system.
        plan: Tensor/pipeline parallelism plan (``plan.num_modules`` must
            equal ``num_modules``).
        pimphony: Which PIMphony techniques are enabled.
        module: Per-module hardware configuration.
        interconnect: Inter-module link model used for TP/PP communication.
    """

    model: LLMConfig
    num_modules: int
    plan: ParallelismPlan
    pimphony: PIMphonyConfig = field(default_factory=PIMphonyConfig.full)
    module: PIMModuleConfig = field(default_factory=cent_module_config)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)
    #: Closed-form span evaluator consumed by the fast engine; installed in
    #: ``__post_init__`` when the configuration admits one (TCP attention,
    #: single pipeline stage), ``None`` otherwise.
    decode_span: Callable[[Sequence[int], int, int], np.ndarray] | None = field(
        default=None, init=False, repr=False, compare=False
    )
    #: PIM utilization of every span-evaluated step.  Under TCP all channels
    #: carry identical work, so each executed step's utilization is exactly
    #: 1.0; the fast engine accumulates this constant in its span path.
    decode_span_utilization: float = field(default=0.0, init=False, repr=False, compare=False)
    _span_share_cycles: dict[int, CycleBreakdown] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _span_batch_cache: dict[int, tuple[float, float, float]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _span_stage_cache: dict[tuple[int, ...], float] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.num_modules <= 0:
            raise ValueError("num_modules must be positive")
        if self.plan.num_modules != self.num_modules:
            raise ValueError(
                f"plan {self.plan} covers {self.plan.num_modules} modules, "
                f"system has {self.num_modules}"
            )
        self.plan.validate_for(self.model)
        # TCP shares depend only on each context's channel-share ceiling and
        # a single stage makes the pipeline scan closed-form, so spans can be
        # evaluated from memoized stage times bit-identically to
        # ``decode_step``.  HFP's greedy packing and multi-stage pipelines
        # are order-dependent; those fall back to per-step evaluation.
        if self.pimphony.tcp and self.plan.pipeline_parallel == 1:
            self.decode_span = self._tcp_decode_span
            self.decode_span_utilization = 1.0

    # -- capacity ------------------------------------------------------------

    @property
    def total_capacity_bytes(self) -> int:
        return self.num_modules * self.module.capacity_bytes

    @property
    def kv_capacity_bytes(self) -> int:
        """Capacity left for KV cache after storing the model weights."""
        return max(0, self.total_capacity_bytes - self.model.param_bytes)

    @property
    def kv_bytes_per_token(self) -> int:
        return self.model.kv_bytes_per_token

    @property
    def max_context_tokens(self) -> int:
        return self.model.context_window

    @property
    def dynamic_memory(self) -> bool:
        return self.pimphony.dpa

    @property
    def total_pim_channels(self) -> int:
        return self.num_modules * self.module.num_channels

    # -- timing ----------------------------------------------------------------

    def _stage_cost(self, microbatch: Sequence[int]) -> StageCost:
        """Cost of one pipeline stage processing one micro-batch."""
        if not microbatch:
            return StageCost(seconds=0.0, pim_utilization=0.0)
        tensor_parallel = self.plan.tensor_parallel
        kv_heads_per_module = self.plan.kv_heads_per_module(self.model)
        layers = self.plan.layers_per_stage(self.model)
        timing = self.module.timing

        attention_cycles, utilization, attention_breakdown = module_attention_time(
            context_lengths=microbatch,
            kv_heads_per_module=kv_heads_per_module,
            group_size=self.model.gqa_group_size,
            head_dim=self.model.head_dim,
            module=self.module,
            config=self.pimphony,
        )
        fc_cycles, fc_breakdown = module_fc_time(
            batch_size=len(microbatch),
            d_model=self.model.d_model,
            kv_dim=self.model.kv_dim,
            ffn_dim=self.model.ffn_dim,
            gated_ffn=self.model.gated_ffn,
            tensor_parallel=tensor_parallel,
            module=self.module,
            config=self.pimphony,
        )
        layer_seconds = timing.cycles_to_seconds(attention_cycles + fc_cycles)
        sync_bytes = len(microbatch) * self.model.d_model * self.model.dtype_bytes
        layer_seconds += 2 * self.interconnect.all_reduce_seconds(sync_bytes, tensor_parallel)
        stage_seconds = layers * layer_seconds
        stage_seconds += self.interconnect.point_to_point_seconds(sync_bytes)

        pim_cycles = attention_cycles + fc_cycles
        if pim_cycles > 0:
            stage_utilization = (attention_cycles * utilization + fc_cycles) / pim_cycles
        else:
            stage_utilization = 0.0
        return StageCost(
            seconds=stage_seconds,
            pim_utilization=stage_utilization,
            attention_breakdown=attention_breakdown.scaled(layers),
            fc_breakdown=fc_breakdown.scaled(layers),
        )

    def decode_step(self, context_lengths: Sequence[int]) -> StepResult:
        """Latency of one decode step (every active request emits one token)."""
        step = pipeline_decode_step(
            context_lengths, self.plan.pipeline_parallel, self._stage_cost
        )
        scale = self.plan.tensor_parallel
        return StepResult(
            seconds=step.seconds,
            pim_utilization=step.pim_utilization,
            attention_breakdown=step.attention_breakdown.scaled(scale),
            fc_breakdown=step.fc_breakdown.scaled(scale),
        )

    def _span_batch_terms(self, batch_size: int) -> tuple[float, float, float]:
        """Batch-size-only stage terms: (fc cycles, 2x all-reduce s, p2p s)."""
        cached = self._span_batch_cache.get(batch_size)
        if cached is None:
            fc_cycles, _ = module_fc_time(
                batch_size=batch_size,
                d_model=self.model.d_model,
                kv_dim=self.model.kv_dim,
                ffn_dim=self.model.ffn_dim,
                gated_ffn=self.model.gated_ffn,
                tensor_parallel=self.plan.tensor_parallel,
                module=self.module,
                config=self.pimphony,
            )
            sync_bytes = batch_size * self.model.d_model * self.model.dtype_bytes
            two_all_reduce = 2 * self.interconnect.all_reduce_seconds(
                sync_bytes, self.plan.tensor_parallel
            )
            point_to_point = self.interconnect.point_to_point_seconds(sync_bytes)
            cached = (fc_cycles, two_all_reduce, point_to_point)
            self._span_batch_cache[batch_size] = cached
        return cached

    def _span_stage_seconds(self, shares: tuple[int, ...]) -> float:
        """Seconds of one TCP stage given per-request channel-share ceilings.

        Replicates :meth:`_stage_cost` arithmetic (same fold order, same
        association) so memoized values are bit-identical to the per-step
        path.
        """
        cached = self._span_stage_cache.get(shares)
        if cached is not None:
            return cached
        kv_heads_per_module = self.plan.kv_heads_per_module(self.model)
        attention_cycles = 0.0
        if kv_heads_per_module > 0:
            per_channel = ZERO_BREAKDOWN
            for share in shares:
                scaled = self._span_share_cycles.get(share)
                if scaled is None:
                    scaled = attention_head_cycles(
                        tokens=share,
                        head_dim=self.model.head_dim,
                        channel=self.module.channel,
                        timing=self.module.timing,
                        policy="dcs" if self.pimphony.dcs else "static",
                        group_size=self.model.gqa_group_size,
                        row_reuse=self.pimphony.row_reuse,
                    ).scaled(kv_heads_per_module)
                    self._span_share_cycles[share] = scaled
                per_channel = per_channel + scaled
            attention_cycles = per_channel.total
        fc_cycles, two_all_reduce, point_to_point = self._span_batch_terms(len(shares))
        layer_seconds = self.module.timing.cycles_to_seconds(attention_cycles + fc_cycles)
        layer_seconds += two_all_reduce
        stage_seconds = self.plan.layers_per_stage(self.model) * layer_seconds
        stage_seconds += point_to_point
        self._span_stage_cache[shares] = stage_seconds
        return stage_seconds

    def _tcp_decode_span(
        self, context_lengths: Sequence[int], stride: int, count: int
    ) -> np.ndarray:
        """Latencies of ``count`` consecutive uniform decode evaluations.

        Element ``j`` equals ``decode_step([c + j * stride for c in
        context_lengths]).seconds`` bit-for-bit.  With one pipeline stage
        the candidate micro-batch counts are ``{1, n}``: the single
        micro-batch time comes from one memoized stage lookup, and the
        fully-split time is the sum of per-request stage times.  A uniform
        ``+ j * stride`` shift preserves the stable descending sort of the
        contexts, so the share tuple can be derived from one up-front sort.
        The corresponding steps carry zero cycle breakdowns; utilization is
        the constant :attr:`decode_span_utilization`.

        Preconditions (the fast engine guarantees both): every context is
        positive, and ``stride``/``count`` are positive.
        """
        num_channels = self.module.num_channels
        base = sorted((length for length in context_lengths if length > 0), reverse=True)
        seconds = np.zeros(count, dtype=np.float64)
        if not base:
            return seconds
        for j in range(count):
            offset = j * stride
            shares = tuple(-(-(length + offset) // num_channels) for length in base)
            single = self._span_stage_seconds(shares)
            if len(shares) > 1:
                times = [self._span_stage_seconds((share,)) for share in shares]
                split = max(sum(times), max(times))
                seconds[j] = split if split < single else single
            else:
                seconds[j] = single
        return seconds

    def prefill_seconds(self, prompt_tokens: int) -> float:
        """Prefill latency on a system with no matrix units.

        The prompt pass runs on whatever non-PIM compute the modules carry
        (CENT's PNM processor, ``module.compute_tflops``); without one it
        falls back to the peak all-channel MAC rate.  Either way the rate
        is orders of magnitude below an xPU's, which is why PIM-only
        deployments suffer on long prompts.  As in
        :meth:`~repro.system.xpu_pim.XPUPIMSystem.prefill_seconds`, a
        single prompt traverses pipeline stages sequentially, so the rate
        uses the ``tensor_parallel`` width rather than the full module
        count.
        """
        if prompt_tokens <= 0:
            return 0.0
        fc_flops, attention_flops = transformer_prefill_flops(self.model, prompt_tokens)
        if self.module.compute_tflops > 0:
            per_module_flops_per_s = self.module.compute_tflops * 1e12
        else:
            seconds_per_cycle = self.module.timing.cycles_to_seconds(1)
            per_module_flops_per_s = self.module.peak_mac_flops_per_cycle / seconds_per_cycle
        tensor_parallel = self.plan.tensor_parallel
        compute_flops_per_s = tensor_parallel * per_module_flops_per_s
        weight_stream_seconds = self.model.param_bytes / (
            tensor_parallel * self.module.internal_bandwidth_bytes
        )
        return max((fc_flops + attention_flops) / compute_flops_per_s, weight_stream_seconds)


def _build_pim_only(
    model: LLMConfig,
    num_modules: int | None,
    plan: ParallelismPlan | None,
    pimphony: PIMphonyConfig,
) -> PIMOnlySystem:
    """Experiment-API builder: CENT-class module pool, paper-matched defaults."""
    from repro.baselines.cent import cent_system_config

    return cent_system_config(model, num_modules=num_modules, plan=plan, pimphony=pimphony)


# Self-registration: "pim-only" is the CENT-class deployment of this system.
register_system("pim-only", _build_pim_only)
