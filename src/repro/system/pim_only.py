"""PIM-only multi-module system (CENT-style deployment).

All decode work -- FC layers and attention -- executes on the PIM modules.
Modules are organised by a (TP, PP) parallelism plan; within each module the
attention work is partitioned across channels with HFP or TCP and kernels
are scheduled statically or with DCS, according to the active
:class:`~repro.core.orchestrator.PIMphonyConfig`.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

from repro.api.registry import register_system
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import LLMConfig
from repro.pim.config import PIMModuleConfig, cent_module_config
from repro.serving.interfaces import StepResult
from repro.serving.prefill import transformer_prefill_flops
from repro.system.interconnect import InterconnectConfig
from repro.system.layers import module_attention_time, module_fc_time
from repro.system.parallelism import ParallelismPlan
from repro.system.pipeline import StageCost, pipeline_decode_step


@dataclass
class PIMOnlySystem:
    """A pool of PIM modules serving decode without any xPU.

    Attributes:
        model: LLM being served.
        num_modules: PIM modules in the system.
        plan: Tensor/pipeline parallelism plan (``plan.num_modules`` must
            equal ``num_modules``).
        pimphony: Which PIMphony techniques are enabled.
        module: Per-module hardware configuration.
        interconnect: Inter-module link model used for TP/PP communication.
    """

    model: LLMConfig
    num_modules: int
    plan: ParallelismPlan
    pimphony: PIMphonyConfig = field(default_factory=PIMphonyConfig.full)
    module: PIMModuleConfig = field(default_factory=cent_module_config)
    interconnect: InterconnectConfig = field(default_factory=InterconnectConfig)

    def __post_init__(self) -> None:
        if self.num_modules <= 0:
            raise ValueError("num_modules must be positive")
        if self.plan.num_modules != self.num_modules:
            raise ValueError(
                f"plan {self.plan} covers {self.plan.num_modules} modules, "
                f"system has {self.num_modules}"
            )
        self.plan.validate_for(self.model)

    # -- capacity ------------------------------------------------------------

    @property
    def total_capacity_bytes(self) -> int:
        return self.num_modules * self.module.capacity_bytes

    @property
    def kv_capacity_bytes(self) -> int:
        """Capacity left for KV cache after storing the model weights."""
        return max(0, self.total_capacity_bytes - self.model.param_bytes)

    @property
    def kv_bytes_per_token(self) -> int:
        return self.model.kv_bytes_per_token

    @property
    def max_context_tokens(self) -> int:
        return self.model.context_window

    @property
    def dynamic_memory(self) -> bool:
        return self.pimphony.dpa

    @property
    def total_pim_channels(self) -> int:
        return self.num_modules * self.module.num_channels

    # -- timing ----------------------------------------------------------------

    def _stage_cost(self, microbatch: Sequence[int]) -> StageCost:
        """Cost of one pipeline stage processing one micro-batch."""
        if not microbatch:
            return StageCost(seconds=0.0, pim_utilization=0.0)
        tensor_parallel = self.plan.tensor_parallel
        kv_heads_per_module = self.plan.kv_heads_per_module(self.model)
        layers = self.plan.layers_per_stage(self.model)
        timing = self.module.timing

        attention_cycles, utilization, attention_breakdown = module_attention_time(
            context_lengths=microbatch,
            kv_heads_per_module=kv_heads_per_module,
            group_size=self.model.gqa_group_size,
            head_dim=self.model.head_dim,
            module=self.module,
            config=self.pimphony,
        )
        fc_cycles, fc_breakdown = module_fc_time(
            batch_size=len(microbatch),
            d_model=self.model.d_model,
            kv_dim=self.model.kv_dim,
            ffn_dim=self.model.ffn_dim,
            gated_ffn=self.model.gated_ffn,
            tensor_parallel=tensor_parallel,
            module=self.module,
            config=self.pimphony,
        )
        layer_seconds = timing.cycles_to_seconds(attention_cycles + fc_cycles)
        sync_bytes = len(microbatch) * self.model.d_model * self.model.dtype_bytes
        layer_seconds += 2 * self.interconnect.all_reduce_seconds(sync_bytes, tensor_parallel)
        stage_seconds = layers * layer_seconds
        stage_seconds += self.interconnect.point_to_point_seconds(sync_bytes)

        pim_cycles = attention_cycles + fc_cycles
        if pim_cycles > 0:
            stage_utilization = (attention_cycles * utilization + fc_cycles) / pim_cycles
        else:
            stage_utilization = 0.0
        return StageCost(
            seconds=stage_seconds,
            pim_utilization=stage_utilization,
            attention_breakdown=attention_breakdown.scaled(layers),
            fc_breakdown=fc_breakdown.scaled(layers),
        )

    def decode_step(self, context_lengths: Sequence[int]) -> StepResult:
        """Latency of one decode step (every active request emits one token)."""
        step = pipeline_decode_step(
            context_lengths, self.plan.pipeline_parallel, self._stage_cost
        )
        scale = self.plan.tensor_parallel
        return StepResult(
            seconds=step.seconds,
            pim_utilization=step.pim_utilization,
            attention_breakdown=step.attention_breakdown.scaled(scale),
            fc_breakdown=step.fc_breakdown.scaled(scale),
        )

    def prefill_seconds(self, prompt_tokens: int) -> float:
        """Prefill latency on a system with no matrix units.

        The prompt pass runs on whatever non-PIM compute the modules carry
        (CENT's PNM processor, ``module.compute_tflops``); without one it
        falls back to the peak all-channel MAC rate.  Either way the rate
        is orders of magnitude below an xPU's, which is why PIM-only
        deployments suffer on long prompts.  As in
        :meth:`~repro.system.xpu_pim.XPUPIMSystem.prefill_seconds`, a
        single prompt traverses pipeline stages sequentially, so the rate
        uses the ``tensor_parallel`` width rather than the full module
        count.
        """
        if prompt_tokens <= 0:
            return 0.0
        fc_flops, attention_flops = transformer_prefill_flops(self.model, prompt_tokens)
        if self.module.compute_tflops > 0:
            per_module_flops_per_s = self.module.compute_tflops * 1e12
        else:
            seconds_per_cycle = self.module.timing.cycles_to_seconds(1)
            per_module_flops_per_s = self.module.peak_mac_flops_per_cycle / seconds_per_cycle
        tensor_parallel = self.plan.tensor_parallel
        compute_flops_per_s = tensor_parallel * per_module_flops_per_s
        weight_stream_seconds = self.model.param_bytes / (
            tensor_parallel * self.module.internal_bandwidth_bytes
        )
        return max((fc_flops + attention_flops) / compute_flops_per_s, weight_stream_seconds)


def _build_pim_only(
    model: LLMConfig,
    num_modules: int | None,
    plan: ParallelismPlan | None,
    pimphony: PIMphonyConfig,
) -> PIMOnlySystem:
    """Experiment-API builder: CENT-class module pool, paper-matched defaults."""
    from repro.baselines.cent import cent_system_config

    return cent_system_config(model, num_modules=num_modules, plan=plan, pimphony=pimphony)


# Self-registration: "pim-only" is the CENT-class deployment of this system.
register_system("pim-only", _build_pim_only)
