"""xPU (NPU / matrix-unit) compute model for heterogeneous systems.

In the NeuPIMs-style system the compute-intensive FC layers run on matrix
units co-located with each module while PIM handles attention.  The xPU
model is a roofline: an FC layer is bound either by its FLOPs at the matrix
units' effective throughput or by streaming its weights from memory.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class XPUConfig:
    """One module's xPU resources.

    Attributes:
        peak_tflops: Peak FP16 matrix throughput (TFLOPS).
        compute_efficiency: Achievable fraction of peak on decode GEMMs.
        memory_bandwidth_bytes: Bandwidth available for streaming weights.
    """

    peak_tflops: float = 256.0
    compute_efficiency: float = 0.5
    memory_bandwidth_bytes: float = 1.0e12

    def __post_init__(self) -> None:
        if self.peak_tflops <= 0 or self.memory_bandwidth_bytes <= 0:
            raise ValueError("peak_tflops and memory_bandwidth_bytes must be positive")
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError("compute_efficiency must be in (0, 1]")

    def gemm_seconds(self, flops: float, weight_bytes: float, activation_bytes: float = 0.0) -> float:
        """Roofline time of one batched GEMM."""
        if flops < 0 or weight_bytes < 0 or activation_bytes < 0:
            raise ValueError("flops and byte counts must be non-negative")
        compute = flops / (self.peak_tflops * 1e12 * self.compute_efficiency)
        memory = (weight_bytes + activation_bytes) / self.memory_bandwidth_bytes
        return max(compute, memory)


def fc_layer_seconds(
    xpu: XPUConfig,
    batch_size: int,
    d_model: int,
    kv_dim: int,
    ffn_dim: int,
    gated_ffn: bool,
    tensor_parallel: int,
    dtype_bytes: int = 2,
) -> float:
    """Time of one decoder layer's FC matrices on one module's xPU."""
    if batch_size <= 0:
        return 0.0
    shapes = [
        (d_model, d_model + 2 * kv_dim),
        (d_model, d_model),
        (d_model, ffn_dim),
        (ffn_dim, d_model),
    ]
    if gated_ffn:
        shapes.append((d_model, ffn_dim))
    total = 0.0
    for in_dim, out_dim in shapes:
        out_shard = max(1, out_dim // tensor_parallel)
        flops = 2.0 * batch_size * in_dim * out_shard
        weight_bytes = float(in_dim * out_shard * dtype_bytes)
        activation_bytes = float(batch_size * (in_dim + out_shard) * dtype_bytes)
        total += xpu.gemm_seconds(flops, weight_bytes, activation_bytes)
    return total
