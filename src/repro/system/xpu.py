"""xPU (NPU / matrix-unit) compute model for heterogeneous systems.

In the NeuPIMs-style system the compute-intensive FC layers run on matrix
units co-located with each module while PIM handles attention.  The xPU
model is a roofline: an FC layer is bound either by its FLOPs at the matrix
units' effective throughput or by streaming its weights from memory.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import register_system
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import LLMConfig
from repro.serving.interfaces import StepResult
from repro.serving.prefill import transformer_prefill_flops
from repro.system.parallelism import ParallelismPlan


@dataclass(frozen=True)
class XPUConfig:
    """One module's xPU resources.

    Attributes:
        peak_tflops: Peak FP16 matrix throughput (TFLOPS).
        compute_efficiency: Achievable fraction of peak on decode GEMMs.
        memory_bandwidth_bytes: Bandwidth available for streaming weights.
    """

    peak_tflops: float = 256.0
    compute_efficiency: float = 0.5
    memory_bandwidth_bytes: float = 1.0e12

    def __post_init__(self) -> None:
        if self.peak_tflops <= 0 or self.memory_bandwidth_bytes <= 0:
            raise ValueError("peak_tflops and memory_bandwidth_bytes must be positive")
        if not 0 < self.compute_efficiency <= 1:
            raise ValueError("compute_efficiency must be in (0, 1]")

    def gemm_seconds(
        self, flops: float, weight_bytes: float, activation_bytes: float = 0.0
    ) -> float:
        """Roofline time of one batched GEMM."""
        if flops < 0 or weight_bytes < 0 or activation_bytes < 0:
            raise ValueError("flops and byte counts must be non-negative")
        compute = flops / (self.peak_tflops * 1e12 * self.compute_efficiency)
        memory = (weight_bytes + activation_bytes) / self.memory_bandwidth_bytes
        return max(compute, memory)


def fc_layer_seconds(
    xpu: XPUConfig,
    batch_size: int,
    d_model: int,
    kv_dim: int,
    ffn_dim: int,
    gated_ffn: bool,
    tensor_parallel: int,
    dtype_bytes: int = 2,
) -> float:
    """Time of one decoder layer's FC matrices on one module's xPU."""
    if batch_size <= 0:
        return 0.0
    shapes = [
        (d_model, d_model + 2 * kv_dim),
        (d_model, d_model),
        (d_model, ffn_dim),
        (ffn_dim, d_model),
    ]
    if gated_ffn:
        shapes.append((d_model, ffn_dim))
    total = 0.0
    for in_dim, out_dim in shapes:
        out_shard = max(1, out_dim // tensor_parallel)
        flops = 2.0 * batch_size * in_dim * out_shard
        weight_bytes = float(in_dim * out_shard * dtype_bytes)
        activation_bytes = float(batch_size * (in_dim + out_shard) * dtype_bytes)
        total += xpu.gemm_seconds(flops, weight_bytes, activation_bytes)
    return total


@dataclass
class XPUOnlySystem:
    """Homogeneous xPU system: FC *and* attention on the matrix units.

    Serves as the no-PIM ablation point between the GPU baseline and the
    heterogeneous xPU+PIM system: attention degenerates to streaming every
    request's KV cache through the module's memory interface, which is what
    PIM offload removes.  Implements the
    :class:`~repro.serving.interfaces.DecodeSystem` protocol so the same
    serving engine drives it.

    Attributes:
        model: LLM being served.
        num_modules: Tensor-parallel module count.
        xpu: Per-module compute/bandwidth resources.
        capacity_bytes_per_module: Memory capacity of one module.
        paged_kv: Use block-granular (dynamic) KV allocation for admission.
    """

    model: LLMConfig
    num_modules: int
    xpu: XPUConfig = field(default_factory=XPUConfig)
    capacity_bytes_per_module: int = 32 * 1024**3
    paged_kv: bool = True

    def __post_init__(self) -> None:
        if self.num_modules <= 0:
            raise ValueError("num_modules must be positive")
        if self.capacity_bytes_per_module <= 0:
            raise ValueError("capacity_bytes_per_module must be positive")

    # -- DecodeSystem protocol ------------------------------------------------

    @property
    def total_capacity_bytes(self) -> int:
        return self.num_modules * self.capacity_bytes_per_module

    @property
    def kv_capacity_bytes(self) -> int:
        return max(0, self.total_capacity_bytes - self.model.param_bytes)

    @property
    def kv_bytes_per_token(self) -> int:
        return self.model.kv_bytes_per_token

    @property
    def max_context_tokens(self) -> int:
        return self.model.context_window

    @property
    def dynamic_memory(self) -> bool:
        return self.paged_kv

    @property
    def total_pim_channels(self) -> int:
        return 0

    def decode_step(self, context_lengths: Sequence[int]) -> StepResult:
        """Roofline latency of one decode step across the module group."""
        contexts = [length for length in context_lengths if length > 0]
        if not contexts:
            return StepResult(seconds=0.0, pim_utilization=0.0)
        model = self.model
        fc_seconds = model.num_layers * fc_layer_seconds(
            xpu=self.xpu,
            batch_size=len(contexts),
            d_model=model.d_model,
            kv_dim=model.kv_dim,
            ffn_dim=model.ffn_dim,
            gated_ffn=model.gated_ffn,
            tensor_parallel=self.num_modules,
            dtype_bytes=model.dtype_bytes,
        )
        # Attention is memory bound: each step streams every request's KV
        # cache through the modules' memory interfaces once.
        kv_bytes = sum(contexts) * model.kv_bytes_per_token / self.num_modules
        attention_seconds = kv_bytes / self.xpu.memory_bandwidth_bytes
        return StepResult(seconds=fc_seconds + attention_seconds, pim_utilization=0.0)

    def decode_span(
        self, context_lengths: Sequence[int], stride: int, count: int
    ) -> np.ndarray:
        """Latencies of ``count`` consecutive uniform decode evaluations.

        Element ``j`` equals ``decode_step([c + j * stride for c in
        context_lengths]).seconds`` bit-for-bit: the FC roofline depends
        only on the (constant) batch size, and attention is linear in the
        exact integer context sum, which int64 arithmetic and a single
        float64 division reproduce as long as every intermediate stays
        below 2**53 (always true for realistic KV capacities).  The
        corresponding steps carry zero PIM utilization and zero cycle
        breakdowns, so callers may skip accumulating those.

        Preconditions (the fast engine guarantees both): every context is
        positive, and ``stride``/``count`` are positive.
        """
        contexts = list(context_lengths)
        model = self.model
        fc_seconds = model.num_layers * fc_layer_seconds(
            xpu=self.xpu,
            batch_size=len(contexts),
            d_model=model.d_model,
            kv_dim=model.kv_dim,
            ffn_dim=model.ffn_dim,
            gated_ffn=model.gated_ffn,
            tensor_parallel=self.num_modules,
            dtype_bytes=model.dtype_bytes,
        )
        sums = sum(contexts) + np.arange(count, dtype=np.int64) * (stride * len(contexts))
        kv_bytes = sums * model.kv_bytes_per_token / self.num_modules
        attention_seconds = kv_bytes / self.xpu.memory_bandwidth_bytes
        return fc_seconds + attention_seconds

    def prefill_seconds(self, prompt_tokens: int) -> float:
        """Roofline latency of prefilling one ``prompt_tokens``-long prompt.

        Prefill is compute-friendly (one big GEMM per weight matrix), so it
        runs at the matrix units' effective throughput across all modules,
        floored by streaming the sharded weights once.
        """
        if prompt_tokens <= 0:
            return 0.0
        fc_flops, attention_flops = transformer_prefill_flops(self.model, prompt_tokens)
        compute_flops_per_s = (
            self.num_modules * self.xpu.peak_tflops * 1e12 * self.xpu.compute_efficiency
        )
        weight_stream_seconds = self.model.param_bytes / (
            self.num_modules * self.xpu.memory_bandwidth_bytes
        )
        return max((fc_flops + attention_flops) / compute_flops_per_s, weight_stream_seconds)


def _build_xpu_only(
    model: LLMConfig,
    num_modules: int | None,
    plan: ParallelismPlan | None,
    pimphony: PIMphonyConfig,
) -> XPUOnlySystem:
    """Experiment-API builder: all-matrix-unit ablation point.

    Module counts default to the NeuPIMs capacity match (4 x 32GB for 7B,
    16 for 72B).  The parallelism plan is ignored -- the system is purely
    tensor parallel -- and of the PIMphony features only DPA matters, as
    the paged-vs-static KV allocation mode.
    """
    del plan
    modules = num_modules if num_modules is not None else (4 if model.num_layers <= 40 else 16)
    return XPUOnlySystem(model=model, num_modules=modules, paged_kv=pimphony.dpa)


# Self-registration: "xpu-only" is the no-PIM ablation system.
register_system("xpu-only", _build_xpu_only)
