"""Multi-node PIM system models and the decode serving loop."""

from repro.system.interconnect import InterconnectConfig
from repro.system.layers import ModuleLayerTimes, module_attention_time, module_fc_time
from repro.system.parallelism import ParallelismPlan, enumerate_plans, best_plan
from repro.system.pim_only import PIMOnlySystem
from repro.system.serving import EngineResult, ServingResult, simulate_serving
from repro.system.xpu import XPUConfig, XPUOnlySystem
from repro.system.xpu_pim import XPUPIMSystem

__all__ = [
    "ParallelismPlan",
    "enumerate_plans",
    "best_plan",
    "InterconnectConfig",
    "ModuleLayerTimes",
    "module_attention_time",
    "module_fc_time",
    "XPUConfig",
    "XPUOnlySystem",
    "PIMOnlySystem",
    "XPUPIMSystem",
    "EngineResult",
    "ServingResult",
    "simulate_serving",
]
