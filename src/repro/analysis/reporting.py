"""Plain-text report formatting for benchmark outputs."""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.api.report import TierReport
    from repro.serving.engine import EngineResult
    from repro.serving.router import FleetResult


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
    float_format: str = "{:.3g}",
) -> str:
    """Render a simple aligned text table.

    Args:
        headers: Column headers.
        rows: Row values; floats are formatted with ``float_format``.
        title: Optional title line.
        float_format: Format string applied to float cells.
    """
    def render(cell: object) -> str:
        if isinstance(cell, float):
            return float_format.format(cell)
        return str(cell)

    rendered = [[render(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)))
    lines.append("  ".join("-" * widths[i] for i in range(len(headers))))
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def speedup_table(
    baseline: Mapping[str, float],
    improved: Mapping[str, float],
    metric: str = "throughput",
    title: str = "",
) -> str:
    """Render a per-key speedup table of ``improved`` over ``baseline``."""
    rows = []
    for key in baseline:
        base_value = baseline[key]
        new_value = improved.get(key, 0.0)
        speedup = new_value / base_value if base_value else 0.0
        rows.append([key, base_value, new_value, speedup])
    headers = ["workload", f"baseline {metric}", f"pimphony {metric}", "speedup"]
    return format_table(headers, rows, title=title)


def serving_summary_table(results: Sequence["EngineResult"], title: str = "") -> str:
    """Render throughput plus lifecycle latency metrics of serving runs.

    One row per :class:`~repro.serving.engine.EngineResult`, combining the
    legacy throughput/batch counters with the engine's TTFT / TPOT and
    end-to-end latency percentiles (milliseconds).
    """
    rows = []
    for result in results:
        rows.append(
            [
                result.system_name,
                result.admission_policy,
                result.throughput_tokens_per_s,
                result.average_batch_size,
                result.latency.ttft_mean_s * 1e3,
                result.latency.tpot_mean_s * 1e3,
                result.latency.latency_p50_s * 1e3,
                result.latency.latency_p95_s * 1e3,
                result.latency.latency_p99_s * 1e3,
            ]
        )
    headers = [
        "system",
        "admission",
        "tokens/s",
        "avg batch",
        "TTFT ms",
        "TPOT ms",
        "p50 ms",
        "p95 ms",
        "p99 ms",
    ]
    return format_table(headers, rows, title=title)


def fleet_summary_table(fleet: FleetResult, title: str = "") -> str:
    """Render per-replica rows plus the merged fleet row of a routed run.

    Replica rows report each engine's own counters; the fleet row reports
    the merged view -- aggregate tokens per wall-clock second (tokens over
    the slowest replica's makespan) and percentiles recomputed over the
    union of request records.
    """
    rows = []
    for index, result in enumerate(fleet.replica_results):
        rows.append(
            [
                f"replica {index}",
                result.requests_served,
                result.requests_dropped,
                result.throughput_tokens_per_s,
                result.makespan_s,
                result.latency.ttft_p95_s * 1e3,
                result.latency.latency_p99_s * 1e3,
            ]
        )
    rows.append(
        [
            f"fleet ({fleet.policy})",
            fleet.requests_served,
            fleet.requests_dropped,
            fleet.aggregate_throughput_tokens_per_s,
            fleet.makespan_s,
            fleet.latency.ttft_p95_s * 1e3,
            fleet.latency.latency_p99_s * 1e3,
        ]
    )
    headers = [
        "replica",
        "served",
        "dropped",
        "tokens/s",
        "makespan s",
        "TTFT p95 ms",
        "p99 ms",
    ]
    return format_table(headers, rows, title=title)


def tier_summary_table(tiers: Sequence["TierReport"], title: str = "") -> str:
    """Render per-tier goodput / SLO-attainment rows of a tiered run.

    One row per :class:`~repro.api.report.TierReport`, ordering exactly as
    the report does (spec order, then the ``"untiered"`` bucket).
    """
    rows = []
    for tier in tiers:
        rows.append(
            [
                tier.name,
                tier.priority,
                tier.num_requests,
                tier.requests_finished,
                tier.goodput,
                tier.ttft_attainment,
                tier.tpot_attainment,
                tier.preemptions,
                tier.latency.ttft_p95_s * 1e3,
                tier.latency.tpot_mean_s * 1e3,
            ]
        )
    headers = [
        "tier",
        "prio",
        "requests",
        "finished",
        "goodput",
        "TTFT att",
        "TPOT att",
        "preempt",
        "TTFT p95 ms",
        "TPOT ms",
    ]
    return format_table(headers, rows, title=title)
