"""Energy accounting for kernels and serving runs (paper Fig. 16)."""

from __future__ import annotations

from repro.pim.energy import EnergyBreakdown, EnergyModel
from repro.pim.simulator import CycleBreakdown
from repro.pim.timing import PIMTiming
from repro.system.serving import ServingResult


def energy_from_breakdown(
    breakdown: CycleBreakdown,
    timing: PIMTiming,
    model: EnergyModel,
    background_cycles: float | None = None,
) -> EnergyBreakdown:
    """Derive event counts from a cycle breakdown and price them.

    The breakdown's busy components encode how many commands of each class
    executed (busy cycles divided by per-command occupancy), which is enough
    for the per-event energy terms; background energy is charged over
    ``background_cycles`` (defaults to the breakdown's own total).
    """
    n_mac = breakdown.mac / timing.mac_occupancy if timing.mac_occupancy else 0.0
    n_wr = breakdown.dt_gbuf / timing.wr_inp_occupancy if timing.wr_inp_occupancy else 0.0
    n_rd = breakdown.dt_outreg / timing.rd_out_occupancy if timing.rd_out_occupancy else 0.0
    n_act = (
        breakdown.act_pre / timing.dram.row_switch_cycles
        if timing.dram.row_switch_cycles
        else 0.0
    )
    runtime = background_cycles if background_cycles is not None else breakdown.total
    runtime_seconds = runtime / (model.clock_ghz * 1e9)
    return EnergyBreakdown(
        mac=n_mac * model.energy_per_mac_command,
        io=(n_wr + n_rd) * model.energy_per_io_tile,
        background=runtime_seconds * model.background_power_watts,
        act_pre=n_act * model.energy_per_activation,
        refresh=breakdown.refresh * model.energy_per_refresh_cycle,
    )


def serving_energy(
    result: ServingResult,
    timing: PIMTiming,
    model: EnergyModel | None = None,
) -> dict[str, EnergyBreakdown]:
    """Energy of a serving run, split into attention and FC contributions.

    Background power is charged for every PIM channel in the system over the
    whole wall-clock time of the run, which is what makes low-utilisation
    baselines background-dominated (the effect Fig. 16 highlights).
    """
    energy_model = model if model is not None else EnergyModel()
    total_cycles = timing.seconds_to_cycles(result.total_seconds)
    background_cycles = total_cycles * max(1, result.total_pim_channels)

    attention = energy_from_breakdown(
        result.attention_breakdown, timing, energy_model, background_cycles=background_cycles
    )
    fc = energy_from_breakdown(
        result.fc_breakdown, timing, energy_model, background_cycles=0.0
    )
    return {"attention": attention, "fc": fc}
