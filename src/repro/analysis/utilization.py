"""MAC-utilisation sweeps (paper Fig. 8 and Fig. 18 style studies)."""

from __future__ import annotations

from collections.abc import Sequence

from repro.pim.config import PIMChannelConfig
from repro.pim.kernels import fc_gemv_cycles
from repro.pim.timing import PIMTiming


def mac_utilization_sweep(
    dimensions: Sequence[int],
    channel: PIMChannelConfig,
    timing: PIMTiming,
    policy: str,
) -> dict[int, float]:
    """MAC utilisation of square GEMVs across matrix dimensions."""
    results = {}
    for dimension in dimensions:
        breakdown = fc_gemv_cycles(
            in_dim=dimension,
            out_dim=dimension,
            channel=channel,
            timing=timing,
            policy=policy,
        )
        results[dimension] = breakdown.mac_utilization
    return results
