"""Analysis helpers: utilisation, breakdowns, energy, report formatting."""

from repro.analysis.breakdown import breakdown_fractions, normalize_breakdown
from repro.analysis.energy_report import energy_from_breakdown, serving_energy
from repro.analysis.reporting import format_table, speedup_table
from repro.analysis.utilization import mac_utilization_sweep

__all__ = [
    "breakdown_fractions",
    "normalize_breakdown",
    "energy_from_breakdown",
    "serving_energy",
    "format_table",
    "speedup_table",
    "mac_utilization_sweep",
]
