"""Latency-breakdown post-processing (Fig. 8 / Fig. 9 style reports)."""

from __future__ import annotations

from repro.pim.simulator import CycleBreakdown

BREAKDOWN_COMPONENTS = (
    "mac",
    "dt_gbuf",
    "dt_outreg",
    "act_pre",
    "refresh",
    "pipeline_penalty",
)


def breakdown_fractions(breakdown: CycleBreakdown) -> dict[str, float]:
    """Fraction of total time spent in each breakdown component."""
    total = breakdown.total
    if total <= 0:
        return {component: 0.0 for component in BREAKDOWN_COMPONENTS}
    return {
        component: getattr(breakdown, component) / total
        for component in BREAKDOWN_COMPONENTS
    }


def normalize_breakdown(
    breakdown: CycleBreakdown, reference_total: float
) -> dict[str, float]:
    """Express a breakdown's components relative to a reference total.

    Useful for the paired bars of Fig. 9 where the DCS bar is normalised to
    the baseline's execution time.
    """
    if reference_total <= 0:
        raise ValueError("reference_total must be positive")
    return {
        component: getattr(breakdown, component) / reference_total
        for component in BREAKDOWN_COMPONENTS
    }
