"""Per-bank row-buffer state machine.

The PIM command simulator tracks, for each bank, which row is currently open
so that ``MAC`` commands hitting the open row proceed immediately while
commands targeting a different row pay the precharge + activate penalty.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.timing import DRAMTiming


@dataclass
class BankState:
    """Row-buffer state of a single DRAM bank.

    Attributes:
        timing: DRAM timing parameters.
        open_row: Index of the currently open row, or ``None`` when all rows
            are precharged (idle).
        activations: Number of row activations performed so far.
        row_hits: Number of accesses that hit the open row.
    """

    timing: DRAMTiming
    open_row: int | None = None
    activations: int = 0
    row_hits: int = 0
    _act_pre_cycles: int = field(default=0, repr=False)

    def access(self, row: int) -> int:
        """Access ``row``; return the extra cycles spent switching rows.

        A row hit costs zero extra cycles.  A row miss costs ``tRCD`` if the
        bank was idle, or ``tRP + tRCD`` if another row was open.
        """
        if row < 0:
            raise ValueError("row index must be non-negative")
        if self.open_row == row:
            self.row_hits += 1
            return 0
        if self.open_row is None:
            penalty = self.timing.t_rcd
        else:
            penalty = self.timing.row_switch_cycles
        self.open_row = row
        self.activations += 1
        self._act_pre_cycles += penalty
        return penalty

    def precharge(self) -> int:
        """Close the open row; return the cycles spent."""
        if self.open_row is None:
            return 0
        self.open_row = None
        self._act_pre_cycles += self.timing.t_rp
        return self.timing.t_rp

    @property
    def act_pre_cycles(self) -> int:
        """Total cycles spent on activate/precharge so far."""
        return self._act_pre_cycles

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses that hit the open row."""
        total = self.activations + self.row_hits
        if total == 0:
            return 0.0
        return self.row_hits / total
