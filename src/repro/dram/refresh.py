"""DRAM refresh overhead model.

Refresh is modelled as a rate: every ``tREFI`` cycles the device is blocked
for ``tRFC`` cycles.  The command simulator accounts for it by inflating the
busy time of a window by the refresh fraction, which is accurate for windows
much longer than ``tREFI`` (always the case for kernel executions) and keeps
the simulator simple and fast.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.dram.timing import DRAMTiming


@dataclass(frozen=True)
class RefreshModel:
    """Rate-based refresh overhead model."""

    timing: DRAMTiming

    @property
    def overhead_fraction(self) -> float:
        """Extra time added per cycle of useful work."""
        available = 1.0 - self.timing.refresh_fraction
        return self.timing.refresh_fraction / available

    def refresh_cycles(self, busy_cycles: float) -> float:
        """Refresh cycles incurred while executing ``busy_cycles`` of work."""
        if busy_cycles < 0:
            raise ValueError("busy_cycles must be non-negative")
        return busy_cycles * self.overhead_fraction

    def with_refresh(self, busy_cycles: float) -> float:
        """Total cycles including refresh for ``busy_cycles`` of work."""
        return busy_cycles + self.refresh_cycles(busy_cycles)
