"""DRAM timing parameters.

The values model a GDDR6-class accelerator-in-memory (AiM) device at the
granularity the PIM command simulator needs: row activate/precharge costs,
the minimum command-to-command interval for 32B tile transfers, refresh
overhead and the row-buffer geometry.  Absolute values follow typical GDDR6
datasheet ratios; the reproduction depends on the *relative* structure
(ACT/PRE ≫ tCCDS, refresh a few percent) rather than any specific bin.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DRAMTiming:
    """Timing parameters of one DRAM-PIM channel, in controller clock cycles.

    Attributes:
        clock_ghz: Controller clock frequency (cycles per nanosecond).
        t_ccds: Minimum interval between consecutive 32B tile commands on the
            data bus (tCCD_S).
        t_rcd: Row activate to first access delay (tRCD).
        t_rp: Precharge latency (tRP).
        t_rfc: Refresh cycle time (tRFC) -- the bank group is blocked for
            this long per refresh.
        t_refi: Average refresh interval (tREFI).
        row_bytes: Bytes per DRAM row per bank (row-buffer size).
    """

    clock_ghz: float = 1.0
    t_ccds: int = 2
    t_rcd: int = 18
    t_rp: int = 18
    t_rfc: int = 350
    t_refi: int = 3900
    row_bytes: int = 1024

    def __post_init__(self) -> None:
        if self.clock_ghz <= 0:
            raise ValueError("clock_ghz must be positive")
        for name in ("t_ccds", "t_rcd", "t_rp", "t_rfc", "t_refi", "row_bytes"):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.t_rfc >= self.t_refi:
            raise ValueError("t_rfc must be smaller than t_refi")

    @property
    def row_switch_cycles(self) -> int:
        """Cycles to close the open row and activate a new one (tRP + tRCD)."""
        return self.t_rp + self.t_rcd

    @property
    def refresh_fraction(self) -> float:
        """Fraction of time the device is unavailable due to refresh."""
        return self.t_rfc / self.t_refi

    @property
    def tiles_per_row(self) -> int:
        """Number of 32B tiles held by one open row."""
        return self.row_bytes // 32

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert controller cycles to wall-clock seconds."""
        return cycles / (self.clock_ghz * 1e9)

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert wall-clock seconds to controller cycles."""
        return seconds * self.clock_ghz * 1e9
