"""DRAM timing substrate used by the PIM command simulator."""

from repro.dram.bank import BankState
from repro.dram.refresh import RefreshModel
from repro.dram.timing import DRAMTiming

__all__ = ["DRAMTiming", "BankState", "RefreshModel"]
