"""Functional (numerical) execution of PIM command streams.

The timing simulator answers *how long* a command stream takes; this module
answers *what it computes*.  A :class:`FunctionalChannel` models the data
path of one PIM channel -- per-bank DRAM tiles, the shared Global Buffer,
per-bank output accumulators -- and executes ``WR-INP`` / ``MAC`` /
``RD-OUT`` streams against real numbers.  It is used to verify that

* the GEMV lowering in ``repro.compiler.lowering`` computes the correct
  matrix-vector product,
* Token-Centric Partitioning plus the PIM-HUB reduction reproduces the exact
  attention output of a single-device reference, and
* DCS's out-of-order issue never changes results (schedulers only reorder
  execution, the dataflow is fixed by the command stream).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.pim.config import ELEMENTS_PER_TILE, PIMChannelConfig
from repro.pim.isa import PIMCommand, PIMOpcode

if TYPE_CHECKING:
    from repro.pim.kernels import BufferCaps


@dataclass
class FunctionalChannel:
    """Numerical model of one PIM channel's data path.

    Attributes:
        channel: Channel geometry (banks, buffer entry counts).
        tiles_per_row: 16-element weight tiles held by one DRAM row per bank.
    """

    channel: PIMChannelConfig = field(default_factory=PIMChannelConfig)
    tiles_per_row: int = 32
    _gbuf: np.ndarray = field(init=False, repr=False)
    _accumulators: np.ndarray = field(init=False, repr=False)
    _weights: np.ndarray = field(init=False, repr=False)
    _drained: list[np.ndarray] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        banks = self.channel.num_banks
        self._gbuf = np.zeros((self.channel.gbuf_entries, ELEMENTS_PER_TILE), dtype=np.float64)
        self._accumulators = np.zeros((self.channel.obuf_entries, banks), dtype=np.float64)
        self._weights = np.zeros((banks, 0, ELEMENTS_PER_TILE), dtype=np.float64)
        self._drained = []

    # -- memory image -----------------------------------------------------

    def load_weight_matrix(self, matrix: np.ndarray) -> None:
        """Store a GEMV weight matrix into channel DRAM.

        The layout matches :func:`repro.compiler.lowering.lower_gemv_to_commands`:
        output element ``o`` lives in bank ``o % num_banks``; its weight row
        is split into 16-element tiles stored at consecutive (row, col)
        addresses, visited in output-group-major order.
        """
        out_dim, in_dim = matrix.shape
        banks = self.channel.num_banks
        n_in = -(-in_dim // ELEMENTS_PER_TILE)
        n_groups = -(-out_dim // banks)
        padded = np.zeros((n_groups * banks, n_in * ELEMENTS_PER_TILE), dtype=np.float64)
        padded[:out_dim, :in_dim] = matrix
        # tiles[bank, tile_index, :] with tile_index advancing group-major.
        tiles = np.zeros((banks, n_groups * n_in, ELEMENTS_PER_TILE), dtype=np.float64)
        for group in range(n_groups):
            for bank in range(banks):
                row = padded[group * banks + bank]
                for tile in range(n_in):
                    tiles[bank, group * n_in + tile] = row[
                        tile * ELEMENTS_PER_TILE : (tile + 1) * ELEMENTS_PER_TILE
                    ]
        self._weights = tiles

    def write_input_vector(self, vector: np.ndarray) -> list[np.ndarray]:
        """Split an input vector into the 16-element tiles WR-INP transfers."""
        length = -(-vector.size // ELEMENTS_PER_TILE) * ELEMENTS_PER_TILE
        padded = np.zeros(length, dtype=np.float64)
        padded[: vector.size] = vector
        return [
            padded[index : index + ELEMENTS_PER_TILE]
            for index in range(0, length, ELEMENTS_PER_TILE)
        ]

    # -- command execution -------------------------------------------------

    def execute(
        self, commands: Sequence[PIMCommand], input_tiles: Sequence[np.ndarray]
    ) -> list[np.ndarray]:
        """Execute a command stream, consuming ``input_tiles`` per WR-INP.

        Returns:
            The list of drained output groups (one ``num_banks``-wide vector
            per ``RD-OUT``), in drain order.

        Raises:
            ValueError: if the stream consumes more input tiles than provided
                or references weights that were never loaded.
        """
        tile_iterator = iter(input_tiles)
        self._drained = []
        for command in commands:
            if command.opcode is PIMOpcode.WR_INP:
                try:
                    tile = next(tile_iterator)
                except StopIteration:
                    raise ValueError(
                        "command stream consumes more input tiles than provided"
                    ) from None
                self._gbuf[command.gbuf_idx] = tile
            elif command.opcode is PIMOpcode.MAC:
                tile_index = command.row * self.tiles_per_row + command.col
                if tile_index >= self._weights.shape[1]:
                    raise ValueError(
                        f"MAC references weight tile {tile_index} beyond the loaded matrix"
                    )
                weights = self._weights[:, tile_index, :]
                self._accumulators[command.out_idx] += weights @ self._gbuf[command.gbuf_idx]
            elif command.opcode is PIMOpcode.RD_OUT:
                self._drained.append(self._accumulators[command.out_idx].copy())
                self._accumulators[command.out_idx] = 0.0
            else:
                raise ValueError(f"{command.opcode} cannot execute on a channel")
        return self._drained


def execute_gemv(
    matrix: np.ndarray,
    vector: np.ndarray,
    channel: PIMChannelConfig | None = None,
    caps: BufferCaps | None = None,
) -> np.ndarray:
    """Run a GEMV through lowering + functional execution and gather outputs.

    This is the end-to-end functional path: the weight matrix is laid out in
    channel DRAM, the GEMV is lowered to an explicit command stream, the
    stream executes numerically, and the drained partial sums are reduced
    exactly the way the PIM HUB's GPR/EPU would.
    """
    from repro.compiler.lowering import lower_gemv_to_commands
    from repro.pim.kernels import caps_for_policy

    resolved_channel = channel if channel is not None else PIMChannelConfig()
    resolved_caps = caps if caps is not None else caps_for_policy(resolved_channel, "dcs")
    out_dim, in_dim = matrix.shape
    banks = resolved_channel.num_banks
    n_in = -(-in_dim // ELEMENTS_PER_TILE)
    n_groups = -(-out_dim // banks)
    block = min(n_in, resolved_caps.gbuf_entries)

    functional = FunctionalChannel(channel=resolved_channel)
    functional.load_weight_matrix(matrix)
    commands = lower_gemv_to_commands(in_dim, out_dim, resolved_channel, resolved_caps)

    # WR-INP order follows the lowering: per input block, the block's tiles.
    all_tiles = functional.write_input_vector(vector)
    ordered_tiles = []
    for block_start in range(0, n_in, block):
        ordered_tiles.extend(all_tiles[block_start : block_start + min(block, n_in - block_start)])

    drained = functional.execute(commands, ordered_tiles)

    # Partial sums: one drain per (input block, output group); accumulate per
    # group across blocks (the GPR/EPU reduction) and concatenate groups.
    result = np.zeros(n_groups * banks, dtype=np.float64)
    n_blocks = -(-n_in // block)
    for block_index in range(n_blocks):
        for group in range(n_groups):
            drain = drained[block_index * n_groups + group]
            result[group * banks : (group + 1) * banks] += drain
    return result[:out_dim]


def reference_attention(
    query: np.ndarray, keys: np.ndarray, values: np.ndarray
) -> np.ndarray:
    """Single-head attention reference: softmax(q K^T / sqrt(d)) V."""
    scale = 1.0 / np.sqrt(query.shape[-1])
    scores = keys @ query * scale
    probs = np.exp(scores - scores.max())
    probs /= probs.sum()
    return values.T @ probs


def tcp_attention(
    query: np.ndarray,
    keys: np.ndarray,
    values: np.ndarray,
    num_channels: int,
) -> np.ndarray:
    """Token-Centric-Partitioned attention executed per channel-slice.

    The token axis is split across ``num_channels`` slices; each slice
    computes its scores and its partial ``SV`` product, and the PIM HUB
    reduction combines the partial numerators and normalisers -- numerically
    identical to the single-device reference (a flash-decoding style
    combination).
    """
    tokens = keys.shape[0]
    if tokens == 0:
        return np.zeros(values.shape[1], dtype=np.float64)
    scale = 1.0 / np.sqrt(query.shape[-1])
    boundaries = np.linspace(0, tokens, num_channels + 1, dtype=int)

    numerator = np.zeros(values.shape[1], dtype=np.float64)
    denominator = 0.0
    running_max = -np.inf
    for channel in range(num_channels):
        start, stop = boundaries[channel], boundaries[channel + 1]
        if start == stop:
            continue
        scores = keys[start:stop] @ query * scale
        slice_max = scores.max()
        new_max = max(running_max, slice_max)
        weights = np.exp(scores - new_max)
        correction = np.exp(running_max - new_max) if np.isfinite(running_max) else 0.0
        numerator = numerator * correction + values[start:stop].T @ weights
        denominator = denominator * correction + weights.sum()
        running_max = new_max
    return numerator / denominator
