"""PIM instruction set (paper Table III and Fig. 10(b)).

Two levels exist:

* :class:`PIMInstruction` -- module-level instructions received by the PIM
  HUB.  ``Op-size`` tells the Instruction Sequencer how many channel
  commands to unroll; ``Ch-mask`` selects the target channels.
* :class:`PIMCommand` -- channel-level commands produced by the Multicast
  Interconnect and consumed by a PIM controller.  These are what the
  command-level simulator schedules.

The DPA extension adds two instructions: ``DYN-LOOP`` (a loop whose bound is
resolved from the request's current token length at dispatch time) and
``DYN-MODI`` (strides an operand field of the following instruction, which
combined with the VA2PA table yields runtime virtual-to-physical address
translation).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class PIMOpcode(enum.Enum):
    """Opcodes of the PIM ISA."""

    WR_INP = "WR-INP"
    MAC = "MAC"
    RD_OUT = "RD-OUT"
    DYN_LOOP = "DYN-LOOP"
    DYN_MODI = "DYN-MODI"

    @property
    def is_io(self) -> bool:
        """Whether the opcode moves data between GPR and channel buffers."""
        return self in (PIMOpcode.WR_INP, PIMOpcode.RD_OUT)

    @property
    def is_compute(self) -> bool:
        """Whether the opcode occupies the per-bank MAC units."""
        return self is PIMOpcode.MAC

    @property
    def is_control(self) -> bool:
        """Whether the opcode is a DPA control instruction."""
        return self in (PIMOpcode.DYN_LOOP, PIMOpcode.DYN_MODI)


#: Encoded size, in bytes, of one instruction in the instruction buffer.
INSTRUCTION_BYTES = 8


@dataclass(frozen=True)
class PIMInstruction:
    """A module-level PIM instruction.

    Attributes:
        opcode: Instruction opcode.
        ch_mask: Bit mask of target channels.
        op_size: Repetition count unrolled by the Instruction Sequencer.
        gpr_addr: Base GPR address for I/O instructions.
        gbuf_idx: Global-buffer entry index (WR-INP destination / MAC source).
        out_idx: Output-buffer entry index (MAC destination / RD-OUT source).
        row: DRAM row address for MAC instructions (may be virtual under DPA).
        col: DRAM column address for MAC instructions.
        loop_bound_source: For ``DYN-LOOP``, the name of the runtime value
            providing the loop bound (e.g. ``"token_length"``).
        stride: For ``DYN-MODI``, the per-iteration stride applied to the
            target operand field.
        target_field: For ``DYN-MODI``, the operand field being strided.
    """

    opcode: PIMOpcode
    ch_mask: int = 0xFFFF
    op_size: int = 1
    gpr_addr: int = -1
    gbuf_idx: int = -1
    out_idx: int = -1
    row: int = -1
    col: int = -1
    loop_bound_source: str = ""
    stride: int = 0
    target_field: str = ""

    def __post_init__(self) -> None:
        if self.op_size < 1:
            raise ValueError("op_size must be >= 1")
        if self.ch_mask < 0:
            raise ValueError("ch_mask must be non-negative")

    @property
    def target_channels(self) -> list[int]:
        """Channel indices selected by the channel mask."""
        channels = []
        mask = self.ch_mask
        index = 0
        while mask:
            if mask & 1:
                channels.append(index)
            mask >>= 1
            index += 1
        return channels

    @property
    def encoded_bytes(self) -> int:
        """Footprint of the instruction in the instruction buffer."""
        return INSTRUCTION_BYTES


@dataclass(frozen=True)
class PIMCommand:
    """A channel-level PIM command scheduled by a PIM controller.

    Attributes:
        cmd_id: Unique, monotonically increasing identifier.
        opcode: Command opcode (only WR-INP / MAC / RD-OUT reach a channel).
        gbuf_idx: Global-buffer entry (WR-INP destination, MAC source).
        out_idx: Output-buffer entry (MAC destination, RD-OUT source).
        row: DRAM row targeted by MAC commands.
        col: DRAM column targeted by MAC commands.
    """

    cmd_id: int
    opcode: PIMOpcode
    gbuf_idx: int = -1
    out_idx: int = -1
    row: int = -1
    col: int = -1

    def __post_init__(self) -> None:
        if self.opcode.is_control:
            raise ValueError("control instructions are expanded before reaching a channel")
        if self.cmd_id < 0:
            raise ValueError("cmd_id must be non-negative")


def write_input(cmd_id: int, gbuf_idx: int) -> PIMCommand:
    """Convenience constructor for a ``WR-INP`` command."""
    return PIMCommand(cmd_id=cmd_id, opcode=PIMOpcode.WR_INP, gbuf_idx=gbuf_idx)


def mac(cmd_id: int, gbuf_idx: int, out_idx: int, row: int = 0, col: int = 0) -> PIMCommand:
    """Convenience constructor for a ``MAC`` command."""
    return PIMCommand(
        cmd_id=cmd_id, opcode=PIMOpcode.MAC, gbuf_idx=gbuf_idx, out_idx=out_idx, row=row, col=col
    )


def read_output(cmd_id: int, out_idx: int) -> PIMCommand:
    """Convenience constructor for a ``RD-OUT`` command."""
    return PIMCommand(cmd_id=cmd_id, opcode=PIMOpcode.RD_OUT, out_idx=out_idx)
