"""PIM command scheduling policies: the static baseline and the shared
dependency-table machinery.

The conventional PIM controller (paper Sec. V-A) issues commands strictly in
program order and enforces conservative timing gaps derived from fixed
command execution times whenever the command *category* changes (input
transfer, compute, output transfer), because it does not track per-entry
data dependencies.  :class:`StaticScheduler` implements that behaviour.

:class:`TableDrivenScheduler` implements the D-Table / S-Table mechanism of
Sec. V-C at a configurable dependency granularity.  PIMphony's DCS uses
entry granularity (``repro.core.dcs``); the ping-pong baseline uses region
granularity (``repro.baselines.pingpong``).
"""

from __future__ import annotations

import enum
from collections.abc import Sequence
from dataclasses import dataclass

from repro.pim.config import PIMChannelConfig
from repro.pim.isa import PIMCommand, PIMOpcode
from repro.pim.simulator import (
    CommandScheduler,
    ScheduledCommand,
    ScheduleResult,
    _RowTracker,
)
from repro.pim.timing import PIMTiming


class _CommandClass(enum.Enum):
    """Conservative command categories used by the static scheduler."""

    INPUT = "input"
    COMPUTE = "compute"
    OUTPUT = "output"


def _command_class(opcode: PIMOpcode) -> _CommandClass:
    if opcode is PIMOpcode.WR_INP:
        return _CommandClass.INPUT
    if opcode is PIMOpcode.MAC:
        return _CommandClass.COMPUTE
    if opcode is PIMOpcode.RD_OUT:
        return _CommandClass.OUTPUT
    raise ValueError(f"{opcode} is not a channel-level command")


class StaticScheduler(CommandScheduler):
    """Conventional in-order PIM command scheduler.

    Issue rules:

    * Commands issue in program order, at least one occupancy interval after
      the previous command.
    * A command additionally waits for the completion of every previously
      issued command of a *different* category, because without per-entry
      dependency tracking the controller must assume a hazard.
    * A ``MAC`` targeting a row other than the open row pays the
      activate/precharge penalty before issue.
    """

    name = "static"

    def schedule(self, commands: Sequence[PIMCommand]) -> ScheduleResult:
        scheduled: list[ScheduledCommand] = []
        rows = _RowTracker(self.timing)
        last_issue: int | None = None
        last_occupancy = 0
        completion_by_class: dict[_CommandClass, int] = {}

        for command in commands:
            category = _command_class(command.opcode)
            earliest = 0 if last_issue is None else last_issue + last_occupancy
            for other_class, completion in completion_by_class.items():
                if other_class is not category:
                    earliest = max(earliest, completion)
            penalty = rows.access(command.row) if command.opcode is PIMOpcode.MAC else 0
            issue = earliest + penalty
            complete = issue + self.latency(command.opcode)
            scheduled.append(ScheduledCommand(command=command, issue=issue, complete=complete))
            completion_by_class[category] = max(completion_by_class.get(category, 0), complete)
            last_issue = issue
            last_occupancy = self.occupancy(command.opcode)

        return self._finalize(scheduled, act_pre_cycles=float(rows.penalty_cycles))


@dataclass
class _Dependency:
    """Resolved dependencies of one command (D-Table output)."""

    gbuf_source: int | None = None
    gbuf_readers: tuple[int, ...] = ()
    out_source: int | None = None
    out_drain: int | None = None


class TableDrivenScheduler(CommandScheduler):
    """Dependency-table scheduler shared by DCS and ping-pong buffering.

    The scheduler keeps two in-order queues -- one for I/O transfers
    (``WR-INP`` / ``RD-OUT``) and one for compute (``MAC``) -- and issues the
    queue head whose dependencies resolve first, which yields out-of-order
    execution *across* the queues while preserving order *within* each.

    Dependencies are tracked at a configurable granularity:

    * ``granularity=1`` tracks each buffer entry individually (PIMphony DCS).
    * coarser granularities group entries into regions, modelling ping-pong
      style double buffering where a whole region must be idle before the
      producer/consumer roles swap.
    """

    name = "table-driven"

    def __init__(
        self,
        timing: PIMTiming,
        channel: PIMChannelConfig | None = None,
        gbuf_regions: int = 0,
        out_regions: int = 0,
        handoff_penalty: int = 0,
        mac_pipelining: bool = True,
    ) -> None:
        super().__init__(timing, channel)
        self.gbuf_regions = gbuf_regions
        self.out_regions = out_regions
        self.handoff_penalty = handoff_penalty
        self.mac_pipelining = mac_pipelining

    # -- dependency-key helpers -----------------------------------------

    def _gbuf_key(self, entry: int) -> int:
        if self.gbuf_regions <= 0:
            return entry
        region_size = max(1, self.channel.gbuf_entries // self.gbuf_regions)
        return entry // region_size

    def _out_key(self, entry: int) -> int:
        if self.out_regions <= 0:
            return entry
        region_size = max(1, self.channel.obuf_entries // self.out_regions)
        return entry // region_size

    # -- D-Table pre-pass -----------------------------------------------

    def _resolve_dependencies(
        self, commands: Sequence[PIMCommand]
    ) -> dict[int, _Dependency]:
        """Walk the stream in program order and resolve per-command deps."""
        last_gbuf_writer: dict[int, int] = {}
        gbuf_readers: dict[int, list[int]] = {}
        last_out_mac: dict[int, int] = {}
        last_out_drain: dict[int, int] = {}
        last_out_accessor_is_drain: dict[int, bool] = {}
        dependencies: dict[int, _Dependency] = {}

        for command in commands:
            dep = _Dependency()
            if command.opcode is PIMOpcode.WR_INP:
                key = self._gbuf_key(command.gbuf_idx)
                dep.gbuf_readers = tuple(gbuf_readers.get(key, ()))
                last_gbuf_writer[key] = command.cmd_id
                gbuf_readers[key] = []
            elif command.opcode is PIMOpcode.MAC:
                gkey = self._gbuf_key(command.gbuf_idx)
                okey = self._out_key(command.out_idx)
                dep.gbuf_source = last_gbuf_writer.get(gkey)
                if last_out_accessor_is_drain.get(okey, False):
                    dep.out_drain = last_out_drain.get(okey)
                elif not self.mac_pipelining:
                    dep.out_source = last_out_mac.get(okey)
                gbuf_readers.setdefault(gkey, []).append(command.cmd_id)
                last_out_mac[okey] = command.cmd_id
                last_out_accessor_is_drain[okey] = False
            elif command.opcode is PIMOpcode.RD_OUT:
                okey = self._out_key(command.out_idx)
                dep.out_source = last_out_mac.get(okey)
                last_out_drain[okey] = command.cmd_id
                last_out_accessor_is_drain[okey] = True
            dependencies[command.cmd_id] = dep
        return dependencies

    # -- scheduling loop -------------------------------------------------

    def schedule(self, commands: Sequence[PIMCommand]) -> ScheduleResult:
        dependencies = self._resolve_dependencies(commands)
        io_queue = [c for c in commands if c.opcode.is_io]
        compute_queue = [c for c in commands if c.opcode.is_compute]

        completion: dict[int, int] = {}
        scheduled: list[ScheduledCommand] = []
        rows = _RowTracker(self.timing)

        io_index = 0
        compute_index = 0
        io_next_free = 0
        compute_next_free = 0
        previous_compute_region: int | None = None
        handoff_cycles = 0

        def dependency_ready(command: PIMCommand) -> int | None:
            """Earliest cycle the command's dependencies allow, or None."""
            dep = dependencies[command.cmd_id]
            ready = 0
            sources: list[int] = []
            if dep.gbuf_source is not None:
                sources.append(dep.gbuf_source)
            if dep.out_source is not None:
                sources.append(dep.out_source)
            if dep.out_drain is not None:
                sources.append(dep.out_drain)
            sources.extend(dep.gbuf_readers)
            for source in sources:
                if source not in completion:
                    return None
                ready = max(ready, completion[source])
            return ready

        while io_index < len(io_queue) or compute_index < len(compute_queue):
            io_candidate: tuple[int, PIMCommand] | None = None
            compute_candidate: tuple[int, PIMCommand] | None = None

            if io_index < len(io_queue):
                command = io_queue[io_index]
                ready = dependency_ready(command)
                if ready is not None:
                    io_candidate = (max(ready, io_next_free), command)
            if compute_index < len(compute_queue):
                command = compute_queue[compute_index]
                ready = dependency_ready(command)
                if ready is not None:
                    compute_candidate = (max(ready, compute_next_free), command)

            if io_candidate is None and compute_candidate is None:
                raise RuntimeError(
                    "scheduling deadlock: no queue head has resolved dependencies"
                )

            use_compute = False
            if compute_candidate is not None and (
                io_candidate is None or compute_candidate[0] <= io_candidate[0]
            ):
                use_compute = True

            if use_compute:
                issue, command = compute_candidate  # type: ignore[misc]
                penalty = rows.access(command.row)
                region = self._out_key(command.out_idx)
                if (
                    self.handoff_penalty
                    and previous_compute_region is not None
                    and region != previous_compute_region
                ):
                    penalty += self.handoff_penalty
                    handoff_cycles += self.handoff_penalty
                previous_compute_region = region
                issue += penalty
                complete = issue + self.latency(command.opcode)
                compute_next_free = issue + self.occupancy(command.opcode)
                compute_index += 1
            else:
                issue, command = io_candidate  # type: ignore[misc]
                complete = issue + self.latency(command.opcode)
                io_next_free = issue + self.occupancy(command.opcode)
                io_index += 1

            completion[command.cmd_id] = complete
            scheduled.append(ScheduledCommand(command=command, issue=issue, complete=complete))

        scheduled.sort(key=lambda entry: (entry.issue, entry.command.cmd_id))
        return self._finalize(scheduled, act_pre_cycles=float(rows.penalty_cycles))
