"""Command-level PIM channel simulator primitives.

The simulator schedules explicit :class:`~repro.pim.isa.PIMCommand` streams
for a single PIM channel under a pluggable scheduling policy and reports the
latency decomposition used throughout the paper's figures: MAC busy time,
GBuf / OutReg transfer time, DRAM activate/precharge time, refresh time and
the residual pipeline penalty (stalls).

Concrete policies:

* :class:`repro.pim.scheduling.StaticScheduler` -- the conventional in-order
  scheduler that serialises I/O and compute at every category boundary.
* :class:`repro.core.dcs.DCSScheduler` -- PIMphony's dependency-aware
  out-of-order scheduler (D-Table / S-Table).
* :class:`repro.baselines.pingpong.PingPongScheduler` -- double-buffering
  with region-granular dependencies.
"""

from __future__ import annotations

import abc
from collections.abc import Sequence
from dataclasses import dataclass

from repro.dram.refresh import RefreshModel
from repro.pim.config import PIMChannelConfig
from repro.pim.isa import PIMCommand, PIMOpcode
from repro.pim.timing import PIMTiming


@dataclass(frozen=True)
class CycleBreakdown:
    """Latency decomposition of a command stream (paper Fig. 8 categories).

    Attributes:
        mac: Cycles the MAC pipeline performed useful work.
        dt_gbuf: Cycles spent transferring input tiles into the GBuf.
        dt_outreg: Cycles spent draining results from the OutRegs / OBuf.
        act_pre: Cycles spent on DRAM row activate / precharge.
        refresh: Cycles lost to DRAM refresh.
        pipeline_penalty: Residual stall cycles (serialisation, hand-offs).
        total: End-to-end cycles of the stream.
    """

    mac: float
    dt_gbuf: float
    dt_outreg: float
    act_pre: float
    refresh: float
    pipeline_penalty: float
    total: float

    @property
    def io(self) -> float:
        """Total I/O transfer cycles."""
        return self.dt_gbuf + self.dt_outreg

    @property
    def mac_utilization(self) -> float:
        """Fraction of total time the MAC pipeline did useful work."""
        if self.total <= 0:
            return 0.0
        return self.mac / self.total

    def scaled(self, factor: float) -> CycleBreakdown:
        """Scale every component by ``factor`` (e.g. repetition counts)."""
        return CycleBreakdown(
            mac=self.mac * factor,
            dt_gbuf=self.dt_gbuf * factor,
            dt_outreg=self.dt_outreg * factor,
            act_pre=self.act_pre * factor,
            refresh=self.refresh * factor,
            pipeline_penalty=self.pipeline_penalty * factor,
            total=self.total * factor,
        )

    def __add__(self, other: CycleBreakdown) -> CycleBreakdown:
        return CycleBreakdown(
            mac=self.mac + other.mac,
            dt_gbuf=self.dt_gbuf + other.dt_gbuf,
            dt_outreg=self.dt_outreg + other.dt_outreg,
            act_pre=self.act_pre + other.act_pre,
            refresh=self.refresh + other.refresh,
            pipeline_penalty=self.pipeline_penalty + other.pipeline_penalty,
            total=self.total + other.total,
        )


ZERO_BREAKDOWN = CycleBreakdown(
    mac=0.0, dt_gbuf=0.0, dt_outreg=0.0, act_pre=0.0, refresh=0.0, pipeline_penalty=0.0, total=0.0
)


def combine_serial(breakdowns: Sequence[CycleBreakdown]) -> CycleBreakdown:
    """Combine breakdowns of kernels executed back-to-back on one channel."""
    result = ZERO_BREAKDOWN
    for breakdown in breakdowns:
        result = result + breakdown
    return result


@dataclass(frozen=True)
class ScheduledCommand:
    """A command together with its scheduled issue and completion cycles."""

    command: PIMCommand
    issue: int
    complete: int

    def __post_init__(self) -> None:
        if self.complete < self.issue:
            raise ValueError("complete must not precede issue")


@dataclass
class ScheduleResult:
    """Output of scheduling one command stream on one channel."""

    scheduled: list[ScheduledCommand]
    breakdown: CycleBreakdown
    policy: str

    @property
    def total_cycles(self) -> float:
        return self.breakdown.total

    @property
    def makespan(self) -> int:
        """Completion cycle of the last command (before refresh accounting)."""
        if not self.scheduled:
            return 0
        return max(entry.complete for entry in self.scheduled)

    def issue_order(self) -> list[int]:
        """Command ids sorted by issue time (ties broken by program order)."""
        ordered = sorted(self.scheduled, key=lambda entry: (entry.issue, entry.command.cmd_id))
        return [entry.command.cmd_id for entry in ordered]


@dataclass
class _RowTracker:
    """Tracks the open DRAM row of the (lock-stepped) banks of a channel."""

    timing: PIMTiming
    open_row: int | None = None
    activations: int = 0
    penalty_cycles: int = 0

    def access(self, row: int) -> int:
        """Return the stall incurred by accessing ``row`` and update state."""
        if row < 0:
            return 0
        if self.open_row == row:
            return 0
        if self.open_row is None:
            penalty = self.timing.dram.t_rcd
        else:
            penalty = self.timing.dram.row_switch_cycles
        self.open_row = row
        self.activations += 1
        self.penalty_cycles += penalty
        return penalty


class CommandScheduler(abc.ABC):
    """Base class for PIM command scheduling policies."""

    #: Short policy name used in reports and plots.
    name: str = "base"

    def __init__(self, timing: PIMTiming, channel: PIMChannelConfig | None = None) -> None:
        self.timing = timing
        self.channel = channel if channel is not None else PIMChannelConfig()

    @abc.abstractmethod
    def schedule(self, commands: Sequence[PIMCommand]) -> ScheduleResult:
        """Schedule ``commands`` and return per-command times plus breakdown."""

    # -- shared helpers -------------------------------------------------

    def occupancy(self, opcode: PIMOpcode) -> int:
        """Issue-resource holding time of ``opcode``."""
        if opcode is PIMOpcode.WR_INP:
            return self.timing.wr_inp_occupancy
        if opcode is PIMOpcode.MAC:
            return self.timing.mac_occupancy
        if opcode is PIMOpcode.RD_OUT:
            return self.timing.rd_out_occupancy
        raise ValueError(f"{opcode} has no channel-level occupancy")

    def latency(self, opcode: PIMOpcode) -> int:
        """Completion latency of ``opcode``."""
        if opcode is PIMOpcode.WR_INP:
            return self.timing.wr_inp_latency_cycles
        if opcode is PIMOpcode.MAC:
            return self.timing.mac_latency_cycles
        if opcode is PIMOpcode.RD_OUT:
            return self.timing.rd_out_latency_cycles
        raise ValueError(f"{opcode} has no channel-level latency")

    def _finalize(
        self,
        scheduled: list[ScheduledCommand],
        act_pre_cycles: float,
        include_refresh: bool = True,
    ) -> ScheduleResult:
        """Compute the cycle breakdown for a completed schedule."""
        n_mac = sum(1 for entry in scheduled if entry.command.opcode is PIMOpcode.MAC)
        n_wr = sum(1 for entry in scheduled if entry.command.opcode is PIMOpcode.WR_INP)
        n_rd = sum(1 for entry in scheduled if entry.command.opcode is PIMOpcode.RD_OUT)
        makespan = max((entry.complete for entry in scheduled), default=0)

        mac_cycles = n_mac * self.timing.mac_occupancy
        dt_gbuf = n_wr * self.timing.wr_inp_occupancy
        dt_outreg = n_rd * self.timing.rd_out_occupancy
        refresh = 0.0
        if include_refresh and makespan > 0:
            refresh = RefreshModel(self.timing.dram).refresh_cycles(makespan)
        total = makespan + refresh
        penalty = total - (mac_cycles + dt_gbuf + dt_outreg + act_pre_cycles + refresh)
        breakdown = CycleBreakdown(
            mac=float(mac_cycles),
            dt_gbuf=float(dt_gbuf),
            dt_outreg=float(dt_outreg),
            act_pre=float(act_pre_cycles),
            refresh=refresh,
            pipeline_penalty=max(0.0, penalty),
            total=float(total),
        )
        return ScheduleResult(scheduled=scheduled, breakdown=breakdown, policy=self.name)


def validate_stream(commands: Sequence[PIMCommand], channel: PIMChannelConfig) -> None:
    """Validate that a command stream respects the channel's buffer sizes.

    Raises:
        ValueError: if any command references an out-of-range buffer entry.
    """
    for command in commands:
        if command.opcode in (PIMOpcode.WR_INP, PIMOpcode.MAC):
            if command.gbuf_idx < 0 or command.gbuf_idx >= channel.gbuf_entries:
                raise ValueError(
                    f"command {command.cmd_id} references GBuf entry {command.gbuf_idx} "
                    f"outside 0..{channel.gbuf_entries - 1}"
                )
        if command.opcode in (PIMOpcode.MAC, PIMOpcode.RD_OUT):
            if command.out_idx < 0 or command.out_idx >= channel.obuf_entries:
                raise ValueError(
                    f"command {command.cmd_id} references output entry {command.out_idx} "
                    f"outside 0..{channel.obuf_entries - 1}"
                )
