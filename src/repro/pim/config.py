"""PIM channel / module configuration (paper Fig. 3 and Table IV).

A PIM module contains a PIM HUB (instruction sequencer, multicast
interconnect, GPR, EPU) and a number of PIM channels.  Each channel contains
banks with per-bank vector MAC units, a shared Global Buffer for inputs and
Output Registers (expanded to Output Buffers under DCS) for results.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pim.timing import PIMTiming, aimx_timing

TILE_BYTES = 32
"""Bytes per PIM data tile (16 FP16 elements)."""

ELEMENTS_PER_TILE = 16
"""FP16 elements per 32B tile."""


@dataclass(frozen=True)
class PIMChannelConfig:
    """Configuration of a single PIM channel.

    Attributes:
        num_banks: DRAM banks (each with a vector MAC unit) in the channel.
        gbuf_bytes: Global Buffer capacity (shared input buffer).
        outreg_bytes_per_bank: Output Register capacity per bank in the
            baseline design (4 bytes = two FP16 accumulators).
        obuf_bytes_per_bank: Output Buffer capacity per bank when PIMphony's
            I/O-aware buffering is enabled.
        mac_elements_per_command: Elements multiply-accumulated per bank per
            ``MAC`` command.
        capacity_bytes: DRAM capacity of the channel.
    """

    num_banks: int = 16
    gbuf_bytes: int = 2048
    outreg_bytes_per_bank: int = 4
    obuf_bytes_per_bank: int = 32
    mac_elements_per_command: int = ELEMENTS_PER_TILE
    capacity_bytes: int = 1 * 1024**3

    def __post_init__(self) -> None:
        for name in (
            "num_banks",
            "gbuf_bytes",
            "outreg_bytes_per_bank",
            "obuf_bytes_per_bank",
            "mac_elements_per_command",
            "capacity_bytes",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.gbuf_bytes % TILE_BYTES != 0:
            raise ValueError("gbuf_bytes must be a multiple of the 32B tile size")

    @property
    def gbuf_entries(self) -> int:
        """Number of 32B tiles the Global Buffer can hold."""
        return self.gbuf_bytes // TILE_BYTES

    @property
    def outreg_entries(self) -> int:
        """Output-group entries available in the baseline Output Registers."""
        return self.outreg_bytes_per_bank // 2

    @property
    def obuf_entries(self) -> int:
        """Output-group entries available with expanded Output Buffers."""
        return self.obuf_bytes_per_bank // 2

    @property
    def macs_per_command(self) -> int:
        """Multiply-accumulates performed by one channel ``MAC`` command."""
        return self.num_banks * self.mac_elements_per_command

    @property
    def flops_per_command(self) -> int:
        """FLOPs per channel ``MAC`` command (MAC counted as 2 FLOPs)."""
        return 2 * self.macs_per_command


@dataclass(frozen=True)
class PIMModuleConfig:
    """Configuration of a PIM module (paper Table IV rows).

    Attributes:
        name: Configuration name (``"neupims-module"`` or ``"cent-module"``).
        num_channels: PIM channels per module.
        channel: Per-channel configuration.
        capacity_bytes: Total module DRAM capacity.
        internal_bandwidth_bytes: Aggregate internal (all-bank) bandwidth.
        gpr_bytes: General-purpose register file in the PIM HUB.
        compute_tflops: Non-PIM compute co-located with the module (matrix
            units for the NeuPIMs module, the PNM processor for CENT).
        timing: PIM command timing of every channel in the module.
    """

    name: str
    num_channels: int
    channel: PIMChannelConfig
    capacity_bytes: int
    internal_bandwidth_bytes: float
    gpr_bytes: int = 512 * 1024
    compute_tflops: float = 0.0
    timing: PIMTiming = field(default_factory=aimx_timing)

    def __post_init__(self) -> None:
        if self.num_channels <= 0:
            raise ValueError("num_channels must be positive")
        if self.capacity_bytes <= 0:
            raise ValueError("capacity_bytes must be positive")
        if self.internal_bandwidth_bytes <= 0:
            raise ValueError("internal_bandwidth_bytes must be positive")

    @property
    def capacity_per_channel(self) -> int:
        """DRAM capacity per channel."""
        return self.capacity_bytes // self.num_channels

    @property
    def total_banks(self) -> int:
        return self.num_channels * self.channel.num_banks

    @property
    def peak_mac_flops_per_cycle(self) -> int:
        """Peak FLOPs per cycle with every channel issuing MACs at tCCD_S."""
        per_channel = self.channel.flops_per_command / self.timing.mac_occupancy
        return int(per_channel * self.num_channels)


def neupims_module_config() -> PIMModuleConfig:
    """NeuPIMs-style module: 32GB, 32 PIM channels, 32TB/s internal BW."""
    channel = PIMChannelConfig(capacity_bytes=1 * 1024**3)
    return PIMModuleConfig(
        name="neupims-module",
        num_channels=32,
        channel=channel,
        capacity_bytes=32 * 1024**3,
        internal_bandwidth_bytes=32e12,
        compute_tflops=256.0,
    )


def cent_module_config() -> PIMModuleConfig:
    """CENT-style module: 16GB, 32 PIM channels, 16TB/s internal BW."""
    channel = PIMChannelConfig(capacity_bytes=512 * 1024**2)
    return PIMModuleConfig(
        name="cent-module",
        num_channels=32,
        channel=channel,
        capacity_bytes=16 * 1024**3,
        internal_bandwidth_bytes=16e12,
        compute_tflops=3.0,
    )
