"""DRAM-PIM hardware substrate: ISA, timing, configs, simulator, kernels."""

from repro.pim.config import (
    PIMChannelConfig,
    PIMModuleConfig,
    cent_module_config,
    neupims_module_config,
)
from repro.pim.energy import EnergyBreakdown, EnergyModel
from repro.pim.functional import FunctionalChannel, execute_gemv, tcp_attention
from repro.pim.isa import PIMCommand, PIMInstruction, PIMOpcode
from repro.pim.kernels import (
    BufferCaps,
    KernelPhase,
    KernelProgram,
    build_fc_gemv_program,
    build_qkt_program,
    build_sv_program,
    estimate_cycles,
)
from repro.pim.scheduling import CommandScheduler, StaticScheduler
from repro.pim.simulator import CycleBreakdown, ScheduledCommand, ScheduleResult
from repro.pim.timing import PIMTiming, aimx_timing, illustrative_timing

__all__ = [
    "PIMOpcode",
    "PIMInstruction",
    "PIMCommand",
    "PIMTiming",
    "aimx_timing",
    "illustrative_timing",
    "PIMChannelConfig",
    "PIMModuleConfig",
    "cent_module_config",
    "neupims_module_config",
    "EnergyModel",
    "EnergyBreakdown",
    "FunctionalChannel",
    "execute_gemv",
    "tcp_attention",
    "CycleBreakdown",
    "ScheduleResult",
    "ScheduledCommand",
    "CommandScheduler",
    "StaticScheduler",
    "BufferCaps",
    "KernelPhase",
    "KernelProgram",
    "build_fc_gemv_program",
    "build_qkt_program",
    "build_sv_program",
    "estimate_cycles",
]
