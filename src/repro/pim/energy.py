"""PIM energy model (paper Fig. 16).

Energy is decomposed the way the paper reports it: ``MAC`` (compute),
``I/O`` (tile transfers between GPR and channel buffers), ``Background``
(runtime-proportional standby / peripheral power) and ``Else`` (row
activate/precharge, refresh and EPU work).  The decisive effect reproduced
here is that background energy is proportional to *runtime*, so a faster
schedule directly shrinks the dominant baseline term.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pim.config import PIMChannelConfig
from repro.pim.simulator import CycleBreakdown


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of a kernel or decode step, in joules."""

    mac: float
    io: float
    background: float
    act_pre: float
    refresh: float
    epu: float = 0.0

    @property
    def else_energy(self) -> float:
        """The paper's ``Else`` bucket: ACT/PRE + refresh + EPU."""
        return self.act_pre + self.refresh + self.epu

    @property
    def total(self) -> float:
        return self.mac + self.io + self.background + self.else_energy

    def fraction(self, component: str) -> float:
        """Fraction of total energy attributed to ``component``."""
        total = self.total
        if total == 0:
            return 0.0
        value = {
            "mac": self.mac,
            "io": self.io,
            "background": self.background,
            "else": self.else_energy,
        }[component]
        return value / total

    def __add__(self, other: EnergyBreakdown) -> EnergyBreakdown:
        return EnergyBreakdown(
            mac=self.mac + other.mac,
            io=self.io + other.io,
            background=self.background + other.background,
            act_pre=self.act_pre + other.act_pre,
            refresh=self.refresh + other.refresh,
            epu=self.epu + other.epu,
        )

    def scaled(self, factor: float) -> EnergyBreakdown:
        """Return this breakdown scaled by ``factor``."""
        return EnergyBreakdown(
            mac=self.mac * factor,
            io=self.io * factor,
            background=self.background * factor,
            act_pre=self.act_pre * factor,
            refresh=self.refresh * factor,
            epu=self.epu * factor,
        )


ZERO_ENERGY = EnergyBreakdown(mac=0.0, io=0.0, background=0.0, act_pre=0.0, refresh=0.0)


@dataclass(frozen=True)
class EnergyModel:
    """Per-event and per-cycle energy coefficients of one PIM channel.

    Defaults follow GDDR6-AiM-class estimates: a channel-wide MAC command
    (16 banks x 16 MACs) costs a few nanojoules, a 32B external transfer
    costs about the same, a row activation costs tens of nanojoules, and the
    channel draws a constant background power while a kernel is resident.
    """

    energy_per_mac_command: float = 2.0e-9
    energy_per_io_tile: float = 2.5e-9
    energy_per_activation: float = 15.0e-9
    energy_per_refresh_cycle: float = 0.05e-9
    background_power_watts: float = 0.55
    epu_energy_per_byte: float = 0.02e-9
    clock_ghz: float = 1.0

    def channel_energy(
        self,
        breakdown: CycleBreakdown,
        n_mac: int,
        n_io_tiles: int,
        n_activations: int,
        epu_bytes: int = 0,
    ) -> EnergyBreakdown:
        """Energy of one channel executing a kernel with the given counts."""
        runtime_seconds = breakdown.total / (self.clock_ghz * 1e9)
        return EnergyBreakdown(
            mac=n_mac * self.energy_per_mac_command,
            io=n_io_tiles * self.energy_per_io_tile,
            background=runtime_seconds * self.background_power_watts,
            act_pre=n_activations * self.energy_per_activation,
            refresh=breakdown.refresh * self.energy_per_refresh_cycle,
            epu=epu_bytes * self.epu_energy_per_byte,
        )

    def idle_energy(self, cycles: float) -> EnergyBreakdown:
        """Background-only energy of an idle channel over ``cycles``."""
        runtime_seconds = cycles / (self.clock_ghz * 1e9)
        return EnergyBreakdown(
            mac=0.0,
            io=0.0,
            background=runtime_seconds * self.background_power_watts,
            act_pre=0.0,
            refresh=0.0,
        )


def default_energy_model(channel: PIMChannelConfig | None = None) -> EnergyModel:
    """Energy model with default AiMX-class coefficients."""
    del channel  # coefficients are currently channel-shape independent
    return EnergyModel()
