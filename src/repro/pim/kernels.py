"""Kernel-level PIM latency models.

End-to-end evaluation (128K--1M token contexts, tens of layers, dozens of
requests) cannot schedule every individual ``MAC`` command, so this module
provides a *phase-level* representation of channel kernels
(:class:`KernelProgram`) and closed-form cycle estimators for the three
scheduling policies (``static``, ``pingpong``, ``dcs``).  The estimators are
derived from the same timing rules as the exact command-level schedulers and
are cross-validated against them in the test suite.

Three kernel builders cover the decode-step operators:

* :func:`build_fc_gemv_program` -- weight-stationary GEMV for FC layers.
* :func:`build_qkt_program` -- the ``QK^T`` attention score kernel.
* :func:`build_sv_program` -- the ``SV`` attention value kernel.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.dram.refresh import RefreshModel
from repro.pim.config import ELEMENTS_PER_TILE, PIMChannelConfig
from repro.pim.isa import PIMOpcode
from repro.pim.simulator import CycleBreakdown
from repro.pim.timing import PIMTiming

#: Scheduling policies understood by the estimators.
POLICIES = ("static", "pingpong", "dcs")

#: Input-refetch factor applied when GQA row-reuse mapping shares KV rows
#: across the query group (paper Sec. V-C "Enabling KV Cache Reuse in GQA"):
#: inputs (queries / scores) are swapped into the GBuf more frequently.
GQA_ROW_REUSE_REFETCH = 2.0


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


@dataclass(frozen=True)
class BufferCaps:
    """Effective buffer capacities available to a kernel mapping."""

    gbuf_entries: int
    obuf_entries: int

    def __post_init__(self) -> None:
        if self.gbuf_entries <= 0 or self.obuf_entries <= 0:
            raise ValueError("buffer capacities must be positive")


def caps_for_policy(channel: PIMChannelConfig, policy: str) -> BufferCaps:
    """Buffer capacities a mapping may assume under a scheduling policy.

    The static baseline only has the small Output Registers; PIMphony's
    I/O-aware buffering exposes the expanded Output Buffers.  Ping-pong
    buffering uses the same total capacity as DCS but each of its two
    regions is half-sized, which is what the mapping can rely on.
    """
    if policy == "static":
        return BufferCaps(channel.gbuf_entries, channel.outreg_entries)
    if policy == "pingpong":
        return BufferCaps(
            max(1, channel.gbuf_entries // 2), max(1, channel.obuf_entries // 2)
        )
    if policy == "dcs":
        return BufferCaps(channel.gbuf_entries, channel.obuf_entries)
    raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")


@dataclass(frozen=True)
class KernelPhase:
    """A run of identical-opcode commands within a kernel."""

    opcode: PIMOpcode
    count: int

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("phase count must be non-negative")


@dataclass(frozen=True)
class KernelSegment:
    """A sequence of phases repeated a number of times."""

    phases: tuple[KernelPhase, ...]
    repeat: int = 1

    def __post_init__(self) -> None:
        if self.repeat < 0:
            raise ValueError("segment repeat must be non-negative")

    def count(self, opcode: PIMOpcode) -> int:
        return self.repeat * sum(p.count for p in self.phases if p.opcode is opcode)


@dataclass(frozen=True)
class KernelProgram:
    """Phase-level description of one channel kernel.

    Attributes:
        segments: Ordered segments of the kernel.
        row_activations: Total DRAM row activations incurred (per bank, with
            banks operating in lock step).
        description: Human readable label.
    """

    segments: tuple[KernelSegment, ...]
    row_activations: int
    description: str = ""

    def count(self, opcode: PIMOpcode) -> int:
        return sum(segment.count(opcode) for segment in self.segments)

    @property
    def n_wr_inp(self) -> int:
        return self.count(PIMOpcode.WR_INP)

    @property
    def n_mac(self) -> int:
        return self.count(PIMOpcode.MAC)

    @property
    def n_rd_out(self) -> int:
        return self.count(PIMOpcode.RD_OUT)

    @property
    def n_io_tiles(self) -> int:
        """Total 32B tiles moved over the external interface."""
        return self.n_wr_inp + self.n_rd_out

    @property
    def is_empty(self) -> bool:
        return self.n_mac == 0 and self.n_io_tiles == 0

    def concatenated(self, other: KernelProgram) -> KernelProgram:
        """Concatenate two programs executed back to back."""
        return KernelProgram(
            segments=self.segments + other.segments,
            row_activations=self.row_activations + other.row_activations,
            description=f"{self.description}+{other.description}",
        )


EMPTY_PROGRAM = KernelProgram(segments=(), row_activations=0, description="empty")


# ---------------------------------------------------------------------------
# Program builders
# ---------------------------------------------------------------------------


def _blocked_stream_segments(
    n_in_tiles: int,
    n_output_groups: int,
    block: int,
) -> tuple[KernelSegment, ...]:
    """Segments of an input-streamed GEMV with partial-sum drains per block.

    For every block of input tiles resident in the GBuf, the kernel performs
    the block's partial dot products for every output group and drains the
    partial sums; the PIM HUB's GPR/EPU accumulates partials across blocks.
    """
    if n_in_tiles == 0 or n_output_groups == 0:
        return ()
    block = max(1, block)
    n_full_blocks, remainder = divmod(n_in_tiles, block)
    segments: list[KernelSegment] = []
    if n_full_blocks:
        phases = [KernelPhase(PIMOpcode.WR_INP, block)]
        phases.extend(
            [KernelPhase(PIMOpcode.MAC, block), KernelPhase(PIMOpcode.RD_OUT, 1)]
            * n_output_groups
        )
        segments.append(KernelSegment(tuple(phases), repeat=n_full_blocks))
    if remainder:
        phases = [KernelPhase(PIMOpcode.WR_INP, remainder)]
        phases.extend(
            [KernelPhase(PIMOpcode.MAC, remainder), KernelPhase(PIMOpcode.RD_OUT, 1)]
            * n_output_groups
        )
        segments.append(KernelSegment(tuple(phases), repeat=1))
    return tuple(segments)


def _resident_input_segments(
    n_in_tiles: int,
    n_output_groups: int,
    wr_count: int,
) -> tuple[KernelSegment, ...]:
    """Segments of a GEMV whose input tiles stay resident in the GBuf."""
    if n_in_tiles == 0 or n_output_groups == 0:
        return ()
    segments = [KernelSegment((KernelPhase(PIMOpcode.WR_INP, wr_count),), repeat=1)]
    segments.append(
        KernelSegment(
            (KernelPhase(PIMOpcode.MAC, n_in_tiles), KernelPhase(PIMOpcode.RD_OUT, 1)),
            repeat=n_output_groups,
        )
    )
    return tuple(segments)


def build_fc_gemv_program(
    in_dim: int,
    out_dim: int,
    channel: PIMChannelConfig,
    caps: BufferCaps,
    n_vectors: int = 1,
    row_reuse: bool = True,
) -> KernelProgram:
    """Channel-level GEMV against weights resident in channel DRAM.

    Args:
        in_dim: Reduction dimension seen by this channel.
        out_dim: Output dimension produced by this channel.
        channel: Channel configuration (banks, buffer sizes).
        caps: Buffer capacities the mapping may rely on.
        n_vectors: Number of input vectors multiplied against the same
            weights (e.g. requests batched on an FC layer).
        row_reuse: Whether the mapping finishes all work on an open DRAM row
            before switching rows.
    """
    if in_dim <= 0 or out_dim <= 0 or n_vectors <= 0:
        return EMPTY_PROGRAM
    n_in = _ceil_div(in_dim, ELEMENTS_PER_TILE)
    n_og = _ceil_div(out_dim, channel.num_banks)

    if n_in <= caps.gbuf_entries:
        per_vector = _resident_input_segments(n_in, n_og, wr_count=n_in)
    else:
        per_vector = _blocked_stream_segments(n_in, n_og, block=caps.gbuf_entries)

    segments = [
        KernelSegment(seg.phases, repeat=seg.repeat * n_vectors) for seg in per_vector
    ]

    weight_tiles_per_bank = n_in * n_og
    activations = _ceil_div(weight_tiles_per_bank, channel_tiles_per_row(channel))
    if not row_reuse:
        activations *= n_vectors
    return KernelProgram(
        segments=tuple(segments),
        row_activations=activations,
        description=f"fc_gemv({in_dim}x{out_dim},v={n_vectors})",
    )


def build_qkt_program(
    tokens: int,
    head_dim: int,
    channel: PIMChannelConfig,
    caps: BufferCaps,
    group_size: int = 1,
    row_reuse: bool = True,
) -> KernelProgram:
    """``QK^T`` kernel: score the channel's resident keys against queries.

    ``tokens`` keys (each ``head_dim`` wide) are resident in the channel; the
    ``group_size`` query vectors of a GQA group are streamed in and every
    key/query pair produces one score.
    """
    if tokens <= 0 or group_size <= 0:
        return EMPTY_PROGRAM
    n_in = _ceil_div(head_dim, ELEMENTS_PER_TILE)
    n_og = _ceil_div(tokens, channel.num_banks)

    wr_count = n_in * group_size
    if row_reuse and group_size > 1:
        wr_count = int(math.ceil(wr_count * GQA_ROW_REUSE_REFETCH))

    segments = [KernelSegment((KernelPhase(PIMOpcode.WR_INP, wr_count),), repeat=1)]
    segments.append(
        KernelSegment(
            (KernelPhase(PIMOpcode.MAC, n_in), KernelPhase(PIMOpcode.RD_OUT, 1)),
            repeat=n_og * group_size,
        )
    )

    key_tiles_per_bank = n_og * n_in
    activations = _ceil_div(key_tiles_per_bank, channel_tiles_per_row(channel))
    if not row_reuse:
        activations *= group_size
    return KernelProgram(
        segments=tuple(segments),
        row_activations=activations,
        description=f"qkt(T={tokens},g={group_size})",
    )


def build_sv_program(
    tokens: int,
    head_dim: int,
    channel: PIMChannelConfig,
    caps: BufferCaps,
    group_size: int = 1,
    row_reuse: bool = True,
) -> KernelProgram:
    """``SV`` kernel: weight the channel's resident values by scores.

    Scores (``tokens`` per query) are streamed through the GBuf in blocks;
    per block the partial outputs for every head dimension group are drained
    and reduced in the PIM HUB (and, under TCP, across channels).
    """
    if tokens <= 0 or group_size <= 0:
        return EMPTY_PROGRAM
    n_in = _ceil_div(tokens, ELEMENTS_PER_TILE)
    n_og = _ceil_div(head_dim, channel.num_banks)

    block = caps.gbuf_entries
    refetch = 1.0
    if row_reuse and group_size > 1:
        block = max(1, block // group_size)
        refetch = GQA_ROW_REUSE_REFETCH

    per_query = _blocked_stream_segments(n_in, n_og, block=block)
    segments: list[KernelSegment] = []
    for seg in per_query:
        segments.append(KernelSegment(seg.phases, repeat=seg.repeat * group_size))
    if refetch > 1.0:
        extra_wr = int((refetch - 1.0) * n_in * group_size)
        if extra_wr > 0:
            segments.append(
                KernelSegment((KernelPhase(PIMOpcode.WR_INP, extra_wr),), repeat=1)
            )

    value_tiles_per_bank = n_in * n_og
    activations = _ceil_div(value_tiles_per_bank, channel_tiles_per_row(channel))
    if not row_reuse:
        activations *= group_size
    return KernelProgram(
        segments=tuple(segments),
        row_activations=activations,
        description=f"sv(T={tokens},g={group_size})",
    )


def channel_tiles_per_row(channel: PIMChannelConfig) -> int:
    """Tiles held by one open DRAM row, derived from the default row size."""
    # Row geometry lives in DRAMTiming; kernels only need the default ratio.
    return 1024 // 32


# ---------------------------------------------------------------------------
# Closed-form cycle estimators
# ---------------------------------------------------------------------------


def _occupancy(timing: PIMTiming, opcode: PIMOpcode) -> int:
    if opcode is PIMOpcode.WR_INP:
        return timing.wr_inp_occupancy
    if opcode is PIMOpcode.MAC:
        return timing.mac_occupancy
    return timing.rd_out_occupancy


def _latency(timing: PIMTiming, opcode: PIMOpcode) -> int:
    if opcode is PIMOpcode.WR_INP:
        return timing.wr_inp_latency_cycles
    if opcode is PIMOpcode.MAC:
        return timing.mac_latency_cycles
    return timing.rd_out_latency_cycles


def _static_busy(program: KernelProgram, timing: PIMTiming) -> float:
    """Total busy cycles under static scheduling (phases fully serialised)."""
    busy = 0.0
    for segment in program.segments:
        per_rep = 0.0
        for phase in segment.phases:
            if phase.count == 0:
                continue
            per_rep += (phase.count - 1) * _occupancy(timing, phase.opcode)
            per_rep += _latency(timing, phase.opcode)
        busy += per_rep * segment.repeat
    return busy


def _segment_io_mac(segment: KernelSegment, timing: PIMTiming) -> tuple[float, float]:
    """Per-repetition I/O and MAC stream lengths of a segment."""
    io = 0.0
    mac = 0.0
    for phase in segment.phases:
        cycles = phase.count * _occupancy(timing, phase.opcode)
        if phase.opcode is PIMOpcode.MAC:
            mac += cycles
        else:
            io += cycles
    return io, mac


def _dcs_busy(program: KernelProgram, timing: PIMTiming, act_cycles: float) -> float:
    """Busy cycles under DCS: I/O and MAC streams fully overlapped."""
    io_total = 0.0
    mac_total = 0.0
    for segment in program.segments:
        io, mac = _segment_io_mac(segment, timing)
        io_total += io * segment.repeat
        mac_total += mac * segment.repeat
    fill_drain = timing.wr_inp_latency_cycles + timing.mac_latency_cycles + timing.rd_out_latency_cycles
    return max(io_total, mac_total + act_cycles) + fill_drain


def _pingpong_busy(
    program: KernelProgram,
    timing: PIMTiming,
    act_cycles: float,
    handoff_penalty: float,
) -> float:
    """Busy cycles under ping-pong double buffering.

    Adjacent buffer regions overlap I/O and compute, but every region swap
    requires both regions to drain, so each segment repetition pays
    ``max(io, mac)`` plus a hand-off penalty.
    """
    total_reps = sum(max(1, segment.repeat) for segment in program.segments)
    act_per_rep = act_cycles / total_reps if total_reps else 0.0
    busy = 0.0
    for segment in program.segments:
        io, mac = _segment_io_mac(segment, timing)
        per_rep = max(io, mac + act_per_rep) + handoff_penalty
        busy += per_rep * segment.repeat
    fill_drain = timing.wr_inp_latency_cycles + timing.mac_latency_cycles + timing.rd_out_latency_cycles
    return busy + fill_drain


def estimate_cycles(
    program: KernelProgram,
    timing: PIMTiming,
    policy: str,
    include_refresh: bool = True,
) -> CycleBreakdown:
    """Estimate the cycle breakdown of a kernel program under a policy.

    Args:
        program: Phase-level kernel description.
        timing: Channel timing parameters.
        policy: ``"static"``, ``"pingpong"`` or ``"dcs"``.
        include_refresh: Whether to add rate-based refresh overhead.

    Returns:
        A :class:`CycleBreakdown` whose ``total`` is the estimated end-to-end
        latency of the kernel on one channel.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
    if program.is_empty:
        return CycleBreakdown(0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)

    mac_cycles = program.n_mac * timing.mac_occupancy
    dt_gbuf = program.n_wr_inp * timing.wr_inp_occupancy
    dt_outreg = program.n_rd_out * timing.rd_out_occupancy
    act_cycles = float(program.row_activations * timing.dram.row_switch_cycles)

    if policy == "static":
        busy = _static_busy(program, timing) + act_cycles
    elif policy == "dcs":
        busy = _dcs_busy(program, timing, act_cycles)
    else:
        handoff = float(timing.mac_latency_cycles + timing.rd_out_latency_cycles) / 2.0
        busy = _pingpong_busy(program, timing, act_cycles, handoff)

    refresh = 0.0
    if include_refresh:
        refresh = RefreshModel(timing.dram).refresh_cycles(busy)
    total = busy + refresh
    penalty = total - (mac_cycles + dt_gbuf + dt_outreg + act_cycles + refresh)
    return CycleBreakdown(
        mac=float(mac_cycles),
        dt_gbuf=float(dt_gbuf),
        dt_outreg=float(dt_outreg),
        act_pre=act_cycles,
        refresh=refresh,
        pipeline_penalty=max(0.0, penalty),
        total=total,
    )


def fc_gemv_cycles(
    in_dim: int,
    out_dim: int,
    channel: PIMChannelConfig,
    timing: PIMTiming,
    policy: str,
    n_vectors: int = 1,
    row_reuse: bool = True,
) -> CycleBreakdown:
    """Latency of an FC GEMV slice on one channel under ``policy``."""
    caps = caps_for_policy(channel, policy)
    program = build_fc_gemv_program(in_dim, out_dim, channel, caps, n_vectors, row_reuse)
    return estimate_cycles(program, timing, policy)


def qkt_cycles(
    tokens: int,
    head_dim: int,
    channel: PIMChannelConfig,
    timing: PIMTiming,
    policy: str,
    group_size: int = 1,
    row_reuse: bool = True,
) -> CycleBreakdown:
    """Latency of a ``QK^T`` slice (per KV head) on one channel."""
    caps = caps_for_policy(channel, policy)
    program = build_qkt_program(tokens, head_dim, channel, caps, group_size, row_reuse)
    return estimate_cycles(program, timing, policy)


def sv_cycles(
    tokens: int,
    head_dim: int,
    channel: PIMChannelConfig,
    timing: PIMTiming,
    policy: str,
    group_size: int = 1,
    row_reuse: bool = True,
) -> CycleBreakdown:
    """Latency of an ``SV`` slice (per KV head) on one channel."""
    caps = caps_for_policy(channel, policy)
    program = build_sv_program(tokens, head_dim, channel, caps, group_size, row_reuse)
    return estimate_cycles(program, timing, policy)


def attention_head_cycles(
    tokens: int,
    head_dim: int,
    channel: PIMChannelConfig,
    timing: PIMTiming,
    policy: str,
    group_size: int = 1,
    row_reuse: bool = True,
) -> CycleBreakdown:
    """Combined ``QK^T`` + ``SV`` latency for one KV head's token slice."""
    qkt = qkt_cycles(tokens, head_dim, channel, timing, policy, group_size, row_reuse)
    sv = sv_cycles(tokens, head_dim, channel, timing, policy, group_size, row_reuse)
    return qkt + sv
