"""PIM command timing parameters.

Two presets are provided:

* :func:`illustrative_timing` mirrors the simplified example of paper
  Fig. 7, where successive 32B transfers are two cycles apart and each
  command class completes within a handful of cycles.  With this preset the
  Fig. 7 command stack takes 34 cycles under static scheduling, matching the
  paper's diagram.
* :func:`aimx_timing` models a GDDR6-AiM(X)-class channel, where external
  I/O transfers (``WR-INP``/``RD-OUT``) are several times more expensive
  than internal ``MAC`` commands -- the regime in which Attention's frequent
  I/O turns into the bottleneck the paper analyses (Fig. 8, Fig. 9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.dram.timing import DRAMTiming


@dataclass(frozen=True)
class PIMTiming:
    """Per-command timing of a PIM channel, in controller cycles.

    Occupancy is how long a command holds its issue resource (the data bus
    for I/O commands, the MAC pipeline for compute commands); latency is how
    long until its effect completes (data written / accumulated / drained).

    Attributes:
        dram: Underlying DRAM timing (ACT/PRE, refresh, row geometry).
        wr_inp_occupancy: Data-bus cycles per 32B ``WR-INP`` tile.
        wr_inp_latency_cycles: Cycles until the GBuf entry is written.
        mac_occupancy: MAC-pipeline cycles per ``MAC`` command (tCCD_S).
        mac_latency_cycles: Cycles until the accumulation is architecturally visible.
        rd_out_occupancy: Data-bus cycles per ``RD-OUT`` drain.
        rd_out_latency_cycles: Cycles until the OutReg/OBuf entry is drained.
    """

    dram: DRAMTiming = field(default_factory=DRAMTiming)
    wr_inp_occupancy: int = 8
    wr_inp_latency_cycles: int = 10
    mac_occupancy: int = 2
    mac_latency_cycles: int = 4
    rd_out_occupancy: int = 8
    rd_out_latency_cycles: int = 10

    def __post_init__(self) -> None:
        for name in (
            "wr_inp_occupancy",
            "wr_inp_latency_cycles",
            "mac_occupancy",
            "mac_latency_cycles",
            "rd_out_occupancy",
            "rd_out_latency_cycles",
        ):
            if getattr(self, name) <= 0:
                raise ValueError(f"{name} must be positive")
        if self.wr_inp_latency_cycles < self.wr_inp_occupancy:
            raise ValueError("wr_inp_latency_cycles must be >= wr_inp_occupancy")
        if self.mac_latency_cycles < self.mac_occupancy:
            raise ValueError("mac_latency_cycles must be >= mac_occupancy")
        if self.rd_out_latency_cycles < self.rd_out_occupancy:
            raise ValueError("rd_out_latency_cycles must be >= rd_out_occupancy")

    @property
    def t_ccds(self) -> int:
        """Minimum command-to-command interval on the data bus."""
        return self.dram.t_ccds

    def cycles_to_seconds(self, cycles: float) -> float:
        """Convert controller cycles to seconds."""
        return self.dram.cycles_to_seconds(cycles)

    def seconds_to_cycles(self, seconds: float) -> float:
        """Convert seconds to controller cycles."""
        return self.dram.seconds_to_cycles(seconds)


def illustrative_timing() -> PIMTiming:
    """Timing matching the didactic example of paper Fig. 7."""
    return PIMTiming(
        dram=DRAMTiming(t_ccds=2, t_rcd=18, t_rp=18),
        wr_inp_occupancy=2,
        wr_inp_latency_cycles=4,
        mac_occupancy=2,
        mac_latency_cycles=4,
        rd_out_occupancy=2,
        rd_out_latency_cycles=5,
    )


def aimx_timing(clock_ghz: float = 1.0) -> PIMTiming:
    """AiMX-class channel timing used by the end-to-end evaluation.

    External tile transfers are an order of magnitude more expensive than
    MAC slots, reflecting the narrow external interface relative to the
    all-bank internal bandwidth of an AiM channel; this is the regime in
    which Attention's frequent I/O becomes the bottleneck (paper Fig. 8).
    """
    return PIMTiming(
        dram=DRAMTiming(clock_ghz=clock_ghz, t_ccds=2, t_rcd=18, t_rp=18),
        wr_inp_occupancy=16,
        wr_inp_latency_cycles=24,
        mac_occupancy=2,
        mac_latency_cycles=5,
        rd_out_occupancy=16,
        rd_out_latency_cycles=24,
    )
