"""Developer tooling that ships with the simulator.

:mod:`repro.devtools.lint` is ``repro-lint``, the AST-based invariant
checker that turns the repo's reproduction guarantees (determinism,
unit-suffix discipline, spec round-trip completeness, clock discipline)
into machine-checked contracts.  Nothing under this package is imported
by the simulator itself; it exists so correctness tooling lives next to
the code it polices and evolves in the same PRs.
"""
