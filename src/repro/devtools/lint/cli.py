"""``repro-lint`` / ``python -m repro.devtools.lint`` command line.

Exit codes: ``0`` no findings, ``1`` findings reported, ``2`` usage
error (bad paths, unknown rule codes).
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence
from pathlib import Path

from repro.devtools.lint.core import format_json, format_text, run_lint
from repro.devtools.lint.rules import all_rules


def _default_paths() -> list[Path]:
    """``src/repro`` relative to the checkout when run bare."""
    for candidate in (Path("src/repro"), Path(__file__).resolve().parents[2]):
        if candidate.is_dir():
            return [candidate]
    return [Path.cwd()]


def _parse_codes(raw: Sequence[str] | None, known: set[str], flag: str) -> set[str] | None:
    if raw is None:
        return None
    codes: set[str] = set()
    for chunk in raw:
        codes.update(code.strip() for code in chunk.split(",") if code.strip())
    unknown = sorted(codes - known)
    if unknown:
        print(
            f"{flag}: unknown rule code(s) {', '.join(unknown)}; "
            f"known codes: {', '.join(sorted(known))}",
            file=sys.stderr,
        )
        raise SystemExit(2)
    return codes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "AST-based invariant checker for the simulator's determinism, "
            "unit-suffix, spec round-trip and clock-discipline contracts."
        ),
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to lint (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--select",
        action="append",
        metavar="CODES",
        help="run only these comma-separated rule codes (repeatable)",
    )
    parser.add_argument(
        "--ignore",
        action="append",
        metavar="CODES",
        help="skip these comma-separated rule codes (repeatable)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule table and exit",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    rules = all_rules()

    if args.list_rules:
        for rule in rules:
            print(f"{rule.code}  {rule.name}: {rule.description}")
        return 0

    known = {rule.code for rule in rules}
    select = _parse_codes(args.select, known, "--select")
    ignore = _parse_codes(args.ignore, known, "--ignore")

    paths = list(args.paths) or _default_paths()
    missing = [str(path) for path in paths if not path.exists()]
    if missing:
        print(f"repro-lint: no such path(s): {', '.join(missing)}", file=sys.stderr)
        return 2

    findings = run_lint(paths, rules, select=select, ignore=ignore)
    if args.format == "json":
        print(format_json(findings))
    else:
        print(format_text(findings))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
