"""RPR005: clock state is written only inside designated advance methods.

Both serving engines advance one simulation clock, and every latency
metric in a report is an arithmetic consequence of those advances.  A
clock write hidden in a helper (``self.now = ...`` inside an admission
hook, say) silently forks simulated time from the engine's event
ordering -- the exact class of bug the scalar/fast parity pins exist to
catch, except parity only sees it when a pinned example happens to hit
the path.  This rule makes the discipline structural: names that denote
clock state (``clock``, ``now``, ``sim_time``, ...) may only be assigned
inside ``run``/``reset``/``__init__`` or a method whose name starts with
``advance``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.lint.core import Finding, LintModule, Rule

#: Names that denote simulation-clock state wherever they appear.
CLOCK_NAMES = {"clock", "_clock", "now", "_now", "sim_time", "current_time"}

#: Function names allowed to write clock state.
ALLOWED_FUNCTIONS = {"run", "reset", "__init__"}
ALLOWED_PREFIX = "advance"


def _is_allowed(function_name: str | None) -> bool:
    if function_name is None:
        return False
    return function_name in ALLOWED_FUNCTIONS or function_name.startswith(ALLOWED_PREFIX)


class _ClockWriteVisitor(ast.NodeVisitor):
    """Collect clock-state writes with their enclosing function name."""

    def __init__(self) -> None:
        self.writes: list[tuple[ast.AST, str, str | None]] = []
        self._stack: list[str] = []

    def _function(self) -> str | None:
        return self._stack[-1] if self._stack else None

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._stack.append(node.name)
        self.generic_visit(node)
        self._stack.pop()

    def _target(self, node: ast.expr) -> None:
        if isinstance(node, ast.Name) and node.id in CLOCK_NAMES:
            self.writes.append((node, node.id, self._function()))
        elif isinstance(node, ast.Attribute) and node.attr in CLOCK_NAMES:
            self.writes.append((node, node.attr, self._function()))
        elif isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self._target(element)
        elif isinstance(node, ast.Starred):
            self._target(node.value)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._target(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        # Bare class/dataclass declarations (``now: float``) declare the
        # slot; only value-carrying assignments mutate state.
        if node.value is not None:
            self._target(node.target)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._target(node.target)
        self.generic_visit(node)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self._target(node.target)
        self.generic_visit(node)


class ClockDisciplineRule(Rule):
    code = "RPR005"
    name = "clock-discipline"
    description = (
        "Clock/now state may only be assigned inside run/reset/__init__ "
        "or advance* methods."
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        visitor = _ClockWriteVisitor()
        visitor.visit(module.tree)
        for node, name, function in visitor.writes:
            if _is_allowed(function):
                continue
            where = f"function {function!r}" if function else "module level"
            yield module.finding(
                self,
                node,
                f"clock state {name!r} assigned at {where}; simulated time "
                "may only advance inside run/reset/__init__/advance* methods",
            )
