"""RPR004: every ``*Spec`` field must survive the serialization round trip.

``ExperimentSpec`` is the repo's reproduction contract: runs are driven
from checked-in JSON, reports embed the spec, and ``spec_hash`` pins
provenance across PRs.  A field that silently drops out of
``to_dict``/``from_dict`` (a conditional ``del`` without a restore path,
a ``from_dict`` that forgets a key) corrupts experiments *quietly* --
the run still executes, just not the one the JSON described.

This is a cross-module project rule, not a per-file AST pattern: it
imports the real :mod:`repro.api.spec`, then

1. exercises **every field of every Spec dataclass** with a non-default
   value injected into the dict form, asserting the value survives
   ``from_dict`` -> instance -> ``to_dict``;
2. parses and ``validate()``-s **every shipped example spec**
   (``examples/specs/*.json``), so a registry key referenced by a spec
   that nothing registers anymore fails lint, not a user's run;
3. checks the **PIMphony preset vocabulary** stays in sync between
   ``spec.PIMPHONY_PRESETS`` and the build-side factory table.

A field the rule cannot exercise with any candidate value is itself a
finding: extend ``_EXERCISE_BASES`` or the candidate pool alongside the
new field (see CONTRIBUTING).
"""

from __future__ import annotations

import ast
import contextlib
import dataclasses
import importlib
import json
from collections.abc import Iterator, Sequence
from pathlib import Path
from typing import Any

from repro.devtools.lint.core import Finding, LintProject, Rule

#: Path suffix that gates the rule: it only runs when the linted tree
#: actually contains the spec module (so fixture-directory lint runs in
#: the test suite do not drag the whole API surface in).
SPEC_MODULE_SUFFIX = "repro/api/spec.py"

#: Alternative base specs used to exercise fields whose validation
#: demands companions (parallelism must be set in pairs, router fields
#: need a router, tier fields need tiers, ...).
_EXERCISE_BASES: tuple[dict[str, Any], ...] = (
    {},
    {
        "router": {"replicas": 2},
        "tiers": [
            {"name": "lint-premium", "priority": 5, "share": 0.5},
            {"name": "lint-rest"},
        ],
        "trace": {"arrival": "poisson", "rate_rps": 2.0, "num_sessions": 4},
        "parallelism": {"tensor_parallel": 2, "pipeline_parallel": 1},
        "preemption": {"starvation_limit": 3},
    },
    {
        "router": {
            "replicas": 4,
            "topology": "disaggregated",
            "disagg": {"prefill_replicas": 1},
        },
        "prefill": {"mode": "chunked", "chunk_tokens": 256},
    },
    {
        "router": {"replicas": 3},
        "arrival": {
            "process": "diurnal",
            "rate_rps": 2.0,
            "period_s": 120.0,
            "amplitude": 0.6,
            "phase_s": 30.0,
            "bursts": [{"start_s": 10.0, "duration_s": 5.0, "multiplier": 3.0}],
            "warp": [{"start_s": 5.0, "factor": 1.5}],
        },
        "fleet_events": [
            {"at_s": 30.0, "kind": "replica_down", "replica": 1},
            {"at_s": 60.0, "kind": "replica_up", "replica": 1},
        ],
        "autoscaler": {
            "signal": "ttft-ewma",
            "scale_up_threshold": 0.5,
            "scale_down_threshold": 0.1,
            "min_replicas": 2,
            "max_replicas": 6,
            "interval_s": 10.0,
            "cooldown_s": 20.0,
            "cold_start_s": 15.0,
            "ewma_alpha": 0.4,
        },
        "window_s": 30.0,
    },
)

_MISSING = object()


def _deep_copy(data: dict[str, Any]) -> dict[str, Any]:
    return json.loads(json.dumps(data))


def _dig(data: Any, path: Sequence[Any]) -> Any:
    node = data
    for part in path:
        if isinstance(node, dict):
            if part not in node:
                return _MISSING
            node = node[part]
        elif isinstance(node, (list, tuple)):
            if not isinstance(part, int) or part >= len(node):
                return _MISSING
            node = node[part]
        else:
            return _MISSING
    return node


def _set_path(data: Any, path: Sequence[Any], value: Any) -> None:
    node = data
    for part in path[:-1]:
        node = node.setdefault(part, {}) if isinstance(node, dict) else node[part]
    node[path[-1]] = value


def _equivalent(a: Any, b: Any) -> bool:
    """Value equality that treats JSON lists and spec tuples alike."""
    if isinstance(a, (list, tuple)) and isinstance(b, (list, tuple)):
        return len(a) == len(b) and all(_equivalent(x, y) for x, y in zip(a, b, strict=True))
    if isinstance(a, bool) is not isinstance(b, bool):
        return False
    return bool(a == b)


class SpecRoundTripRule(Rule):
    code = "RPR004"
    name = "spec-round-trip"
    description = (
        "Every *Spec dataclass field survives to_dict/from_dict, and every "
        "registry key referenced by examples/specs/*.json resolves."
    )

    def check_project(self, project: LintProject) -> Iterator[Finding]:
        spec_module = project.find_module(SPEC_MODULE_SUFFIX)
        if spec_module is None:
            return
        try:
            # importlib rather than ``from repro.api import spec``: the lazy
            # PEP-562 ``repro.api`` namespace resolves attribute access to
            # the *exported callables* (e.g. ``build`` the function), not
            # the submodules.
            registry_mod = importlib.import_module("repro.api.registry")
            spec_mod = importlib.import_module("repro.api.spec")
        except Exception as error:  # pragma: no cover - import breakage
            yield Finding(
                code=self.code,
                rule=self.name,
                path=spec_module.display_path,
                line=1,
                column=1,
                message=f"cannot import repro.api for the round-trip check: {error}",
            )
            return

        class_lines = {
            node.name: node.lineno
            for node in ast.walk(spec_module.tree)
            if isinstance(node, ast.ClassDef)
        }

        def anchored(message: str, line: int) -> Finding:
            return Finding(
                code=self.code,
                rule=self.name,
                path=spec_module.display_path,
                line=line,
                column=1,
                message=message,
            )

        yield from self._check_fields(spec_mod, registry_mod, class_lines, anchored)
        yield from self._check_examples(project, spec_mod)
        yield from self._check_preset_sync(spec_module, spec_mod, anchored)

    # -- 1. per-field round-trip survival ----------------------------------

    def _string_pool(self, spec_mod: Any, registry_mod: Any) -> list[str]:
        pool: set[str] = set()
        for name in dir(spec_mod):
            value = getattr(spec_mod, name)
            if (
                isinstance(value, tuple)
                and value
                and all(isinstance(item, str) for item in value)
            ):
                pool.update(value)
        for name in dir(registry_mod):
            value = getattr(registry_mod, name)
            if hasattr(value, "names") and callable(value.names):
                with contextlib.suppress(TypeError):
                    pool.update(value.names())
        return sorted(pool)

    def _candidates(self, default: Any, pool: Sequence[str]) -> Iterator[Any]:
        if isinstance(default, bool):
            yield not default
            return
        if isinstance(default, int):
            yield default + 1
            yield default + 2
            yield 7
            return
        if isinstance(default, float):
            yield default + 0.25
            yield 0.5
            yield 1.5
            return
        if isinstance(default, str):
            yield from (item for item in pool if item != default)
            yield default + "-lint"
            return
        if isinstance(default, (list, tuple)):
            yield [1, 2]
            yield [0]
            return
        # ``None`` default: the runtime type is unknowable, try each shape.
        yield 2
        yield 3
        yield 0.25
        yield [1, 2]
        yield from pool

    @staticmethod
    def _is_instance(value: Any) -> bool:
        return dataclasses.is_dataclass(value) and not isinstance(value, type)

    @classmethod
    def _is_instance_list(cls, value: Any) -> bool:
        return (
            isinstance(value, tuple)
            and bool(value)
            and all(cls._is_instance(item) for item in value)
        )

    def _structured_keys(self, bases: Sequence[Any]) -> set[tuple[str, str]]:
        """(class, field) pairs holding sub-spec structure on *any* base.

        Such fields are exercised through their sub-fields on the base
        that populates them, never as scalars -- otherwise ``router:
        None`` (or ``fleet_events: ()``) on the default base would demand
        a scalar candidate no validation can accept.
        """
        structured: set[tuple[str, str]] = set()

        def collect(obj: Any) -> None:
            for field in dataclasses.fields(obj):
                value = getattr(obj, field.name)
                if self._is_instance(value):
                    structured.add((type(obj).__name__, field.name))
                    collect(value)
                elif self._is_instance_list(value):
                    structured.add((type(obj).__name__, field.name))
                    for item in value:
                        collect(item)

        for base in bases:
            if base is not None:
                collect(base)
        return structured

    def _field_sites(
        self, spec_mod: Any, bases: Sequence[Any]
    ) -> Iterator[tuple[str, str, tuple[Any, ...], Any, int]]:
        """Yield (class_name, field_name, dict_path, default, base_index).

        Walks each base recursively: sub-spec dataclasses and lists of
        dataclasses (tiers, bursts, warp phases, fleet events) descend to
        their leaf fields at any depth; everything else is a scalar site.
        """
        structured = self._structured_keys(bases)

        def walk(obj: Any, path: tuple[Any, ...], base_index: int) -> Iterator[
            tuple[str, str, tuple[Any, ...], Any, int]
        ]:
            class_name = type(obj).__name__
            for field in dataclasses.fields(obj):
                value = getattr(obj, field.name)
                if self._is_instance(value):
                    yield from walk(value, (*path, field.name), base_index)
                elif self._is_instance_list(value):
                    for index, item in enumerate(value):
                        yield from walk(item, (*path, field.name, index), base_index)
                elif (class_name, field.name) not in structured:
                    yield (class_name, field.name, (*path, field.name), value, base_index)

        for base_index, base in enumerate(bases):
            if base is None:
                continue
            yield from walk(base, (), base_index)

    def _check_fields(
        self,
        spec_mod: Any,
        registry_mod: Any,
        class_lines: dict[str, int],
        anchored: Any,
    ) -> Iterator[Finding]:
        pool = self._string_pool(spec_mod, registry_mod)
        bases: list[Any] = []
        base_dicts: list[dict[str, Any]] = []
        for data in _EXERCISE_BASES:
            try:
                base = spec_mod.ExperimentSpec.from_dict(_deep_copy(data))
            except Exception:
                bases.append(None)
                base_dicts.append({})
                continue
            bases.append(base)
            base_dicts.append(base.to_dict())

        # (class, field) -> survived on at least one base/candidate.
        outcomes: dict[tuple[str, str], bool | None] = {}
        failures: dict[tuple[str, str], str] = {}
        for class_name, field_name, path, default, base_index in self._field_sites(
            spec_mod, bases
        ):
            key = (class_name, field_name)
            if outcomes.get(key):
                continue
            for candidate in self._candidates(default, pool):
                if _equivalent(candidate, default):
                    continue
                mutated = _deep_copy(base_dicts[base_index])
                try:
                    _set_path(mutated, path, candidate)
                    instance = spec_mod.ExperimentSpec.from_dict(mutated)
                except (ValueError, KeyError, TypeError):
                    continue
                held = instance
                for part in path:
                    held = held[part] if isinstance(part, int) else getattr(held, part)
                round_tripped = _dig(instance.to_dict(), path)
                if not _equivalent(held, candidate):
                    failures[key] = (
                        f"{class_name}.{field_name}: from_dict dropped the "
                        f"value (set {candidate!r}, instance holds {held!r})"
                    )
                    outcomes[key] = False
                elif round_tripped is _MISSING or not _equivalent(round_tripped, candidate):
                    missing = "<missing>" if round_tripped is _MISSING else repr(round_tripped)
                    failures[key] = (
                        f"{class_name}.{field_name}: to_dict does not round-trip "
                        f"the value (set {candidate!r}, serialized {missing})"
                    )
                    outcomes[key] = False
                else:
                    outcomes[key] = True
                break
            else:
                outcomes.setdefault(key, None)

        for (class_name, field_name), outcome in sorted(outcomes.items()):
            line = class_lines.get(class_name, 1)
            if outcome is False:
                yield anchored(failures[(class_name, field_name)], line)
            elif outcome is None:
                yield anchored(
                    f"{class_name}.{field_name}: no candidate value passed "
                    "validation, so the round-trip contract is unverified; "
                    "extend the RPR004 exercise bases or candidate pool "
                    "alongside the new field",
                    line,
                )

    # -- 2. shipped example specs resolve and round-trip -------------------

    def _check_examples(self, project: LintProject, spec_mod: Any) -> Iterator[Finding]:
        specs_dir = project.root / "examples" / "specs"
        if not specs_dir.is_dir():
            return
        for path in sorted(specs_dir.glob("*.json")):
            display = project.display(path)

            def example_finding(message: str, display_path: str = display) -> Finding:
                return Finding(
                    code=self.code,
                    rule=self.name,
                    path=display_path,
                    line=1,
                    column=1,
                    message=message,
                )

            try:
                spec = spec_mod.ExperimentSpec.from_json(path.read_text(encoding="utf-8"))
            except (OSError, ValueError) as error:
                yield example_finding(f"unparseable example spec: {error}")
                continue
            try:
                spec.validate()
            except (ValueError, KeyError) as error:
                yield example_finding(f"dangling registry reference: {error}")
                continue
            try:
                round_tripped = spec_mod.ExperimentSpec.from_dict(spec.to_dict())
            except (ValueError, KeyError) as error:
                yield example_finding(f"to_dict output is not re-parseable: {error}")
                continue
            if round_tripped != spec:
                yield example_finding(
                    "spec does not survive to_dict/from_dict round trip"
                )

    # -- 3. preset vocabulary stays in sync --------------------------------

    def _check_preset_sync(
        self, spec_module: Any, spec_mod: Any, anchored: Any
    ) -> Iterator[Finding]:
        try:
            build_mod = importlib.import_module("repro.api.build")
        except Exception:  # pragma: no cover - covered by the import check
            return
        declared = set(spec_mod.PIMPHONY_PRESETS)
        wired = set(build_mod._PIMPHONY_FACTORIES)
        if declared == wired:
            return
        line = 1
        for node in ast.walk(spec_module.tree):
            if isinstance(node, ast.Assign) and any(
                isinstance(target, ast.Name) and target.id == "PIMPHONY_PRESETS"
                for target in node.targets
            ):
                line = node.lineno
                break
        missing = sorted(declared - wired)
        extra = sorted(wired - declared)
        yield anchored(
            "PIMPHONY_PRESETS and build._PIMPHONY_FACTORIES disagree "
            f"(declared-but-unwired: {missing or 'none'}, "
            f"wired-but-undeclared: {extra or 'none'})",
            line,
        )
