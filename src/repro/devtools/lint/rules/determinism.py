"""RPR001: the simulator must be bit-reproducible from its seed.

Wall-clock reads (``time.time()``, ``datetime.now()``), global-state RNGs
(the stdlib ``random`` module, ``numpy.random.*`` module-level draws,
``np.random.seed``) and entropy sources (``os.urandom``, ``secrets``,
``uuid.uuid4``) all break the contract that identical specs reproduce
identical traces and that the fast engine stays bit-parity with the
scalar engine.  All randomness must flow through an explicit
``numpy.random.Generator`` (or ``SeedSequence``) parameter, created from
the experiment seed via ``default_rng(seed)``.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.lint.core import Finding, LintModule, Rule

#: Modules whose import alone is a finding: they exist to produce
#: non-reproducible values.
_BANNED_MODULES = {
    "random": "stdlib random is a global-state RNG; take an explicit "
    "numpy.random.Generator parameter instead",
    "secrets": "secrets draws from OS entropy; the simulator must be "
    "seed-reproducible",
}

#: Wall-clock reading functions of the ``time`` module.
_TIME_READS = {
    "time",
    "time_ns",
    "monotonic",
    "monotonic_ns",
    "perf_counter",
    "perf_counter_ns",
    "process_time",
    "process_time_ns",
    "clock_gettime",
    "clock_gettime_ns",
}

#: ``datetime``/``date`` constructors that read the wall clock.
_DATETIME_READS = {"now", "utcnow", "today"}

#: Attributes of ``numpy.random`` that do *not* touch global RNG state.
_NUMPY_RANDOM_ALLOWED = {
    "Generator",
    "BitGenerator",
    "SeedSequence",
    "default_rng",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
    "MT19937",
}


class _ImportTracker(ast.NodeVisitor):
    """Resolve local names to the dotted module paths they were bound to."""

    def __init__(self) -> None:
        #: local alias -> dotted origin, e.g. {"np": "numpy",
        #: "default_rng": "numpy.random.default_rng"}.
        self.aliases: dict[str, str] = {}
        self.import_nodes: list[tuple[ast.stmt, str]] = []

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.partition(".")[0]
            origin = alias.name if alias.asname else alias.name.partition(".")[0]
            self.aliases[local] = origin
            self.import_nodes.append((node, alias.name))

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        if node.module is None or node.level:
            return
        for alias in node.names:
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"
            self.import_nodes.append((node, node.module))


def resolve_dotted(node: ast.expr, aliases: dict[str, str]) -> str | None:
    """Resolve a Name/Attribute chain to its dotted origin, or ``None``."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(aliases.get(current.id, current.id))
    return ".".join(reversed(parts))


class DeterminismRule(Rule):
    code = "RPR001"
    name = "determinism"
    description = (
        "No wall-clock reads or global-state randomness; randomness flows "
        "through an explicit seeded numpy Generator/SeedSequence."
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        tracker = _ImportTracker()
        tracker.visit(module.tree)
        aliases = tracker.aliases

        for stmt, origin in tracker.import_nodes:
            top = origin.partition(".")[0]
            if top in _BANNED_MODULES:
                yield module.finding(
                    self, stmt, f"import of {top!r}: {_BANNED_MODULES[top]}"
                )

        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                dotted = resolve_dotted(node.func, aliases)
                if (
                    dotted == "numpy.random.default_rng"
                    and not node.args
                    and not node.keywords
                ):
                    yield module.finding(
                        self,
                        node,
                        "default_rng() without a seed draws fresh OS entropy; "
                        "pass the experiment seed (or a spawned SeedSequence)",
                    )
                elif isinstance(node.func, ast.Name) and dotted is not None and "." in dotted:
                    # A bare call through a ``from x import y`` alias: the
                    # Attribute walk below never sees it, so check here.
                    yield from self._check_origin(module, node, dotted)
                continue
            if not isinstance(node, ast.Attribute):
                continue
            dotted = resolve_dotted(node, aliases)
            if dotted is not None:
                yield from self._check_origin(module, node, dotted)

    def _check_origin(
        self, module: LintModule, node: ast.expr, dotted: str
    ) -> Iterator[Finding]:
        head, _, tail = dotted.partition(".")
        if head == "time" and tail in _TIME_READS:
            yield module.finding(
                self,
                node,
                f"wall-clock read time.{tail}(): simulation time must come "
                "from the engine clock, never the host",
            )
            return
        if head == "datetime":
            leaf = dotted.rsplit(".", 1)[-1]
            if leaf in _DATETIME_READS:
                yield module.finding(
                    self,
                    node,
                    f"wall-clock read {dotted}(): timestamps must be derived "
                    "from simulated time or passed in explicitly",
                )
            return
        if dotted == "os.urandom":
            yield module.finding(
                self, node, "os.urandom reads OS entropy; derive bytes from the seed"
            )
            return
        if head == "uuid" and tail in {"uuid1", "uuid4"}:
            yield module.finding(
                self,
                node,
                f"uuid.{tail}() is non-deterministic; derive ids from the "
                "request index or the experiment seed",
            )
            return
        if dotted.startswith("numpy.random."):
            leaf = dotted.removeprefix("numpy.random.").partition(".")[0]
            if leaf not in _NUMPY_RANDOM_ALLOWED:
                yield module.finding(
                    self,
                    node,
                    f"numpy.random.{leaf} uses numpy's global RNG state; draw "
                    "from an explicit Generator parameter instead",
                )
