"""RPR002: no ``==``/``!=`` between float-valued expressions.

The parity guarantees of this repo are *exact* -- the fast engine, the
spec hash and the trace seeds are pinned bit-for-bit -- but ordinary
simulation arithmetic is not: latencies accumulate through different
orders of operations on different code paths, so float equality is
either vacuous or a reproduction bug waiting to happen.  Compare with
tolerances (``math.isclose``), compare ordering (``<=``), or restructure
so the sentinel is an ``Optional``/integer.  The sanctioned parity
helpers that *do* compare exact bits carry an explicit
``# repro-lint: disable=RPR002`` with a reason.

Without type inference, "float-valued" is a heuristic: float literals,
``float(...)`` casts, true division, and names carrying a float unit
suffix (``_s``, ``_seconds``, ``_rps``, ``_gbps``, ``_alpha``, ...).
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.lint.core import Finding, LintModule, Rule

#: Name suffixes that mark a value as float-typed by repo convention.
FLOAT_SUFFIXES = (
    "_s",
    "_seconds",
    "_ms",
    "_us",
    "_ns",
    "_rps",
    "_tps",
    "_gbps",
    "_bps",
    "_hz",
    "_ghz",
    "_alpha",
    "_rate",
    "_ratio",
    "_frac",
    "_fraction",
    "_share",
    "_utilization",
    "_per_s",
    "_per_token_s",
)


def _terminal_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _is_floatish(node: ast.expr) -> bool:
    if isinstance(node, ast.Constant):
        return isinstance(node.value, float)
    if isinstance(node, ast.UnaryOp):
        return _is_floatish(node.operand)
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        return node.func.id == "float"
    if isinstance(node, ast.BinOp):
        if isinstance(node.op, ast.Div):
            return True
        return _is_floatish(node.left) or _is_floatish(node.right)
    name = _terminal_name(node)
    if name is not None:
        return name.endswith(FLOAT_SUFFIXES)
    return False


class FloatEqualityRule(Rule):
    code = "RPR002"
    name = "float-equality"
    description = (
        "No ==/!= on float-valued expressions outside sanctioned parity "
        "helpers; use tolerances or ordering comparisons."
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for index, op in enumerate(node.ops):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                left, right = operands[index], operands[index + 1]
                if _is_floatish(left) or _is_floatish(right):
                    symbol = "==" if isinstance(op, ast.Eq) else "!="
                    yield module.finding(
                        self,
                        node,
                        f"float {symbol} comparison: simulation floats are not "
                        "exact across code paths; use math.isclose, an ordering "
                        "comparison, or an explicit parity-pin suppression",
                    )
                    break
