"""RPR003: time/rate/size-valued names must carry a unit suffix.

A timing simulator lives or dies by unit discipline: a ``delay`` added
to a ``latency`` is a bug the type system cannot see when both are bare
floats.  The repo's convention is that quantity-valued names end in an
explicit unit -- ``arrival_s``, ``ttft_deadline_s``, ``rate_rps``,
``swap_bandwidth_gbps``, ``capacity_tokens`` -- so mixed-unit arithmetic
is visible at the call site.  This rule flags declarations (assignments,
function parameters, dataclass fields, loop targets) whose final name
segment is a bare quantity stem with no unit.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from repro.devtools.lint.core import Finding, LintModule, Rule

#: Quantity stems that demand a unit, mapped to the suffixes to suggest.
STEM_SUGGESTIONS = {
    "time": "_s (or _ms/_ns/_cycles)",
    "latency": "_s (or _ms)",
    "duration": "_s",
    "delay": "_s",
    "interval": "_s",
    "elapsed": "_s",
    "timeout": "_s",
    "deadline": "_s",
    "overhead": "_s (or _tokens when counting work)",
    "rate": "_rps (or _hz/_per_s)",
    "bandwidth": "_gbps (or _bytes_per_s)",
    "throughput": "_tokens_per_s (or _rps)",
}


def _flagged_stem(name: str) -> str | None:
    """Return the offending stem when ``name`` needs a unit suffix."""
    bare = name.lstrip("_").lower()
    if not bare or "__" in name:
        return None
    stem = bare.rsplit("_", 1)[-1]
    return stem if stem in STEM_SUGGESTIONS else None


#: Annotation names treated as numeric quantities.  A declaration whose
#: annotation names none of these (e.g. ``latency: LatencyStats``) is a
#: structured object, not a bare number, and is exempt.
_SCALAR_ANNOTATION_NAMES = {"float", "int", "Decimal", "Fraction"}


def _annotation_is_scalar(annotation: ast.expr) -> bool:
    """True when ``annotation`` mentions a numeric type anywhere."""
    for node in ast.walk(annotation):
        if isinstance(node, ast.Name) and node.id in _SCALAR_ANNOTATION_NAMES:
            return True
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            # Quoted forward references such as "float | None".
            if any(scalar in node.value for scalar in _SCALAR_ANNOTATION_NAMES):
                return True
    return False


class _DeclarationVisitor(ast.NodeVisitor):
    """Collect (node, name, annotation) declaration sites to check."""

    def __init__(self) -> None:
        self.declarations: list[tuple[ast.AST, str, ast.expr | None]] = []
        self._annotation: ast.expr | None = None

    def _add(self, node: ast.AST, name: str | None) -> None:
        if name:
            self.declarations.append((node, name, self._annotation))

    def _target(self, node: ast.expr) -> None:
        if isinstance(node, ast.Name):
            self._add(node, node.id)
        elif isinstance(node, ast.Attribute):
            self._add(node, node.attr)
        elif isinstance(node, (ast.Tuple, ast.List)):
            for element in node.elts:
                self._target(element)
        elif isinstance(node, ast.Starred):
            self._target(node.value)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._target(target)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._annotation = node.annotation
        self._target(node.target)
        self._annotation = None
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._target(node.target)
        self.generic_visit(node)

    def visit_NamedExpr(self, node: ast.NamedExpr) -> None:
        self._target(node.target)
        self.generic_visit(node)

    def visit_For(self, node: ast.For) -> None:
        self._target(node.target)
        self.generic_visit(node)

    def visit_comprehension(self, node: ast.comprehension) -> None:
        self._target(node.target)
        self.generic_visit(node)

    def visit_withitem(self, node: ast.withitem) -> None:
        if node.optional_vars is not None:
            self._target(node.optional_vars)
        self.generic_visit(node)

    def _visit_function(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            self._annotation = arg.annotation
            self._add(arg, arg.arg)
        self._annotation = None
        if args.vararg is not None:
            self._add(args.vararg, args.vararg.arg)
        if args.kwarg is not None:
            self._add(args.kwarg, args.kwarg.arg)
        self.generic_visit(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_function(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_function(node)


class UnitSuffixRule(Rule):
    code = "RPR003"
    name = "unit-suffixes"
    description = (
        "Quantity-valued names (time/rate/bandwidth/...) must end in an "
        "explicit unit suffix such as _s, _tokens, _rps."
    )

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        visitor = _DeclarationVisitor()
        visitor.visit(module.tree)
        seen: set[tuple[int, int, str]] = set()
        for node, name, annotation in visitor.declarations:
            stem = _flagged_stem(name)
            if stem is None:
                continue
            if annotation is not None and not _annotation_is_scalar(annotation):
                continue
            key = (getattr(node, "lineno", 1), getattr(node, "col_offset", 0), name)
            if key in seen:
                continue
            seen.add(key)
            yield module.finding(
                self,
                node,
                f"name {name!r} is {stem}-valued but carries no unit; "
                f"suffix it with {STEM_SUGGESTIONS[stem]}",
            )
