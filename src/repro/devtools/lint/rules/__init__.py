"""Rule registry for ``repro-lint``.

Adding a rule is one class plus one entry in :data:`ALL_RULES`; the CLI,
``--select``/``--ignore`` filtering and ``--list-rules`` all read from
here.
"""

from __future__ import annotations

from repro.devtools.lint.core import Rule
from repro.devtools.lint.rules.clock import ClockDisciplineRule
from repro.devtools.lint.rules.determinism import DeterminismRule
from repro.devtools.lint.rules.float_equality import FloatEqualityRule
from repro.devtools.lint.rules.spec_roundtrip import SpecRoundTripRule
from repro.devtools.lint.rules.units import UnitSuffixRule


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, in code order."""
    return [
        DeterminismRule(),
        FloatEqualityRule(),
        UnitSuffixRule(),
        SpecRoundTripRule(),
        ClockDisciplineRule(),
    ]


__all__ = [
    "ClockDisciplineRule",
    "DeterminismRule",
    "FloatEqualityRule",
    "SpecRoundTripRule",
    "UnitSuffixRule",
    "all_rules",
]
