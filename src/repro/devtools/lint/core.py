"""Core machinery of ``repro-lint``: findings, suppressions, the rule
protocol and the lint driver.

The linter is plugin-style: every rule is a :class:`Rule` subclass with a
stable ``RPRxxx`` code, registered in :mod:`repro.devtools.lint.rules`.
Rules come in two flavours:

* **module rules** visit one parsed file at a time (``check_module``);
* **project rules** see the whole collected tree at once
  (``check_project``) for cross-module invariants such as the RPR004
  spec round-trip contract.

Findings can be silenced per line with ``# repro-lint: disable=RPR001``
(several codes comma-separated, ``all`` for every rule) or for a whole
file with ``# repro-lint: disable-file=RPR001``.  A suppression comment
should carry a reason after the codes, e.g.::

    delta = a_s == b_s  # repro-lint: disable=RPR002 -- parity pin wants exact bits
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass, field
from pathlib import Path

#: Code used for linter-internal problems (unreadable file, syntax error,
#: malformed suppression comment).  Not suppressible.
INTERNAL_CODE = "RPR000"

_SUPPRESS_RE = re.compile(
    r"#\s*repro-lint:\s*(?P<scope>disable(?:-file)?)\s*=\s*(?P<codes>[A-Za-z0-9, ]+)"
)

_CODE_RE = re.compile(r"^(?:RPR\d{3}|all)$")


@dataclass(frozen=True)
class Finding:
    """One lint finding, pointing at a file location."""

    code: str
    rule: str
    path: str
    line: int
    column: int
    message: str

    def to_dict(self) -> dict[str, object]:
        return {
            "code": self.code,
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.column}: {self.code} [{self.rule}] {self.message}"


@dataclass
class Suppressions:
    """Per-file suppression state parsed from ``# repro-lint:`` comments."""

    #: Codes disabled for the whole file ("all" disables every rule).
    file_codes: set[str] = field(default_factory=set)
    #: Line number -> codes disabled on that line.
    line_codes: dict[int, set[str]] = field(default_factory=dict)
    #: (line, comment) pairs whose code list failed to parse.
    malformed: list[tuple[int, str]] = field(default_factory=list)

    @classmethod
    def from_source(cls, text: str) -> Suppressions:
        state = cls()
        # Tokenize so only real comments count: a docstring or string
        # literal that *mentions* repro-lint must never suppress (or be
        # reported as a malformed suppression).
        try:
            tokens = list(tokenize.generate_tokens(io.StringIO(text).readline))
        except (tokenize.TokenError, IndentationError, SyntaxError):
            return state
        for token in tokens:
            if token.type != tokenize.COMMENT or "repro-lint:" not in token.string:
                continue
            lineno = token.start[0]
            match = _SUPPRESS_RE.search(token.string)
            if match is None:
                state.malformed.append((lineno, token.string.strip()))
                continue
            codes = {code.strip() for code in match.group("codes").split(",")}
            codes.discard("")
            if not codes or not all(_CODE_RE.match(code) for code in codes):
                state.malformed.append((lineno, token.string.strip()))
                continue
            if match.group("scope") == "disable-file":
                state.file_codes |= codes
            else:
                state.line_codes.setdefault(lineno, set()).update(codes)
        return state

    def is_suppressed(self, code: str, line: int) -> bool:
        if code == INTERNAL_CODE:
            return False
        if "all" in self.file_codes or code in self.file_codes:
            return True
        at_line = self.line_codes.get(line, set())
        return "all" in at_line or code in at_line


@dataclass
class LintModule:
    """One parsed source file presented to module rules."""

    path: Path
    display_path: str
    text: str
    tree: ast.Module
    suppressions: Suppressions

    def finding(
        self, rule: Rule, node: ast.AST | None, message: str, line: int | None = None
    ) -> Finding:
        lineno = line if line is not None else getattr(node, "lineno", 1)
        column = getattr(node, "col_offset", 0) + 1 if node is not None else 1
        return Finding(
            code=rule.code,
            rule=rule.name,
            path=self.display_path,
            line=lineno,
            column=column,
            message=message,
        )


@dataclass
class LintProject:
    """The whole collected tree, presented to project rules."""

    root: Path
    modules: list[LintModule]

    def find_module(self, suffix: str) -> LintModule | None:
        """Return the collected module whose path ends with ``suffix``."""
        for module in self.modules:
            if module.path.as_posix().endswith(suffix):
                return module
        return None

    def display(self, path: Path) -> str:
        """Repo-relative rendering of ``path`` when possible."""
        try:
            return path.resolve().relative_to(self.root).as_posix()
        except ValueError:
            return path.as_posix()


class Rule:
    """Base class for lint rules; subclasses set ``code``/``name``."""

    code: str = INTERNAL_CODE
    name: str = "internal"
    description: str = ""

    def check_module(self, module: LintModule) -> Iterator[Finding]:
        return iter(())

    def check_project(self, project: LintProject) -> Iterator[Finding]:
        return iter(())


def repo_root_for(path: Path) -> Path:
    """Walk upward from ``path`` to the checkout root (pyproject.toml)."""
    probe = path.resolve()
    if probe.is_file():
        probe = probe.parent
    for candidate in (probe, *probe.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return probe


def collect_files(paths: Sequence[Path]) -> list[Path]:
    """Expand files/directories into a sorted, de-duplicated .py file list."""
    seen: set[Path] = set()
    ordered: list[Path] = []
    for path in paths:
        if path.is_dir():
            candidates: Iterable[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                ordered.append(candidate)
    return ordered


def load_project(paths: Sequence[Path], root: Path | None = None) -> tuple[LintProject, list[Finding]]:
    """Parse every file under ``paths`` into a :class:`LintProject`.

    Returns the project plus the internal findings (unreadable or
    syntactically invalid files, malformed suppression comments) that are
    reported regardless of rule selection.
    """
    files = collect_files(paths)
    project_root = root if root is not None else repo_root_for(files[0] if files else Path.cwd())
    project = LintProject(root=project_root, modules=[])
    internal: list[Finding] = []

    def _internal(display: str, line: int, message: str) -> Finding:
        return Finding(
            code=INTERNAL_CODE,
            rule="internal",
            path=display,
            line=line,
            column=1,
            message=message,
        )

    for path in files:
        display = project.display(path)
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as error:
            internal.append(_internal(display, 1, f"cannot read file: {error}"))
            continue
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError as error:
            internal.append(_internal(display, error.lineno or 1, f"syntax error: {error.msg}"))
            continue
        suppressions = Suppressions.from_source(text)
        for lineno, comment in suppressions.malformed:
            internal.append(
                _internal(
                    display,
                    lineno,
                    "malformed repro-lint suppression (expected "
                    f"'# repro-lint: disable=RPRxxx[,RPRyyy]'): {comment!r}",
                )
            )
        project.modules.append(
            LintModule(
                path=path,
                display_path=display,
                text=text,
                tree=tree,
                suppressions=suppressions,
            )
        )
    return project, internal


def run_lint(
    paths: Sequence[Path],
    rules: Sequence[Rule],
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    root: Path | None = None,
) -> list[Finding]:
    """Run ``rules`` over ``paths`` and return unsuppressed findings, sorted."""
    selected = set(select) if select is not None else None
    ignored = set(ignore) if ignore is not None else set()
    active = [
        rule
        for rule in rules
        if (selected is None or rule.code in selected) and rule.code not in ignored
    ]
    project, findings = load_project(paths, root=root)
    suppression_index = {module.display_path: module.suppressions for module in project.modules}
    for module in project.modules:
        for rule in active:
            findings.extend(rule.check_module(module))
    for rule in active:
        findings.extend(rule.check_project(project))
    kept = [
        finding
        for finding in findings
        if not (
            finding.path in suppression_index
            and suppression_index[finding.path].is_suppressed(finding.code, finding.line)
        )
    ]
    kept.sort(key=lambda finding: (finding.path, finding.line, finding.column, finding.code))
    return kept


def format_text(findings: Sequence[Finding]) -> str:
    lines = [finding.render() for finding in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    lines.append(f"repro-lint: {len(findings)} {noun}")
    return "\n".join(lines)


def format_json(findings: Sequence[Finding]) -> str:
    payload = {
        "version": 1,
        "count": len(findings),
        "findings": [finding.to_dict() for finding in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


__all__ = [
    "INTERNAL_CODE",
    "Finding",
    "LintModule",
    "LintProject",
    "Rule",
    "Suppressions",
    "collect_files",
    "format_json",
    "format_text",
    "load_project",
    "repo_root_for",
    "run_lint",
]
