"""``repro-lint``: AST-based invariant checker for reproduction contracts.

Run it as ``repro-lint`` (console script) or
``python -m repro.devtools.lint``.  The rules:

========  =================  ====================================================
Code      Name               Contract
========  =================  ====================================================
RPR001    determinism        no wall-clock reads / global-state randomness
RPR002    float-equality     no ``==``/``!=`` between float-valued expressions
RPR003    unit-suffixes      quantity names carry ``_s``/``_tokens``/``_rps``/...
RPR004    spec-round-trip    every ``*Spec`` field survives to_dict/from_dict;
                             example specs resolve their registry keys
RPR005    clock-discipline   clock state written only in run/reset/advance*
========  =================  ====================================================

Suppress a finding with ``# repro-lint: disable=RPR001`` on its line (add
a reason after the codes), or file-wide with
``# repro-lint: disable-file=RPR001``.
"""

from __future__ import annotations

from repro.devtools.lint.core import (
    Finding,
    LintModule,
    LintProject,
    Rule,
    format_json,
    format_text,
    run_lint,
)
from repro.devtools.lint.rules import all_rules

__all__ = [
    "Finding",
    "LintModule",
    "LintProject",
    "Rule",
    "all_rules",
    "format_json",
    "format_text",
    "run_lint",
]
