"""Module entry point: ``python -m repro.devtools.lint``."""

from __future__ import annotations

from repro.devtools.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
