"""PIMphony reproduction library.

This package reproduces the system described in *PIMphony: Overcoming
Bandwidth and Capacity Inefficiency in PIM-Based Long-Context LLM Inference
System* (HPCA 2026).  It provides:

* ``repro.api`` -- the declarative experiment front door: serializable
  ``ExperimentSpec``s, string-keyed component registries, a ``build``/
  ``run`` composer returning unified ``RunReport``s, and the
  ``python -m repro`` CLI.
* ``repro.models`` -- LLM architectural configurations and decode-step
  workload models (Table I, Fig. 2).
* ``repro.pim`` / ``repro.dram`` -- a DRAM-PIM hardware substrate with a
  command-level simulator, timing and energy models.
* ``repro.compiler`` -- a small tensor IR and lowering passes producing PIM
  instruction streams (the MLIR-based compiler substitute).
* ``repro.memory`` -- static and chunk-based (lazy) KV-cache allocators and
  the VA2PA translation table.
* ``repro.core`` -- the paper's contribution: Token-Centric Partitioning
  (TCP), Dynamic Command Scheduling (DCS), Dynamic PIM Access (DPA) and the
  ``PIMphony`` orchestrator facade.
* ``repro.system`` -- multi-node PIM-only and xPU+PIM system models with a
  decode serving loop.
* ``repro.serving`` -- the event-driven serving engine: pluggable admission
  and preemption policies (KV lifecycle with swap/recompute eviction),
  timestamped arrivals, per-request TTFT/TPOT/percentile metrics, prefill
  cost models, a bucketed decode-step latency cache and the data-parallel
  replica router with TPOT-EWMA feedback.
* ``repro.baselines`` -- CENT-like, NeuPIMs-like, ping-pong buffering and
  GPU (A100 + FlashDecoding + PagedAttention) baselines.
* ``repro.workloads`` -- LongBench / LV-Eval statistical trace generators.
* ``repro.analysis`` -- utilisation / breakdown / reporting helpers.

``from repro import *`` exposes exactly the curated surface in ``__all__``:
the orchestrator facade, model/dataset lookups, the serving engine with its
admission policies, the replica router with its routing policies, prefill
configuration, trace helpers, and the declarative experiment API.
"""

# Importing the baselines package self-registers its system kinds ("gpu",
# and the config factories behind "pim-only"/"xpu-pim") into the
# experiment registries.
import repro.baselines  # noqa: F401  (imported for registration side effects)
from repro.api import (
    AdmissionSpec,
    AllocatorSpec,
    EngineSpec,
    ExperimentSpec,
    ModelSpec,
    ParallelismSpec,
    PreemptionSpec,
    PrefillSpec,
    PrefixCacheSpec,
    RouterSpec,
    RunReport,
    SystemSpec,
    TierReport,
    TierSpec,
    TraceSpec,
    build,
    register_admission_policy,
    register_preemption_policy,
    register_prefill_model,
    register_routing_policy,
    register_system,
    register_trace,
    run,
    sweep_specs,
)
from repro.core.orchestrator import PIMphony, PIMphonyConfig
from repro.models.llm import LLMConfig, get_model, list_models
from repro.serving import (
    CapacityAwareAdmission,
    CapacityAwareRouting,
    CapacityExceeded,
    EngineResult,
    EvictLargest,
    EvictLRU,
    EvictPriorityLargest,
    EvictPriorityLRU,
    EvictPriorityYoungest,
    EvictYoungest,
    FastServingEngine,
    FCFSAdmission,
    FleetResult,
    LeastOutstandingRouting,
    LinearPrefillModel,
    PreemptedState,
    PreemptionConfig,
    PreemptionCostModel,
    PrefillConfig,
    PrefixCache,
    PrefixCacheStats,
    PriorityAdmission,
    ReplicaRouter,
    RoundRobinRouting,
    ServingEngine,
    SessionAffinityRouting,
    StepLatencyCache,
    prefill_model_for,
    serve,
)
from repro.system.serving import ServingResult, simulate_serving
from repro.workloads.datasets import get_dataset, list_datasets
from repro.workloads.traces import (
    assign_tiers,
    burst_arrivals,
    diurnal_arrivals,
    generate_trace,
    multi_turn_trace,
    partition_trace,
    periodic_priorities,
    poisson_arrivals,
    random_sessions,
    replay_arrivals,
    warped_replay_arrivals,
)

__version__ = "1.3.0"

__all__ = [
    # orchestrator + models + datasets
    "PIMphony",
    "PIMphonyConfig",
    "LLMConfig",
    "get_model",
    "list_models",
    "get_dataset",
    "list_datasets",
    # serving engine + admission
    "ServingEngine",
    "FastServingEngine",
    "EngineResult",
    "ServingResult",
    "serve",
    "simulate_serving",
    "FCFSAdmission",
    "CapacityAwareAdmission",
    "PriorityAdmission",
    "StepLatencyCache",
    # KV lifecycle + preemption
    "CapacityExceeded",
    "PreemptedState",
    "PreemptionConfig",
    "PreemptionCostModel",
    "EvictLRU",
    "EvictLargest",
    "EvictYoungest",
    "EvictPriorityLRU",
    "EvictPriorityLargest",
    "EvictPriorityYoungest",
    # replica router + routing policies
    "ReplicaRouter",
    "FleetResult",
    "RoundRobinRouting",
    "LeastOutstandingRouting",
    "CapacityAwareRouting",
    "SessionAffinityRouting",
    # prefill
    "PrefillConfig",
    "LinearPrefillModel",
    "prefill_model_for",
    # prefix cache
    "PrefixCache",
    "PrefixCacheStats",
    # traces
    "generate_trace",
    "multi_turn_trace",
    "poisson_arrivals",
    "replay_arrivals",
    "diurnal_arrivals",
    "burst_arrivals",
    "warped_replay_arrivals",
    "partition_trace",
    "random_sessions",
    "periodic_priorities",
    "assign_tiers",
    # declarative experiment API
    "ExperimentSpec",
    "ModelSpec",
    "SystemSpec",
    "ParallelismSpec",
    "AllocatorSpec",
    "EngineSpec",
    "AdmissionSpec",
    "PreemptionSpec",
    "PrefillSpec",
    "PrefixCacheSpec",
    "TierSpec",
    "TraceSpec",
    "RouterSpec",
    "RunReport",
    "TierReport",
    "build",
    "run",
    "sweep_specs",
    "register_system",
    "register_admission_policy",
    "register_routing_policy",
    "register_preemption_policy",
    "register_prefill_model",
    "register_trace",
    "__version__",
]
