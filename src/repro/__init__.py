"""PIMphony reproduction library.

This package reproduces the system described in *PIMphony: Overcoming
Bandwidth and Capacity Inefficiency in PIM-Based Long-Context LLM Inference
System* (HPCA 2026).  It provides:

* ``repro.models`` -- LLM architectural configurations and decode-step
  workload models (Table I, Fig. 2).
* ``repro.pim`` / ``repro.dram`` -- a DRAM-PIM hardware substrate with a
  command-level simulator, timing and energy models.
* ``repro.compiler`` -- a small tensor IR and lowering passes producing PIM
  instruction streams (the MLIR-based compiler substitute).
* ``repro.memory`` -- static and chunk-based (lazy) KV-cache allocators and
  the VA2PA translation table.
* ``repro.core`` -- the paper's contribution: Token-Centric Partitioning
  (TCP), Dynamic Command Scheduling (DCS), Dynamic PIM Access (DPA) and the
  ``PIMphony`` orchestrator facade.
* ``repro.system`` -- multi-node PIM-only and xPU+PIM system models with a
  decode serving loop.
* ``repro.serving`` -- the event-driven serving engine: pluggable admission
  policies, timestamped arrivals, per-request TTFT/TPOT/percentile metrics
  and a bucketed decode-step latency cache.
* ``repro.baselines`` -- CENT-like, NeuPIMs-like, ping-pong buffering and
  GPU (A100 + FlashDecoding + PagedAttention) baselines.
* ``repro.workloads`` -- LongBench / LV-Eval statistical trace generators.
* ``repro.analysis`` -- utilisation / breakdown / reporting helpers.
"""

from repro.core.orchestrator import PIMphony, PIMphonyConfig
from repro.models.llm import LLMConfig, get_model, list_models
from repro.serving import (
    CapacityAwareAdmission,
    EngineResult,
    FCFSAdmission,
    PriorityAdmission,
    ServingEngine,
    StepLatencyCache,
    serve,
)
from repro.system.serving import ServingResult, simulate_serving
from repro.workloads.datasets import get_dataset, list_datasets
from repro.workloads.traces import generate_trace, poisson_arrivals, replay_arrivals

__version__ = "1.1.0"

__all__ = [
    "PIMphony",
    "PIMphonyConfig",
    "LLMConfig",
    "get_model",
    "list_models",
    "ServingEngine",
    "EngineResult",
    "ServingResult",
    "serve",
    "simulate_serving",
    "FCFSAdmission",
    "CapacityAwareAdmission",
    "PriorityAdmission",
    "StepLatencyCache",
    "get_dataset",
    "list_datasets",
    "generate_trace",
    "poisson_arrivals",
    "replay_arrivals",
    "__version__",
]
