"""Statistical models of the paper's long-context datasets (Table II).

The evaluation only depends on the *distribution* of input context lengths
(mean, spread, bounds), so each dataset is represented by the statistics the
paper publishes and sampled with a truncated normal distribution.  QMSum and
Musique come from LongBench (32K-class contexts); multifieldqa and Loogle-SD
come from LV-Eval (128K-class contexts).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class DatasetStats:
    """Context-length statistics of one dataset (paper Table II)."""

    name: str
    suite: str
    mean: float
    std: float
    minimum: int
    maximum: int
    output_tokens: int = 256

    def __post_init__(self) -> None:
        if self.mean <= 0 or self.std < 0:
            raise ValueError("mean must be positive and std non-negative")
        if not (0 < self.minimum <= self.maximum):
            raise ValueError("require 0 < minimum <= maximum")

    def sample(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """Sample ``count`` context lengths from a truncated normal model."""
        if count < 0:
            raise ValueError("count must be non-negative")
        if count == 0:
            return np.zeros(0, dtype=np.int64)
        samples = rng.normal(self.mean, self.std, size=count)
        clipped = np.clip(samples, self.minimum, self.maximum)
        return clipped.astype(np.int64)

    def clamp_to_window(self, context_window: int) -> DatasetStats:
        """Restrict the distribution to a model's context window."""
        maximum = min(self.maximum, context_window)
        minimum = min(self.minimum, maximum)
        mean = min(self.mean, float(maximum))
        return DatasetStats(
            name=self.name,
            suite=self.suite,
            mean=mean,
            std=self.std,
            minimum=minimum,
            maximum=maximum,
            output_tokens=self.output_tokens,
        )


_DATASETS: dict[str, DatasetStats] = {}


def _register(stats: DatasetStats) -> DatasetStats:
    _DATASETS[stats.name.lower()] = stats
    return stats


QMSUM = _register(
    DatasetStats(
        name="qmsum", suite="LongBench", mean=13_966, std=6_182, minimum=2_651, maximum=30_456
    )
)
MUSIQUE = _register(
    DatasetStats(
        name="musique", suite="LongBench", mean=16_362, std=1_651, minimum=6_820, maximum=17_917
    )
)
MULTIFIELDQA = _register(
    DatasetStats(
        name="multifieldqa",
        suite="LV-Eval",
        mean=60_780,
        std=31_025,
        minimum=20_333,
        maximum=119_480,
    )
)
LOOGLE_SD = _register(
    DatasetStats(
        name="loogle-sd",
        suite="LV-Eval",
        mean=50_693,
        std=26_506,
        minimum=13_347,
        maximum=109_221,
    )
)


def list_datasets() -> list[str]:
    """Names of all registered datasets."""
    return sorted(_DATASETS)


def get_dataset(name: str) -> DatasetStats:
    """Look up a registered dataset by (case-insensitive) name."""
    key = name.lower()
    if key not in _DATASETS:
        known = ", ".join(list_datasets())
        raise KeyError(f"unknown dataset {name!r}; known datasets: {known}")
    return _DATASETS[key]


def synthetic_dataset(
    name: str, mean: float, std: float, minimum: int, maximum: int, output_tokens: int = 256
) -> DatasetStats:
    """Build an ad-hoc dataset model (used by the scalability studies)."""
    return DatasetStats(
        name=name,
        suite="synthetic",
        mean=mean,
        std=std,
        minimum=minimum,
        maximum=maximum,
        output_tokens=output_tokens,
    )
