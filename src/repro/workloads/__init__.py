"""Long-context workload generators matched to LongBench / LV-Eval statistics."""

from repro.workloads.datasets import DatasetStats, get_dataset, list_datasets
from repro.workloads.traces import (
    Request,
    RequestTrace,
    burst_arrivals,
    diurnal_arrivals,
    generate_trace,
    multi_turn_trace,
    poisson_arrivals,
    replay_arrivals,
    warped_replay_arrivals,
)

__all__ = [
    "DatasetStats",
    "get_dataset",
    "list_datasets",
    "Request",
    "RequestTrace",
    "burst_arrivals",
    "diurnal_arrivals",
    "generate_trace",
    "multi_turn_trace",
    "poisson_arrivals",
    "replay_arrivals",
    "warped_replay_arrivals",
]
