"""Request trace generation for the serving simulator."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workloads.datasets import DatasetStats


@dataclass(frozen=True)
class Request:
    """One inference request of a serving trace.

    Attributes:
        request_id: Unique id within the trace.
        prompt_tokens: Input (prefill) context length.
        output_tokens: Tokens to generate during decoding.
    """

    request_id: int
    prompt_tokens: int
    output_tokens: int

    def __post_init__(self) -> None:
        if self.prompt_tokens <= 0 or self.output_tokens <= 0:
            raise ValueError("prompt_tokens and output_tokens must be positive")

    @property
    def final_context(self) -> int:
        """Context length when the request completes."""
        return self.prompt_tokens + self.output_tokens


@dataclass(frozen=True)
class RequestTrace:
    """An ordered collection of requests drawn from one dataset model."""

    dataset: str
    requests: tuple[Request, ...]

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def prompt_lengths(self) -> list[int]:
        return [request.prompt_tokens for request in self.requests]

    @property
    def mean_prompt_tokens(self) -> float:
        if not self.requests:
            return 0.0
        return sum(self.prompt_lengths) / len(self.requests)

    @property
    def max_prompt_tokens(self) -> int:
        return max(self.prompt_lengths, default=0)

    @property
    def total_output_tokens(self) -> int:
        return sum(request.output_tokens for request in self.requests)


def generate_trace(
    dataset: DatasetStats,
    num_requests: int,
    seed: int = 0,
    context_window: int | None = None,
    output_tokens: int | None = None,
) -> RequestTrace:
    """Generate a request trace from a dataset's context-length statistics.

    Args:
        dataset: Context-length distribution to sample from.
        num_requests: Number of requests to generate.
        seed: Random seed (traces are reproducible).
        context_window: Optional model context window to clamp prompts to.
        output_tokens: Override for the per-request generation length.

    Returns:
        A :class:`RequestTrace` with ``num_requests`` requests.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    stats = dataset if context_window is None else dataset.clamp_to_window(context_window)
    rng = np.random.default_rng(seed)
    lengths = stats.sample(num_requests, rng)
    generate = output_tokens if output_tokens is not None else stats.output_tokens
    requests = tuple(
        Request(request_id=index, prompt_tokens=int(length), output_tokens=generate)
        for index, length in enumerate(lengths)
    )
    return RequestTrace(dataset=stats.name, requests=requests)
