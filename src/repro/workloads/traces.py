"""Request trace generation for the serving simulator."""

from __future__ import annotations

import math
import warnings
from collections.abc import Sequence
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.api.registry import register_arrival_process, register_trace
from repro.workloads.datasets import DatasetStats, get_dataset

if TYPE_CHECKING:
    from collections.abc import Callable

    from repro.api.spec import ArrivalSpec, TierSpec, TraceSpec


@dataclass(frozen=True)
class Request:
    """One inference request of a serving trace.

    Attributes:
        request_id: Unique id within the trace.
        prompt_tokens: Input (prefill) context length.
        output_tokens: Tokens to generate during decoding.
        arrival_s: Wall-clock arrival time in seconds.  Traces generated
            without an arrival process have every request arrive at time 0,
            which reproduces the legacy closed-loop serving behaviour.
        priority: Scheduling priority (larger is more urgent); consulted
            by priority-aware admission policies and by the
            ``evict-priority-*`` preemption policies when picking victims.
        session: Optional conversation/session id; requests sharing a
            session id are kept on the same replica by session-affinity
            routing (their KV prefix lives there).  ``None`` means the
            request belongs to no session.
        tier: Name of the SLO tier the request belongs to (see
            :func:`assign_tiers`); ``None`` means untiered.
        ttft_deadline_s: Time-to-first-token SLO deadline inherited from
            the tier (``None`` means no deadline).
        tpot_deadline_s: Per-output-token SLO deadline inherited from the
            tier (``None`` means no deadline).
    """

    request_id: int
    prompt_tokens: int
    output_tokens: int
    arrival_s: float = 0.0
    priority: int = 0
    session: int | None = None
    tier: str | None = None
    ttft_deadline_s: float | None = None
    tpot_deadline_s: float | None = None

    def __post_init__(self) -> None:
        if self.prompt_tokens <= 0 or self.output_tokens <= 0:
            raise ValueError("prompt_tokens and output_tokens must be positive")
        if not math.isfinite(self.arrival_s) or self.arrival_s < 0:
            # NaN/inf would stall the engine's idle-forward clock forever.
            raise ValueError("arrival_s must be finite and non-negative")

    @property
    def final_context(self) -> int:
        """Context length when the request completes."""
        return self.prompt_tokens + self.output_tokens


def _fast_request(
    request_id: int,
    prompt_tokens: int,
    output_tokens: int,
    arrival_s: float = 0.0,
    priority: int = 0,
    session: int | None = None,
    tier: str | None = None,
    ttft_deadline_s: float | None = None,
    tpot_deadline_s: float | None = None,
) -> Request:
    """Construct a :class:`Request` without re-running ``__post_init__``.

    Million-request traces pay the dataclass ``__init__`` + validation cost
    once per request; the bulk generators below validate whole fields with
    numpy instead (raising the same error messages), then build the
    instances directly.  Callers must have validated every field.
    """
    request = object.__new__(Request)
    # object.__setattr__ reaches the instance-__dict__ descriptor directly,
    # sidestepping both the frozen __setattr__ guard and the per-field
    # object.__setattr__ calls the generated __init__ would make.
    object.__setattr__(
        request,
        "__dict__",
        {
            "request_id": request_id,
            "prompt_tokens": prompt_tokens,
            "output_tokens": output_tokens,
            "arrival_s": arrival_s,
            "priority": priority,
            "session": session,
            "tier": tier,
            "ttft_deadline_s": ttft_deadline_s,
            "tpot_deadline_s": tpot_deadline_s,
        },
    )
    return request


def _with_fields(request: Request, **changes: object) -> Request:
    """Clone a validated :class:`Request` with ``changes``, skipping
    ``__post_init__`` (``dataclasses.replace`` re-validates every field,
    which dominates trace post-processing at large n)."""
    clone = object.__new__(Request)
    object.__setattr__(clone, "__dict__", {**request.__dict__, **changes})
    return clone


@dataclass(frozen=True)
class RequestTrace:
    """An ordered collection of requests drawn from one dataset model."""

    dataset: str
    requests: tuple[Request, ...]

    def __len__(self) -> int:
        return len(self.requests)

    @property
    def prompt_lengths(self) -> list[int]:
        return [request.prompt_tokens for request in self.requests]

    @property
    def mean_prompt_tokens(self) -> float:
        if not self.requests:
            return 0.0
        return sum(self.prompt_lengths) / len(self.requests)

    @property
    def max_prompt_tokens(self) -> int:
        return max(self.prompt_lengths, default=0)

    @property
    def total_output_tokens(self) -> int:
        return sum(request.output_tokens for request in self.requests)

    @property
    def arrival_times(self) -> list[float]:
        return [request.arrival_s for request in self.requests]

    @property
    def last_arrival_s(self) -> float:
        return max(self.arrival_times, default=0.0)


def generate_trace(
    dataset: DatasetStats,
    num_requests: int,
    seed: int = 0,
    context_window: int | None = None,
    output_tokens: int | None = None,
) -> RequestTrace:
    """Generate a request trace from a dataset's context-length statistics.

    Args:
        dataset: Context-length distribution to sample from.
        num_requests: Number of requests to generate.
        seed: Random seed (traces are reproducible).
        context_window: Optional model context window to clamp prompts to.
        output_tokens: Override for the per-request generation length.

    Returns:
        A :class:`RequestTrace` with ``num_requests`` requests.
    """
    if num_requests <= 0:
        raise ValueError("num_requests must be positive")
    stats = dataset if context_window is None else dataset.clamp_to_window(context_window)
    rng = np.random.default_rng(seed)
    lengths = stats.sample(num_requests, rng)
    generate = output_tokens if output_tokens is not None else stats.output_tokens
    # Bulk path: truncate and validate the whole sample at once (int64
    # astype truncates like int(), so values are unchanged), then build the
    # requests without per-instance re-validation.
    prompts = np.asarray(lengths).astype(np.int64).tolist()
    if generate <= 0 or (prompts and min(prompts) <= 0):
        raise ValueError("prompt_tokens and output_tokens must be positive")
    requests = tuple(
        _fast_request(request_id=index, prompt_tokens=prompt, output_tokens=generate)
        for index, prompt in enumerate(prompts)
    )
    return RequestTrace(dataset=stats.name, requests=requests)


def poisson_arrivals(trace: RequestTrace, rate_rps: float, seed: int = 0) -> RequestTrace:
    """Attach Poisson-process arrival times to a trace.

    Inter-arrival gaps are drawn from an exponential distribution with mean
    ``1 / rate_rps``, the standard open-loop serving model: requests arrive
    independently at an average rate instead of all being queued at time 0.

    Args:
        trace: Trace whose requests receive arrival timestamps (in order).
        rate_rps: Mean arrival rate in requests per second.
        seed: Random seed (arrival processes are reproducible).

    Returns:
        A new :class:`RequestTrace` with monotonically increasing arrivals.
    """
    if rate_rps <= 0:
        raise ValueError("rate_rps must be positive")
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(1.0 / rate_rps, size=len(trace.requests))
    times = np.cumsum(gaps)
    # Exponential gaps are non-negative, so the cumulative times are sorted
    # and only the final (largest) one can have overflowed to infinity.
    if times.size and not np.isfinite(times[-1]):
        raise ValueError(
            "arrival_s must be finite and non-negative; request index "
            f"{times.size - 1} overflowed to {float(times[-1])!r} at "
            f"rate_rps={rate_rps!r}"
        )
    requests = tuple(
        _with_fields(request, arrival_s=arrival_s)
        for request, arrival_s in zip(trace.requests, times.tolist(), strict=True)
    )
    return RequestTrace(dataset=trace.dataset, requests=requests)


def _checked_replay_times(
    trace: RequestTrace, arrival_times: Sequence[float], monotonic: bool
) -> np.ndarray:
    """Validate replayed timestamps, naming the offending index and value."""
    if len(arrival_times) != len(trace.requests):
        raise ValueError(
            f"expected {len(trace.requests)} arrival times, got {len(arrival_times)}"
        )
    times = np.asarray([float(arrival_s) for arrival_s in arrival_times], dtype=np.float64)
    if times.size:
        bad = np.flatnonzero(~(np.isfinite(times) & (times >= 0)))
        if bad.size:
            index = int(bad[0])
            raise ValueError(
                "arrival_s must be finite and non-negative; "
                f"arrival_times[{index}] is {float(times[index])!r}"
            )
    if monotonic and times.size > 1:
        drops = np.flatnonzero(np.diff(times) < 0)
        if drops.size:
            index = int(drops[0]) + 1
            raise ValueError(
                "replay arrival_times must be non-decreasing; "
                f"arrival_times[{index}] ({float(times[index])!r}) precedes "
                f"arrival_times[{index - 1}] ({float(times[index - 1])!r}); "
                "pass monotonic=False to replay out-of-order timestamps"
            )
    return times


def replay_arrivals(
    trace: RequestTrace,
    arrival_times: Sequence[float],
    *,
    monotonic: bool = True,
) -> RequestTrace:
    """Attach explicit (replayed) arrival timestamps to a trace.

    Args:
        trace: Trace whose requests receive the timestamps, positionally.
        arrival_times: One non-negative arrival time per request, e.g.
            replayed from a production log.
        monotonic: Require non-decreasing timestamps (the normal shape of a
            production log).  Pass ``False`` to replay deliberately
            out-of-order arrivals, e.g. to exercise the engine's
            admission-by-arrival-time ordering.

    Returns:
        A new :class:`RequestTrace` with the given arrival times.
    """
    times = _checked_replay_times(trace, arrival_times, monotonic)
    requests = tuple(
        _with_fields(request, arrival_s=arrival_s)
        for request, arrival_s in zip(trace.requests, times.tolist(), strict=True)
    )
    return RequestTrace(dataset=trace.dataset, requests=requests)


def _thinned_arrivals(
    trace: RequestTrace,
    rate_fn: "Callable[[np.ndarray], np.ndarray]",
    rate_max_rps: float,
    seed: int,
) -> RequestTrace:
    """Attach arrivals from a non-homogeneous Poisson process via thinning.

    Lewis-Shedler thinning, batch-vectorized: candidate arrivals are drawn
    from a homogeneous process at ``rate_max_rps`` and each is accepted
    with probability ``rate_fn(t) / rate_max_rps``.  When a chunk yields
    more acceptances than still needed, the prefix is taken; otherwise the
    homogeneous process continues from the last *candidate* (accepted or
    not), which is exact because the candidate stream is memoryless.
    Amortized O(n) in the trace length for any rate function bounded away
    from zero on average.
    """
    needed = len(trace.requests)
    rng = np.random.default_rng(seed)
    accepted: list[np.ndarray] = []
    count = 0
    start_s = 0.0
    # Oversample so traces with healthy acceptance ratios finish in one or
    # two draws; pathological ratios just loop more chunks.
    chunk = max(256, 2 * needed)
    while count < needed:
        gaps = rng.exponential(1.0 / rate_max_rps, size=chunk)
        candidates = start_s + np.cumsum(gaps)
        if not np.isfinite(candidates[-1]):
            raise ValueError(
                "arrival_s must be finite and non-negative; request index "
                f"{count} overflowed past {start_s!r} at "
                f"rate_max_rps={rate_max_rps!r}"
            )
        rates = np.asarray(rate_fn(candidates), dtype=np.float64)
        keep = candidates[rng.random(chunk) * rate_max_rps < rates]
        accepted.append(keep)
        count += keep.size
        start_s = float(candidates[-1])
    times = np.concatenate(accepted)[:needed] if accepted else np.empty(0)
    requests = tuple(
        _with_fields(request, arrival_s=arrival_s)
        for request, arrival_s in zip(trace.requests, times.tolist(), strict=True)
    )
    return RequestTrace(dataset=trace.dataset, requests=requests)


def diurnal_arrivals(
    trace: RequestTrace,
    base_rate_rps: float,
    period_s: float,
    amplitude: float = 0.5,
    phase_s: float = 0.0,
    seed: int = 0,
) -> RequestTrace:
    """Attach arrivals from a sinusoidally-modulated Poisson process.

    The instantaneous rate is::

        rate(t) = base_rate_rps * (1 + amplitude * sin(2*pi*(t - phase_s) / period_s))

    which models diurnal traffic: a day-scale ``period_s`` swings the load
    between ``base * (1 - amplitude)`` (trough) and ``base * (1 + amplitude)``
    (peak), a peak-to-trough ratio of ``(1 + a) / (1 - a)``.  Sampled by
    thinning (see :func:`_thinned_arrivals`), seeded and O(n).

    Args:
        trace: Trace whose requests receive arrival timestamps (in order).
        base_rate_rps: Mean arrival rate in requests per second (positive).
        period_s: Oscillation period in seconds (positive).
        amplitude: Relative swing in ``[0, 1]``; ``0`` degenerates to a
            homogeneous Poisson process at ``base_rate_rps``.
        phase_s: Time offset of the sinusoid; ``phase_s = period_s / 4``
            starts the trace at the trough.
        seed: Random seed (arrival processes are reproducible).

    Returns:
        A new :class:`RequestTrace` with monotonically increasing arrivals.
    """
    if base_rate_rps <= 0:
        raise ValueError("base_rate_rps must be positive")
    if period_s <= 0 or not math.isfinite(period_s):
        raise ValueError("period_s must be positive and finite")
    if not 0.0 <= amplitude <= 1.0:
        raise ValueError(f"amplitude must lie in [0, 1], got {amplitude!r}")
    if not math.isfinite(phase_s):
        raise ValueError("phase_s must be finite")
    omega = 2.0 * math.pi / period_s

    def rate(times: np.ndarray) -> np.ndarray:
        return base_rate_rps * (1.0 + amplitude * np.sin(omega * (times - phase_s)))

    rate_max = base_rate_rps * (1.0 + amplitude)
    return _thinned_arrivals(trace, rate, rate_max, seed)


def burst_arrivals(
    trace: RequestTrace,
    base_rate_rps: float,
    bursts: Sequence[tuple[float, float, float]],
    seed: int = 0,
) -> RequestTrace:
    """Attach arrivals from a Poisson process with flash-crowd windows.

    The rate is ``base_rate_rps`` everywhere except inside each burst
    window ``(start_s, duration_s, multiplier)``, where it becomes
    ``base_rate_rps * multiplier``.  Windows must not overlap.  Sampled by
    thinning (see :func:`_thinned_arrivals`), seeded and O(n).

    Args:
        trace: Trace whose requests receive arrival timestamps (in order).
        base_rate_rps: Baseline arrival rate in requests per second.
        bursts: ``(start_s, duration_s, multiplier)`` windows; a
            ``multiplier`` above 1 is a flash crowd, below 1 a lull.
        seed: Random seed (arrival processes are reproducible).

    Returns:
        A new :class:`RequestTrace` with monotonically increasing arrivals.
    """
    if base_rate_rps <= 0:
        raise ValueError("base_rate_rps must be positive")
    windows = []
    for index, (start_s, duration_s, multiplier) in enumerate(bursts):
        if not math.isfinite(start_s) or start_s < 0:
            raise ValueError(f"bursts[{index}].start_s must be finite and non-negative")
        if not math.isfinite(duration_s) or duration_s <= 0:
            raise ValueError(f"bursts[{index}].duration_s must be positive and finite")
        if not math.isfinite(multiplier) or multiplier <= 0:
            raise ValueError(f"bursts[{index}].multiplier must be positive and finite")
        windows.append((float(start_s), float(duration_s), float(multiplier)))
    windows.sort()
    for (start_a, duration_a, _), (start_b, _, _) in zip(windows, windows[1:], strict=False):
        if start_b < start_a + duration_a:
            raise ValueError(
                f"burst windows overlap: window starting at {start_b!r} begins "
                f"before the window at {start_a!r} ends ({start_a + duration_a!r})"
            )

    def rate(times: np.ndarray) -> np.ndarray:
        multipliers = np.ones_like(times)
        for start_s, duration_s, multiplier in windows:
            multipliers[(times >= start_s) & (times < start_s + duration_s)] = multiplier
        return base_rate_rps * multipliers

    peak = max((multiplier for _, _, multiplier in windows), default=1.0)
    rate_max = base_rate_rps * max(1.0, peak)
    return _thinned_arrivals(trace, rate, rate_max, seed)


def warped_replay_arrivals(
    trace: RequestTrace,
    arrival_times: Sequence[float],
    phases: Sequence[tuple[float, float]],
) -> RequestTrace:
    """Replay timestamps through a piecewise time-dilation profile.

    Each phase ``(start_s, factor)`` applies from its start (on the
    *source* timeline) until the next phase begins: a source interval of
    length ``dt`` inside a phase maps to ``dt * factor`` of simulated
    time.  Factors above 1 stretch the log (lower load), below 1 compress
    it (higher load) -- the standard way to rescale a production trace to
    a what-if intensity without resampling it.  The warp
    ``W(t)`` is piecewise linear, so the mapping is exact and O(n).

    Args:
        trace: Trace whose requests receive the warped timestamps.
        arrival_times: One non-negative, non-decreasing source timestamp
            per request (replayed logs are monotonic by construction).
        phases: ``(start_s, factor)`` breakpoints with strictly increasing
            starts; a phase starting after 0 implies factor 1 before it.

    Returns:
        A new :class:`RequestTrace` with the warped arrival times.
    """
    if not phases:
        raise ValueError("phases must be non-empty; use replay_arrivals for an unwarped replay")
    cleaned = []
    for index, (start_s, factor) in enumerate(phases):
        if not math.isfinite(start_s) or start_s < 0:
            raise ValueError(f"phases[{index}].start_s must be finite and non-negative")
        if not math.isfinite(factor) or factor <= 0:
            raise ValueError(f"phases[{index}].factor must be positive and finite")
        cleaned.append((float(start_s), float(factor)))
    for (start_a, _), (start_b, _) in zip(cleaned, cleaned[1:], strict=False):
        if start_b <= start_a:
            raise ValueError(
                f"phase starts must be strictly increasing, got {start_b!r} "
                f"after {start_a!r}"
            )
    if cleaned[0][0] > 0.0:
        cleaned.insert(0, (0.0, 1.0))
    times = _checked_replay_times(trace, arrival_times, monotonic=True)
    starts = np.asarray([start_s for start_s, _ in cleaned])
    factors = np.asarray([factor for _, factor in cleaned])
    # Warped time at each phase start: cumulative sum of fully-elapsed
    # phase spans, each scaled by its own factor.
    warped_starts = np.concatenate(([0.0], np.cumsum(np.diff(starts) * factors[:-1])))
    slots = np.searchsorted(starts, times, side="right") - 1
    warped = warped_starts[slots] + (times - starts[slots]) * factors[slots]
    return replay_arrivals(trace, warped.tolist())


def assign_sessions(trace: RequestTrace, session_ids: Sequence[int | None]) -> RequestTrace:
    """Attach session ids to a trace, positionally (replay-style).

    Args:
        trace: Trace whose requests receive the session ids.
        session_ids: One id (or ``None``) per request, e.g. the
            conversation ids of a replayed production log.

    Returns:
        A new :class:`RequestTrace` with the given session ids.
    """
    if len(session_ids) != len(trace.requests):
        raise ValueError(
            f"expected {len(trace.requests)} session ids, got {len(session_ids)}"
        )
    requests = tuple(
        _with_fields(request, session=None if session is None else int(session))
        for request, session in zip(trace.requests, session_ids, strict=True)
    )
    return RequestTrace(dataset=trace.dataset, requests=requests)


def random_sessions(trace: RequestTrace, num_sessions: int, seed: int = 0) -> RequestTrace:
    """Attach uniformly random session ids in ``[0, num_sessions)`` to a trace.

    The assignment is reproducible from ``seed``, which the declarative
    experiment API derives from the experiment's single seed -- so identical
    specs produce identical session layouts.

    Args:
        trace: Trace whose requests receive session ids.
        num_sessions: Number of distinct sessions (positive).
        seed: Random seed.

    Returns:
        A new :class:`RequestTrace` with every request in some session.
    """
    if num_sessions <= 0:
        raise ValueError("num_sessions must be positive")
    rng = np.random.default_rng(seed)
    ids = rng.integers(0, num_sessions, size=len(trace.requests))
    return assign_sessions(trace, ids.tolist())


def assign_tiers(trace: RequestTrace, tiers: Sequence["TierSpec"]) -> RequestTrace:
    """Tag requests with SLO-tier metadata (name, priority, deadlines).

    Matching is deterministic -- no randomness is involved, so identical
    traces and tier lists always produce identical taggings:

    * Tiers with a ``sessions`` predicate claim every request whose
      session id they list.
    * Tiers with a ``share`` then split the *remaining* requests in trace
      order by greedy quota: request ``i`` (counting unclaimed requests)
      joins the first share tier whose tagged count is still below
      ``share * (i + 1)``.  A share of ``1/N`` therefore tags exactly
      every ``N``-th request (0, N, 2N, ...), reproducing the deprecated
      :func:`periodic_priorities` pattern.
    * At most one catch-all tier (neither predicate) takes the leftovers;
      with no catch-all, leftover requests stay untiered.

    Args:
        trace: Trace whose requests receive tier metadata.
        tiers: Tier declarations (:class:`~repro.api.spec.TierSpec`), in
            matching order.

    Returns:
        A new :class:`RequestTrace` with matched requests carrying their
        tier's name, priority and TTFT/TPOT deadlines.
    """
    session_tiers: dict[int, "TierSpec"] = {}
    for tier in tiers:
        for session in tier.sessions or ():
            session_tiers.setdefault(session, tier)
    share_tiers = [tier for tier in tiers if tier.share is not None]
    catch_all = next((tier for tier in tiers if tier.is_catch_all), None)
    counts = [0] * len(share_tiers)
    position = 0  # rank among requests not claimed by a session predicate
    requests = []
    for request in trace.requests:
        tier = None
        if request.session is not None and request.session in session_tiers:
            tier = session_tiers[request.session]
        else:
            for slot, candidate in enumerate(share_tiers):
                if counts[slot] < candidate.share * (position + 1):
                    tier = candidate
                    counts[slot] += 1
                    break
            else:
                tier = catch_all
            position += 1
        if tier is None:
            requests.append(request)
        else:
            requests.append(
                _with_fields(
                    request,
                    priority=tier.priority,
                    tier=tier.name,
                    ttft_deadline_s=tier.ttft_deadline_s,
                    tpot_deadline_s=tier.tpot_deadline_s,
                )
            )
    return RequestTrace(dataset=trace.dataset, requests=tuple(requests))


def periodic_priorities(trace: RequestTrace, every: int, priority: int) -> RequestTrace:
    """Deprecated: mark every ``every``-th request with ``priority``.

    Thin wrapper kept for backwards compatibility; it delegates to
    :func:`assign_tiers` with a single ``share=1/every`` tier, which tags
    exactly the same requests (0, every, 2*every, ...) with the same
    priority.  Declare :class:`~repro.api.spec.TierSpec` entries on the
    experiment spec instead.
    """
    warnings.warn(
        "periodic_priorities is deprecated; declare SLO tiers instead "
        "(ExperimentSpec.tiers, or assign_tiers with a share=1/every TierSpec)",
        DeprecationWarning,
        stacklevel=2,
    )
    if every <= 0:
        raise ValueError("every must be positive")
    from repro.api.spec import TierSpec

    tier = TierSpec(name=f"priority-{priority}", priority=priority, share=1.0 / every)
    return assign_tiers(trace, (tier,))


def multi_turn_trace(
    num_sessions: int,
    turns_per_session: int,
    first_prompt_tokens: int,
    followup_tokens: int,
    output_tokens: int,
    seed: int = 0,
    context_window: int | None = None,
    turn_gap_s: float = 0.0,
    dataset: str = "multi-turn",
) -> RequestTrace:
    """Generate conversational sessions whose turns share an accumulated prefix.

    Each session opens with a prompt of roughly ``first_prompt_tokens``
    (jittered per session so sessions are distinguishable, reproducibly
    from ``seed``) and every follow-up turn's prompt is the previous
    turn's *entire context* -- prompt plus generated output -- plus
    ``followup_tokens`` of new user input.  That accumulated-prefix
    relation is exactly what a prefix cache exploits: turn ``k`` shares
    its first ``prompt_{k-1} + output`` tokens with the replica that
    served turn ``k-1``.

    Requests are ordered turn-major (all first turns, then all second
    turns, ...), so both the all-at-once and the Poisson arrival
    processes keep each session's turns in conversation order.  With
    ``turn_gap_s > 0`` the trace carries its own deterministic arrivals
    instead: session ``s``'s turn ``k`` arrives at ``k * turn_gap_s``
    plus a per-session jitter in ``[0, turn_gap_s)``, spacing turns far
    enough apart that a turn's predecessor has usually finished (and its
    prefix is cached) by the time it arrives.

    Args:
        num_sessions: Concurrent conversations (positive).
        turns_per_session: Turns per conversation (positive).
        first_prompt_tokens: Nominal opening prompt length; each session
            jitters it by up to +/-25%.
        followup_tokens: New user tokens added by every follow-up turn.
        output_tokens: Tokens generated per turn.
        seed: Seed for the per-session jitter (traces are reproducible).
        context_window: Optional window; prompts are clamped so
            ``prompt + output`` never exceeds it (sessions saturate there).
        turn_gap_s: Optional deterministic inter-turn arrival spacing.
        dataset: Dataset label carried by the trace.

    Returns:
        A :class:`RequestTrace` of ``num_sessions * turns_per_session``
        requests, every one tagged with its session id.
    """
    if num_sessions <= 0:
        raise ValueError("num_sessions must be positive")
    if turns_per_session <= 0:
        raise ValueError("turns_per_session must be positive")
    if first_prompt_tokens <= 0 or followup_tokens <= 0 or output_tokens <= 0:
        raise ValueError(
            "first_prompt_tokens, followup_tokens and output_tokens must be positive"
        )
    if context_window is not None and output_tokens >= context_window:
        # The clamp guarantees prompt + output <= window, which is only
        # satisfiable when the output alone leaves room for a prompt.
        raise ValueError(
            f"output_tokens ({output_tokens}) must be smaller than the "
            f"context window ({context_window})"
        )
    if turn_gap_s < 0:
        raise ValueError("turn_gap_s must be non-negative")
    if not math.isfinite(turn_gap_s):
        raise ValueError("arrival_s must be finite and non-negative")
    rng = np.random.default_rng(seed)
    jitter = rng.uniform(0.75, 1.25, size=num_sessions)
    offsets = rng.uniform(0.0, turn_gap_s, size=num_sessions) if turn_gap_s > 0 else None

    def clamp(prompt: int) -> int:
        if context_window is None:
            return prompt
        return max(1, min(prompt, context_window - output_tokens))

    prompts = [clamp(max(1, int(round(first_prompt_tokens * j)))) for j in jitter]
    offset_list = offsets.tolist() if offsets is not None else None
    requests = []
    for turn in range(turns_per_session):
        for session in range(num_sessions):
            arrival = 0.0
            if offset_list is not None:
                arrival = turn * turn_gap_s + offset_list[session]
            # Every field is validated above (prompts are clamped >= 1,
            # arrivals are finite and non-negative by construction), so the
            # bulk constructor can skip per-request re-validation.
            requests.append(
                _fast_request(
                    request_id=len(requests),
                    prompt_tokens=prompts[session],
                    output_tokens=output_tokens,
                    arrival_s=arrival,
                    session=session,
                )
            )
            # Next turn's prompt: this turn's full context plus new input.
            prompts[session] = clamp(prompts[session] + output_tokens + followup_tokens)
    return RequestTrace(dataset=dataset, requests=tuple(requests))


def partition_trace(
    trace: RequestTrace,
    assignments: Sequence[int | None],
    num_parts: int,
) -> list[RequestTrace]:
    """Split a trace into per-replica sub-traces by routing assignment.

    Requests keep their original ids, arrival times and relative order, so
    serving each sub-trace independently reproduces exactly what a replica
    behind a router would see.

    Args:
        trace: Trace to split.
        assignments: One replica index per request (positionally); ``None``
            means the request was dropped at the router and appears in no
            sub-trace.
        num_parts: Number of replicas; every non-``None`` assignment must
            lie in ``[0, num_parts)``.

    Returns:
        ``num_parts`` traces (possibly empty) sharing the input's dataset.
    """
    if num_parts <= 0:
        raise ValueError("num_parts must be positive")
    if len(assignments) != len(trace.requests):
        raise ValueError(
            f"expected {len(trace.requests)} assignments, got {len(assignments)}"
        )
    buckets: list[list[Request]] = [[] for _ in range(num_parts)]
    for request, assignment in zip(trace.requests, assignments, strict=True):
        if assignment is None:
            continue
        if not 0 <= assignment < num_parts:
            raise ValueError(
                f"assignment {assignment} for request {request.request_id} is outside "
                f"[0, {num_parts})"
            )
        buckets[assignment].append(request)
    return [
        RequestTrace(dataset=trace.dataset, requests=tuple(bucket)) for bucket in buckets
    ]


# -- trace sources for the declarative experiment API ------------------------
#
# Registered factories take (spec: TraceSpec, context_window, seed) and
# return the base trace; the API layer then applies the arrival process,
# session assignment and priority tagging uniformly across sources.


def _dataset_trace(spec: TraceSpec, context_window: int, seed: int) -> RequestTrace:
    """Sample a trace from a registered dataset's context distribution."""
    return generate_trace(
        get_dataset(spec.dataset),
        num_requests=spec.num_requests,
        seed=seed,
        context_window=context_window,
        output_tokens=spec.output_tokens,
    )


def _synthetic_trace(spec: TraceSpec, context_window: int, seed: int) -> RequestTrace:
    """Fixed-shape requests, optionally with every N-th request made heavy.

    ``heavy_every`` reproduces the skewed-context scenarios used to stress
    capacity-aware routing; the seed is unused (the trace is deterministic)
    but kept in the signature so all sources share it.
    """
    del seed
    output = spec.output_tokens if spec.output_tokens else 32
    # Only two request shapes exist; validating one Request per shape keeps
    # the exact constructor errors while the remaining n-2 instances take
    # the bulk path.
    normal = Request(
        request_id=0,
        prompt_tokens=min(spec.prompt_tokens, context_window),
        output_tokens=output,
    ).prompt_tokens
    heavy_prompt = normal
    if spec.heavy_every > 0:
        heavy_prompt = Request(
            request_id=0,
            prompt_tokens=min(spec.heavy_prompt_tokens, context_window),
            output_tokens=output,
        ).prompt_tokens
    requests = tuple(
        _fast_request(
            request_id=index,
            prompt_tokens=(
                heavy_prompt
                if spec.heavy_every > 0 and index % spec.heavy_every == 0
                else normal
            ),
            output_tokens=output,
        )
        for index in range(spec.num_requests)
    )
    return RequestTrace(dataset="synthetic", requests=requests)


def _multi_turn_source(spec: TraceSpec, context_window: int, seed: int) -> RequestTrace:
    """Multi-turn conversations; sessions and (optional) arrivals are built in.

    ``trace.num_sessions`` and ``trace.turns_per_session`` shape the
    conversation set; ``trace.num_requests`` must equal their product (a
    silently ignored count would make sweeps over it meaningless and the
    report's ``num_requests`` wrong).  The experiment API skips its own
    random session assignment because this source already tags every
    request.
    """
    if spec.num_sessions <= 0:
        raise ValueError(
            "trace.num_sessions must be positive for the 'multi-turn' source, "
            f"got {spec.num_sessions}"
        )
    if spec.turns_per_session <= 0:
        raise ValueError(
            "trace.turns_per_session must be positive for the 'multi-turn' source, "
            f"got {spec.turns_per_session}"
        )
    product = spec.num_sessions * spec.turns_per_session
    if spec.num_requests != product:
        raise ValueError(
            "trace.num_requests must equal trace.num_sessions * "
            f"trace.turns_per_session (= {product}) for the 'multi-turn' "
            f"source, got {spec.num_requests}"
        )
    return multi_turn_trace(
        num_sessions=spec.num_sessions,
        turns_per_session=spec.turns_per_session,
        first_prompt_tokens=spec.prompt_tokens,
        followup_tokens=spec.followup_tokens,
        output_tokens=spec.output_tokens if spec.output_tokens else 32,
        seed=seed,
        context_window=context_window,
        turn_gap_s=spec.turn_gap_s,
    )


register_trace("dataset", _dataset_trace)
register_trace("synthetic", _synthetic_trace)
register_trace("multi-turn", _multi_turn_source)


# -- arrival processes for the declarative experiment API ---------------------
#
# Registered factories take (trace, spec: ArrivalSpec, seed) and return the
# trace with arrival timestamps attached.  They are thin adapters over the
# helpers above, so spec-driven arrivals stay equivalence-pinned against
# direct helper calls with the same derived seed.


def _poisson_process(trace: RequestTrace, spec: ArrivalSpec, seed: int) -> RequestTrace:
    """Homogeneous Poisson arrivals at ``spec.rate_rps``."""
    return poisson_arrivals(trace, spec.rate_rps, seed=seed)


def _replay_process(trace: RequestTrace, spec: ArrivalSpec, seed: int) -> RequestTrace:
    """Explicit timestamps from ``spec.times`` (monotonic, one per request)."""
    del seed  # replay is deterministic
    return replay_arrivals(trace, spec.times or ())


def _diurnal_process(trace: RequestTrace, spec: ArrivalSpec, seed: int) -> RequestTrace:
    """Sinusoidally-modulated Poisson arrivals (diurnal load)."""
    return diurnal_arrivals(
        trace,
        base_rate_rps=spec.rate_rps,
        period_s=spec.period_s,
        amplitude=spec.amplitude,
        phase_s=spec.phase_s,
        seed=seed,
    )


def _burst_process(trace: RequestTrace, spec: ArrivalSpec, seed: int) -> RequestTrace:
    """Poisson arrivals with flash-crowd multiplier windows."""
    return burst_arrivals(
        trace,
        base_rate_rps=spec.rate_rps,
        bursts=[(burst.start_s, burst.duration_s, burst.multiplier) for burst in spec.bursts],
        seed=seed,
    )


def _warped_replay_process(trace: RequestTrace, spec: ArrivalSpec, seed: int) -> RequestTrace:
    """Replayed timestamps passed through a piecewise time-dilation profile."""
    del seed  # warped replay is deterministic
    return warped_replay_arrivals(
        trace,
        spec.times or (),
        phases=[(phase.start_s, phase.factor) for phase in spec.warp],
    )


register_arrival_process("poisson", _poisson_process)
register_arrival_process("replay", _replay_process)
register_arrival_process("diurnal", _diurnal_process)
register_arrival_process("burst", _burst_process)
register_arrival_process("trace-warped", _warped_replay_process)
