"""Preemption policies and cost models for the KV lifecycle contract.

When the engine runs under the incremental allocation contract
(:class:`~repro.serving.interfaces.KVLifecycle` with ``reserve`` of only
the current context), a request can hit
:class:`~repro.memory.lifecycle.CapacityExceeded` mid-decode.  The engine
then asks the active :class:`PreemptionPolicy` for a *victim*: an active
request whose chunks are paged out (``allocator.preempt``) so the grower
can continue.  Victims are re-queued through admission and restored
(``allocator.restore``) once capacity frees up, with the page-out /
page-in work priced by a :class:`PreemptionCostModel` and charged to the
simulation clock.

Policies self-register into the experiment API, so specs select them as
``{"preemption": {"policy": "evict-lru"}}`` and new ones plug in with one
:func:`repro.api.register_preemption_policy` call:

* ``none`` -- never preempt; the engine keeps the legacy
  admit-to-completion contract (final context committed at admission),
  pinning pre-lifecycle behaviour exactly.
* ``evict-lru`` -- evict the request that least recently made decode
  progress (ties: earliest admitted).  Freshly restored requests look
  recently used, so the policy round-robins pressure instead of beating
  one victim forever.
* ``evict-largest`` -- evict the request holding the most context; frees
  the most chunks per eviction, at the cost of penalising long contexts.
* ``evict-youngest`` -- evict the most recently admitted request
  (vLLM-style: the least compute is wasted by rolling back the newest
  work).
* ``evict-priority-lru`` / ``evict-priority-largest`` /
  ``evict-priority-youngest`` -- tier-aware variants: victims are drawn
  from the lowest :attr:`PreemptionCandidate.priority` present, with the
  base discipline breaking ties inside that class.  Best-effort traffic
  therefore absorbs capacity pressure before premium traffic is touched.

Cross-tier fairness: :attr:`PreemptionConfig.starvation_limit` caps how
often any one request may be victimised -- candidates already preempted
that many times are withheld from the policy while other candidates
remain, so a saturating premium flood cannot evict the same best-effort
request forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Protocol, runtime_checkable

from repro.api.registry import register_preemption_policy
from repro.memory.lifecycle import PREEMPTION_COST_MODES, PreemptedState
from repro.serving.prefill import PrefillModel


@dataclass(frozen=True)
class PreemptionCandidate:
    """One active request as seen by a preemption policy.

    Attributes:
        request_id: The candidate request.
        context_tokens: Live context (KV tokens the eviction would free).
        admitted_s: Clock time of the most recent admission or restore.
        last_decode_s: Clock time of the most recent decode progress.
        priority: Scheduling priority (larger is more urgent); consulted
            by the ``evict-priority-*`` policies.
        preemptions: Times this request has already been evicted; consulted
            by the engine's anti-starvation guard.
    """

    request_id: int
    context_tokens: int
    admitted_s: float
    last_decode_s: float
    priority: int = 0
    preemptions: int = 0


@runtime_checkable
class PreemptionPolicy(Protocol):
    """Picks the victim that resolves a ``CapacityExceeded`` grow."""

    #: Short policy name used in results and reports.
    name: str

    def select(self, candidates: Sequence[PreemptionCandidate]) -> int | None:
        """Return the ``request_id`` to evict, or ``None`` to refuse.

        ``candidates`` never contains the growing request itself (evicting
        it would not let it grow); an empty sequence means nothing can be
        evicted and the engine fails the grow.
        """
        ...


class NoPreemption:
    """Never evict; the engine keeps the admit-to-completion contract."""

    name = "none"

    def select(self, candidates: Sequence[PreemptionCandidate]) -> int | None:
        return None


class EvictLRU:
    """Evict the request that least recently made decode progress."""

    name = "evict-lru"

    def select(self, candidates: Sequence[PreemptionCandidate]) -> int | None:
        if not candidates:
            return None
        victim = min(
            candidates,
            key=lambda c: (c.last_decode_s, c.admitted_s, c.request_id),
        )
        return victim.request_id


class EvictLargest:
    """Evict the request holding the most context (frees the most chunks)."""

    name = "evict-largest"

    def select(self, candidates: Sequence[PreemptionCandidate]) -> int | None:
        if not candidates:
            return None
        victim = max(
            candidates,
            key=lambda c: (c.context_tokens, -c.admitted_s, -c.request_id),
        )
        return victim.request_id


class EvictYoungest:
    """Evict the most recently admitted request (least compute wasted)."""

    name = "evict-youngest"

    def select(self, candidates: Sequence[PreemptionCandidate]) -> int | None:
        if not candidates:
            return None
        victim = max(
            candidates,
            key=lambda c: (c.admitted_s, c.request_id),
        )
        return victim.request_id


class EvictPriorityLRU:
    """Evict the least-recently-active request of the lowest priority class.

    Victim order is lexicographic: lowest :attr:`PreemptionCandidate.priority`
    first, then least recent decode progress (the :class:`EvictLRU`
    discipline) inside that class -- so premium requests are only touched
    once no lower-priority candidate remains.
    """

    name = "evict-priority-lru"

    def select(self, candidates: Sequence[PreemptionCandidate]) -> int | None:
        if not candidates:
            return None
        victim = min(
            candidates,
            key=lambda c: (c.priority, c.last_decode_s, c.admitted_s, c.request_id),
        )
        return victim.request_id


class EvictPriorityLargest:
    """Evict the largest-context request of the lowest priority class."""

    name = "evict-priority-largest"

    def select(self, candidates: Sequence[PreemptionCandidate]) -> int | None:
        if not candidates:
            return None
        victim = min(
            candidates,
            key=lambda c: (c.priority, -c.context_tokens, c.admitted_s, c.request_id),
        )
        return victim.request_id


class EvictPriorityYoungest:
    """Evict the most recently admitted request of the lowest priority class."""

    name = "evict-priority-youngest"

    def select(self, candidates: Sequence[PreemptionCandidate]) -> int | None:
        if not candidates:
            return None
        victim = min(
            candidates,
            key=lambda c: (c.priority, -c.admitted_s, -c.request_id),
        )
        return victim.request_id


# Self-registration: preemption policies plug into ExperimentSpec by name.
register_preemption_policy("none", NoPreemption)
register_preemption_policy("evict-lru", EvictLRU)
register_preemption_policy("evict-largest", EvictLargest)
register_preemption_policy("evict-youngest", EvictYoungest)
register_preemption_policy("evict-priority-lru", EvictPriorityLRU)
register_preemption_policy("evict-priority-largest", EvictPriorityLargest)
register_preemption_policy("evict-priority-youngest", EvictPriorityYoungest)


@dataclass(frozen=True)
class PreemptionCostModel:
    """Prices page-out and page-in work on the simulation clock.

    Two disciplines:

    * ``"swap"`` -- the victim's live KV bytes are copied to host memory
      at eviction and back at restore, both at ``swap_bandwidth_bytes_per_s``
      (PCIe/CXL-style paging; the KV survives, nothing is recomputed).
    * ``"recompute"`` -- eviction just drops the chunks (free); the restore
      re-runs prefill over the victim's saved context.  The engine charges
      the configured prefill model when one is attached, falling back to
      ``recompute_per_token_s`` per token otherwise, and reports the
      re-prefilled tokens as ``recompute_tokens``.
    """

    mode: str = "recompute"
    swap_bandwidth_bytes_per_s: float = 64e9
    recompute_per_token_s: float = 0.0

    def __post_init__(self) -> None:
        if self.mode not in PREEMPTION_COST_MODES:
            raise ValueError(f"mode must be one of {PREEMPTION_COST_MODES}, got {self.mode!r}")
        if self.swap_bandwidth_bytes_per_s <= 0:
            raise ValueError("swap_bandwidth_bytes_per_s must be positive")
        if self.recompute_per_token_s < 0:
            raise ValueError("recompute_per_token_s must be non-negative")

    def evict_seconds(self, state: PreemptedState) -> float:
        """Clock charge for paging a victim out."""
        if self.mode == "swap":
            return state.kv_bytes / self.swap_bandwidth_bytes_per_s
        return 0.0

    def restore_seconds(
        self,
        state: PreemptedState,
        prefill_model: PrefillModel | None = None,
        cached_tokens: int = 0,
    ) -> float:
        """Clock charge for bringing a victim back.

        ``cached_tokens`` is the prefix a
        :class:`~repro.serving.prefix_cache.PrefixCache` still holds for
        the victim's session: recompute-mode restores re-prefill only the
        uncached suffix (swap restores page the full KV either way).
        """
        if self.mode == "swap":
            return state.kv_bytes / self.swap_bandwidth_bytes_per_s
        cached = min(max(cached_tokens, 0), state.tokens)
        if prefill_model is not None:
            return prefill_model.cumulative_seconds(
                state.tokens
            ) - prefill_model.cumulative_seconds(cached)
        return self.recompute_per_token_s * (state.tokens - cached)

    def restore_recompute_tokens(self, state: PreemptedState, cached_tokens: int = 0) -> int:
        """Tokens re-prefilled by a restore (zero under swap)."""
        if self.mode != "recompute":
            return 0
        return state.tokens - min(max(cached_tokens, 0), state.tokens)


@dataclass(frozen=True)
class PreemptionConfig:
    """Preemption behaviour of one serving engine: policy plus cost model.

    Attaching a config whose policy is not ``"none"`` flips the engine to
    the incremental lifecycle contract: admission checks the *prompt*
    instead of the final context, requests grow chunk by chunk, and
    capacity pressure is resolved by evicting victims instead of refusing
    admissions.

    ``starvation_limit`` is the cross-tier anti-starvation knob: before
    the policy sees the candidate list, the engine withholds requests
    already preempted ``starvation_limit`` or more times -- unless every
    candidate is over the limit, in which case the full list is offered so
    a grow never fails purely because of the guard.  ``None`` disables the
    guard (bit-compatible with pre-tier victim selection).
    """

    policy: PreemptionPolicy
    cost: PreemptionCostModel = PreemptionCostModel()
    starvation_limit: int | None = None

    def __post_init__(self) -> None:
        if self.starvation_limit is not None and (
            not isinstance(self.starvation_limit, int)
            or isinstance(self.starvation_limit, bool)
            or self.starvation_limit <= 0
        ):
            raise ValueError(
                f"starvation_limit must be a positive integer or None, "
                f"got {self.starvation_limit!r}"
            )

    @property
    def active(self) -> bool:
        """Whether this config actually preempts (policy is not "none")."""
        return self.policy.name != NoPreemption.name

    def eligible(self, candidates: Sequence[PreemptionCandidate]) -> Sequence[PreemptionCandidate]:
        """Apply the anti-starvation guard to a candidate list."""
        if self.starvation_limit is None:
            return candidates
        fresh = [c for c in candidates if c.preemptions < self.starvation_limit]
        return fresh if fresh else candidates


__all__ = [
    "PREEMPTION_COST_MODES",
    "PreemptionCandidate",
    "PreemptionPolicy",
    "NoPreemption",
    "EvictLRU",
    "EvictLargest",
    "EvictYoungest",
    "EvictPriorityLRU",
    "EvictPriorityLargest",
    "EvictPriorityYoungest",
    "PreemptionCostModel",
    "PreemptionConfig",
]
