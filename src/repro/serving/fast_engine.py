"""Vectorized batch-stepping serving engine (event-point spans).

:class:`FastServingEngine` serves the same traces as
:class:`~repro.serving.engine.ServingEngine` with identical arithmetic but
advances *spans* of uneventful decode evaluations at once instead of one
evaluation per Python iteration.  Between event points -- the next arrival
crossing, the next completion, the next possible grow failure, a blocking
prefill becoming ready, or any chunked-prefill work -- batch membership is
constant and every decoding request advances uniformly by ``step_stride``
tokens per evaluation.  Over such a span:

* the per-evaluation latencies form a closed-form sequence on systems whose
  decode step is batch-plus-context-sum shaped (``xpu-only``, ``gpu``),
  exposed as ``decode_span`` and evaluated in one numpy call;
* clock/busy accumulation, capacity sampling and batch statistics reduce to
  a tight scalar loop over precomputed latencies (sequential float adds in
  the scalar engine's exact association order, so results are bit-equal);
* per-request bookkeeping (KV grow, context/remaining counters, tracker
  stamps, completions) collapses to one update per request per span.

N requests times K decode steps therefore cost O(events) Python iterations
plus O(evaluations) float additions, instead of O(N * K) full Python
iterations.  Spans are *provably* uneventful before they run: completions
bound the span length, arrival/ready crossings truncate it on the exact
evaluation the scalar engine would observe them, and a chunked-allocator
pre-check (monotone committed-chunk demand vs. total chunks) guarantees no
``CapacityExceeded`` inside the span.  Any iteration that cannot be proven
uneventful -- pending chunked prefill, a possible grow failure, a reduced
final stride -- falls back to the scalar engine's single-evaluation body,
so preemption storms and prefill interleaving replay the scalar arithmetic
verbatim.

Arrival timestamps are opaque to the span machinery: the next pending
arrival is an event point wherever it falls, so traces stamped by any
arrival process (diurnal, burst, warped replay) and the fleet timeline's
failure re-dispatches (victims re-arriving mid-run at the failure time)
need no special handling -- spans simply truncate at those instants, and
scalar/fast parity holds for dynamic fleets exactly as for static ones.

The scalar engine remains authoritative: ``tests/serving/test_fast_engine.py``
pins the two engines' full ``RunReport`` output against each other (to
1e-9, observed exact) on every shipped example spec and on randomized
admission x preemption x prefill x prefix-cache configurations.  Systems
without ``decode_span`` (HFP-packed or multi-stage PIM pipelines, whose
greedy placement is order-dependent; TCP single-stage PIM systems install a
memoized closed form) and runs with a :class:`StepLatencyCache` attached
price every evaluation individually inside the span, keeping cache counters
and utilization/breakdown accumulation identical while still amortising the
per-request bookkeeping.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro.memory.chunked_alloc import ChunkedAllocator
from repro.memory.static_alloc import AllocationError
from repro.pim.simulator import ZERO_BREAKDOWN
from repro.serving.admission import AdmissionCandidate
from repro.serving.engine import EngineResult, ServingEngine, _ActiveRequest, _PreemptedRequest
from repro.serving.interfaces import allocator_for
from repro.serving.lifecycle import LifecycleTracker
from repro.workloads.traces import RequestTrace

#: Hard ceiling on evaluations planned per span (bounds wasted latency work
#: when a crossing truncates the span, and the capacity pre-check's cost).
_SPAN_LIMIT = 4096
#: Floor of the adaptive span-length hint.
_MIN_HINT = 16


@dataclass
class FastServingEngine(ServingEngine):
    """Drop-in :class:`ServingEngine` with vectorized uneventful spans.

    Construction, policies, and every reported metric match the scalar
    engine; only the wall-clock cost of ``run`` changes.  See the module
    docstring for the event-point discretisation and the parity argument.
    """

    def _span_capacity_cap(
        self,
        allocator: ChunkedAllocator,
        decoding: list[_ActiveRequest],
        stride: int,
        n_max: int,
    ) -> int:
        """Longest prefix of ``n_max`` uniform grows provably free of failure.

        Under the incremental lifecycle contract a chunked allocator may
        raise ``CapacityExceeded`` mid-span.  Total committed demand after
        evaluation ``j`` is ``sum_i max(committed_i, chunks_needed(c_i +
        (j+1) * stride))`` plus the (constant) commitment of non-decoding
        requests; it is monotone in ``j`` and bounds every intra-evaluation
        prefix state, so all grows through evaluation ``j`` succeed iff the
        end-of-``j`` total fits ``total_chunks``.  Returns 0 when even the
        first evaluation may fail (the caller then runs the scalar
        grow-or-evict path).
        """
        bytes_per_token = allocator.bytes_per_token
        chunk_bytes = allocator.chunk_bytes
        total = allocator.total_chunks
        committed = np.array(
            [allocator.committed_chunks_for(entry.request_id) for entry in decoding],
            dtype=np.int64,
        )
        contexts = np.array([entry.context for entry in decoding], dtype=np.int64)
        other = allocator.committed_chunk_count - int(committed.sum())

        def fits_through(j: int) -> bool:
            tokens = contexts + (j + 1) * stride
            need = (tokens * bytes_per_token + chunk_bytes - 1) // chunk_bytes
            return int(np.maximum(need, committed).sum()) + other <= total

        if fits_through(n_max - 1):
            return n_max
        if not fits_through(0):
            return 0
        # Largest n with fits_through(n - 1); demand is monotone in j.
        lo, hi = 1, n_max - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if fits_through(mid):
                lo = mid + 1
            else:
                hi = mid
        return lo

    # -- main loop ---------------------------------------------------------

    def run(self, trace: RequestTrace, system_name: str = "") -> EngineResult:
        """Serve ``trace`` to completion; same contract as the scalar engine.

        Raises:
            AllocationError: exactly when :meth:`ServingEngine.run` would.
        """
        allocator = allocator_for(self.system)
        future = self._candidates(trace)
        arrived: deque[AdmissionCandidate] = deque()
        active: dict[int, _ActiveRequest] = {}
        preempted: deque[_PreemptedRequest] = deque()
        lifecycle = self.lifecycle_admission
        chunked_lifecycle = lifecycle and isinstance(allocator, ChunkedAllocator)
        preemption_count = 0
        preemption_overhead_s = 0.0
        preemption_budget = 1000 + 100 * len(trace.requests)
        tracker = LifecycleTracker()
        for candidate in future:
            tracker.on_arrival(
                candidate.request_id,
                candidate.prompt_tokens,
                candidate.decode_tokens,
                candidate.arrival_s,
                priority=candidate.priority,
                tier=candidate.request.tier,
                ttft_deadline_s=candidate.request.ttft_deadline_s,
                tpot_deadline_s=candidate.request.tpot_deadline_s,
            )
        records = tracker.records

        clock = 0.0
        busy_seconds = 0.0
        idle_seconds = 0.0
        total_tokens = 0
        steps = 0
        served = 0
        dropped: list[int] = []
        if self.latency_cache is not None:
            cache_hits_before = self.latency_cache.hits
            cache_misses_before = self.latency_cache.misses
        prefix_before = self.prefix_cache.stats() if self.prefix_cache is not None else None
        peak_batch = 0
        # Running sums replace the scalar engine's per-evaluation sample
        # lists; each is accumulated per evaluation in the same order, so
        # the final means are bit-equal to summing the lists.
        batch_sum = 0.0
        eval_count = 0
        utilization_sum = 0.0
        capacity_sum = 0.0
        capacity_count = 0
        attention_total = ZERO_BREAKDOWN
        fc_total = ZERO_BREAKDOWN

        span_fn = getattr(self.system, "decode_span", None)
        if self.latency_cache is not None:
            span_fn = None  # cache counters require per-evaluation pricing
        # Per-evaluation PIM utilization of a span step: a constant of the
        # system (0.0 for xpu-only, 1.0 for TCP PIM), accumulated in the
        # span path to match the scalar engine's per-step samples.
        span_util = getattr(self.system, "decode_span_utilization", 0.0)
        span_hint = 64
        cap_enabled = allocator.capacity_bytes > 0
        capacity_bytes = allocator.capacity_bytes

        admission_dirty = True

        while future or arrived or active or preempted:
            while future and future[0].arrival_s <= clock:
                arrived.append(future.popleft())
                admission_dirty = True

            if admission_dirty:
                admitted_now, restore_overhead_s = self._admit(
                    arrived, active, allocator, tracker, clock, preempted
                )
                served += admitted_now
                if restore_overhead_s:
                    busy_seconds += restore_overhead_s
                    clock += restore_overhead_s
                    preemption_overhead_s += restore_overhead_s
                admission_dirty = False

            if not active:
                if arrived:
                    if self.admission.head_of_line:
                        head = next(iter(self.admission.order(tuple(arrived))))
                        raise AllocationError(
                            f"head-of-line request {head.request_id} "
                            f"({head.final_tokens} tokens) can never fit the "
                            "system's KV-cache capacity and blocks the queue; "
                            "increase capacity, shorten the request, or use a "
                            "skip-over admission policy"
                        )
                    dropped.extend(candidate.request_id for candidate in arrived)
                    arrived.clear()
                    continue
                if future:
                    idle_seconds += future[0].arrival_s - clock
                    clock = future[0].arrival_s
                    continue
                if preempted:
                    raise AllocationError(
                        f"{len(preempted)} preempted request(s) can never be "
                        "restored; the allocator is empty yet rejects them"
                    )
                break

            prefill_step_seconds = 0.0
            prefill_tokens_processed = 0
            if self.prefill is not None and self.prefill.chunk_tokens is not None:
                budget = self.prefill.chunk_tokens
                for entry in active.values():
                    if budget <= 0:
                        break
                    pending = entry.prefill_total - entry.prefill_done
                    if pending <= 0:
                        continue
                    take = min(pending, budget)
                    marginal = self.prefill.model.cumulative_seconds(
                        entry.prefill_done + take
                    ) - self.prefill.model.cumulative_seconds(entry.prefill_done)
                    entry.prefill_done += take
                    budget -= take
                    prefill_step_seconds += marginal
                    prefill_tokens_processed += take
                    tracker.on_prefill(entry.request_id, marginal)

            if self.prefill is None:
                decoding = list(active.values())
            else:
                decoding = [entry for entry in active.values() if entry.decode_ready(clock)]

            if not decoding:
                if prefill_tokens_processed > 0:
                    busy_seconds += prefill_step_seconds
                    clock += prefill_step_seconds
                    continue
                next_event = min(entry.ready_s for entry in active.values())
                if future:
                    next_event = min(next_event, future[0].arrival_s)
                idle_seconds += next_event - clock
                clock = next_event
                continue

            if prefill_tokens_processed:
                stride = 1
            else:
                stride = min(self.step_stride, min(entry.remaining for entry in decoding))

            # -- span planning --------------------------------------------
            # How many uniform evaluations can run before anything *can*
            # change batch membership?  Completions bound the count (and may
            # only land on the span's final evaluation); possible chunked
            # grow failures force the scalar path; arrival / prefill-ready
            # crossings truncate during execution.
            n_plan = 1
            if not prefill_tokens_processed and stride == self.step_stride:
                min_remaining = min(entry.remaining for entry in decoding)
                n_plan = min(min_remaining // stride, span_hint, _SPAN_LIMIT)
                if n_plan > 1 and chunked_lifecycle:
                    n_plan = self._span_capacity_cap(allocator, decoding, stride, n_plan)

            if n_plan <= 1:
                # -- scalar evaluation (event possible): replay the scalar
                # engine's per-evaluation body verbatim.
                contexts = [entry.context for entry in decoding]
                if self.latency_cache is not None:
                    step = self.latency_cache.evaluate(self.system, contexts)
                else:
                    step = self.system.decode_step(contexts)

                busy_seconds += step.seconds * stride + prefill_step_seconds
                clock += step.seconds * stride + prefill_step_seconds
                total_tokens += len(decoding) * stride
                steps += stride
                batch_sum += float(len(decoding))
                eval_count += 1
                utilization_sum += step.pim_utilization
                peak_batch = max(peak_batch, len(decoding))
                attention_total = attention_total + step.attention_breakdown.scaled(stride)
                fc_total = fc_total + step.fc_breakdown.scaled(stride)
                if cap_enabled:
                    capacity_sum += allocator.used_bytes / capacity_bytes
                    capacity_count += 1

                if lifecycle:
                    finished_any = False
                    preempted_now: set[int] = set()
                    evict_overhead_s = 0.0
                    lost_tokens = 0
                    for entry in decoding:
                        if entry.request_id in preempted_now:
                            lost_tokens += stride
                            continue
                        evict_overhead_s += self._grow_or_evict(
                            entry,
                            stride,
                            active,
                            allocator,
                            tracker,
                            clock,
                            preempted,
                            preempted_now,
                        )
                        entry.context += stride
                        entry.remaining -= stride
                        entry.last_step_s = clock
                        tracker.on_tokens(entry.request_id, stride, clock, step.seconds)
                        if entry.remaining <= 0:
                            allocator.release(entry.request_id)
                            del active[entry.request_id]
                            tracker.on_finish(entry.request_id, clock)
                            if self.prefix_cache is not None and entry.session is not None:
                                self.prefix_cache.insert(entry.session, entry.context)
                            finished_any = True
                    total_tokens -= lost_tokens
                    preemption_count += len(preempted_now)
                    if preemption_count > preemption_budget:
                        raise AllocationError(
                            f"{preemption_count} preemptions exceed the livelock "
                            f"guard ({preemption_budget}); the policy "
                            f"{self.preemption.policy.name!r} is thrashing"
                        )
                    if evict_overhead_s:
                        busy_seconds += evict_overhead_s
                        clock += evict_overhead_s
                        preemption_overhead_s += evict_overhead_s
                    if finished_any or preempted_now:
                        admission_dirty = True
                else:
                    finished: list[_ActiveRequest] = []
                    for entry in decoding:
                        allocator.append_token(entry.request_id, stride)
                        entry.context += stride
                        entry.remaining -= stride
                        tracker.on_tokens(entry.request_id, stride, clock, step.seconds)
                        if entry.remaining <= 0:
                            finished.append(entry)
                    for entry in finished:
                        allocator.release(entry.request_id)
                        del active[entry.request_id]
                        tracker.on_finish(entry.request_id, clock)
                        if self.prefix_cache is not None and entry.session is not None:
                            self.prefix_cache.insert(entry.session, entry.context)
                    if finished:
                        admission_dirty = True
                continue

            # -- span execution (n_plan >= 2 provably uneventful evals) ----
            batch = len(decoding)
            threshold = math.inf
            if future:
                threshold = future[0].arrival_s
            if self.prefill is not None and len(decoding) < len(active):
                # Only blocking-style prefill can park requests here: any
                # pending chunked prefill forces the scalar path above.
                threshold = min(
                    threshold,
                    min(
                        entry.ready_s
                        for entry in active.values()
                        if not entry.decode_ready(clock)
                    ),
                )

            contexts = [entry.context for entry in decoding]
            if cap_enabled:
                used_bytes = allocator.used_bytes
                used_increment = batch * stride * allocator.bytes_per_token

            executed = 0
            first_eval_end = 0.0
            first_eval_seconds = 0.0
            if span_fn is not None:
                # Closed-form systems: all latencies in one vectorized call,
                # then a tight scalar loop for the (order-sensitive) float
                # accumulation and the crossing check.  Spans of these
                # systems carry zero breakdowns and a constant per-step
                # utilization.
                seconds = span_fn(contexts, stride, n_plan).tolist()
                for j in range(n_plan):
                    advance = seconds[j] * stride + prefill_step_seconds
                    busy_seconds += advance
                    clock += advance
                    utilization_sum += span_util
                    if cap_enabled:
                        capacity_sum += (used_bytes + j * used_increment) / capacity_bytes
                    if j == 0:
                        first_eval_end = clock
                    executed = j + 1
                    if clock >= threshold:
                        break
                first_eval_seconds = seconds[0]
            else:
                # Order-dependent systems (PIM pipelines) or an attached
                # latency cache: price each evaluation individually but keep
                # the per-request bookkeeping amortised over the span.
                for j in range(n_plan):
                    step_contexts = (
                        contexts if j == 0 else [context + stride * j for context in contexts]
                    )
                    if self.latency_cache is not None:
                        step = self.latency_cache.evaluate(self.system, step_contexts)
                    else:
                        step = self.system.decode_step(step_contexts)
                    advance = step.seconds * stride + prefill_step_seconds
                    busy_seconds += advance
                    clock += advance
                    utilization_sum += step.pim_utilization
                    attention_total = attention_total + step.attention_breakdown.scaled(stride)
                    fc_total = fc_total + step.fc_breakdown.scaled(stride)
                    if cap_enabled:
                        capacity_sum += (used_bytes + j * used_increment) / capacity_bytes
                    if j == 0:
                        first_eval_seconds = step.seconds
                        first_eval_end = clock
                    executed = j + 1
                    if clock >= threshold:
                        break

            n_span = executed
            grown = stride * n_span
            if cap_enabled:
                capacity_count += n_span
            eval_count += n_span
            batch_sum += float(batch * n_span)
            steps += stride * n_span
            total_tokens += batch * grown
            peak_batch = max(peak_batch, batch)

            if lifecycle:
                finished_any = False
                for entry in decoding:
                    allocator.grow(entry.request_id, grown)
                    entry.context += grown
                    entry.remaining -= grown
                    entry.last_step_s = clock
                    record = records[entry.request_id]
                    if record.generated == 0:
                        record.first_token_s = first_eval_end - first_eval_seconds * (
                            stride - 1
                        )
                    record.generated += grown
                    if entry.remaining <= 0:
                        allocator.release(entry.request_id)
                        del active[entry.request_id]
                        record.finish_s = clock
                        if self.prefix_cache is not None and entry.session is not None:
                            self.prefix_cache.insert(entry.session, entry.context)
                        finished_any = True
                if finished_any:
                    admission_dirty = True
            else:
                finished = []
                for entry in decoding:
                    allocator.append_token(entry.request_id, grown)
                    entry.context += grown
                    entry.remaining -= grown
                    record = records[entry.request_id]
                    if record.generated == 0:
                        record.first_token_s = first_eval_end - first_eval_seconds * (
                            stride - 1
                        )
                    record.generated += grown
                    if entry.remaining <= 0:
                        finished.append(entry)
                for entry in finished:
                    allocator.release(entry.request_id)
                    del active[entry.request_id]
                    records[entry.request_id].finish_s = clock
                    if self.prefix_cache is not None and entry.session is not None:
                        self.prefix_cache.insert(entry.session, entry.context)
                if finished:
                    admission_dirty = True

            # Adapt the hint: grow after full spans, shrink after truncated
            # ones.  Affects only how much latency work a crossing wastes,
            # never any result.
            if n_span >= n_plan:
                span_hint = min(_SPAN_LIMIT, span_hint * 2)
            else:
                span_hint = max(_MIN_HINT, 2 * n_span)

        def _ratio(total: float, count: int) -> float:
            return total / count if count else 0.0

        metadata: dict = {}
        if dropped:
            metadata["dropped_request_ids"] = dropped
        if self.latency_cache is not None:
            hits = self.latency_cache.hits - cache_hits_before
            misses = self.latency_cache.misses - cache_misses_before
            lookups = hits + misses
            metadata["latency_cache"] = {
                "bucket_tokens": self.latency_cache.bucket_tokens,
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / lookups if lookups else 0.0,
            }

        prefix_hits = prefix_misses = prefix_hit_tokens = prefix_evictions = 0
        if self.prefix_cache is not None and prefix_before is not None:
            prefix_after = self.prefix_cache.stats()
            prefix_hits = prefix_after.hits - prefix_before.hits
            prefix_misses = prefix_after.misses - prefix_before.misses
            prefix_hit_tokens = prefix_after.hit_tokens - prefix_before.hit_tokens
            prefix_evictions = prefix_after.evictions - prefix_before.evictions

        return EngineResult(
            system_name=system_name or type(self.system).__name__,
            dataset=trace.dataset,
            total_output_tokens=total_tokens,
            total_seconds=busy_seconds,
            steps=steps,
            average_batch_size=_ratio(batch_sum, eval_count),
            peak_batch_size=peak_batch,
            average_pim_utilization=_ratio(utilization_sum, eval_count),
            average_capacity_utilization=_ratio(capacity_sum, capacity_count),
            attention_breakdown=attention_total,
            fc_breakdown=fc_total,
            total_pim_channels=self.system.total_pim_channels,
            requests_served=served,
            metadata=metadata,
            makespan_s=clock,
            idle_seconds=idle_seconds,
            admission_policy=self.admission.name,
            latency=tracker.stats(),
            request_records=tuple(tracker.records[key] for key in sorted(tracker.records)),
            requests_dropped=len(dropped),
            prefill_mode=self.prefill.mode if self.prefill is not None else "none",
            prefill_seconds_total=sum(
                record.prefill_s for record in tracker.records.values()
            ),
            preemption_policy=(
                self.preemption.policy.name if self.preemption is not None else "none"
            ),
            preemptions=preemption_count,
            preemption_overhead_s=preemption_overhead_s,
            recompute_tokens=sum(
                record.recompute_tokens for record in tracker.records.values()
            ),
            requeue_delay_mean_s=(
                sum(record.stall_s for record in tracker.records.values()) / preemption_count
                if preemption_count
                else 0.0
            ),
            prefix_cache_enabled=self.prefix_cache is not None,
            prefix_hits=prefix_hits,
            prefix_misses=prefix_misses,
            prefix_hit_tokens=prefix_hit_tokens,
            prefix_evictions=prefix_evictions,
        )
