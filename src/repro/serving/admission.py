"""Admission policies: which waiting request gets the next free KV slot.

The engine keeps a queue of requests that have *arrived* but are not yet
*admitted*.  Each scheduling round it asks the active
:class:`AdmissionPolicy` for the order in which to try them, then admits
every candidate the allocator accepts (up to the batch-size cap).  A policy
therefore only ranks candidates; capacity checks stay in the engine, so the
same policy works with static and chunked allocators.

``head_of_line`` controls what happens when a candidate does not fit:
head-of-line policies (FCFS) stop the round, preserving strict arrival
order; skip-over policies keep trying later candidates, trading ordering
fairness for packing density.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Sequence
from typing import Protocol, runtime_checkable

from repro.api.registry import register_admission_policy
from repro.workloads.traces import Request


@dataclass(frozen=True)
class AdmissionCandidate:
    """A waiting request with its context clamped to the serving window.

    Attributes:
        request: The underlying trace request.
        prompt_tokens: Prefill context after clamping to the system window.
        final_tokens: Context length at completion, likewise clamped; this
            is the size the allocator must commit to on admission.
    """

    request: Request
    prompt_tokens: int
    final_tokens: int

    @property
    def request_id(self) -> int:
        return self.request.request_id

    @property
    def decode_tokens(self) -> int:
        """Tokens to generate; clamped so the context never outgrows
        ``final_tokens``, i.e. the allocator's reservation."""
        return self.final_tokens - self.prompt_tokens

    @property
    def arrival_s(self) -> float:
        return self.request.arrival_s

    @property
    def priority(self) -> int:
        return self.request.priority


@runtime_checkable
class AdmissionPolicy(Protocol):
    """Ranks arrived-but-waiting requests for admission attempts."""

    #: Short policy name used in results and reports.
    name: str

    #: Stop the admission round at the first candidate that does not fit
    #: (True), or skip it and keep trying later candidates (False).
    head_of_line: bool

    def order(self, waiting: Sequence[AdmissionCandidate]) -> Sequence[AdmissionCandidate]:
        """Return admission candidates in the order they should be tried."""
        ...


class FCFSAdmission:
    """First-come first-served with head-of-line blocking.

    This is the legacy ``simulate_serving`` behaviour: requests are admitted
    strictly in arrival order and a request that does not fit blocks
    everything behind it until capacity frees up.
    """

    name = "fcfs"
    head_of_line = True

    def order(self, waiting: Sequence[AdmissionCandidate]) -> Sequence[AdmissionCandidate]:
        return waiting


class CapacityAwareAdmission:
    """Admit the smallest waiting requests first, skipping ones that don't fit.

    Ordering by committed KV size packs the most concurrent requests into
    the cache, maximising batch size (and hence throughput) at the cost of
    delaying long-context requests under load.
    """

    name = "capacity-aware"
    head_of_line = False

    def order(self, waiting: Sequence[AdmissionCandidate]) -> Sequence[AdmissionCandidate]:
        return sorted(
            waiting,
            key=lambda candidate: (
                candidate.final_tokens,
                candidate.arrival_s,
                candidate.request_id,
            ),
        )


class PriorityAdmission:
    """Admit by descending :attr:`Request.priority`, then arrival order.

    Candidates that do not fit are skipped so a large high-priority request
    cannot starve admissible lower-priority work behind it.
    """

    name = "priority"
    head_of_line = False

    def order(self, waiting: Sequence[AdmissionCandidate]) -> Sequence[AdmissionCandidate]:
        return sorted(
            waiting,
            key=lambda candidate: (-candidate.priority, candidate.arrival_s, candidate.request_id),
        )


# Self-registration: admission policies plug into ExperimentSpec by name.
register_admission_policy("fcfs", FCFSAdmission)
register_admission_policy("capacity-aware", CapacityAwareAdmission)
register_admission_policy("priority", PriorityAdmission)
