"""Reactive replica autoscaler driving the fleet timeline.

The :class:`ReactiveAutoscaler` is a deliberately simple threshold
controller -- the kind production fleets actually run: every
``interval_s`` it samples one load signal over the accepting replicas and
compares it against a scale-up and a scale-down threshold, rate-limited
by a cooldown.  It decides *what* to do; the fleet timeline
(:mod:`repro.serving.fleet_events`) applies the decision, charging the
cold-start delay before a new replica accepts work and letting a drained
replica finish its in-flight requests.

Signals:

* ``"queue-depth"`` -- mean outstanding requests per accepting replica on
  the router's estimated view (the same view dispatch uses).
* ``"ttft-ewma"`` -- an EWMA over the router's *estimated*
  time-to-first-token at each dispatch (prefill estimate plus the queue
  ahead times the estimated step time).  It is a proxy for measured
  TTFT-p95: the router cannot observe true TTFTs online because segment
  engines run after dispatch, but the estimate moves with the same queue
  pressure the true percentile does.
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass

#: Decision labels recorded on the timeline.
SCALE_UP = "scale_up"
SCALE_DOWN = "scale_down"


@dataclass(frozen=True)
class ScalingDecision:
    """One autoscaler decision, recorded for the report's timeline block."""

    at_s: float
    action: str
    signal_value: float
    replicas_before: int
    replicas_after: int


class ReactiveAutoscaler:
    """Threshold controller over a queue-depth or estimated-TTFT signal.

    Args:
        signal: ``"queue-depth"`` or ``"ttft-ewma"``.
        scale_up_threshold: Signal level above which a replica is added.
        scale_down_threshold: Signal level below which one is drained.
        min_replicas: Never drain below this many accepting replicas.
        max_replicas: Never grow beyond this many provisioned replicas
            (accepting plus cold-starting).
        interval_s: Evaluation period (the timeline calls :meth:`decide`
            at this cadence).
        cooldown_s: Minimum time between two decisions.
        cold_start_s: Delay before a freshly added replica accepts work
            (applied by the fleet timeline; carried here so one object
            describes the whole controller).
        ewma_alpha: Smoothing weight of the ``"ttft-ewma"`` signal.
    """

    def __init__(
        self,
        signal: str = "queue-depth",
        scale_up_threshold: float = 4.0,
        scale_down_threshold: float = 1.0,
        min_replicas: int = 1,
        max_replicas: int = 8,
        interval_s: float = 5.0,
        cooldown_s: float = 30.0,
        cold_start_s: float = 10.0,
        ewma_alpha: float = 0.3,
    ) -> None:
        if signal not in ("queue-depth", "ttft-ewma"):
            raise ValueError(
                f"signal must be 'queue-depth' or 'ttft-ewma', got {signal!r}"
            )
        if not (scale_up_threshold > 0 and math.isfinite(scale_up_threshold)):
            raise ValueError("scale_up_threshold must be positive and finite")
        if not (scale_down_threshold >= 0 and math.isfinite(scale_down_threshold)):
            raise ValueError("scale_down_threshold must be non-negative and finite")
        if scale_down_threshold >= scale_up_threshold:
            raise ValueError(
                "scale_down_threshold must be below scale_up_threshold "
                "(equal thresholds would oscillate every interval)"
            )
        if min_replicas < 1 or max_replicas < min_replicas:
            raise ValueError("need 1 <= min_replicas <= max_replicas")
        if not (interval_s > 0 and math.isfinite(interval_s)):
            raise ValueError("interval_s must be positive and finite")
        if cooldown_s < 0 or not math.isfinite(cooldown_s):
            raise ValueError("cooldown_s must be non-negative and finite")
        if cold_start_s < 0 or not math.isfinite(cold_start_s):
            raise ValueError("cold_start_s must be non-negative and finite")
        if not 0.0 <= ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be within [0, 1]")
        self.signal = signal
        self.scale_up_threshold = scale_up_threshold
        self.scale_down_threshold = scale_down_threshold
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.interval_s = interval_s
        self.cooldown_s = cooldown_s
        self.cold_start_s = cold_start_s
        self.ewma_alpha = ewma_alpha
        self.decisions: list[ScalingDecision] = []
        self._last_decision_s = -math.inf
        self._ttft_ewma: float | None = None

    def reset(self) -> None:
        """Clear decision history and the TTFT EWMA (start of a run)."""
        self.decisions.clear()
        self._last_decision_s = -math.inf
        self._ttft_ewma = None

    def observe_ttft(self, estimate_s: float) -> None:
        """Fold one dispatch-time TTFT estimate into the EWMA signal."""
        if self._ttft_ewma is None:
            self._ttft_ewma = estimate_s
        else:
            self._ttft_ewma = (
                (1.0 - self.ewma_alpha) * self._ttft_ewma + self.ewma_alpha * estimate_s
            )

    def current_signal(self, outstanding: Sequence[int]) -> float:
        """Signal value right now, given per-accepting-replica queue depths."""
        if self.signal == "queue-depth":
            if not outstanding:
                return 0.0
            return sum(outstanding) / len(outstanding)
        return self._ttft_ewma if self._ttft_ewma is not None else 0.0

    def decide(
        self,
        now_s: float,
        provisioned_replicas: int,
        accepting_replicas: int,
        outstanding: Sequence[int],
    ) -> str | None:
        """Evaluate one tick; returns ``"scale_up"``, ``"scale_down"`` or ``None``.

        Args:
            now_s: Tick timestamp.
            provisioned_replicas: Accepting plus cold-starting replicas
                (bounded by ``max_replicas``).
            accepting_replicas: Replicas currently taking work (floored at
                ``min_replicas``).
            outstanding: Estimated queue depth of each accepting replica.
        """
        if now_s - self._last_decision_s < self.cooldown_s:
            return None
        value = self.current_signal(outstanding)
        action: str | None = None
        after = provisioned_replicas
        if value > self.scale_up_threshold and provisioned_replicas < self.max_replicas:
            action = SCALE_UP
            after = provisioned_replicas + 1
        elif value < self.scale_down_threshold and accepting_replicas > self.min_replicas:
            action = SCALE_DOWN
            after = provisioned_replicas - 1
        if action is None:
            return None
        self._last_decision_s = now_s
        self.decisions.append(
            ScalingDecision(
                at_s=now_s,
                action=action,
                signal_value=value,
                replicas_before=provisioned_replicas,
                replicas_after=after,
            )
        )
        return action


__all__ = ["SCALE_DOWN", "SCALE_UP", "ReactiveAutoscaler", "ScalingDecision"]
