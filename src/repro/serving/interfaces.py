"""Protocols and result types shared across the serving engine layers.

The serving stack is split into three layers that only meet through the
interfaces defined here:

* **admission** (:mod:`repro.serving.admission`) decides *which* waiting
  request to try next;
* the **engine** (:mod:`repro.serving.engine`) owns the event loop, the
  simulation clock and per-request lifecycle tracking;
* the **memory system** is any :class:`KVAllocator` and the **compute
  system** any :class:`DecodeSystem` -- both pluggable, so new hardware
  models and allocation policies slot in without touching the engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence
from typing import Protocol, runtime_checkable

from repro.memory.chunked_alloc import ChunkedAllocator
from repro.memory.lifecycle import CapacityExceeded, PreemptedState
from repro.memory.static_alloc import StaticAllocator
from repro.pim.simulator import CycleBreakdown, ZERO_BREAKDOWN
from repro.serving.prefill import SupportsPrefill

__all__ = [
    "StepResult",
    "DecodeSystem",
    "SupportsPrefill",
    "KVAllocator",
    "KVLifecycle",
    "CapacityExceeded",
    "PreemptedState",
    "build_allocator",
    "allocator_for",
    "ServingResult",
]


@dataclass(frozen=True)
class StepResult:
    """Outcome of one decode step for the whole active batch.

    Attributes:
        seconds: Wall-clock time of the step.
        pim_utilization: Mean PIM channel busy fraction during the step
            (zero for systems without PIM).
        attention_breakdown: System-wide attention cycle breakdown (energy).
        fc_breakdown: System-wide FC cycle breakdown when FC runs on PIM.
    """

    seconds: float
    pim_utilization: float
    attention_breakdown: CycleBreakdown = ZERO_BREAKDOWN
    fc_breakdown: CycleBreakdown = ZERO_BREAKDOWN


class DecodeSystem(Protocol):
    """Interface the serving engine requires from a system model."""

    @property
    def kv_capacity_bytes(self) -> int: ...

    @property
    def kv_bytes_per_token(self) -> int: ...

    @property
    def max_context_tokens(self) -> int: ...

    @property
    def dynamic_memory(self) -> bool: ...

    @property
    def total_pim_channels(self) -> int: ...

    def decode_step(self, context_lengths: Sequence[int]) -> StepResult: ...

    # Systems that can price their own prompt-processing phase additionally
    # implement ``prefill_seconds(prompt_tokens) -> float`` (see
    # :class:`~repro.serving.prefill.SupportsPrefill`);
    # :func:`~repro.serving.prefill.prefill_model_for` adapts them into the
    # engine's :class:`~repro.serving.prefill.PrefillModel`.


@runtime_checkable
class KVAllocator(Protocol):
    """Unified KV-cache allocator interface (the PR 1 admission contract).

    ``can_admit(tokens)`` answers whether a request needing ``tokens`` of
    context fits right now; ``reserve`` admits it.  Passing
    ``final_tokens`` commits the request's final context up front (the
    legacy admit-to-completion guarantee); omitting it admits against only
    the current context, deferring growth to :meth:`KVLifecycle.grow`.

    :class:`~repro.memory.static_alloc.StaticAllocator`,
    :class:`~repro.memory.chunked_alloc.ChunkedAllocator` and
    :class:`~repro.core.dpa.DPAController` all implement this protocol
    (and the full :class:`KVLifecycle` extension), so the engine never
    inspects the concrete allocator type.
    """

    capacity_bytes: int

    @property
    def used_bytes(self) -> int: ...

    @property
    def num_requests(self) -> int: ...

    def can_admit(self, tokens: int) -> bool: ...

    def reserve(
        self, request_id: int, initial_tokens: int, final_tokens: int | None = None
    ) -> None: ...

    def append_token(self, request_id: int, count: int = 1) -> None: ...

    def release(self, request_id: int) -> None: ...


@runtime_checkable
class KVLifecycle(KVAllocator, Protocol):
    """Request-lifecycle allocator contract: grow, preempt, restore.

    The lifecycle extension is what makes preemption-aware serving
    possible: requests are admitted against their *current* context
    (``reserve`` without ``final_tokens``), grown incrementally with
    :meth:`grow` -- which raises
    :class:`~repro.memory.lifecycle.CapacityExceeded` under pressure --
    and paged out/in with :meth:`preempt`/:meth:`restore` when a
    :class:`~repro.serving.preemption.PreemptionPolicy` picks a victim.
    :meth:`could_ever_fit` distinguishes transient pressure from requests
    that can never be served (they exceed total capacity).
    """

    def could_ever_fit(self, tokens: int) -> bool: ...

    def grow(self, request_id: int, count: int = 1) -> None: ...

    def preempt(self, request_id: int) -> PreemptedState: ...

    def restore(self, request_id: int, state: PreemptedState) -> None: ...


def build_allocator(
    capacity_bytes: int,
    bytes_per_token: int,
    max_context_tokens: int,
    dynamic: bool,
) -> KVLifecycle:
    """Construct the allocator matching a system's memory-management mode.

    Args:
        capacity_bytes: Total KV-cache capacity.
        bytes_per_token: KV bytes appended per generated token.
        max_context_tokens: ``T_max`` sizing static reservations.
        dynamic: DPA/PagedAttention-style chunked allocation when true,
            static ``T_max`` reservations otherwise.
    """
    if dynamic:
        return ChunkedAllocator(
            capacity_bytes=capacity_bytes,
            bytes_per_token=bytes_per_token,
        )
    return StaticAllocator(
        capacity_bytes=capacity_bytes,
        max_context_tokens=max_context_tokens,
        bytes_per_token=bytes_per_token,
    )


def allocator_for(system: DecodeSystem) -> KVLifecycle:
    """Build the allocator matching a system's capacity properties."""
    return build_allocator(
        capacity_bytes=system.kv_capacity_bytes,
        bytes_per_token=system.kv_bytes_per_token,
        max_context_tokens=system.max_context_tokens,
        dynamic=system.dynamic_memory,
    )


@dataclass
class ServingResult:
    """Aggregate metrics of one serving run."""

    system_name: str
    dataset: str
    total_output_tokens: int
    total_seconds: float
    steps: int
    average_batch_size: float
    peak_batch_size: int
    average_pim_utilization: float
    average_capacity_utilization: float
    attention_breakdown: CycleBreakdown = ZERO_BREAKDOWN
    fc_breakdown: CycleBreakdown = ZERO_BREAKDOWN
    total_pim_channels: int = 0
    requests_served: int = 0
    metadata: dict = field(default_factory=dict)

    @property
    def throughput_tokens_per_s(self) -> float:
        if self.total_seconds <= 0:
            return 0.0
        return self.total_output_tokens / self.total_seconds

    @property
    def average_step_seconds(self) -> float:
        if self.steps == 0:
            return 0.0
        return self.total_seconds / self.steps
