"""Fleet timeline: replica failure/recovery events and reactive autoscaling.

The :class:`DynamicFleetRouter` lifts the router's static-world assumption:
instead of a fixed set of replicas serving a whole trace, the fleet is a
*timeline* of replica **slots**, each slot hosting a sequence of
**segments** (one engine lifetime).  A single chronological sweep merges

* the timestamped request dispatches (any arrival process),
* scripted :class:`~repro.api.spec.FleetEventSpec` events
  (``replica_down`` / ``replica_up``), and
* :class:`~repro.serving.autoscaler.ReactiveAutoscaler` ticks,

and routes online exactly like :class:`~repro.serving.router.ReplicaRouter`
does -- in arrival order, on the router's estimated view of each replica.
Slots are appended, never removed, so a replica's position in the policy's
view always equals its index (the invariant every routing policy relies
on); downed or draining slots simply stop ``accepting``.

Failure semantics (``replica_down`` at ``t``): the victims are the
requests the router estimates are still in flight on that replica at
``t`` (the same estimated view dispatch uses).  Each victim's reserved KV
tokens are charged as lost, and the victim is re-dispatched at ``t`` to a
surviving replica, where it re-enters the normal admission/prefill path
-- the re-warm cost.  Its record keeps the *original* arrival time, so
TTFT and latency include the failure stall end to end, and carries a
``restarts`` count.  Requests the router estimated complete stay credited
to the failed segment; their engine may finish them slightly after ``t``
(the estimated-view approximation, consistent with estimate-based
dispatch everywhere else).

Replica-hours accounting: a segment's bill runs from its start (for a
scale-up, the *decision* time -- cold starts are paid for, not free) to
its end (failure time, drain completion, or the fleet makespan), summed
in :attr:`DynamicFleetResult.replica_seconds`.

After the sweep, each segment's engine serves its sub-trace to completion
(scalar and fast engines are parity-pinned, so both modes report
identical fleet metrics), records are stitched back to original arrivals,
and the merged :class:`~repro.serving.router.FleetResult` is wrapped in a
:class:`DynamicFleetResult` with the timeline metrics.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Sequence
from dataclasses import dataclass, replace
from typing import Any

from repro.serving.autoscaler import SCALE_DOWN, SCALE_UP, ReactiveAutoscaler, ScalingDecision
from repro.serving.engine import EngineResult, ServingEngine
from repro.serving.lifecycle import LatencyStats
from repro.serving.router import (
    DEFAULT_PROBE_CONTEXT_TOKENS,
    FleetResult,
    ReplicaState,
    RoundRobinRouting,
    RoutingPolicy,
)
from repro.workloads.traces import Request, RequestTrace, _with_fields

#: Heap ordering at equal timestamps: fleet events (and cold-start
#: activations) apply first, then autoscaler ticks, then dispatches.
_PRIO_EVENT = 0
_PRIO_TICK = 1
_PRIO_DISPATCH = 2


@dataclass(frozen=True)
class FleetEvent:
    """One scripted timeline event (mirror of the spec's FleetEventSpec)."""

    at_s: float
    kind: str  # "replica_down" | "replica_up"
    replica: int


@dataclass(frozen=True)
class SegmentRecord:
    """One engine lifetime on a slot, as billed in replica-hours."""

    slot: int
    start_s: float
    end_s: float
    reason: str  # "failure" | "drain" | "run-end"
    requests_served: int


class _Segment:
    """Mutable per-segment bookkeeping during the sweep."""

    def __init__(self, slot: int, start_s: float, engine: ServingEngine, state: ReplicaState):
        self.slot = slot
        self.start_s = start_s
        self.engine = engine
        self.state = state
        self.requests: dict[int, Request] = {}
        self.end_s: float | None = None
        self.reason = "run-end"
        self.drain_decision_s: float | None = None


class _Slot:
    """One replica position; hosts at most one live segment at a time."""

    def __init__(self, index: int):
        self.index = index
        self.segment: _Segment | None = None


@dataclass(frozen=True)
class DynamicFleetResult:
    """A routed run over a time-varying fleet, plus timeline metrics.

    Attributes:
        fleet: Merged per-request metrics across every segment (records
            stitched back to original arrivals, so TTFT/latency include
            failure stalls and re-warms).
        segments: Billing record of every engine lifetime.
        decisions: Autoscaler decision log (empty without an autoscaler).
        failures: ``replica_down`` events applied.
        restarts: Victim re-dispatches charged (a request failed twice
            counts twice).
        kv_lost_tokens: Reserved KV tokens lost to failures.
        replica_seconds: Total provisioned replica time across segments.
        peak_replicas: Peak concurrently provisioned replicas (accepting
            or cold-starting).
        dropped: Requests no accepting replica could take.
    """

    fleet: FleetResult
    segments: tuple[SegmentRecord, ...]
    decisions: tuple[ScalingDecision, ...]
    failures: int
    restarts: int
    kv_lost_tokens: int
    replica_seconds: float
    peak_replicas: int
    dropped: int

    @property
    def replica_hours(self) -> float:
        """Provisioned replica-hours (the capacity-planning currency)."""
        return self.replica_seconds / 3600.0


class DynamicFleetRouter:
    """Routes a timestamped trace across a fleet that changes mid-run.

    Args:
        engine_factory: Builds one fresh serving engine per segment
            (failed replicas come back cold; scale-ups start cold).
        initial_replicas: Slots live at ``t=0``.
        policy: Routing policy (same registry as :class:`ReplicaRouter`).
        events: Scripted ``replica_down``/``replica_up`` events; per slot
            they must alternate starting with ``replica_down`` (the spec
            layer validates this).
        autoscaler: Optional reactive controller; its ``interval_s`` sets
            the tick cadence and ``cold_start_s`` delays new replicas.
        probe_context_tokens: Context length probing each segment's
            decode-step latency for service-time estimates.
    """

    def __init__(
        self,
        engine_factory: Callable[[], ServingEngine],
        initial_replicas: int,
        policy: RoutingPolicy | None = None,
        events: Sequence[FleetEvent] = (),
        autoscaler: ReactiveAutoscaler | None = None,
        probe_context_tokens: int = DEFAULT_PROBE_CONTEXT_TOKENS,
    ) -> None:
        if initial_replicas < 1:
            raise ValueError("initial_replicas must be >= 1")
        for event in events:
            if event.kind not in ("replica_down", "replica_up"):
                raise ValueError(f"unknown fleet event kind {event.kind!r}")
            if not 0 <= event.replica < initial_replicas:
                raise ValueError(
                    f"fleet event targets replica {event.replica}, outside "
                    f"[0, {initial_replicas})"
                )
        self.engine_factory = engine_factory
        self.initial_replicas = initial_replicas
        self.policy = policy if policy is not None else RoundRobinRouting()
        self.events = tuple(sorted(events, key=lambda event: (event.at_s, event.replica)))
        self.autoscaler = autoscaler
        self.probe_context_tokens = probe_context_tokens

    # -- sweep helpers -------------------------------------------------------

    def _new_segment(self, slot: _Slot, start_s: float, accepting: bool) -> _Segment:
        engine = self.engine_factory()
        state = ReplicaState(slot.index, engine, self.probe_context_tokens)
        state.accepting = accepting
        segment = _Segment(slot.index, start_s, engine, state)
        slot.segment = segment
        return segment

    @staticmethod
    def _estimated_ttft_s(state: ReplicaState, request: Request) -> float:
        """Dispatch-time TTFT estimate: prefill plus the queue ahead."""
        estimate = state.est_step_s * (state.outstanding + 1)
        prefill = state.engine.prefill
        if prefill is not None:
            prompt = min(request.prompt_tokens, state.system.max_context_tokens)
            estimate += prefill.model.cumulative_seconds(prompt)
        return estimate

    def run(self, trace: RequestTrace, system_name: str = "") -> DynamicFleetResult:
        """Sweep the merged timeline, then serve every segment to completion."""
        scaler = self.autoscaler
        if scaler is not None:
            scaler.reset()
        self.policy.reset()

        slots: list[_Slot] = [_Slot(index) for index in range(self.initial_replicas)]
        finalized: list[_Segment] = []
        for slot in slots:
            self._new_segment(slot, 0.0, accepting=True)

        heap: list[tuple[float, int, int, tuple[Any, ...]]] = []
        seq = 0

        def push(at_s: float, priority: int, payload: tuple[Any, ...]) -> None:
            nonlocal seq
            heapq.heappush(heap, (at_s, priority, seq, payload))
            seq += 1

        original_arrival: dict[int, float] = {}
        restarts: dict[int, int] = {}
        pending_dispatches = 0
        for request in trace.requests:
            original_arrival[request.request_id] = request.arrival_s
            push(request.arrival_s, _PRIO_DISPATCH, ("dispatch", request))
            pending_dispatches += 1
        for event in self.events:
            push(event.at_s, _PRIO_EVENT, (event.kind, event.replica))
        tick_scheduled = False
        if scaler is not None and trace.requests:
            push(scaler.interval_s, _PRIO_TICK, ("tick",))
            tick_scheduled = True

        # Provisioned = accepting or cold-starting; the peak is what static
        # provisioning would have had to hold for the whole run.
        provisioned = self.initial_replicas
        peak_replicas = self.initial_replicas
        failures = 0
        restart_count = 0
        kv_lost_tokens = 0
        dropped = 0
        last_time_s = 0.0

        def states() -> list[ReplicaState]:
            # Position == index invariant: every slot contributes exactly
            # one state, live segments theirs, finished slots their last
            # (non-accepting) one.
            view: list[ReplicaState] = []
            for slot in slots:
                if slot.segment is not None:
                    view.append(slot.segment.state)
                else:
                    view.append(_down_state(slot.index))
            return view

        down_states: dict[int, ReplicaState] = {}

        def _down_state(index: int) -> ReplicaState:
            # Placeholder for a slot with no live segment; never selected
            # (accepting is False) but keeps list positions aligned.
            state = down_states.get(index)
            if state is None:
                for segment in reversed(finalized):
                    if segment.slot == index:
                        state = segment.state
                        break
                else:  # pragma: no cover - slots always start with a segment
                    raise RuntimeError(f"slot {index} has no segment history")
                down_states[index] = state
            state.accepting = False
            return state

        def fail_replica(index: int, at_s: float) -> None:
            nonlocal failures, restart_count, kv_lost_tokens, tick_scheduled
            slot = slots[index]
            segment = slot.segment
            if segment is None:
                return  # validated specs never double-down a slot
            state = segment.state
            state.drain(at_s)
            for request_id, tokens in sorted(state.in_flight().items()):
                victim = segment.requests.pop(request_id, None)
                if victim is None:
                    continue
                kv_lost_tokens += tokens
                restarts[request_id] = restarts.get(request_id, 0) + 1
                restart_count += 1
                push(at_s, _PRIO_DISPATCH, ("dispatch", _with_fields(victim, arrival_s=at_s)))
                bump_pending()
            state.accepting = False
            segment.end_s = at_s
            segment.reason = "failure"
            finalized.append(segment)
            down_states.pop(index, None)
            slot.segment = None
            failures += 1
            # Victim re-dispatches may arrive after the tick chain idled
            # out; restart it so the autoscaler can react to the failure.
            if scaler is not None and not tick_scheduled and pending_dispatches > 0:
                push(at_s + scaler.interval_s, _PRIO_TICK, ("tick",))
                tick_scheduled = True

        def bump_pending() -> None:
            nonlocal pending_dispatches
            pending_dispatches += 1

        while heap:
            at_s, priority, _, payload = heapq.heappop(heap)
            last_time_s = max(last_time_s, at_s)
            kind = payload[0]
            if kind == "replica_down":
                provisioned -= 1
                fail_replica(payload[1], at_s)
            elif kind == "replica_up":
                slot = slots[payload[1]]
                if slot.segment is not None:
                    # A drained slot coming back: close the draining
                    # segment at the recovery point and start fresh.
                    segment = slot.segment
                    segment.end_s = at_s
                    finalized.append(segment)
                    slot.segment = None
                self._new_segment(slot, at_s, accepting=True)
                down_states.pop(payload[1], None)
                provisioned += 1
                peak_replicas = max(peak_replicas, provisioned)
            elif kind == "activate":
                slot = slots[payload[1]]
                if slot.segment is not None:
                    slot.segment.state.accepting = True
            elif kind == "tick":
                assert scaler is not None
                accepting_states = []
                for slot in slots:
                    if slot.segment is not None and slot.segment.state.accepting:
                        slot.segment.state.drain(at_s)
                        accepting_states.append(slot.segment.state)
                action = scaler.decide(
                    at_s,
                    provisioned_replicas=provisioned,
                    accepting_replicas=len(accepting_states),
                    outstanding=[state.outstanding for state in accepting_states],
                )
                if action == SCALE_UP:
                    slot = _Slot(len(slots))
                    slots.append(slot)
                    self._new_segment(slot, at_s, accepting=False)
                    push(at_s + scaler.cold_start_s, _PRIO_EVENT, ("activate", slot.index))
                    provisioned += 1
                    peak_replicas = max(peak_replicas, provisioned)
                elif action == SCALE_DOWN and accepting_states:
                    victim_state = min(
                        accepting_states,
                        key=lambda state: (state.outstanding, -state.index),
                    )
                    victim_state.accepting = False
                    segment = slots[victim_state.index].segment
                    assert segment is not None
                    segment.reason = "drain"
                    segment.drain_decision_s = at_s
                    provisioned -= 1
                if pending_dispatches > 0:
                    push(at_s + scaler.interval_s, _PRIO_TICK, ("tick",))
                else:
                    tick_scheduled = False
            else:  # dispatch
                pending_dispatches -= 1
                request = payload[1]
                view = states()
                for state in view:
                    state.drain(at_s)
                choice = self.policy.select(request, view)
                if choice is None:
                    dropped += 1
                    continue
                if not 0 <= choice < len(view):
                    raise ValueError(
                        f"policy {self.policy.name!r} chose replica {choice} for "
                        f"request {request.request_id}; fleet has {len(view)} slots"
                    )
                if not view[choice].accepting:
                    raise ValueError(
                        f"policy {self.policy.name!r} chose non-accepting replica "
                        f"{choice} for request {request.request_id}; downed or "
                        "draining replicas must be skipped"
                    )
                segment = slots[choice].segment
                assert segment is not None
                if scaler is not None and scaler.signal == "ttft-ewma":
                    scaler.observe_ttft(self._estimated_ttft_s(segment.state, request))
                segment.state.assign(request, at_s)
                segment.requests[request.request_id] = request

        for slot in slots:
            if slot.segment is not None:
                finalized.append(slot.segment)
                slot.segment = None
        finalized.sort(key=lambda segment: (segment.slot, segment.start_s))

        # -- serve every segment to completion and stitch records back ------
        results: list[EngineResult] = []
        for segment in finalized:
            subtrace = RequestTrace(
                dataset=trace.dataset,
                requests=tuple(
                    sorted(
                        segment.requests.values(),
                        key=lambda request: (request.arrival_s, request.request_id),
                    )
                ),
            )
            base = system_name or type(segment.engine.system).__name__
            results.append(
                segment.engine.run(subtrace, system_name=f"{base}[slot {segment.slot}]")
            )

        fleet_end_s = max(
            (result.makespan_s for result in results), default=0.0
        )
        fleet_end_s = max(fleet_end_s, last_time_s)
        segment_records: list[SegmentRecord] = []
        for segment, result in zip(finalized, results, strict=True):
            if segment.reason == "failure":
                end_s = segment.end_s if segment.end_s is not None else fleet_end_s
            elif segment.reason == "drain":
                # Billed until the last in-flight request finishes (the
                # drain decision itself if the slot was already idle).
                decision_s = segment.drain_decision_s or segment.start_s
                end_s = max(decision_s, result.makespan_s, segment.start_s)
            else:
                end_s = max(segment.start_s, fleet_end_s)
            segment_records.append(
                SegmentRecord(
                    slot=segment.slot,
                    start_s=segment.start_s,
                    end_s=end_s,
                    reason=segment.reason,
                    requests_served=result.requests_served,
                )
            )

        stitched: list[EngineResult] = []
        for result in results:
            changed = False
            for record in result.request_records:
                # A victim's segment saw its re-dispatch time as the
                # arrival; restore the original so TTFT/latency span the
                # failure stall.  Non-victims kept theirs by construction.
                count = restarts.get(record.request_id, 0)
                record.restarts = count
                if count:
                    record.arrival_s = original_arrival[record.request_id]
                    changed = True
            if changed:
                stitched.append(
                    replace(result, latency=LatencyStats.from_records(result.request_records))
                )
            else:
                stitched.append(result)

        fleet = FleetResult.from_replicas(self.policy.name, stitched, router_dropped=dropped)
        return DynamicFleetResult(
            fleet=fleet,
            segments=tuple(segment_records),
            decisions=tuple(scaler.decisions) if scaler is not None else (),
            failures=failures,
            restarts=restart_count,
            kv_lost_tokens=kv_lost_tokens,
            replica_seconds=sum(
                record.end_s - record.start_s for record in segment_records
            ),
            peak_replicas=peak_replicas,
            dropped=dropped,
        )


__all__ = [
    "DynamicFleetResult",
    "DynamicFleetRouter",
    "FleetEvent",
    "SegmentRecord",
]
