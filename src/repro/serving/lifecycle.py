"""Per-request lifecycle tracking and latency statistics.

The engine stamps each request at four points -- arrival, admission, first
generated token, completion -- and the aggregation here turns those stamps
into the serving metrics the paper's evaluation (and any production SLO)
cares about: time-to-first-token (TTFT), time-per-output-token (TPOT),
queueing delay, and end-to-end latency percentiles.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from collections.abc import Sequence

import numpy as np


@dataclass
class RequestRecord:
    """Lifecycle timestamps and progress of one request.

    All times are simulation seconds.  ``first_token_s`` and ``finish_s``
    are ``nan`` until the corresponding event happens.
    """

    request_id: int
    prompt_tokens: int
    output_tokens: int
    arrival_s: float
    admitted_s: float = math.nan
    first_token_s: float = math.nan
    finish_s: float = math.nan
    generated: int = 0
    prefill_s: float = 0.0
    #: Times this request was paged out by a preemption policy.
    preemptions: int = 0
    #: Total time spent paged out waiting for re-admission (requeue delay).
    stall_s: float = 0.0
    #: Tokens re-prefilled by recompute-mode restores.
    recompute_tokens: int = 0
    #: Clock of the pending preemption (``nan`` while the request is live).
    preempted_s: float = math.nan
    #: Times this request was re-dispatched after a replica failure (the
    #: fleet timeline stamps it; a static fleet never restarts anything).
    restarts: int = 0
    #: Scheduling priority inherited from the request (tier priority).
    priority: int = 0
    #: SLO-tier name the request belongs to (``None`` means untiered).
    tier: str | None = None
    #: TTFT deadline in seconds (``None`` means no deadline).
    ttft_deadline_s: float | None = None
    #: TPOT deadline in seconds (``None`` means no deadline).
    tpot_deadline_s: float | None = None

    @property
    def finished(self) -> bool:
        return not math.isnan(self.finish_s)

    @property
    def preempted(self) -> bool:
        """Whether the request is currently paged out."""
        return not math.isnan(self.preempted_s)

    @property
    def queue_delay_s(self) -> float:
        """Time spent waiting for admission."""
        return self.admitted_s - self.arrival_s

    @property
    def ttft_s(self) -> float:
        """Time-to-first-token: arrival to the first generated token."""
        return self.first_token_s - self.arrival_s

    @property
    def tpot_s(self) -> float:
        """Time-per-output-token over the steady decode phase.

        Measured from the first to the last generated token; requests that
        emit a single token have no inter-token gap and report 0.
        """
        if self.output_tokens <= 1:
            return 0.0
        return (self.finish_s - self.first_token_s) / (self.output_tokens - 1)

    @property
    def latency_s(self) -> float:
        """End-to-end latency: arrival to completion."""
        return self.finish_s - self.arrival_s

    @property
    def ttft_ok(self) -> bool:
        """Whether the first token met the TTFT deadline.

        With no deadline the SLO is vacuously attained; with one, an
        unserved request (no first token) counts as a miss.
        """
        if self.ttft_deadline_s is None:
            return True
        return self.ttft_s <= self.ttft_deadline_s  # nan comparisons are False

    @property
    def tpot_ok(self) -> bool:
        """Whether steady-state decode met the TPOT deadline.

        With no deadline the SLO is vacuously attained; with one, an
        unfinished request counts as a miss.
        """
        if self.tpot_deadline_s is None:
            return True
        return self.finished and self.tpot_s <= self.tpot_deadline_s

    @property
    def slo_ok(self) -> bool:
        """Goodput membership: finished within every configured deadline."""
        return self.finished and self.ttft_ok and self.tpot_ok


def percentile(samples: Sequence[float], fraction: float) -> float:
    """Linear-interpolation percentile of ``samples`` (``fraction`` in [0, 1])."""
    if not samples:
        return 0.0
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be within [0, 1]")
    return float(np.percentile(np.asarray(samples), fraction * 100.0))


def percentiles(samples: Sequence[float], fractions: Sequence[float]) -> tuple[float, ...]:
    """Several percentiles of one sample family from a single sort.

    Equivalent to ``tuple(percentile(samples, f) for f in fractions)`` --
    numpy interpolates each requested quantile from the same sorted copy,
    so a p50/p95/p99 triple costs one O(n log n) sort rather than three.
    """
    for fraction in fractions:
        if not 0.0 <= fraction <= 1.0:
            raise ValueError("fraction must be within [0, 1]")
    if not samples:
        return tuple(0.0 for _ in fractions)
    values = np.percentile(np.asarray(samples), [fraction * 100.0 for fraction in fractions])
    return tuple(float(value) for value in values)


@dataclass(frozen=True)
class LatencyStats:
    """Aggregated per-request latency metrics of one serving run.

    The p50/p95/p99 triple is reported for TTFT, TPOT and end-to-end
    latency so fleet-level merges (see
    :class:`~repro.serving.router.FleetResult`) can expose the same
    percentile surface a single replica does.
    """

    ttft_mean_s: float = 0.0
    ttft_p50_s: float = 0.0
    ttft_p95_s: float = 0.0
    ttft_p99_s: float = 0.0
    tpot_mean_s: float = 0.0
    tpot_p50_s: float = 0.0
    tpot_p95_s: float = 0.0
    tpot_p99_s: float = 0.0
    queue_delay_mean_s: float = 0.0
    prefill_mean_s: float = 0.0
    latency_p50_s: float = 0.0
    latency_p95_s: float = 0.0
    latency_p99_s: float = 0.0

    @staticmethod
    def from_records(records: Sequence[RequestRecord]) -> LatencyStats:
        finished = [record for record in records if record.finished]
        if not finished:
            return LatencyStats()
        ttfts = [record.ttft_s for record in finished]
        tpots = [record.tpot_s for record in finished]
        latencies = [record.latency_s for record in finished]
        # One sort per metric family: each family's p50/p95/p99 come from a
        # single np.percentile call (bit-identical to separate calls), so a
        # merged-fleet stats pass costs O(n log n) total, not per-percentile.
        triple = (0.50, 0.95, 0.99)
        ttft_p50, ttft_p95, ttft_p99 = percentiles(ttfts, triple)
        tpot_p50, tpot_p95, tpot_p99 = percentiles(tpots, triple)
        latency_p50, latency_p95, latency_p99 = percentiles(latencies, triple)
        return LatencyStats(
            ttft_mean_s=sum(ttfts) / len(finished),
            ttft_p50_s=ttft_p50,
            ttft_p95_s=ttft_p95,
            ttft_p99_s=ttft_p99,
            tpot_mean_s=sum(tpots) / len(finished),
            tpot_p50_s=tpot_p50,
            tpot_p95_s=tpot_p95,
            tpot_p99_s=tpot_p99,
            queue_delay_mean_s=sum(record.queue_delay_s for record in finished) / len(finished),
            prefill_mean_s=sum(record.prefill_s for record in finished) / len(finished),
            latency_p50_s=latency_p50,
            latency_p95_s=latency_p95,
            latency_p99_s=latency_p99,
        )


@dataclass(frozen=True)
class WindowStats:
    """Per-interval serving metrics of one wall-clock window.

    Windows bucket requests by *arrival* time (a request arriving exactly
    on a boundary belongs to the later window), so a window's attainment
    answers "of the traffic that arrived in this interval, how much met
    its SLO?" -- the question a capacity planner asks of a diurnal day.

    ``ttft_attainment`` / ``tpot_attainment`` / ``goodput_fraction`` are
    fractions of the window's *arrivals* (an unserved request counts
    against its window); they are 1.0 for an empty window (vacuous SLO).
    """

    start_s: float
    end_s: float
    arrivals: int
    finished: int
    goodput_requests: int
    ttft_attained: int
    tpot_attained: int
    latency: LatencyStats

    @property
    def ttft_attainment(self) -> float:
        return self.ttft_attained / self.arrivals if self.arrivals else 1.0

    @property
    def tpot_attainment(self) -> float:
        return self.tpot_attained / self.arrivals if self.arrivals else 1.0

    @property
    def goodput_fraction(self) -> float:
        return self.goodput_requests / self.arrivals if self.arrivals else 1.0


def windowed_stats(records: Sequence[RequestRecord], window_s: float) -> tuple[WindowStats, ...]:
    """Bucket ``records`` into contiguous ``window_s``-wide arrival windows.

    Returns one :class:`WindowStats` per window from time 0 through the
    last arrival, *including* empty windows in between (a quiet interval
    is data, not a gap).  With every record inside one window, that
    window's :class:`LatencyStats` equal ``LatencyStats.from_records`` on
    the whole run.
    """
    if not (window_s > 0 and math.isfinite(window_s)):
        raise ValueError("window_s must be positive and finite")
    if not records:
        return ()
    buckets: dict[int, list[RequestRecord]] = {}
    for record in records:
        buckets.setdefault(int(record.arrival_s // window_s), []).append(record)
    windows = []
    for index in range(max(buckets) + 1):
        members = buckets.get(index, [])
        windows.append(
            WindowStats(
                start_s=index * window_s,
                end_s=(index + 1) * window_s,
                arrivals=len(members),
                finished=sum(1 for record in members if record.finished),
                goodput_requests=sum(1 for record in members if record.slo_ok),
                ttft_attained=sum(1 for record in members if record.ttft_ok),
                tpot_attained=sum(1 for record in members if record.tpot_ok),
                latency=LatencyStats.from_records(members),
            )
        )
    return tuple(windows)


@dataclass
class LifecycleTracker:
    """Collects :class:`RequestRecord` entries as the engine runs."""

    records: dict[int, RequestRecord] = field(default_factory=dict)

    def on_arrival(
        self,
        request_id: int,
        prompt_tokens: int,
        output_tokens: int,
        arrival_s: float,
        priority: int = 0,
        tier: str | None = None,
        ttft_deadline_s: float | None = None,
        tpot_deadline_s: float | None = None,
    ) -> RequestRecord:
        record = RequestRecord(
            request_id=request_id,
            prompt_tokens=prompt_tokens,
            output_tokens=output_tokens,
            arrival_s=arrival_s,
            priority=priority,
            tier=tier,
            ttft_deadline_s=ttft_deadline_s,
            tpot_deadline_s=tpot_deadline_s,
        )
        self.records[request_id] = record
        return record

    def on_admission(self, request_id: int, now_s: float) -> None:
        self.records[request_id].admitted_s = now_s

    def on_prefill(self, request_id: int, seconds: float) -> None:
        """Accumulate prefill work charged to a request (one or more chunks)."""
        self.records[request_id].prefill_s += seconds

    def on_tokens(
        self, request_id: int, count: int, step_end_s: float, step_seconds: float
    ) -> None:
        """Record ``count`` tokens generated in a stride ending at ``step_end_s``.

        The first token of a request completes one decode step into its
        first stride, which pins TTFT even when ``step_stride > 1``.
        """
        record = self.records[request_id]
        if record.generated == 0 and count > 0:
            record.first_token_s = step_end_s - step_seconds * (count - 1)
        record.generated += count

    def on_preempt(self, request_id: int, now_s: float) -> None:
        """Record a page-out: the request leaves the batch and stalls."""
        record = self.records[request_id]
        record.preemptions += 1
        record.preempted_s = now_s

    def on_restore(self, request_id: int, now_s: float, recompute_tokens: int = 0) -> None:
        """Record a page-in: close the stall window opened by ``on_preempt``."""
        record = self.records[request_id]
        record.stall_s += now_s - record.preempted_s
        record.preempted_s = math.nan
        record.recompute_tokens += recompute_tokens

    def on_finish(self, request_id: int, now_s: float) -> None:
        self.records[request_id].finish_s = now_s

    def stats(self) -> LatencyStats:
        return LatencyStats.from_records(list(self.records.values()))
