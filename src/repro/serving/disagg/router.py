"""The two-pool front door: prefill pool feeding a decode ReplicaRouter.

:class:`DisaggRouter` runs the phases in simulation order:

1. the :class:`~repro.serving.disagg.handoff.PrefillPool` turns the trace
   into per-request handoff receipts (finished KV plus a priced link
   transfer);
2. every decode engine is given the receipts (``engine.kv_handoff``), the
   surviving requests are re-timestamped to their KV's landing time, and
   the decode :class:`~repro.serving.router.ReplicaRouter` serves that
   trace exactly as it would any other;
3. the per-request records are stitched back into pipeline form: arrival
   reset to the original trace arrival and ``prefill_s`` to the charged
   prefill, so TTFT/latency span the whole journey while TPOT stays pure
   decode.

The stitched :class:`~repro.serving.router.FleetResult` therefore compares
apples-to-apples against a colocated fleet run on the same trace.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.memory.lifecycle import PreemptedState
from repro.serving.disagg.handoff import HandoffRecord, PrefillPhase, PrefillPool
from repro.serving.lifecycle import LatencyStats
from repro.serving.router import FleetResult, ReplicaRouter
from repro.workloads.traces import RequestTrace


@dataclass(frozen=True)
class DisaggResult:
    """Fleet metrics plus the handoff accounting of one disaggregated run."""

    #: Stitched decode-pool fleet result (records span the full pipeline).
    fleet: FleetResult
    #: The prefill phase, including every handoff receipt.
    prefill_phase: PrefillPhase
    prefill_replicas: int
    decode_replicas: int

    @property
    def handoffs(self) -> int:
        """Requests whose KV crossed the link to a decode replica."""
        return len(self.prefill_phase.handoffs)

    @property
    def handoff_records(self) -> tuple[HandoffRecord, ...]:
        """Handoff receipts ordered by request id."""
        return tuple(
            self.prefill_phase.handoffs[key] for key in sorted(self.prefill_phase.handoffs)
        )

    @property
    def kv_transfer_s(self) -> float:
        return self.prefill_phase.kv_transfer_s

    @property
    def kv_transfer_bytes(self) -> int:
        return self.prefill_phase.kv_transfer_bytes

    @property
    def prefill_dropped(self) -> int:
        return len(self.prefill_phase.dropped)

    @property
    def prefill_busy_seconds(self) -> float:
        return sum(self.prefill_phase.busy_seconds)

    @property
    def prefill_makespan_s(self) -> float:
        return self.prefill_phase.makespan_s

    @property
    def prefill_pool_utilization(self) -> float:
        """Mean busy fraction of the prefill replicas over the pool makespan."""
        denominator = self.prefill_replicas * self.prefill_makespan_s
        if denominator <= 0:
            return 0.0
        return self.prefill_busy_seconds / denominator

    @property
    def decode_pool_utilization(self) -> float:
        """Mean busy fraction of the decode replicas over the fleet makespan."""
        denominator = self.decode_replicas * self.fleet.makespan_s
        if denominator <= 0:
            return 0.0
        return self.fleet.busy_seconds / denominator


@dataclass
class DisaggRouter:
    """Serves a trace through a prefill pool and a decode replica fleet.

    Attributes:
        prefill_pool: Dedicated prefill replicas producing handoff receipts.
        decode_router: Replica fleet serving the decode phase (its engines
            should carry no prefill config -- prompts never prefill here).
    """

    prefill_pool: PrefillPool
    decode_router: ReplicaRouter

    def run(self, trace: RequestTrace, system_name: str = "") -> DisaggResult:
        """Run both phases and stitch per-request records back together."""
        phase = self.prefill_pool.run(trace)

        # Decode engines under the incremental lifecycle contract admit
        # against the *prompt* and grow chunk by chunk, so the receipt's
        # reserve-to-final chunk commitment must be stripped; legacy-contract
        # engines keep it (restore then re-commits exactly what a fresh
        # reserve(prompt, final) would).
        legacy_receipts: dict[int, PreemptedState] = {}
        lifecycle_receipts: dict[int, PreemptedState] = {}
        for request_id, record in phase.handoffs.items():
            legacy_receipts[request_id] = record.state
            lifecycle_receipts[request_id] = (
                dataclasses.replace(record.state, committed_chunks=0)
                if record.state.committed_chunks
                else record.state
            )
        for engine in self.decode_router.replicas:
            engine.kv_handoff = (
                lifecycle_receipts if engine.lifecycle_admission else legacy_receipts
            )

        decode_requests = tuple(
            dataclasses.replace(
                request, arrival_s=phase.handoffs[request.request_id].decode_arrival_s
            )
            for request in trace.requests
            if request.request_id in phase.handoffs
        )
        decode_trace = RequestTrace(dataset=trace.dataset, requests=decode_requests)
        try:
            fleet = self.decode_router.run(decode_trace, system_name=system_name)
        finally:
            for engine in self.decode_router.replicas:
                engine.kv_handoff = None

        # Stitch the pipeline back together: the decode engines saw KV
        # landing times as arrivals and charged no prefill, so reset each
        # record to the original arrival and the prefill the pool charged.
        # TTFT/latency then span queue + prefill + transfer + decode while
        # TPOT (first-to-last token) remains pure decode.
        stitched_results = []
        for result in fleet.replica_results:
            stitched = False
            for record in result.request_records:
                handoff = phase.handoffs.get(record.request_id)
                if handoff is None:
                    continue
                record.arrival_s = handoff.arrival_s
                record.prefill_s = handoff.prefill_s
                stitched = True
            if stitched:
                result = dataclasses.replace(
                    result, latency=LatencyStats.from_records(result.request_records)
                )
            stitched_results.append(result)
        fleet = FleetResult.from_replicas(
            fleet.policy,
            stitched_results,
            router_dropped=fleet.router_dropped + len(phase.dropped),
        )
        return DisaggResult(
            fleet=fleet,
            prefill_phase=phase,
            prefill_replicas=self.prefill_pool.replicas,
            decode_replicas=len(self.decode_router.replicas),
        )
