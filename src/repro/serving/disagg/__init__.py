"""Prefill/decode disaggregation: a two-pool fleet with modelled KV handoff.

Colocated chunked prefill makes every decode step pay for whatever prompt
work is in flight (`busy += step_seconds * stride + prefill_step_seconds`),
so a burst of long prompts stretches the inter-token latency of *all*
resident requests.  The disaggregated topology splits the fleet instead:

* a **prefill pool** (:class:`~repro.serving.disagg.handoff.PrefillPool`)
  of dedicated replicas runs each prompt's chunked prefill to completion,
  serially per replica in arrival order;
* the finished KV is **preempted** off the prefill replica -- the same
  :meth:`~repro.serving.interfaces.KVLifecycle.preempt` receipt the
  preemption subsystem uses -- and shipped to a decode replica over a
  modelled interconnect, charging
  :meth:`~repro.system.interconnect.InterconnectConfig.point_to_point_seconds`
  of the request's KV bytes to the simulated clock;
* a **decode pool** (an ordinary
  :class:`~repro.serving.router.ReplicaRouter`, KV-balanced by default)
  re-admits each request via
  :meth:`~repro.serving.interfaces.KVLifecycle.restore` (the engine's
  ``kv_handoff`` receipts) and serves pure decode, with no prefill
  interference at all.

:class:`~repro.serving.disagg.router.DisaggRouter` composes the two pools
behind the same ``run(trace)`` interface a :class:`ReplicaRouter` exposes
and stitches per-request records back together afterwards, so TTFT spans
the whole pipeline (prefill queue + prefill + transfer + decode queue +
first token) while TPOT measures pure decode.
"""

from __future__ import annotations

from repro.serving.disagg.handoff import HandoffRecord, PrefillPhase, PrefillPool
from repro.serving.disagg.router import DisaggResult, DisaggRouter

__all__ = [
    "DisaggResult",
    "DisaggRouter",
    "HandoffRecord",
    "PrefillPhase",
    "PrefillPool",
]
