"""The prefill pool: dedicated replicas that produce KV handoff receipts.

A prefill replica does exactly one thing: run a prompt's chunked prefill
to completion, then page the finished KV out.  Because nothing ever
decodes on the replica, the chunk marginals telescope --
``sum(cumulative(done + take) - cumulative(done)) ==
cumulative(prompt)`` -- so each request's service time is the closed-form
``model.cumulative_seconds(prompt)`` and the pool reduces to a serial
FCFS queueing simulation per replica.

The handoff itself reuses the preemption vocabulary: the pool ``reserve``s
the request on a real allocator (the same clamping and capacity rules a
colocated engine applies at admission), then immediately ``preempt``s it,
and the resulting :class:`~repro.memory.lifecycle.PreemptedState` receipt
-- tokens held, KV bytes, committed chunks -- is what the decode engine
later feeds to ``restore``.  The receipt's ``kv_bytes`` also prices the
transfer over the interconnect.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.lifecycle import PreemptedState
from repro.memory.static_alloc import AllocationError
from repro.serving.interfaces import DecodeSystem, allocator_for
from repro.serving.prefill import PrefillConfig
from repro.system.interconnect import InterconnectConfig
from repro.workloads.traces import RequestTrace


@dataclass(frozen=True)
class HandoffRecord:
    """One request's journey through the prefill pool and over the link.

    Attributes:
        request_id: The request handed off.
        prefill_replica: Index of the prefill replica that served it.
        arrival_s: Original trace arrival time.
        prefill_start_s: When the replica started the prompt (arrival or
            the replica freeing up, whichever is later).
        prefill_s: Prefill service time charged for the (clamped) prompt.
        prefill_finish_s: ``prefill_start_s + prefill_s``.
        kv_bytes: Bytes of finished KV shipped over the link.
        kv_transfer_s: Link time for ``kv_bytes`` (bandwidth + latency).
        decode_arrival_s: When the KV lands at the decode pool
            (``prefill_finish_s + kv_transfer_s``).
        state: The ``preempt`` receipt the decode engine restores from.
    """

    request_id: int
    prefill_replica: int
    arrival_s: float
    prefill_start_s: float
    prefill_s: float
    prefill_finish_s: float
    kv_bytes: int
    kv_transfer_s: float
    decode_arrival_s: float
    state: PreemptedState


@dataclass(frozen=True)
class PrefillPhase:
    """Outcome of running a trace through the prefill pool."""

    #: Handoff receipts by request id (dropped requests are absent).
    handoffs: dict[int, HandoffRecord]
    #: Requests no prefill replica could ever hold (exceed KV capacity).
    dropped: tuple[int, ...]
    #: Prefill service seconds accumulated per replica, in replica order.
    busy_seconds: tuple[float, ...]
    #: When the last prefill replica finished its queue.
    makespan_s: float

    @property
    def kv_transfer_s(self) -> float:
        """Total simulated seconds spent moving KV over the link."""
        return sum(record.kv_transfer_s for record in self.handoffs.values())

    @property
    def kv_transfer_bytes(self) -> int:
        """Total KV bytes shipped from the prefill pool."""
        return sum(record.kv_bytes for record in self.handoffs.values())


@dataclass
class PrefillPool:
    """Serial-FCFS event simulation of the dedicated prefill replicas.

    Attributes:
        system: System model shared with the decode pool; supplies the
            context window, the KV sizing (via its allocator) and -- through
            ``prefill`` -- the prompt cost curve.
        prefill: Chunked prefill cost model (the spec layer guarantees
            ``mode == "chunked"`` before a pool is built).
        replicas: Number of dedicated prefill replicas (>= 1).
        link: Interconnect pricing the KV transfer to the decode pool.
    """

    system: DecodeSystem
    prefill: PrefillConfig
    replicas: int
    link: InterconnectConfig

    def __post_init__(self) -> None:
        if self.replicas < 1:
            raise ValueError("a PrefillPool needs at least one replica")

    def run(self, trace: RequestTrace) -> PrefillPhase:
        """Prefill every request and price its handoff to the decode pool.

        Requests are swept in arrival order (stable on ties, like engine
        admission) and each goes to the replica that frees up first, ties
        to the lowest index.  A request whose clamped final context cannot
        fit the replica's KV capacity is dropped -- the same requests a
        colocated skip-over fleet would refuse.
        """
        window = self.system.max_context_tokens
        allocators = [allocator_for(self.system) for _ in range(self.replicas)]
        free_at_s = [0.0] * self.replicas
        busy = [0.0] * self.replicas
        handoffs: dict[int, HandoffRecord] = {}
        dropped: list[int] = []
        order = sorted(
            range(len(trace.requests)), key=lambda i: trace.requests[i].arrival_s
        )
        for position in order:
            request = trace.requests[position]
            # Same clamping as engine admission: the decode side recomputes
            # these from the shared system object, so the receipt's token
            # count matches what decode admission will check.
            final = min(request.prompt_tokens + request.output_tokens, window)
            prompt = max(1, final - request.output_tokens)
            replica = min(range(self.replicas), key=lambda index: (free_at_s[index], index))
            allocator = allocators[replica]
            try:
                # reserve-to-final then page out: the receipt carries the
                # exact tokens/commitment a colocated admission would have
                # reserved, which is what makes decode-side restore
                # capacity-equivalent to a fresh reserve.
                allocator.reserve(request.request_id, prompt, final)
            except AllocationError:
                dropped.append(request.request_id)
                continue
            state = allocator.preempt(request.request_id)
            start_s = max(request.arrival_s, free_at_s[replica])
            prefill_s = self.prefill.model.cumulative_seconds(prompt)
            finish_s = start_s + prefill_s
            free_at_s[replica] = finish_s
            busy[replica] += prefill_s
            kv_transfer_s = self.link.point_to_point_seconds(state.kv_bytes)
            handoffs[request.request_id] = HandoffRecord(
                request_id=request.request_id,
                prefill_replica=replica,
                arrival_s=request.arrival_s,
                prefill_start_s=start_s,
                prefill_s=prefill_s,
                prefill_finish_s=finish_s,
                kv_bytes=state.kv_bytes,
                kv_transfer_s=kv_transfer_s,
                decode_arrival_s=finish_s + kv_transfer_s,
                state=state,
            )
        return PrefillPhase(
            handoffs=handoffs,
            dropped=tuple(dropped),
            busy_seconds=tuple(busy),
            makespan_s=max(free_at_s),
        )
