"""Per-replica prefix/KV-cache reuse for multi-turn serving.

Session-affinity routing (PR 2) pins a conversation's turns to one
replica, but until this module nothing on that replica remembered the
session's KV state: every follow-up turn -- and every recompute-mode
restore -- re-prefilled its entire prompt from scratch.  A
:class:`PrefixCache` closes that gap the way vLLM's shared prefix blocks
and SGLang's radix tree do in production serving: the KV prefix a
finished turn leaves behind is retained (up to a token budget) and the
next request that extends it is charged only for its *uncached suffix*.

The simulator identifies prefixes by session id rather than by literal
token content: requests carry no token ids, and within a
:func:`~repro.workloads.traces.multi_turn_trace` session each turn's
prompt is by construction the previous turn's full context plus new user
tokens -- exactly the longest-shared-prefix relation a radix lookup would
discover.  A cache entry therefore stores the longest context this
replica has completed for the session, and a lookup for a prompt of
``P`` tokens reuses ``min(entry_tokens, P)`` of it.

Capacity is counted in KV *tokens* (the unit the allocators and cost
models already speak) and enforced with LRU eviction over whole
sessions.  The cache deliberately does not take chunks away from the
decode allocator: it models a dedicated slice of HBM set aside for
prefix retention, so enabling it never changes admission or preemption
decisions -- only prefill and restore charges.  With the cache disabled
the engine's arithmetic is bit-identical to the PR 4 behaviour, which
``tests/api/test_prefix_cache_spec.py`` pins.

Counters (hits, misses, hit tokens, evictions) are monotonic over the
cache's lifetime; the engine reports per-run deltas the same way it does
for :class:`~repro.serving.latency_cache.StepLatencyCache`.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass


@dataclass(frozen=True)
class PrefixCacheStats:
    """Point-in-time snapshot of one :class:`PrefixCache`'s counters.

    Attributes:
        hits: Lookups that found a reusable prefix (any positive overlap).
        misses: Lookups that found nothing for the session.
        hit_tokens: Prefix tokens discounted across all hits.
        evictions: Entries evicted by the LRU capacity policy.
        evicted_tokens: KV tokens those evictions freed.
        entries: Sessions currently cached.
        stored_tokens: KV tokens currently held.
    """

    hits: int
    misses: int
    hit_tokens: int
    evictions: int
    evicted_tokens: int
    entries: int
    stored_tokens: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        lookups = self.lookups
        return self.hits / lookups if lookups else 0.0


class PrefixCache:
    """LRU store of per-session KV prefixes, capacity-bounded in tokens.

    Attributes:
        capacity_tokens: Token budget shared by all entries; ``None``
            disables eviction (unbounded retention).  An entry larger
            than the whole budget is truncated to it -- a prefix of a
            prefix is still a valid prefix.
    """

    def __init__(self, capacity_tokens: int | None = None) -> None:
        if capacity_tokens is not None and capacity_tokens < 1:
            raise ValueError(
                f"capacity_tokens must be >= 1 or None (unbounded), got {capacity_tokens}"
            )
        self.capacity_tokens = capacity_tokens
        #: Session key -> cached prefix length; insertion order is LRU order.
        self._entries: OrderedDict[int, int] = OrderedDict()
        self._stored_tokens = 0
        self.hits = 0
        self.misses = 0
        self.hit_tokens = 0
        self.evictions = 0
        self.evicted_tokens = 0

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: object) -> bool:
        return key in self._entries

    @property
    def stored_tokens(self) -> int:
        """KV tokens currently retained across all sessions."""
        return self._stored_tokens

    def cached_tokens(self, key: int) -> int:
        """Cached prefix length for ``key`` without touching counters or LRU."""
        return self._entries.get(key, 0)

    def stats(self) -> PrefixCacheStats:
        return PrefixCacheStats(
            hits=self.hits,
            misses=self.misses,
            hit_tokens=self.hit_tokens,
            evictions=self.evictions,
            evicted_tokens=self.evicted_tokens,
            entries=len(self._entries),
            stored_tokens=self._stored_tokens,
        )

    # -- the cache protocol --------------------------------------------------

    def lookup(self, key: int, prompt_tokens: int) -> int:
        """Reusable prefix tokens for a prompt of ``prompt_tokens`` in session ``key``.

        A positive return is a *hit*: the first ``n`` tokens of the prompt
        are already resident and need no prefill (``n`` never exceeds the
        prompt itself).  Hits refresh the entry's LRU position; misses
        count but change nothing.
        """
        if prompt_tokens <= 0:
            raise ValueError(f"prompt_tokens must be positive, got {prompt_tokens}")
        cached = self._entries.get(key)
        if cached is None:
            self.misses += 1
            return 0
        self._entries.move_to_end(key)
        usable = min(cached, prompt_tokens)
        self.hits += 1
        self.hit_tokens += usable
        return usable

    def insert(self, key: int, tokens: int) -> None:
        """Retain a ``tokens``-long context as session ``key``'s prefix.

        A session's prefix only ever extends (a shorter insert refreshes
        LRU but never shrinks the entry).  The entry is truncated to the
        whole capacity budget if it alone exceeds it; other entries are
        evicted LRU-first until the budget holds.
        """
        if tokens <= 0:
            raise ValueError(f"tokens must be positive, got {tokens}")
        if self.capacity_tokens is not None:
            tokens = min(tokens, self.capacity_tokens)
        existing = self._entries.get(key, 0)
        new_tokens = max(existing, tokens)
        self._entries[key] = new_tokens
        self._entries.move_to_end(key)
        self._stored_tokens += new_tokens - existing
        if self.capacity_tokens is not None:
            while self._stored_tokens > self.capacity_tokens:
                victim, victim_tokens = next(iter(self._entries.items()))
                # The freshly inserted key is MRU, so the loop always
                # terminates: everything else drains first, and the entry
                # itself was truncated to the budget above.
                assert victim != key
                del self._entries[victim]
                self._stored_tokens -= victim_tokens
                self.evictions += 1
                self.evicted_tokens += victim_tokens

    def invalidate(self, key: int) -> int:
        """Drop session ``key``'s prefix (no-op when absent); returns tokens freed.

        Not an LRU eviction: the counters record only capacity-driven
        evictions, so explicit invalidation stays distinguishable.
        """
        tokens = self._entries.pop(key, 0)
        self._stored_tokens -= tokens
        return tokens

    def clear(self) -> None:
        """Drop every entry, keeping the lifetime counters."""
        self._entries.clear()
        self._stored_tokens = 0


__all__ = ["PrefixCache", "PrefixCacheStats"]
