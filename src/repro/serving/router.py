"""Data-parallel replica router: one front door over N serving engines.

A :class:`ReplicaRouter` fronts independent
:class:`~repro.serving.engine.ServingEngine` replicas behind the same
timestamped-arrival interface the single engine exposes.  Routing happens
the way a real L7 router does it -- online, in arrival order, on the
router's *local* view of each replica (outstanding requests, reserved KV
bytes via a shadow allocator, estimated completion times) -- and the
replicas are then served faithfully on their assigned sub-traces.  The
dispatch pass is a single sweep over arrivals, so no policy can livelock
the router: a request is either assigned to a replica or dropped.

Routing policies implement :class:`RoutingPolicy`:

* :class:`RoundRobinRouting` -- cycle through replicas, state-blind.
* :class:`LeastOutstandingRouting` -- fewest in-flight requests, ties
  broken deterministically by lowest replica index.
* :class:`CapacityAwareRouting` -- prefer replicas whose shadow
  :class:`~repro.serving.interfaces.KVAllocator` ``can_admit`` the request
  now, balancing reserved KV tokens; requests no replica could *ever* fit
  are dropped at the router instead of wedging a replica queue.
* :class:`KVBalancedRouting` -- equalise resident KV tokens per replica
  (the decode-pool default of the disaggregated topology, see
  :mod:`repro.serving.disagg`).
* :class:`SessionAffinityRouting` -- requests sharing a
  :attr:`~repro.workloads.traces.Request.session` id stick to the replica
  that saw the session first (their KV prefix lives there).

Fleet-level metrics merge the per-replica results:
:class:`FleetResult` recomputes TTFT/TPOT/latency percentiles over the
*union* of request records (so an N=1 fleet reports exactly the single
engine's percentiles) and reports aggregate throughput as total tokens
over the fleet makespan.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from collections.abc import Callable, Sequence
from typing import Protocol, runtime_checkable

from repro.api.registry import register_routing_policy
from repro.serving.engine import EngineResult, ServingEngine
from repro.serving.interfaces import KVLifecycle, allocator_for
from repro.serving.lifecycle import LatencyStats, RequestRecord
from repro.workloads.traces import Request, RequestTrace, partition_trace

#: Context length used to probe each replica's decode-step latency once at
#: dispatch time; the probe seeds the router's service-time estimate.
DEFAULT_PROBE_CONTEXT_TOKENS = 1024


class ReplicaState:
    """The router's local view of one replica, updated as it dispatches.

    The router does not see the future: completion times are *estimates*
    (decode tokens times a probed step latency, plus the replica's prefill
    model when it has one).  The shadow allocator mirrors what the replica
    would reserve, which is what ``can_admit``-based routing consults --
    under the incremental lifecycle contract (an engine with an active
    preemption policy) the shadow reserves only the *prompt*, matching the
    replica's own admission rule.

    ``est_step_s`` starts from a one-off probe; a router with EWMA feedback
    overrides it with the replica's measured TPOT from earlier runs, which
    is what makes placement sharpen on heterogeneous fleets.
    """

    def __init__(
        self,
        index: int,
        engine: ServingEngine,
        probe_context_tokens: int = DEFAULT_PROBE_CONTEXT_TOKENS,
        est_step_s: float | None = None,
    ) -> None:
        self.index = index
        self.engine = engine
        self.system = engine.system
        self.lifecycle = engine.lifecycle_admission
        self.shadow: KVLifecycle = allocator_for(self.system)
        if est_step_s is None:
            probe = max(1, min(probe_context_tokens, self.system.max_context_tokens))
            est_step_s = self.system.decode_step([probe]).seconds
        self.est_step_s = est_step_s
        #: Whether the replica takes new work.  The fleet timeline clears
        #: this on failure or drain; every routing policy must skip
        #: non-accepting replicas, and :meth:`ReplicaRouter.dispatch`
        #: enforces it, so dispatching to a downed replica is impossible
        #: by construction.
        self.accepting = True
        self.outstanding = 0
        self.reserved_tokens = 0
        self._completions: list[tuple[float, int]] = []
        self._assigned: dict[int, tuple[int, bool]] = {}

    def _clamped_final_tokens(self, request: Request) -> int:
        return min(request.final_context, self.system.max_context_tokens)

    def _admission_tokens(self, request: Request) -> int:
        """Tokens the replica's admission would check for this request."""
        if self.lifecycle:
            return min(request.prompt_tokens, self.system.max_context_tokens)
        return self._clamped_final_tokens(request)

    def can_admit(self, request: Request) -> bool:
        """Whether the shadow allocator accepts the request right now."""
        return self.shadow.can_admit(self._admission_tokens(request))

    def could_ever_admit(self, request: Request) -> bool:
        """Whether an empty replica could admit the request at all."""
        return self.shadow.could_ever_fit(self._clamped_final_tokens(request))

    def estimated_service_s(self, request: Request) -> float:
        estimate = self.est_step_s * max(1, request.output_tokens)
        prefill = self.engine.prefill
        if prefill is not None:
            prompt = min(request.prompt_tokens, self.system.max_context_tokens)
            estimate += prefill.model.cumulative_seconds(prompt)
        return estimate

    def assign(self, request: Request, now_s: float) -> None:
        """Record a dispatch: bump load counters and book a completion."""
        tokens = self._admission_tokens(request)
        in_shadow = self.shadow.can_admit(tokens)
        if in_shadow:
            self.shadow.reserve(request.request_id, tokens, tokens)
        self._assigned[request.request_id] = (tokens, in_shadow)
        self.outstanding += 1
        self.reserved_tokens += tokens
        finish = now_s + self.estimated_service_s(request)
        heapq.heappush(self._completions, (finish, request.request_id))

    def drain(self, now_s: float) -> None:
        """Retire every booked completion estimated to finish by ``now_s``."""
        while self._completions and self._completions[0][0] <= now_s:
            _, request_id = heapq.heappop(self._completions)
            tokens, in_shadow = self._assigned.pop(request_id)
            if in_shadow:
                self.shadow.release(request_id)
            self.outstanding -= 1
            self.reserved_tokens -= tokens

    def in_flight(self) -> dict[int, int]:
        """Estimated in-flight requests as ``{request_id: reserved tokens}``.

        The fleet timeline reads this at a ``replica_down`` event to pick
        the failure's victims (and charge their reserved KV as lost) on
        the same estimated view dispatch uses.
        """
        return {request_id: tokens for request_id, (tokens, _) in self._assigned.items()}


@runtime_checkable
class RoutingPolicy(Protocol):
    """Chooses a replica for each request, in arrival order."""

    #: Short policy name used in fleet results and reports.
    name: str

    def reset(self) -> None:
        """Clear per-dispatch state; called once at the start of a run."""
        ...

    def select(self, request: Request, replicas: Sequence[ReplicaState]) -> int | None:
        """Return the replica index for ``request`` or ``None`` to drop it.

        Policies must never return a replica whose
        :attr:`ReplicaState.accepting` is cleared (downed or draining);
        with no accepting replica they return ``None``.
        """
        ...


class RoundRobinRouting:
    """Cycle through replicas, blind to load and capacity."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def select(self, request: Request, replicas: Sequence[ReplicaState]) -> int | None:
        # One full cycle at most: skip non-accepting replicas without ever
        # revisiting a slot, so a fleet with none accepting returns None.
        for _ in range(len(replicas)):
            choice = self._next % len(replicas)
            self._next += 1
            if replicas[choice].accepting:
                return choice
        return None


class LeastOutstandingRouting:
    """Smallest estimated backlog wins; ties go to the lowest replica index.

    Backlog is ``outstanding * est_step_s``: in-flight requests weighted by
    the replica's estimated per-token service time.  On a homogeneous
    fleet every estimate is equal, so the policy degenerates to the
    classic fewest-outstanding rule; on a heterogeneous fleet -- or once
    router EWMA feedback has updated the estimates from measured TPOT --
    a slow replica counts as "more loaded" at equal queue depth.
    """

    name = "least-outstanding"

    def reset(self) -> None:
        pass

    def select(self, request: Request, replicas: Sequence[ReplicaState]) -> int | None:
        accepting = [state for state in replicas if state.accepting]
        if not accepting:
            return None
        best = min(
            accepting,
            key=lambda state: (state.outstanding * state.est_step_s, state.index),
        )
        return best.index


class CapacityAwareRouting:
    """Route by KV capacity through the shadow ``can_admit`` protocol.

    Preference order, each tier balancing reserved KV tokens (then
    outstanding count, then index, so ties are deterministic):

    1. replicas that can admit the request *now*;
    2. replicas that could admit it on an empty cache (it will queue);
    3. nobody can ever fit it: drop at the router (``None``), so a dead or
       undersized replica never wedges the fleet.
    """

    name = "capacity-aware"

    def reset(self) -> None:
        pass

    @staticmethod
    def _load_key(state: ReplicaState) -> tuple[int, int, int]:
        return (state.reserved_tokens, state.outstanding, state.index)

    def select(self, request: Request, replicas: Sequence[ReplicaState]) -> int | None:
        accepting = [state for state in replicas if state.accepting]
        admitting = [state for state in accepting if state.can_admit(request)]
        if admitting:
            return min(admitting, key=self._load_key).index
        eventual = [state for state in accepting if state.could_ever_admit(request)]
        if eventual:
            return min(eventual, key=self._load_key).index
        return None


class KVBalancedRouting:
    """Spread reserved KV tokens evenly, ignoring momentary admission state.

    The decode-pool default for disaggregated fleets: every arriving
    request carries its whole prefilled KV, so placement should equalise
    the *resident KV* per replica (which is what stretches decode batch
    latency), not chase whichever replica happens to have free space this
    instant like :class:`CapacityAwareRouting` does.  Requests no replica
    could ever fit are dropped (``None``); ties break on outstanding count
    then replica index, so placement is deterministic.
    """

    name = "kv-balanced"

    def reset(self) -> None:
        pass

    def select(self, request: Request, replicas: Sequence[ReplicaState]) -> int | None:
        eligible = [
            state for state in replicas if state.accepting and state.could_ever_admit(request)
        ]
        if not eligible:
            return None
        best = min(
            eligible,
            key=lambda state: (state.reserved_tokens, state.outstanding, state.index),
        )
        return best.index


class SessionAffinityRouting:
    """Pin every session to the replica that first served it.

    Requests without a session id (and the first request of each session)
    are placed by the fallback policy -- least-outstanding unless another
    is supplied -- so affinity still spreads fresh sessions across the
    fleet when traces are replayed.
    """

    name = "session-affinity"

    def __init__(self, fallback: RoutingPolicy | None = None) -> None:
        self.fallback = fallback if fallback is not None else LeastOutstandingRouting()
        self._sessions: dict[int, int] = {}

    def reset(self) -> None:
        self._sessions.clear()
        self.fallback.reset()

    def select(self, request: Request, replicas: Sequence[ReplicaState]) -> int | None:
        if request.session is None:
            return self.fallback.select(request, replicas)
        pinned = self._sessions.get(request.session)
        if pinned is not None and pinned < len(replicas) and replicas[pinned].accepting:
            return pinned
        # Pinned replica gone (downed or draining): re-pin the session via
        # the fallback -- the prefix is lost, which is the cost of failure.
        choice = self.fallback.select(request, replicas)
        if choice is not None:
            self._sessions[request.session] = choice
        return choice


# Self-registration: routing policies plug into ExperimentSpec by name.
register_routing_policy("round-robin", RoundRobinRouting)
register_routing_policy("least-outstanding", LeastOutstandingRouting)
register_routing_policy("capacity-aware", CapacityAwareRouting)
register_routing_policy("kv-balanced", KVBalancedRouting)
register_routing_policy("session-affinity", SessionAffinityRouting)


@dataclass(frozen=True)
class FleetResult:
    """Merged metrics of one routed serving run across all replicas.

    Percentiles are recomputed over the union of per-request records, not
    averaged across replicas, so an N=1 fleet reports exactly what the
    single engine would.
    """

    policy: str
    replica_results: tuple[EngineResult, ...]
    router_dropped: int
    latency: LatencyStats
    request_records: tuple[RequestRecord, ...]

    @staticmethod
    def from_replicas(
        policy: str,
        replica_results: Sequence[EngineResult],
        router_dropped: int = 0,
    ) -> FleetResult:
        records: list[RequestRecord] = []
        for result in replica_results:
            records.extend(result.request_records)
        records.sort(key=lambda record: record.request_id)
        return FleetResult(
            policy=policy,
            replica_results=tuple(replica_results),
            router_dropped=router_dropped,
            latency=LatencyStats.from_records(records),
            request_records=tuple(records),
        )

    @property
    def num_replicas(self) -> int:
        return len(self.replica_results)

    @property
    def total_output_tokens(self) -> int:
        return sum(result.total_output_tokens for result in self.replica_results)

    @property
    def requests_served(self) -> int:
        return sum(result.requests_served for result in self.replica_results)

    @property
    def requests_dropped(self) -> int:
        """Drops at replica admission plus drops at the router."""
        engine_drops = sum(result.requests_dropped for result in self.replica_results)
        return engine_drops + self.router_dropped

    @property
    def makespan_s(self) -> float:
        """Fleet completion time: the slowest replica's makespan."""
        return max(
            (result.makespan_s for result in self.replica_results), default=0.0
        )

    @property
    def busy_seconds(self) -> float:
        return sum(result.total_seconds for result in self.replica_results)

    @property
    def aggregate_throughput_tokens_per_s(self) -> float:
        """Fleet-level tokens per wall-clock second (tokens / makespan)."""
        if self.makespan_s <= 0:
            return 0.0
        return self.total_output_tokens / self.makespan_s

    @property
    def load_imbalance(self) -> float:
        """Max over mean of per-replica busy seconds (1.0 = perfectly even)."""
        busy = [result.total_seconds for result in self.replica_results]
        mean = sum(busy) / len(busy) if busy else 0.0
        if mean <= 0:
            return 1.0
        return max(busy) / mean

    # -- prefix-cache surface ------------------------------------------------
    #
    # Per-replica hit rates are what make session-affinity vs round-robin an
    # apples-to-apples experiment: affinity concentrates a session's turns
    # (and therefore its prefix) on one replica, round-robin scatters them
    # across caches that each hold only a stale fragment.

    @property
    def prefix_hits(self) -> int:
        """Prefix-cache hits across all replicas."""
        return sum(result.prefix_hits for result in self.replica_results)

    @property
    def prefix_misses(self) -> int:
        """Prefix-cache misses across all replicas."""
        return sum(result.prefix_misses for result in self.replica_results)

    @property
    def prefix_hit_tokens(self) -> int:
        """Prompt tokens discounted by cache hits across all replicas."""
        return sum(result.prefix_hit_tokens for result in self.replica_results)

    @property
    def prefix_hit_rate(self) -> float:
        """Fleet-wide prefix-cache hit fraction (0 when the cache is off)."""
        lookups = self.prefix_hits + self.prefix_misses
        return self.prefix_hits / lookups if lookups else 0.0

    @property
    def prefix_hit_rates(self) -> tuple[float, ...]:
        """Per-replica prefix-cache hit fractions, in replica order."""
        return tuple(result.prefix_hit_rate for result in self.replica_results)


@dataclass
class ReplicaRouter:
    """Routes a timestamped trace across N independent serving engines.

    Attributes:
        replicas: The serving engines fronted by this router (at least one;
            they may be heterogeneous).
        policy: Routing policy (default round-robin).
        probe_context_tokens: Context length used to probe each replica's
            decode-step latency for the router's service-time estimates.
        ewma_alpha: Feedback weight for measured per-replica TPOT.  After
            every :meth:`run`, each replica's service-time estimate is
            updated as ``(1 - alpha) * old + alpha * measured_tpot`` and
            used by the *next* dispatch, so load-dependent slowness a
            single-request probe cannot see (batching, long contexts)
            sharpens placement over successive runs.  ``0`` disables
            feedback and keeps probe-only estimates.
    """

    replicas: Sequence[ServingEngine]
    policy: RoutingPolicy = field(default_factory=RoundRobinRouting)
    probe_context_tokens: int = DEFAULT_PROBE_CONTEXT_TOKENS
    ewma_alpha: float = 0.3
    #: Learned per-replica step-time estimates (replica index -> seconds).
    _service_estimates: dict[int, float] = field(default_factory=dict, init=False, repr=False)

    def __post_init__(self) -> None:
        if not self.replicas:
            raise ValueError("a ReplicaRouter needs at least one replica")
        if self.probe_context_tokens < 1:
            raise ValueError("probe_context_tokens must be >= 1")
        if not 0.0 <= self.ewma_alpha <= 1.0:
            raise ValueError("ewma_alpha must be within [0, 1]")

    @property
    def service_time_estimates(self) -> dict[int, float]:
        """EWMA-learned per-replica step-time estimates (empty before feedback)."""
        return dict(self._service_estimates)

    def _update_estimates(self, results: Sequence[EngineResult]) -> None:
        """Fold each replica's measured mean TPOT into its EWMA estimate."""
        if self.ewma_alpha <= 0.0:
            return
        for index, result in enumerate(results):
            measured = result.latency.tpot_mean_s
            if measured <= 0.0:
                # Single-token requests report TPOT 0 (no inter-token gap),
                # which used to leave the estimate frozen forever; fall
                # back to the mean *decode* step latency.  Busy seconds
                # also include chunked-prefill work and preemption lumps,
                # which would inflate a per-step estimate by orders of
                # magnitude on prompt-heavy traces, so strip them first
                # (blocking prefill never charges the busy clock).
                decode_seconds = result.total_seconds - result.preemption_overhead_s
                if result.prefill_mode == "chunked":
                    decode_seconds -= result.prefill_seconds_total
                measured = decode_seconds / result.steps if result.steps else 0.0
            if measured <= 0.0:
                continue  # replica served nothing this run
            previous = self._service_estimates.get(index)
            if previous is None:
                self._service_estimates[index] = measured
            else:
                self._service_estimates[index] = (
                    (1.0 - self.ewma_alpha) * previous + self.ewma_alpha * measured
                )

    @classmethod
    def homogeneous(
        cls,
        engine_factory: Callable[[], ServingEngine],
        num_replicas: int,
        policy: RoutingPolicy | None = None,
        probe_context_tokens: int = DEFAULT_PROBE_CONTEXT_TOKENS,
        ewma_alpha: float = 0.3,
    ) -> ReplicaRouter:
        """Build a router over ``num_replicas`` identical engines."""
        if num_replicas < 1:
            raise ValueError("num_replicas must be >= 1")
        return cls(
            replicas=tuple(engine_factory() for _ in range(num_replicas)),
            policy=policy if policy is not None else RoundRobinRouting(),
            probe_context_tokens=probe_context_tokens,
            ewma_alpha=ewma_alpha,
        )

    def dispatch(self, trace: RequestTrace) -> list[int | None]:
        """Assign every request to a replica (or ``None``), in arrival order.

        The sweep is stable on arrival time, matching the engine's
        admission ordering, and visits each request exactly once -- a
        policy can reject a request but never stall the pass.
        """
        states = [
            ReplicaState(
                index,
                engine,
                self.probe_context_tokens,
                est_step_s=self._service_estimates.get(index),
            )
            for index, engine in enumerate(self.replicas)
        ]
        self.policy.reset()
        assignments: list[int | None] = [None] * len(trace.requests)
        order = sorted(
            range(len(trace.requests)), key=lambda i: trace.requests[i].arrival_s
        )
        for position in order:
            request = trace.requests[position]
            arrival_s = request.arrival_s
            for state in states:
                state.drain(arrival_s)
            choice = self.policy.select(request, states)
            if choice is None:
                continue
            if not 0 <= choice < len(states):
                raise ValueError(
                    f"policy {self.policy.name!r} chose replica {choice} for request "
                    f"{request.request_id}; fleet has {len(states)} replicas"
                )
            if not states[choice].accepting:
                raise ValueError(
                    f"policy {self.policy.name!r} chose non-accepting replica "
                    f"{choice} for request {request.request_id}; downed or "
                    "draining replicas must be skipped"
                )
            states[choice].assign(request, arrival_s)
            assignments[position] = choice
        return assignments

    def run(self, trace: RequestTrace, system_name: str = "") -> FleetResult:
        """Dispatch ``trace`` and serve every replica's share to completion."""
        assignments = self.dispatch(trace)
        subtraces = partition_trace(trace, assignments, len(self.replicas))
        results = []
        for index, (engine, subtrace) in enumerate(zip(self.replicas, subtraces, strict=True)):
            base = system_name or type(engine.system).__name__
            results.append(engine.run(subtrace, system_name=f"{base}[replica {index}]"))
        dropped = sum(1 for assignment in assignments if assignment is None)
        self._update_estimates(results)
        return FleetResult.from_replicas(self.policy.name, results, router_dropped=dropped)
