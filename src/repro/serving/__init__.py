"""Event-driven decode serving engine (admission / scheduling / metrics).

Layering, from the outside in:

* :mod:`repro.serving.admission` -- pluggable :class:`AdmissionPolicy`
  implementations (FCFS, capacity-aware, priority).
* :mod:`repro.serving.engine` -- the :class:`ServingEngine` event loop
  consuming timestamped arrivals.
* :mod:`repro.serving.interfaces` -- the :class:`DecodeSystem` and
  :class:`KVAllocator` protocols plus result types.
* :mod:`repro.serving.lifecycle` -- per-request TTFT/TPOT/latency tracking.
* :mod:`repro.serving.latency_cache` -- bucketed decode-step memoisation
  for large sweeps.
"""

from repro.serving.admission import (
    AdmissionCandidate,
    AdmissionPolicy,
    CapacityAwareAdmission,
    FCFSAdmission,
    PriorityAdmission,
)
from repro.serving.engine import EngineResult, ServingEngine, serve
from repro.serving.interfaces import (
    DecodeSystem,
    KVAllocator,
    ServingResult,
    StepResult,
    allocator_for,
    build_allocator,
)
from repro.serving.latency_cache import StepLatencyCache
from repro.serving.lifecycle import LatencyStats, LifecycleTracker, RequestRecord, percentile

__all__ = [
    "AdmissionCandidate",
    "AdmissionPolicy",
    "CapacityAwareAdmission",
    "FCFSAdmission",
    "PriorityAdmission",
    "EngineResult",
    "ServingEngine",
    "serve",
    "DecodeSystem",
    "KVAllocator",
    "ServingResult",
    "StepResult",
    "allocator_for",
    "build_allocator",
    "StepLatencyCache",
    "LatencyStats",
    "LifecycleTracker",
    "RequestRecord",
    "percentile",
]
