"""Event-driven decode serving engine (admission / scheduling / metrics).

Layering, from the outside in:

* :mod:`repro.serving.router` -- the data-parallel :class:`ReplicaRouter`
  fronting N engines with pluggable :class:`RoutingPolicy` implementations
  and merged :class:`FleetResult` metrics.
* :mod:`repro.serving.fleet_events` -- the fleet *timeline*: a
  :class:`DynamicFleetRouter` whose replica set changes mid-run through
  scripted failure/recovery events and autoscaler decisions, billing
  replica-hours and KV lost to failures (:class:`DynamicFleetResult`).
* :mod:`repro.serving.autoscaler` -- the :class:`ReactiveAutoscaler`
  threshold controller (queue-depth or estimated-TTFT EWMA signals)
  driving scale-up/scale-down decisions on the timeline.
* :mod:`repro.serving.disagg` -- the disaggregated two-pool topology: a
  dedicated :class:`PrefillPool` handing finished KV to a decode fleet
  over a modelled interconnect (:class:`DisaggRouter`).
* :mod:`repro.serving.admission` -- pluggable :class:`AdmissionPolicy`
  implementations (FCFS, capacity-aware, priority).
* :mod:`repro.serving.engine` -- the :class:`ServingEngine` event loop
  consuming timestamped arrivals.
* :mod:`repro.serving.preemption` -- pluggable :class:`PreemptionPolicy`
  implementations (evict-lru / evict-largest / evict-youngest plus the
  tier-aware evict-priority-* family) with swap or recompute cost models,
  driving the incremental KV lifecycle contract.
* :mod:`repro.serving.prefill` -- context-length-dependent prefill cost
  models (blocking or chunked) that make TTFT reflect prompt length.
* :mod:`repro.serving.prefix_cache` -- per-replica prefix/KV reuse for
  multi-turn sessions (LRU over cached session prefixes, counted in KV
  tokens), discounting prefill and recompute-restore work.
* :mod:`repro.serving.interfaces` -- the :class:`DecodeSystem`,
  :class:`KVAllocator` and :class:`KVLifecycle` protocols plus result
  types.
* :mod:`repro.serving.lifecycle` -- per-request TTFT/TPOT/latency tracking.
* :mod:`repro.serving.latency_cache` -- bucketed decode-step memoisation
  for large sweeps.
"""

from repro.serving.admission import (
    AdmissionCandidate,
    AdmissionPolicy,
    CapacityAwareAdmission,
    FCFSAdmission,
    PriorityAdmission,
)
from repro.serving.autoscaler import (
    SCALE_DOWN,
    SCALE_UP,
    ReactiveAutoscaler,
    ScalingDecision,
)
from repro.serving.disagg import (
    DisaggResult,
    DisaggRouter,
    HandoffRecord,
    PrefillPhase,
    PrefillPool,
)
from repro.serving.engine import EngineResult, ServingEngine, serve
from repro.serving.fast_engine import FastServingEngine
from repro.serving.fleet_events import (
    DynamicFleetResult,
    DynamicFleetRouter,
    FleetEvent,
    SegmentRecord,
)
from repro.serving.interfaces import (
    CapacityExceeded,
    DecodeSystem,
    KVAllocator,
    KVLifecycle,
    PreemptedState,
    ServingResult,
    StepResult,
    allocator_for,
    build_allocator,
)
from repro.serving.latency_cache import StepLatencyCache
from repro.serving.lifecycle import (
    LatencyStats,
    LifecycleTracker,
    RequestRecord,
    WindowStats,
    percentile,
    percentiles,
    windowed_stats,
)
from repro.serving.preemption import (
    EvictLargest,
    EvictLRU,
    EvictPriorityLargest,
    EvictPriorityLRU,
    EvictPriorityYoungest,
    EvictYoungest,
    NoPreemption,
    PreemptionCandidate,
    PreemptionConfig,
    PreemptionCostModel,
    PreemptionPolicy,
)
from repro.serving.prefill import (
    LinearPrefillModel,
    PrefillConfig,
    PrefillModel,
    SupportsPrefill,
    SystemPrefillModel,
    prefill_model_for,
    transformer_prefill_flops,
)
from repro.serving.prefix_cache import PrefixCache, PrefixCacheStats
from repro.serving.router import (
    CapacityAwareRouting,
    FleetResult,
    KVBalancedRouting,
    LeastOutstandingRouting,
    ReplicaRouter,
    ReplicaState,
    RoundRobinRouting,
    RoutingPolicy,
    SessionAffinityRouting,
)

__all__ = [
    "AdmissionCandidate",
    "AdmissionPolicy",
    "CapacityAwareAdmission",
    "FCFSAdmission",
    "PriorityAdmission",
    "DisaggResult",
    "DisaggRouter",
    "HandoffRecord",
    "PrefillPhase",
    "PrefillPool",
    "EngineResult",
    "ServingEngine",
    "FastServingEngine",
    "serve",
    "DynamicFleetResult",
    "DynamicFleetRouter",
    "FleetEvent",
    "SegmentRecord",
    "SCALE_DOWN",
    "SCALE_UP",
    "ReactiveAutoscaler",
    "ScalingDecision",
    "CapacityExceeded",
    "DecodeSystem",
    "KVAllocator",
    "KVLifecycle",
    "PreemptedState",
    "ServingResult",
    "StepResult",
    "allocator_for",
    "build_allocator",
    "EvictLargest",
    "EvictLRU",
    "EvictPriorityLargest",
    "EvictPriorityLRU",
    "EvictPriorityYoungest",
    "EvictYoungest",
    "NoPreemption",
    "PreemptionCandidate",
    "PreemptionConfig",
    "PreemptionCostModel",
    "PreemptionPolicy",
    "StepLatencyCache",
    "LatencyStats",
    "LifecycleTracker",
    "RequestRecord",
    "WindowStats",
    "percentile",
    "percentiles",
    "windowed_stats",
    "LinearPrefillModel",
    "PrefillConfig",
    "PrefillModel",
    "SupportsPrefill",
    "SystemPrefillModel",
    "prefill_model_for",
    "transformer_prefill_flops",
    "PrefixCache",
    "PrefixCacheStats",
    "CapacityAwareRouting",
    "FleetResult",
    "KVBalancedRouting",
    "LeastOutstandingRouting",
    "ReplicaRouter",
    "ReplicaState",
    "RoundRobinRouting",
    "RoutingPolicy",
    "SessionAffinityRouting",
]
