"""Memoised decode-step latency keyed by bucketed context histograms.

A decode step's latency depends only on the multiset of active context
lengths, and those change slowly (one token per request per step), so large
serving sweeps evaluate thousands of nearly identical batches.  The cache
quantises every context into ``bucket_tokens``-wide buckets and memoises
one :class:`~repro.serving.interfaces.StepResult` per bucket histogram.  A
miss is evaluated at the *actual* triggering contexts (never at synthetic
representatives, which could fall outside the model's window or misprice
sub-bucket contexts), so the first evaluation of every histogram is exact
and later hits are off by at most the intra-bucket drift.  With the
paper's 32K-128K contexts and a 256-token bucket that is under 1% relative
context error, while a 1k-request sweep collapses to a few hundred
distinct evaluations.

``bucket_tokens=1`` degenerates to exact memoisation: every batch in a key
class has identical contexts, so results are bit-identical to uncached
evaluation (useful when re-serving traces on the same configuration).

A cache binds to the first system it evaluates: entries are latencies *of
that system*, so sweeping several configurations needs one cache each
(mixing them would silently return another system's timings).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from collections.abc import Sequence

from repro.serving.interfaces import DecodeSystem, StepResult


@dataclass
class StepLatencyCache:
    """LRU-bounded memoisation of one system's ``decode_step`` results.

    Attributes:
        bucket_tokens: Context quantisation granularity; 1 is exact.
        max_entries: LRU capacity bound, to keep week-long sweeps from
            growing the cache without limit.
        hits: Number of lookups served from the cache.
        misses: Number of lookups that evaluated the system model.
    """

    bucket_tokens: int = 256
    max_entries: int = 65536
    hits: int = 0
    misses: int = 0
    _store: OrderedDict = field(default_factory=OrderedDict, repr=False)
    _bound_system: DecodeSystem | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.bucket_tokens < 1:
            raise ValueError("bucket_tokens must be >= 1")
        if self.max_entries < 1:
            raise ValueError("max_entries must be >= 1")

    def _key(self, context_lengths: Sequence[int]) -> tuple[int, ...]:
        """Histogram key: the sorted bucket indices of the batch."""
        return tuple(sorted(length // self.bucket_tokens for length in context_lengths))

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:
        return len(self._store)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self._bound_system = None

    def evaluate(self, system: DecodeSystem, context_lengths: Sequence[int]) -> StepResult:
        """Return the (possibly memoised) decode-step result for a batch.

        Raises:
            ValueError: if the cache already holds entries for a different
                system object; cached latencies are system-specific.
        """
        if self._bound_system is None:
            self._bound_system = system
        elif self._bound_system is not system:
            raise ValueError(
                "StepLatencyCache is bound to a different system; use one "
                "cache per system configuration (or call clear())"
            )
        key = self._key(context_lengths)
        cached = self._store.get(key)
        if cached is not None:
            self._store.move_to_end(key)
            self.hits += 1
            return cached
        result = system.decode_step(list(context_lengths))
        self.misses += 1
        self._store[key] = result
        if len(self._store) > self.max_entries:
            self._store.popitem(last=False)
        return result
