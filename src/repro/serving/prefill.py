"""Prefill cost models: context-length-dependent time-to-first-token.

Before PR 2 the engine charged no prefill latency at all, so TTFT only
reflected queueing delay plus one decode step -- a 128-token and a
128k-token prompt looked identical.  A :class:`PrefillModel` prices the
prompt-processing phase as a *cumulative* function of prefilled tokens,
which supports two charging disciplines in the engine:

* **blocking** -- the full prefill latency elapses between admission and
  the first decode step, modelling a dedicated prefill path that runs in
  parallel with ongoing decode (NeuPIMs-style disaggregation);
* **chunked** -- prefill is processed ``chunk_tokens`` at a time,
  interleaved with decode steps on the same hardware (Sarathi/vLLM-style
  chunked prefill): decode steps stretch while a prompt is being
  prefilled, but the prompt does not monopolise the system.

The cumulative formulation makes the marginal cost of a chunk exact even
for super-linear (attention-quadratic) models:
``cost(done, take) = cumulative(done + take) - cumulative(done)``.

System models expose an analytic ``prefill_seconds(prompt_tokens)``
method (see :class:`~repro.system.xpu.XPUOnlySystem`,
:class:`~repro.system.pim_only.PIMOnlySystem`,
:class:`~repro.system.xpu_pim.XPUPIMSystem`); :func:`prefill_model_for`
adapts any such system into a :class:`PrefillModel`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol, runtime_checkable

from repro.api.registry import register_prefill_model

if TYPE_CHECKING:
    from repro.models.llm import LLMConfig


@runtime_checkable
class PrefillModel(Protocol):
    """Cumulative prefill latency as a function of prefilled tokens."""

    def cumulative_seconds(self, tokens: int) -> float:
        """Seconds to prefill the first ``tokens`` tokens of a prompt.

        Must be 0 at ``tokens <= 0`` and non-decreasing in ``tokens``.
        """
        ...


@runtime_checkable
class SupportsPrefill(Protocol):
    """A system model that can price its own prefill phase."""

    def prefill_seconds(self, prompt_tokens: int) -> float: ...


@dataclass(frozen=True)
class LinearPrefillModel:
    """Closed-form prefill cost: ``base + a*t + b*t^2`` for ``t`` tokens.

    The linear term models the per-token FC GEMMs (every token passes
    through all weights once); the quadratic term models causal attention
    over the growing prefix.  ``base_s`` is a one-time launch cost charged
    as soon as any token is prefilled.
    """

    per_token_s: float
    per_token_sq_s: float = 0.0
    base_s: float = 0.0

    def __post_init__(self) -> None:
        if self.per_token_s < 0 or self.per_token_sq_s < 0 or self.base_s < 0:
            raise ValueError("prefill cost coefficients must be non-negative")

    def cumulative_seconds(self, tokens: int) -> float:
        if tokens <= 0:
            return 0.0
        return self.base_s + self.per_token_s * tokens + self.per_token_sq_s * tokens * tokens


@dataclass(frozen=True)
class SystemPrefillModel:
    """Adapts a system's analytic ``prefill_seconds`` to :class:`PrefillModel`."""

    system: SupportsPrefill

    def cumulative_seconds(self, tokens: int) -> float:
        if tokens <= 0:
            return 0.0
        return self.system.prefill_seconds(tokens)


def prefill_model_for(system: object) -> PrefillModel:
    """Build the prefill model a system describes for itself.

    Raises:
        TypeError: if the system has no ``prefill_seconds`` method; pass an
            explicit :class:`LinearPrefillModel` in that case.
    """
    if isinstance(system, SupportsPrefill):
        return SystemPrefillModel(system)
    raise TypeError(
        f"{type(system).__name__} does not implement prefill_seconds(); "
        "construct a LinearPrefillModel (or implement SupportsPrefill) instead"
    )


@dataclass(frozen=True)
class PrefillConfig:
    """How the engine charges prefill latency.

    Attributes:
        model: Cumulative prefill cost model.
        chunk_tokens: ``None`` charges the whole prompt at admission
            (blocking); a positive value interleaves prefill with decode,
            processing at most this many prompt tokens per decode step
            (the engine drops to per-step evaluation while prompt work is
            pending, so the chunk rate is independent of ``step_stride``).
    """

    model: PrefillModel
    chunk_tokens: int | None = None

    def __post_init__(self) -> None:
        if self.chunk_tokens is not None and self.chunk_tokens < 1:
            raise ValueError("chunk_tokens must be >= 1 (or None for blocking prefill)")

    @property
    def mode(self) -> str:
        return "blocking" if self.chunk_tokens is None else "chunked"


# Self-registration: prefill models plug into ExperimentSpec by name.  The
# factory signature is (system, prefill_spec) -> PrefillModel.
register_prefill_model("system", lambda system, spec: prefill_model_for(system))
register_prefill_model(
    "linear",
    lambda system, spec: LinearPrefillModel(
        per_token_s=spec.per_token_s,
        per_token_sq_s=spec.per_token_sq_s,
        base_s=spec.base_s,
    ),
)


def transformer_prefill_flops(model: LLMConfig, prompt_tokens: int) -> tuple[float, float]:
    """FLOPs of prefilling ``prompt_tokens`` tokens of a decoder-only LLM.

    Returns ``(fc_flops, attention_flops)``: the FC GEMMs touch every
    parameter once per token (2 FLOPs per MAC), while causal attention
    pays ``QK^T`` plus ``PV`` over the triangular prefix, which sums to
    roughly ``2 * layers * d_model * T^2``.

    ``model`` is any object with ``param_count``, ``num_layers`` and
    ``d_model`` attributes (an :class:`~repro.models.llm.LLMConfig`).
    """
    if prompt_tokens <= 0:
        return 0.0, 0.0
    fc_flops = 2.0 * model.param_count * prompt_tokens
    attention_flops = 2.0 * model.num_layers * model.d_model * float(prompt_tokens) ** 2
    return fc_flops, attention_flops
