"""Event-driven decode serving engine.

The engine replaces the monolithic ``simulate_serving`` loop with three
decoupled layers:

1. **Admission** -- an :class:`~repro.serving.admission.AdmissionPolicy`
   ranks arrived-but-waiting requests; the engine admits everything the
   allocator accepts through the unified ``can_admit``/``reserve``/
   ``release`` protocol (no ``isinstance`` special-casing).
2. **Scheduling** -- the engine advances a simulation clock over decode
   strides, idling forward to the next arrival when the system drains, so
   open-loop (Poisson / replayed) traces are served faithfully.
3. **Metrics** -- a :class:`~repro.serving.lifecycle.LifecycleTracker`
   stamps every request's arrival, admission, first token and completion,
   yielding TTFT / TPOT and latency percentiles on top of the legacy
   throughput counters.

An optional :class:`~repro.serving.prefill.PrefillConfig` charges
context-length-dependent prompt-processing latency at admission, either
blocking (the request decodes only after its whole prefill elapses) or
chunked (prefill interleaves with decode steps on the same hardware), so
TTFT reflects prompt length instead of just queueing plus one decode step.

An optional :class:`~repro.serving.prefix_cache.PrefixCache` adds
per-replica prefix/KV reuse for multi-turn sessions: requests carrying a
session id are charged prefill (and recompute-mode restore work) only for
the suffix their session's cached prefix does not cover, and each
finished turn's full context is retained for the next turn.

An optional :class:`~repro.serving.preemption.PreemptionConfig` flips the
engine from the admit-to-completion contract to the incremental
:class:`~repro.serving.interfaces.KVLifecycle` contract: admission
reserves only the prompt, the KV cache grows chunk by chunk, and when a
grow raises :class:`~repro.memory.lifecycle.CapacityExceeded` the policy
picks a victim to page out (``evict-lru`` / ``evict-largest`` /
``evict-youngest``).  Victims re-queue through admission and are restored
with their saved state; swap or recompute costs are charged to the clock
and surfaced as preemption metrics on :class:`EngineResult`.

A trace whose requests all arrive at time 0 and fit the context window
(``prompt + output <= max_context_tokens``) served under FCFS reproduces
the legacy loop's arithmetic exactly (same admissions, same strides, same
floating-point accumulation order), which `tests/serving/test_parity.py`
pins to 1e-9.  One deliberate divergence: a request whose output would
outgrow the window is clamped to it -- the legacy loop kept generating
past its own reservation, which could exhaust the allocator mid-decode.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.memory.lifecycle import CapacityExceeded, PreemptedState
from repro.memory.static_alloc import AllocationError
from repro.pim.simulator import ZERO_BREAKDOWN
from repro.serving.admission import AdmissionCandidate, AdmissionPolicy, FCFSAdmission
from repro.serving.interfaces import (
    DecodeSystem,
    KVLifecycle,
    ServingResult,
    allocator_for,
)
from repro.serving.latency_cache import StepLatencyCache
from repro.serving.lifecycle import LatencyStats, LifecycleTracker, RequestRecord
from repro.serving.preemption import PreemptionCandidate, PreemptionConfig
from repro.serving.prefill import PrefillConfig
from repro.serving.prefix_cache import PrefixCache
from repro.workloads.traces import RequestTrace


@dataclass
class EngineResult(ServingResult):
    """Serving metrics extended with lifecycle latency statistics.

    ``total_seconds`` (and therefore ``throughput_tokens_per_s``) counts
    busy decode time only, matching the legacy loop; ``makespan_s`` adds
    the idle gaps an open-loop arrival process introduces.
    """

    makespan_s: float = 0.0
    idle_seconds: float = 0.0
    admission_policy: str = "fcfs"
    latency: LatencyStats = field(default_factory=LatencyStats)
    request_records: tuple[RequestRecord, ...] = ()
    requests_dropped: int = 0
    prefill_mode: str = "none"
    prefill_seconds_total: float = 0.0
    preemption_policy: str = "none"
    #: Victim evictions performed to resolve mid-decode capacity pressure.
    preemptions: int = 0
    #: Clock charged to page-out/page-in work (swap or recompute).
    preemption_overhead_s: float = 0.0
    #: Tokens re-prefilled by recompute-mode restores.
    recompute_tokens: int = 0
    #: Mean paged-out-to-restored stall per preemption (requeue delay).
    requeue_delay_mean_s: float = 0.0
    #: Whether a prefix cache was attached for this run.
    prefix_cache_enabled: bool = False
    #: Prefix-cache lookups that found a reusable session prefix.
    prefix_hits: int = 0
    #: Prefix-cache lookups that found nothing for the session.
    prefix_misses: int = 0
    #: Prompt tokens discounted from prefill/restore work by cache hits.
    prefix_hit_tokens: int = 0
    #: Session prefixes evicted by the cache's LRU capacity policy.
    prefix_evictions: int = 0

    @property
    def prefix_hit_rate(self) -> float:
        """Hit fraction of this run's prefix-cache lookups (0 when unused)."""
        lookups = self.prefix_hits + self.prefix_misses
        return self.prefix_hits / lookups if lookups else 0.0

    @property
    def ttft_mean_s(self) -> float:
        return self.latency.ttft_mean_s

    @property
    def tpot_mean_s(self) -> float:
        return self.latency.tpot_mean_s

    @property
    def latency_p50_s(self) -> float:
        return self.latency.latency_p50_s

    @property
    def latency_p95_s(self) -> float:
        return self.latency.latency_p95_s

    @property
    def latency_p99_s(self) -> float:
        return self.latency.latency_p99_s


@dataclass
class _ActiveRequest:
    request_id: int
    context: int
    remaining: int
    #: Blocking prefill: earliest clock at which the request may decode.
    ready_s: float = 0.0
    #: Chunked prefill: prompt tokens that must be prefilled before decode.
    prefill_total: int = 0
    prefill_done: int = 0
    #: Clock of the most recent admission or restore (preemption policies).
    admitted_s: float = 0.0
    #: Clock of the most recent decode progress (LRU preemption).
    last_step_s: float = 0.0
    #: Conversation id for prefix-cache lookups (``None`` = no session).
    session: int | None = None
    #: Scheduling priority (priority-aware preemption policies).
    priority: int = 0
    #: Times this request has been evicted (anti-starvation guard).
    preempt_count: int = 0

    def decode_ready(self, clock: float) -> bool:
        return self.ready_s <= clock and self.prefill_done >= self.prefill_total


@dataclass
class _PreemptedRequest:
    """A paged-out request waiting in the restore queue."""

    entry: _ActiveRequest
    state: PreemptedState


@dataclass
class ServingEngine:
    """Serves a request trace on any :class:`DecodeSystem`.

    Attributes:
        system: System model that prices each decode step.
        admission: Policy ranking waiting requests (default FCFS).
        max_batch_size: Optional hard cap on concurrent requests.
        step_stride: Decode steps advanced per latency evaluation; contexts
            change slowly, so strides of 4-16 keep large sweeps cheap with
            negligible error.
        latency_cache: Optional memoisation of decode-step latencies; leave
            ``None`` for exact per-step evaluation.
        prefill: Optional prefill cost model and charging discipline (see
            :mod:`repro.serving.prefill`).  ``None`` keeps the legacy
            behaviour of free prompt processing, which the parity tests pin.
        preemption: Optional preemption policy and cost model (see
            :mod:`repro.serving.preemption`).  ``None`` -- or a config
            whose policy is ``"none"`` -- keeps the admit-to-completion
            contract: the allocator commits each request's *final* context
            at admission and growth never fails, which the parity tests
            pin.  An active config flips the engine to the incremental
            :class:`~repro.serving.interfaces.KVLifecycle` contract:
            admission checks only the prompt, requests grow chunk by
            chunk, and mid-decode capacity pressure is resolved by paging
            victims out and re-queueing them through admission.
        prefix_cache: Optional per-replica prefix/KV reuse store (see
            :mod:`repro.serving.prefix_cache`).  Requests carrying a
            session id reuse the session's cached prefix: blocking and
            chunked prefill charge only the uncached suffix, and
            recompute-mode restores re-prefill only what the cache does
            not hold.  ``None`` (the default) keeps the no-reuse
            arithmetic the parity tests pin.
    """

    system: DecodeSystem
    admission: AdmissionPolicy = field(default_factory=FCFSAdmission)
    max_batch_size: int | None = None
    step_stride: int = 1
    latency_cache: StepLatencyCache | None = None
    prefill: PrefillConfig | None = None
    preemption: PreemptionConfig | None = None
    prefix_cache: PrefixCache | None = None
    #: Finished-prefill KV receipts by request id (disaggregated decode
    #: pools).  A request found here enters via ``allocator.restore`` --
    #: the decode half of the preempt-on-prefill-replica handoff -- instead
    #: of a fresh ``reserve``; admission gating is unchanged, so colocated
    #: runs (``None``) are untouched.
    kv_handoff: dict[int, PreemptedState] | None = None

    def __post_init__(self) -> None:
        if self.step_stride < 1:
            raise ValueError("step_stride must be >= 1")
        if self.max_batch_size is not None and self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")

    @property
    def lifecycle_admission(self) -> bool:
        """Whether admission follows the incremental lifecycle contract.

        True when an active preemption policy is attached: admission then
        reserves only a request's *current* context instead of its final
        one (the router's shadow allocators mirror the same rule).
        """
        return self.preemption is not None and self.preemption.active

    # -- helpers -----------------------------------------------------------

    def _candidates(self, trace: RequestTrace) -> deque[AdmissionCandidate]:
        """Clamp every request to the serving window, ordered by arrival.

        The sort is stable on arrival time only, so simultaneous arrivals
        keep their trace order -- which is what the legacy loop used and
        what the parity guarantee depends on.
        """
        window = self.system.max_context_tokens
        candidates = []
        for request in trace.requests:
            final = min(request.prompt_tokens + request.output_tokens, window)
            prompt = max(1, final - request.output_tokens)
            candidates.append(
                AdmissionCandidate(request=request, prompt_tokens=prompt, final_tokens=final)
            )
        candidates.sort(key=lambda candidate: candidate.arrival_s)
        return deque(candidates)

    def _restore(
        self,
        preempted: deque[_PreemptedRequest],
        active: dict[int, _ActiveRequest],
        allocator: KVLifecycle,
        tracker: LifecycleTracker,
        clock: float,
    ) -> float:
        """Restore paged-out requests in preemption order; returns clock charge.

        Restores run before fresh admissions each round: a preempted
        request has already consumed decode (and possibly prefill) work,
        so letting it finish wastes the least capacity.  The queue is
        FCFS on preemption time, bounding any one request's stall.

        Recompute-mode restores consult the prefix cache (the session's
        retained prefix needs no re-prefill) and, when chunked prefill is
        configured, route the remaining recompute through the chunked
        path -- the recomputed tokens then share decode hardware chunk by
        chunk exactly like admission-time prefill, instead of being
        charged as an up-front lump.  Swap-mode restores page the full KV
        back regardless and stay lump-charged.
        """
        overhead_s = 0.0
        assert self.preemption is not None
        cost = self.preemption.cost
        prefill_model = self.prefill.model if self.prefill is not None else None
        chunked = self.prefill is not None and self.prefill.chunk_tokens is not None
        while preempted:
            if self.max_batch_size is not None and len(active) >= self.max_batch_size:
                break
            head = preempted[0]
            if not allocator.can_admit(head.state.tokens):
                break
            preempted.popleft()
            allocator.restore(head.state.request_id, head.state)
            entry = head.entry
            cached = 0
            if (
                cost.mode == "recompute"
                and self.prefix_cache is not None
                and entry.session is not None
            ):
                cached = self.prefix_cache.lookup(entry.session, head.state.tokens)
            if cost.mode == "recompute" and chunked:
                entry.prefill_total = head.state.tokens
                entry.prefill_done = cached
            else:
                overhead_s += cost.restore_seconds(
                    head.state, prefill_model, cached_tokens=cached
                )
            tracker.on_restore(
                head.state.request_id,
                clock,
                cost.restore_recompute_tokens(head.state, cached_tokens=cached),
            )
            entry.admitted_s = clock
            entry.last_step_s = clock
            active[entry.request_id] = entry
        return overhead_s

    def _admit(
        self,
        arrived: deque[AdmissionCandidate],
        active: dict[int, _ActiveRequest],
        allocator: KVLifecycle,
        tracker: LifecycleTracker,
        clock: float,
        preempted: deque[_PreemptedRequest] | None = None,
    ) -> tuple[int, float]:
        """Run one admission round.

        Returns the number of requests admitted and the clock charge of
        any restores performed (zero under the legacy contract).
        """
        lifecycle = self.lifecycle_admission
        overhead_s = 0.0
        if lifecycle and preempted:
            overhead_s = self._restore(preempted, active, allocator, tracker, clock)
        admitted: set[int] = set()
        ordered = self.admission.order(arrived)
        for candidate in ordered:
            if self.max_batch_size is not None and len(active) >= self.max_batch_size:
                break
            if lifecycle:
                # Incremental contract: admit against the prompt only, but
                # never admit work whose final context exceeds *total*
                # capacity -- it would inevitably die mid-decode with no
                # victim able to save it.
                could_ever = allocator.could_ever_fit(candidate.final_tokens)
                fits = could_ever and allocator.can_admit(candidate.prompt_tokens)
            else:
                fits = allocator.can_admit(candidate.final_tokens)
            if fits:
                handoff = (
                    None
                    if self.kv_handoff is None
                    else self.kv_handoff.get(candidate.request_id)
                )
                if handoff is not None:
                    # Disaggregated decode entry: the KV already exists (it
                    # was prefilled elsewhere and preempted off that
                    # replica), so re-admit it instead of reserving fresh
                    # space.  The receipt carries the same tokens/commit the
                    # reserve below would make, so capacity accounting is
                    # identical to colocated admission.
                    allocator.restore(candidate.request_id, handoff)
                elif lifecycle:
                    allocator.reserve(candidate.request_id, candidate.prompt_tokens)
                else:
                    allocator.reserve(
                        candidate.request_id, candidate.prompt_tokens, candidate.final_tokens
                    )
                entry = _ActiveRequest(
                    request_id=candidate.request_id,
                    context=candidate.prompt_tokens,
                    remaining=candidate.decode_tokens,
                    admitted_s=clock,
                    last_step_s=clock,
                    session=candidate.request.session,
                    priority=candidate.priority,
                )
                cached = 0
                if (
                    self.prefix_cache is not None
                    and entry.session is not None
                    and self.prefill is not None
                ):
                    # Prefix reuse: the session's retained KV covers the
                    # first `cached` prompt tokens, so only the uncached
                    # suffix needs prefill work.  Without a prefill model
                    # admission has no cost to discount, so the cache is
                    # not consulted here (hit counters must report reuse
                    # that actually bought something; recompute-mode
                    # restores still consult it either way).
                    cached = self.prefix_cache.lookup(entry.session, candidate.prompt_tokens)
                if self.prefill is not None:
                    if self.prefill.chunk_tokens is None:
                        # Blocking: the whole (uncached) prompt is charged
                        # now and the request decodes only once its prefill
                        # elapses (prefill runs on a dedicated path, in
                        # parallel with ongoing decode).
                        seconds = self.prefill.model.cumulative_seconds(candidate.prompt_tokens)
                        if cached:
                            seconds -= self.prefill.model.cumulative_seconds(cached)
                        entry.ready_s = clock + seconds
                        tracker.on_prefill(candidate.request_id, seconds)
                    else:
                        # Chunked: prefill shares the decode hardware and is
                        # advanced chunk-by-chunk by the main loop, starting
                        # past the cached prefix.
                        entry.prefill_total = candidate.prompt_tokens
                        entry.prefill_done = cached
                active[candidate.request_id] = entry
                tracker.on_admission(candidate.request_id, clock)
                admitted.add(candidate.request_id)
            elif self.admission.head_of_line:
                break
        if admitted:
            if ordered is arrived and self.admission.head_of_line:
                # Identity-order head-of-line policies (FCFS) admit a strict
                # prefix of the queue, so the round costs O(admitted) rather
                # than an O(queue) rebuild -- the difference between O(n)
                # and O(n^2) total admission work under a deep backlog.
                for _ in range(len(admitted)):
                    arrived.popleft()
            else:
                remaining = [
                    candidate for candidate in arrived if candidate.request_id not in admitted
                ]
                arrived.clear()
                arrived.extend(remaining)
        return len(admitted), overhead_s

    def _grow_or_evict(
        self,
        entry: _ActiveRequest,
        stride: int,
        active: dict[int, _ActiveRequest],
        allocator: KVLifecycle,
        tracker: LifecycleTracker,
        clock: float,
        preempted: deque[_PreemptedRequest],
        preempted_now: set[int],
    ) -> float:
        """Grow ``entry`` by ``stride``, evicting victims until it fits.

        Victims leave ``active`` for the restore queue; their ids are added
        to ``preempted_now`` so the caller skips their turn this stride.
        Returns the clock charge of the evictions.

        Raises:
            AllocationError: if no victim remains and the grow still fails
                (unreachable when admission enforces ``could_ever_fit``).
        """
        assert self.preemption is not None
        overhead_s = 0.0
        while True:
            try:
                allocator.grow(entry.request_id, stride)
                return overhead_s
            except CapacityExceeded:
                candidates = [
                    PreemptionCandidate(
                        request_id=other.request_id,
                        context_tokens=other.context,
                        admitted_s=other.admitted_s,
                        last_decode_s=other.last_step_s,
                        priority=other.priority,
                        preemptions=other.preempt_count,
                    )
                    for other in active.values()
                    if other.request_id != entry.request_id
                ]
                victim_id = self.preemption.policy.select(self.preemption.eligible(candidates))
                if victim_id is None:
                    raise AllocationError(
                        f"request {entry.request_id} cannot grow its KV cache and "
                        f"policy {self.preemption.policy.name!r} offers no victim; "
                        "the request exceeds what preemption can free"
                    ) from None
                if victim_id == entry.request_id or victim_id not in active:
                    raise ValueError(
                        f"preemption policy {self.preemption.policy.name!r} chose "
                        f"invalid victim {victim_id} for grower {entry.request_id}"
                    ) from None
                victim = active.pop(victim_id)
                victim.preempt_count += 1
                state = allocator.preempt(victim_id)
                overhead_s += self.preemption.cost.evict_seconds(state)
                tracker.on_preempt(victim_id, clock)
                preempted.append(_PreemptedRequest(entry=victim, state=state))
                preempted_now.add(victim_id)

    # -- main loop ---------------------------------------------------------

    def run(self, trace: RequestTrace, system_name: str = "") -> EngineResult:
        """Serve ``trace`` to completion and aggregate metrics.

        Raises:
            AllocationError: if the system drains while a waiting request
                can never be admitted (it exceeds total KV capacity) under
                a head-of-line policy.  Skip-over policies drop such
                requests instead and report them via ``requests_dropped``.
        """
        allocator = allocator_for(self.system)
        future = self._candidates(trace)
        arrived: deque[AdmissionCandidate] = deque()
        active: dict[int, _ActiveRequest] = {}
        preempted: deque[_PreemptedRequest] = deque()
        lifecycle = self.lifecycle_admission
        preemption_count = 0
        preemption_overhead_s = 0.0
        # Preemption terminates (each eviction lets the grower advance and
        # restores never evict), but a generous ceiling guards policy bugs.
        preemption_budget = 1000 + 100 * len(trace.requests)
        tracker = LifecycleTracker()
        for candidate in future:
            tracker.on_arrival(
                candidate.request_id,
                candidate.prompt_tokens,
                candidate.decode_tokens,
                candidate.arrival_s,
                priority=candidate.priority,
                tier=candidate.request.tier,
                ttft_deadline_s=candidate.request.ttft_deadline_s,
                tpot_deadline_s=candidate.request.tpot_deadline_s,
            )

        clock = 0.0
        busy_seconds = 0.0
        idle_seconds = 0.0
        total_tokens = 0
        steps = 0
        served = 0
        dropped: list[int] = []
        if self.latency_cache is not None:
            cache_hits_before = self.latency_cache.hits
            cache_misses_before = self.latency_cache.misses
        prefix_before = self.prefix_cache.stats() if self.prefix_cache is not None else None
        peak_batch = 0
        batch_samples: list[int] = []
        utilization_samples: list[float] = []
        capacity_samples: list[float] = []
        attention_total = ZERO_BREAKDOWN
        fc_total = ZERO_BREAKDOWN

        # An admission round is a complete pass: every remaining candidate
        # was rejected against the round's final state, and capacity only
        # shrinks within a round -- so re-running it is pointless until a
        # request finishes (freeing capacity and a batch slot) or a new
        # request arrives.  The dirty flag skips the per-step queue scan
        # (and the skip-over policies' re-sort) during backlog.
        admission_dirty = True

        while future or arrived or active or preempted:
            while future and future[0].arrival_s <= clock:
                arrived.append(future.popleft())
                admission_dirty = True

            if admission_dirty:
                admitted_now, restore_overhead_s = self._admit(
                    arrived, active, allocator, tracker, clock, preempted
                )
                served += admitted_now
                if restore_overhead_s:
                    busy_seconds += restore_overhead_s
                    clock += restore_overhead_s
                    preemption_overhead_s += restore_overhead_s
                admission_dirty = False

            if not active:
                if arrived:
                    # The admission round just ran against an *empty*
                    # allocator.  Under a head-of-line policy that means the
                    # head candidate can never be served (and blocks the
                    # queue, legacy behaviour: error out); under a skip-over
                    # policy every arrived candidate was tried and rejected,
                    # so all of them are unservable: drop them and keep the
                    # run's results.
                    if self.admission.head_of_line:
                        head = next(iter(self.admission.order(tuple(arrived))))
                        raise AllocationError(
                            f"head-of-line request {head.request_id} "
                            f"({head.final_tokens} tokens) can never fit the "
                            "system's KV-cache capacity and blocks the queue; "
                            "increase capacity, shorten the request, or use a "
                            "skip-over admission policy"
                        )
                    dropped.extend(candidate.request_id for candidate in arrived)
                    arrived.clear()
                    continue
                if future:
                    # System drained before the next arrival: idle forward.
                    idle_seconds += future[0].arrival_s - clock
                    clock = future[0].arrival_s
                    continue
                if preempted:
                    # Unreachable: a drained allocator always accepts the
                    # restore-queue head at the next admission round.
                    raise AllocationError(
                        f"{len(preempted)} preempted request(s) can never be "
                        "restored; the allocator is empty yet rejects them"
                    )
                break

            # Chunked prefill: advance at most chunk_tokens of waiting
            # prompt work this iteration, charging the marginal cumulative
            # cost (exact even for attention-quadratic models).
            prefill_step_seconds = 0.0
            prefill_tokens_processed = 0
            if self.prefill is not None and self.prefill.chunk_tokens is not None:
                budget = self.prefill.chunk_tokens
                for entry in active.values():
                    if budget <= 0:
                        break
                    pending = entry.prefill_total - entry.prefill_done
                    if pending <= 0:
                        continue
                    take = min(pending, budget)
                    marginal = self.prefill.model.cumulative_seconds(
                        entry.prefill_done + take
                    ) - self.prefill.model.cumulative_seconds(entry.prefill_done)
                    entry.prefill_done += take
                    budget -= take
                    prefill_step_seconds += marginal
                    prefill_tokens_processed += take
                    tracker.on_prefill(entry.request_id, marginal)

            if self.prefill is None:
                decoding = list(active.values())
            else:
                decoding = [entry for entry in active.values() if entry.decode_ready(clock)]

            if not decoding:
                if prefill_tokens_processed > 0:
                    # Chunked-prefill-only iteration: the hardware is busy
                    # prefilling even though nothing decodes yet.  (Token
                    # progress, not seconds, gates this branch so a
                    # zero-cost model still terminates.)
                    busy_seconds += prefill_step_seconds
                    clock += prefill_step_seconds
                    continue
                # Blocking prefill: every active request is still
                # prefilling.  Jump to the next event -- a prefill
                # completing or a new arrival (whichever is sooner), both
                # strictly in the future.  The decode path idles meanwhile.
                next_event = min(entry.ready_s for entry in active.values())
                if future:
                    next_event = min(next_event, future[0].arrival_s)
                idle_seconds += next_event - clock
                clock = next_event
                continue

            if prefill_tokens_processed:
                # While prompt work is pending, decode and prefill must
                # advance at the same granularity: one chunk per decode
                # step.  A larger stride would let the decode clock run
                # step_stride steps per chunk, making prefill throughput
                # (and TTFT) depend on the accuracy knob.
                stride = 1
            else:
                stride = min(self.step_stride, min(entry.remaining for entry in decoding))
            contexts = [entry.context for entry in decoding]
            if self.latency_cache is not None:
                step = self.latency_cache.evaluate(self.system, contexts)
            else:
                step = self.system.decode_step(contexts)

            busy_seconds += step.seconds * stride + prefill_step_seconds
            clock += step.seconds * stride + prefill_step_seconds
            total_tokens += len(decoding) * stride
            steps += stride
            batch_samples.append(len(decoding))
            utilization_samples.append(step.pim_utilization)
            peak_batch = max(peak_batch, len(decoding))
            attention_total = attention_total + step.attention_breakdown.scaled(stride)
            fc_total = fc_total + step.fc_breakdown.scaled(stride)
            if allocator.capacity_bytes > 0:
                # Fraction of the KV-cache capacity holding live tokens (the
                # Fig. 19 metric): static reservations waste the gap between
                # the actual and the maximum context; DPA only loses
                # admission headroom and last-chunk fragmentation.
                capacity_samples.append(allocator.used_bytes / allocator.capacity_bytes)

            if lifecycle:
                # Incremental contract: grow each request chunk by chunk,
                # resolving CapacityExceeded by evicting victims.  Finished
                # requests release immediately so later growers in the same
                # stride see the freed chunks before resorting to eviction.
                finished_any = False
                preempted_now: set[int] = set()
                evict_overhead_s = 0.0
                lost_tokens = 0
                for entry in decoding:
                    if entry.request_id in preempted_now:
                        # Evicted by an earlier grower this stride: the
                        # batch-wide token count charged above never
                        # materialised for this request.
                        lost_tokens += stride
                        continue
                    evict_overhead_s += self._grow_or_evict(
                        entry, stride, active, allocator, tracker, clock, preempted, preempted_now
                    )
                    entry.context += stride
                    entry.remaining -= stride
                    entry.last_step_s = clock
                    tracker.on_tokens(entry.request_id, stride, clock, step.seconds)
                    if entry.remaining <= 0:
                        allocator.release(entry.request_id)
                        del active[entry.request_id]
                        tracker.on_finish(entry.request_id, clock)
                        if self.prefix_cache is not None and entry.session is not None:
                            # Retain the turn's full context as the
                            # session's reusable prefix.
                            self.prefix_cache.insert(entry.session, entry.context)
                        finished_any = True
                total_tokens -= lost_tokens
                preemption_count += len(preempted_now)
                if preemption_count > preemption_budget:
                    raise AllocationError(
                        f"{preemption_count} preemptions exceed the livelock "
                        f"guard ({preemption_budget}); the policy "
                        f"{self.preemption.policy.name!r} is thrashing"
                    )
                if evict_overhead_s:
                    busy_seconds += evict_overhead_s
                    clock += evict_overhead_s
                    preemption_overhead_s += evict_overhead_s
                if finished_any or preempted_now:
                    admission_dirty = True
            else:
                finished: list[_ActiveRequest] = []
                for entry in decoding:
                    allocator.append_token(entry.request_id, stride)
                    entry.context += stride
                    entry.remaining -= stride
                    tracker.on_tokens(entry.request_id, stride, clock, step.seconds)
                    if entry.remaining <= 0:
                        finished.append(entry)
                for entry in finished:
                    allocator.release(entry.request_id)
                    del active[entry.request_id]
                    tracker.on_finish(entry.request_id, clock)
                    if self.prefix_cache is not None and entry.session is not None:
                        # Retain the turn's full context as the session's
                        # reusable prefix.
                        self.prefix_cache.insert(entry.session, entry.context)
                if finished:
                    admission_dirty = True

        def _mean(samples: list[float]) -> float:
            return sum(samples) / len(samples) if samples else 0.0

        metadata: dict = {}
        if dropped:
            metadata["dropped_request_ids"] = dropped
        if self.latency_cache is not None:
            # Deltas, not lifetime counters: the cache may be reused across
            # runs and each result should report its own hit rate.
            hits = self.latency_cache.hits - cache_hits_before
            misses = self.latency_cache.misses - cache_misses_before
            lookups = hits + misses
            metadata["latency_cache"] = {
                "bucket_tokens": self.latency_cache.bucket_tokens,
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / lookups if lookups else 0.0,
            }

        # Deltas, not lifetime counters: the prefix cache persists across
        # runs (that persistence is the whole point) but each result must
        # report its own hit rate.
        prefix_hits = prefix_misses = prefix_hit_tokens = prefix_evictions = 0
        if self.prefix_cache is not None and prefix_before is not None:
            prefix_after = self.prefix_cache.stats()
            prefix_hits = prefix_after.hits - prefix_before.hits
            prefix_misses = prefix_after.misses - prefix_before.misses
            prefix_hit_tokens = prefix_after.hit_tokens - prefix_before.hit_tokens
            prefix_evictions = prefix_after.evictions - prefix_before.evictions

        return EngineResult(
            system_name=system_name or type(self.system).__name__,
            dataset=trace.dataset,
            total_output_tokens=total_tokens,
            total_seconds=busy_seconds,
            steps=steps,
            average_batch_size=_mean([float(sample) for sample in batch_samples]),
            peak_batch_size=peak_batch,
            average_pim_utilization=_mean(utilization_samples),
            average_capacity_utilization=_mean(capacity_samples),
            attention_breakdown=attention_total,
            fc_breakdown=fc_total,
            total_pim_channels=self.system.total_pim_channels,
            requests_served=served,
            metadata=metadata,
            makespan_s=clock,
            idle_seconds=idle_seconds,
            admission_policy=self.admission.name,
            latency=tracker.stats(),
            request_records=tuple(
                tracker.records[key] for key in sorted(tracker.records)
            ),
            requests_dropped=len(dropped),
            prefill_mode=self.prefill.mode if self.prefill is not None else "none",
            prefill_seconds_total=sum(
                record.prefill_s for record in tracker.records.values()
            ),
            preemption_policy=(
                self.preemption.policy.name if self.preemption is not None else "none"
            ),
            preemptions=preemption_count,
            preemption_overhead_s=preemption_overhead_s,
            recompute_tokens=sum(
                record.recompute_tokens for record in tracker.records.values()
            ),
            # Every preemption is eventually restored (the run cannot end
            # with a non-empty restore queue), so stalls/preemptions is the
            # mean requeue delay.
            requeue_delay_mean_s=(
                sum(record.stall_s for record in tracker.records.values()) / preemption_count
                if preemption_count
                else 0.0
            ),
            prefix_cache_enabled=self.prefix_cache is not None,
            prefix_hits=prefix_hits,
            prefix_misses=prefix_misses,
            prefix_hit_tokens=prefix_hit_tokens,
            prefix_evictions=prefix_evictions,
        )


def serve(
    system: DecodeSystem,
    trace: RequestTrace,
    admission: AdmissionPolicy | None = None,
    max_batch_size: int | None = None,
    step_stride: int = 1,
    latency_cache: StepLatencyCache | None = None,
    prefill: PrefillConfig | None = None,
    preemption: PreemptionConfig | None = None,
    prefix_cache: PrefixCache | None = None,
    system_name: str = "",
) -> EngineResult:
    """One-shot convenience wrapper around :class:`ServingEngine`."""
    engine = ServingEngine(
        system=system,
        admission=admission if admission is not None else FCFSAdmission(),
        max_batch_size=max_batch_size,
        step_stride=step_stride,
        latency_cache=latency_cache,
        prefill=prefill,
        preemption=preemption,
        prefix_cache=prefix_cache,
    )
    return engine.run(trace, system_name=system_name)
