"""Event-driven decode serving engine.

The engine replaces the monolithic ``simulate_serving`` loop with three
decoupled layers:

1. **Admission** -- an :class:`~repro.serving.admission.AdmissionPolicy`
   ranks arrived-but-waiting requests; the engine admits everything the
   allocator accepts through the unified ``can_admit``/``reserve``/
   ``release`` protocol (no ``isinstance`` special-casing).
2. **Scheduling** -- the engine advances a simulation clock over decode
   strides, idling forward to the next arrival when the system drains, so
   open-loop (Poisson / replayed) traces are served faithfully.
3. **Metrics** -- a :class:`~repro.serving.lifecycle.LifecycleTracker`
   stamps every request's arrival, admission, first token and completion,
   yielding TTFT / TPOT and latency percentiles on top of the legacy
   throughput counters.

An optional :class:`~repro.serving.prefill.PrefillConfig` charges
context-length-dependent prompt-processing latency at admission, either
blocking (the request decodes only after its whole prefill elapses) or
chunked (prefill interleaves with decode steps on the same hardware), so
TTFT reflects prompt length instead of just queueing plus one decode step.

A trace whose requests all arrive at time 0 and fit the context window
(``prompt + output <= max_context_tokens``) served under FCFS reproduces
the legacy loop's arithmetic exactly (same admissions, same strides, same
floating-point accumulation order), which `tests/serving/test_parity.py`
pins to 1e-9.  One deliberate divergence: a request whose output would
outgrow the window is clamped to it -- the legacy loop kept generating
past its own reservation, which could exhaust the allocator mid-decode.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.memory.static_alloc import AllocationError
from repro.pim.simulator import ZERO_BREAKDOWN
from repro.serving.admission import AdmissionCandidate, AdmissionPolicy, FCFSAdmission
from repro.serving.interfaces import (
    DecodeSystem,
    KVAllocator,
    ServingResult,
    allocator_for,
)
from repro.serving.latency_cache import StepLatencyCache
from repro.serving.lifecycle import LatencyStats, LifecycleTracker, RequestRecord
from repro.serving.prefill import PrefillConfig
from repro.workloads.traces import RequestTrace


@dataclass
class EngineResult(ServingResult):
    """Serving metrics extended with lifecycle latency statistics.

    ``total_seconds`` (and therefore ``throughput_tokens_per_s``) counts
    busy decode time only, matching the legacy loop; ``makespan_s`` adds
    the idle gaps an open-loop arrival process introduces.
    """

    makespan_s: float = 0.0
    idle_seconds: float = 0.0
    admission_policy: str = "fcfs"
    latency: LatencyStats = field(default_factory=LatencyStats)
    request_records: tuple[RequestRecord, ...] = ()
    requests_dropped: int = 0
    prefill_mode: str = "none"
    prefill_seconds_total: float = 0.0

    @property
    def ttft_mean_s(self) -> float:
        return self.latency.ttft_mean_s

    @property
    def tpot_mean_s(self) -> float:
        return self.latency.tpot_mean_s

    @property
    def latency_p50_s(self) -> float:
        return self.latency.latency_p50_s

    @property
    def latency_p95_s(self) -> float:
        return self.latency.latency_p95_s

    @property
    def latency_p99_s(self) -> float:
        return self.latency.latency_p99_s


@dataclass
class _ActiveRequest:
    request_id: int
    context: int
    remaining: int
    #: Blocking prefill: earliest clock at which the request may decode.
    ready_s: float = 0.0
    #: Chunked prefill: prompt tokens that must be prefilled before decode.
    prefill_total: int = 0
    prefill_done: int = 0

    def decode_ready(self, clock: float) -> bool:
        return self.ready_s <= clock and self.prefill_done >= self.prefill_total


@dataclass
class ServingEngine:
    """Serves a request trace on any :class:`DecodeSystem`.

    Attributes:
        system: System model that prices each decode step.
        admission: Policy ranking waiting requests (default FCFS).
        max_batch_size: Optional hard cap on concurrent requests.
        step_stride: Decode steps advanced per latency evaluation; contexts
            change slowly, so strides of 4-16 keep large sweeps cheap with
            negligible error.
        latency_cache: Optional memoisation of decode-step latencies; leave
            ``None`` for exact per-step evaluation.
        prefill: Optional prefill cost model and charging discipline (see
            :mod:`repro.serving.prefill`).  ``None`` keeps the legacy
            behaviour of free prompt processing, which the parity tests pin.
    """

    system: DecodeSystem
    admission: AdmissionPolicy = field(default_factory=FCFSAdmission)
    max_batch_size: int | None = None
    step_stride: int = 1
    latency_cache: StepLatencyCache | None = None
    prefill: PrefillConfig | None = None

    def __post_init__(self) -> None:
        if self.step_stride < 1:
            raise ValueError("step_stride must be >= 1")
        if self.max_batch_size is not None and self.max_batch_size < 1:
            raise ValueError("max_batch_size must be >= 1")

    # -- helpers -----------------------------------------------------------

    def _candidates(self, trace: RequestTrace) -> deque[AdmissionCandidate]:
        """Clamp every request to the serving window, ordered by arrival.

        The sort is stable on arrival time only, so simultaneous arrivals
        keep their trace order -- which is what the legacy loop used and
        what the parity guarantee depends on.
        """
        window = self.system.max_context_tokens
        candidates = []
        for request in trace.requests:
            final = min(request.prompt_tokens + request.output_tokens, window)
            prompt = max(1, final - request.output_tokens)
            candidates.append(
                AdmissionCandidate(request=request, prompt_tokens=prompt, final_tokens=final)
            )
        candidates.sort(key=lambda candidate: candidate.arrival_s)
        return deque(candidates)

    def _admit(
        self,
        arrived: list[AdmissionCandidate],
        active: dict[int, _ActiveRequest],
        allocator: KVAllocator,
        tracker: LifecycleTracker,
        clock: float,
    ) -> int:
        """Run one admission round; returns the number of requests admitted."""
        admitted: set[int] = set()
        for candidate in self.admission.order(arrived):
            if self.max_batch_size is not None and len(active) >= self.max_batch_size:
                break
            if allocator.can_admit(candidate.final_tokens):
                allocator.reserve(
                    candidate.request_id, candidate.prompt_tokens, candidate.final_tokens
                )
                entry = _ActiveRequest(
                    request_id=candidate.request_id,
                    context=candidate.prompt_tokens,
                    remaining=candidate.decode_tokens,
                )
                if self.prefill is not None:
                    if self.prefill.chunk_tokens is None:
                        # Blocking: the whole prompt is charged now and the
                        # request decodes only once its prefill elapses
                        # (prefill runs on a dedicated path, in parallel
                        # with ongoing decode).
                        seconds = self.prefill.model.cumulative_seconds(candidate.prompt_tokens)
                        entry.ready_s = clock + seconds
                        tracker.on_prefill(candidate.request_id, seconds)
                    else:
                        # Chunked: prefill shares the decode hardware and is
                        # advanced chunk-by-chunk by the main loop.
                        entry.prefill_total = candidate.prompt_tokens
                active[candidate.request_id] = entry
                tracker.on_admission(candidate.request_id, clock)
                admitted.add(candidate.request_id)
            elif self.admission.head_of_line:
                break
        if admitted:
            arrived[:] = [
                candidate for candidate in arrived if candidate.request_id not in admitted
            ]
        return len(admitted)

    # -- main loop ---------------------------------------------------------

    def run(self, trace: RequestTrace, system_name: str = "") -> EngineResult:
        """Serve ``trace`` to completion and aggregate metrics.

        Raises:
            AllocationError: if the system drains while a waiting request
                can never be admitted (it exceeds total KV capacity) under
                a head-of-line policy.  Skip-over policies drop such
                requests instead and report them via ``requests_dropped``.
        """
        allocator = allocator_for(self.system)
        future = self._candidates(trace)
        arrived: list[AdmissionCandidate] = []
        active: dict[int, _ActiveRequest] = {}
        tracker = LifecycleTracker()
        for candidate in future:
            tracker.on_arrival(
                candidate.request_id,
                candidate.prompt_tokens,
                candidate.decode_tokens,
                candidate.arrival_s,
            )

        clock = 0.0
        busy_seconds = 0.0
        idle_seconds = 0.0
        total_tokens = 0
        steps = 0
        served = 0
        dropped: list[int] = []
        if self.latency_cache is not None:
            cache_hits_before = self.latency_cache.hits
            cache_misses_before = self.latency_cache.misses
        peak_batch = 0
        batch_samples: list[int] = []
        utilization_samples: list[float] = []
        capacity_samples: list[float] = []
        attention_total = ZERO_BREAKDOWN
        fc_total = ZERO_BREAKDOWN

        # An admission round is a complete pass: every remaining candidate
        # was rejected against the round's final state, and capacity only
        # shrinks within a round -- so re-running it is pointless until a
        # request finishes (freeing capacity and a batch slot) or a new
        # request arrives.  The dirty flag skips the per-step queue scan
        # (and the skip-over policies' re-sort) during backlog.
        admission_dirty = True

        while future or arrived or active:
            while future and future[0].arrival_s <= clock:
                arrived.append(future.popleft())
                admission_dirty = True

            if admission_dirty:
                served += self._admit(arrived, active, allocator, tracker, clock)
                admission_dirty = False

            if not active:
                if arrived:
                    # The admission round just ran against an *empty*
                    # allocator.  Under a head-of-line policy that means the
                    # head candidate can never be served (and blocks the
                    # queue, legacy behaviour: error out); under a skip-over
                    # policy every arrived candidate was tried and rejected,
                    # so all of them are unservable: drop them and keep the
                    # run's results.
                    if self.admission.head_of_line:
                        head = next(iter(self.admission.order(tuple(arrived))))
                        raise AllocationError(
                            f"head-of-line request {head.request_id} "
                            f"({head.final_tokens} tokens) can never fit the "
                            "system's KV-cache capacity and blocks the queue; "
                            "increase capacity, shorten the request, or use a "
                            "skip-over admission policy"
                        )
                    dropped.extend(candidate.request_id for candidate in arrived)
                    arrived.clear()
                    continue
                if future:
                    # System drained before the next arrival: idle forward.
                    idle_seconds += future[0].arrival_s - clock
                    clock = future[0].arrival_s
                    continue
                break

            # Chunked prefill: advance at most chunk_tokens of waiting
            # prompt work this iteration, charging the marginal cumulative
            # cost (exact even for attention-quadratic models).
            prefill_step_seconds = 0.0
            prefill_tokens_processed = 0
            if self.prefill is not None and self.prefill.chunk_tokens is not None:
                budget = self.prefill.chunk_tokens
                for entry in active.values():
                    if budget <= 0:
                        break
                    pending = entry.prefill_total - entry.prefill_done
                    if pending <= 0:
                        continue
                    take = min(pending, budget)
                    marginal = self.prefill.model.cumulative_seconds(
                        entry.prefill_done + take
                    ) - self.prefill.model.cumulative_seconds(entry.prefill_done)
                    entry.prefill_done += take
                    budget -= take
                    prefill_step_seconds += marginal
                    prefill_tokens_processed += take
                    tracker.on_prefill(entry.request_id, marginal)

            if self.prefill is None:
                decoding = list(active.values())
            else:
                decoding = [entry for entry in active.values() if entry.decode_ready(clock)]

            if not decoding:
                if prefill_tokens_processed > 0:
                    # Chunked-prefill-only iteration: the hardware is busy
                    # prefilling even though nothing decodes yet.  (Token
                    # progress, not seconds, gates this branch so a
                    # zero-cost model still terminates.)
                    busy_seconds += prefill_step_seconds
                    clock += prefill_step_seconds
                    continue
                # Blocking prefill: every active request is still
                # prefilling.  Jump to the next event -- a prefill
                # completing or a new arrival (whichever is sooner), both
                # strictly in the future.  The decode path idles meanwhile.
                next_event = min(entry.ready_s for entry in active.values())
                if future:
                    next_event = min(next_event, future[0].arrival_s)
                idle_seconds += next_event - clock
                clock = next_event
                continue

            if prefill_tokens_processed:
                # While prompt work is pending, decode and prefill must
                # advance at the same granularity: one chunk per decode
                # step.  A larger stride would let the decode clock run
                # step_stride steps per chunk, making prefill throughput
                # (and TTFT) depend on the accuracy knob.
                stride = 1
            else:
                stride = min(self.step_stride, min(entry.remaining for entry in decoding))
            contexts = [entry.context for entry in decoding]
            if self.latency_cache is not None:
                step = self.latency_cache.evaluate(self.system, contexts)
            else:
                step = self.system.decode_step(contexts)

            busy_seconds += step.seconds * stride + prefill_step_seconds
            clock += step.seconds * stride + prefill_step_seconds
            total_tokens += len(decoding) * stride
            steps += stride
            batch_samples.append(len(decoding))
            utilization_samples.append(step.pim_utilization)
            peak_batch = max(peak_batch, len(decoding))
            attention_total = attention_total + step.attention_breakdown.scaled(stride)
            fc_total = fc_total + step.fc_breakdown.scaled(stride)
            if allocator.capacity_bytes > 0:
                # Fraction of the KV-cache capacity holding live tokens (the
                # Fig. 19 metric): static reservations waste the gap between
                # the actual and the maximum context; DPA only loses
                # admission headroom and last-chunk fragmentation.
                capacity_samples.append(allocator.used_bytes / allocator.capacity_bytes)

            finished: list[int] = []
            for entry in decoding:
                allocator.append_token(entry.request_id, stride)
                entry.context += stride
                entry.remaining -= stride
                tracker.on_tokens(entry.request_id, stride, clock, step.seconds)
                if entry.remaining <= 0:
                    finished.append(entry.request_id)
            for request_id in finished:
                allocator.release(request_id)
                del active[request_id]
                tracker.on_finish(request_id, clock)
            if finished:
                admission_dirty = True

        def _mean(samples: list[float]) -> float:
            return sum(samples) / len(samples) if samples else 0.0

        metadata: dict = {}
        if dropped:
            metadata["dropped_request_ids"] = dropped
        if self.latency_cache is not None:
            # Deltas, not lifetime counters: the cache may be reused across
            # runs and each result should report its own hit rate.
            hits = self.latency_cache.hits - cache_hits_before
            misses = self.latency_cache.misses - cache_misses_before
            lookups = hits + misses
            metadata["latency_cache"] = {
                "bucket_tokens": self.latency_cache.bucket_tokens,
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / lookups if lookups else 0.0,
            }

        return EngineResult(
            system_name=system_name or type(self.system).__name__,
            dataset=trace.dataset,
            total_output_tokens=total_tokens,
            total_seconds=busy_seconds,
            steps=steps,
            average_batch_size=_mean([float(sample) for sample in batch_samples]),
            peak_batch_size=peak_batch,
            average_pim_utilization=_mean(utilization_samples),
            average_capacity_utilization=_mean(capacity_samples),
            attention_breakdown=attention_total,
            fc_breakdown=fc_total,
            total_pim_channels=self.system.total_pim_channels,
            requests_served=served,
            metadata=metadata,
            makespan_s=clock,
            idle_seconds=idle_seconds,
            admission_policy=self.admission.name,
            latency=tracker.stats(),
            request_records=tuple(
                tracker.records[key] for key in sorted(tracker.records)
            ),
            requests_dropped=len(dropped),
            prefill_mode=self.prefill.mode if self.prefill is not None else "none",
            prefill_seconds_total=sum(
                record.prefill_s for record in tracker.records.values()
            ),
        )


def serve(
    system: DecodeSystem,
    trace: RequestTrace,
    admission: AdmissionPolicy | None = None,
    max_batch_size: int | None = None,
    step_stride: int = 1,
    latency_cache: StepLatencyCache | None = None,
    prefill: PrefillConfig | None = None,
    system_name: str = "",
) -> EngineResult:
    """One-shot convenience wrapper around :class:`ServingEngine`."""
    engine = ServingEngine(
        system=system,
        admission=admission if admission is not None else FCFSAdmission(),
        max_batch_size=max_batch_size,
        step_stride=step_stride,
        latency_cache=latency_cache,
        prefill=prefill,
    )
    return engine.run(trace, system_name=system_name)
