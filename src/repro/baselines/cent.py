"""CENT-like PIM-only baseline system configuration.

CENT serves the whole model from CXL-attached PIM modules (16GB, 16TB/s
internal bandwidth each) with head/batch-first partitioning, a static PIM
command scheduler and static (``T_max``) KV-cache reservations -- the
baseline the paper's Fig. 13/15/16/17 improve upon.
"""

from __future__ import annotations

from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import LLMConfig
from repro.pim.config import cent_module_config
from repro.system.parallelism import ParallelismPlan, enumerate_plans
from repro.system.pim_only import PIMOnlySystem


def default_module_count(model: LLMConfig) -> int:
    """Module counts used in the paper: 8 (128GB) for 7B, 32 (512GB) for 72B."""
    return 8 if model.num_layers <= 40 else 32


def cent_system_config(
    model: LLMConfig,
    num_modules: int | None = None,
    plan: ParallelismPlan | None = None,
    pimphony: PIMphonyConfig | None = None,
) -> PIMOnlySystem:
    """Build a CENT-style PIM-only system.

    Args:
        model: LLM configuration to serve.
        num_modules: Module count (defaults to the paper's memory-matched
            configuration).
        plan: Parallelism plan; defaults to the most tensor-parallel valid
            plan, which is CENT's preferred operating point.
        pimphony: PIMphony feature configuration; defaults to the CENT
            baseline (no TCP/DCS/DPA).
    """
    modules = num_modules if num_modules is not None else default_module_count(model)
    if plan is None:
        plans = enumerate_plans(modules, model)
        plan = max(plans, key=lambda candidate: candidate.tensor_parallel)
    config = pimphony if pimphony is not None else PIMphonyConfig.baseline()
    return PIMOnlySystem(
        model=model,
        num_modules=modules,
        plan=plan,
        pimphony=config,
        module=cent_module_config(),
    )
