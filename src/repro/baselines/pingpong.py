"""Ping-pong (double) buffering baseline, paper Sec. VIII-C and Fig. 18.

Ping-pong buffering splits each buffer into two regions so that I/O
transfers into one region can overlap computation on the other.  Because
the controller does not know per-entry dependencies, the roles of the two
regions can only swap after both regions become idle, which introduces
hand-off pipeline stalls -- the effect DCS removes with entry-granular
dependency tracking.
"""

from __future__ import annotations

from repro.pim.config import PIMChannelConfig
from repro.pim.scheduling import TableDrivenScheduler
from repro.pim.timing import PIMTiming


class PingPongScheduler(TableDrivenScheduler):
    """Region-granular double-buffering scheduler."""

    name = "pingpong"

    def __init__(self, timing: PIMTiming, channel: PIMChannelConfig | None = None) -> None:
        resolved_channel = channel if channel is not None else PIMChannelConfig()
        handoff = timing.mac_latency_cycles
        super().__init__(
            timing,
            resolved_channel,
            gbuf_regions=2,
            out_regions=2,
            handoff_penalty=handoff,
            mac_pipelining=True,
        )
