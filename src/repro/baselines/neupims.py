"""NeuPIMs-like heterogeneous xPU+PIM baseline system configuration.

NeuPIMs pairs NPU matrix units with PIM channels in each 32GB module and
overlaps GEMM (NPU) with GEMV (PIM) through sub-batch interleaving.  Its
intra-module attention mapping is head/batch-first, its PIM commands are
statically scheduled and its KV cache is statically reserved -- the baseline
for the paper's Fig. 14 and the xPU+PIM rows of Fig. 17/20.
"""

from __future__ import annotations

from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import LLMConfig
from repro.pim.config import neupims_module_config
from repro.system.parallelism import ParallelismPlan, enumerate_plans
from repro.system.xpu_pim import XPUPIMSystem


def default_module_count(model: LLMConfig) -> int:
    """Module counts used in the paper: 4 (128GB) for 7B, 16 (512GB) for 72B."""
    return 4 if model.num_layers <= 40 else 16


def neupims_system_config(
    model: LLMConfig,
    num_modules: int | None = None,
    plan: ParallelismPlan | None = None,
    pimphony: PIMphonyConfig | None = None,
) -> XPUPIMSystem:
    """Build a NeuPIMs-style xPU+PIM system (baseline features by default)."""
    modules = num_modules if num_modules is not None else default_module_count(model)
    if plan is None:
        plans = enumerate_plans(modules, model)
        plan = max(plans, key=lambda candidate: candidate.tensor_parallel)
    config = pimphony if pimphony is not None else PIMphonyConfig.baseline()
    return XPUPIMSystem(
        model=model,
        num_modules=modules,
        plan=plan,
        pimphony=config,
        module=neupims_module_config(),
    )
