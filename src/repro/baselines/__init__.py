"""Comparison baselines: ping-pong buffering, CENT, NeuPIMs, GPU."""

from repro.baselines.cent import cent_system_config
from repro.baselines.gpu import GPUConfig, GPUSystemModel, a100_config
from repro.baselines.neupims import neupims_system_config
from repro.baselines.pingpong import PingPongScheduler

__all__ = [
    "PingPongScheduler",
    "cent_system_config",
    "neupims_system_config",
    "GPUConfig",
    "GPUSystemModel",
    "a100_config",
]
