"""GPU baseline: A100 nodes with FlashDecoding and PagedAttention (Fig. 20).

Decoding on GPUs is memory-bandwidth bound: each decode step must stream the
model weights and every request's KV cache from HBM.  The baseline models an
A100-80GB roofline with tensor parallelism across GPUs, FlashDecoding-style
attention (high bandwidth efficiency on the KV read) and PagedAttention
(block-granular KV allocation, i.e. dynamic memory for admission purposes).
The model implements the same :class:`~repro.system.serving.DecodeSystem`
protocol as the PIM systems so the same serving loop drives it.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.api.registry import register_system
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import LLMConfig
from repro.serving.interfaces import StepResult
from repro.system.interconnect import InterconnectConfig
from repro.system.parallelism import ParallelismPlan


@dataclass(frozen=True)
class GPUConfig:
    """One GPU's resources."""

    name: str = "A100-80GB"
    memory_capacity_bytes: int = 80 * 1024**3
    memory_bandwidth_bytes: float = 2.0e12
    peak_tflops: float = 312.0
    compute_efficiency: float = 0.45
    weight_stream_efficiency: float = 0.75
    attention_stream_efficiency: float = 0.85

    def __post_init__(self) -> None:
        if self.memory_capacity_bytes <= 0 or self.memory_bandwidth_bytes <= 0:
            raise ValueError("capacity and bandwidth must be positive")


def a100_config() -> GPUConfig:
    """The A100-80GB configuration used by the paper's GPU comparison."""
    return GPUConfig()


@dataclass
class GPUSystemModel:
    """Multi-GPU decode model with FlashDecoding + PagedAttention.

    Attributes:
        model: LLM being served.
        num_gpus: Tensor-parallel GPU count (memory matched to the PIM
            systems in the paper: 2 for 7B, 8 for 72B).
        gpu: Per-GPU resource description.
        flash_decoding: Use the higher attention streaming efficiency.
        paged_attention: Use block-granular (dynamic) KV allocation.
    """

    model: LLMConfig
    num_gpus: int
    gpu: GPUConfig = field(default_factory=a100_config)
    flash_decoding: bool = True
    paged_attention: bool = True
    interconnect: InterconnectConfig = field(
        default_factory=lambda: InterconnectConfig(bandwidth_bytes_per_s=600e9, latency_s=5e-6)
    )

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ValueError("num_gpus must be positive")

    # -- DecodeSystem protocol -------------------------------------------------

    @property
    def total_capacity_bytes(self) -> int:
        return self.num_gpus * self.gpu.memory_capacity_bytes

    @property
    def kv_capacity_bytes(self) -> int:
        return max(0, self.total_capacity_bytes - self.model.param_bytes)

    @property
    def kv_bytes_per_token(self) -> int:
        return self.model.kv_bytes_per_token

    @property
    def max_context_tokens(self) -> int:
        return self.model.context_window

    @property
    def dynamic_memory(self) -> bool:
        return self.paged_attention

    @property
    def total_pim_channels(self) -> int:
        return 0

    def decode_step(self, context_lengths: Sequence[int]) -> StepResult:
        """Roofline latency of one decode step across the GPU group."""
        contexts = [length for length in context_lengths if length > 0]
        if not contexts:
            return StepResult(seconds=0.0, pim_utilization=0.0)
        batch = len(contexts)
        model = self.model
        bandwidth_bytes_per_s = self.gpu.memory_bandwidth_bytes

        # FC layers: weights are sharded across GPUs and streamed once per
        # step; compute is batched across requests.
        weight_bytes_per_gpu = model.param_bytes / self.num_gpus
        weight_seconds = weight_bytes_per_gpu / (
            bandwidth_bytes_per_s * self.gpu.weight_stream_efficiency
        )
        fc_flops_per_gpu = 2.0 * batch * model.param_count / self.num_gpus
        compute_seconds = fc_flops_per_gpu / (
            self.gpu.peak_tflops * 1e12 * self.gpu.compute_efficiency
        )
        fc_seconds = max(weight_seconds, compute_seconds)

        # Attention: every request's KV cache is read once per step.
        attention_efficiency = (
            self.gpu.attention_stream_efficiency if self.flash_decoding else 0.45
        )
        kv_bytes = sum(contexts) * model.kv_bytes_per_token / self.num_gpus
        attention_seconds = kv_bytes / (bandwidth_bytes_per_s * attention_efficiency)

        # TP synchronisation: two all-reduces per layer over the hidden dim.
        sync_bytes = batch * model.d_model * model.dtype_bytes
        sync_seconds = (
            2 * model.num_layers * self.interconnect.all_reduce_seconds(sync_bytes, self.num_gpus)
        )

        return StepResult(
            seconds=fc_seconds + attention_seconds + sync_seconds,
            pim_utilization=0.0,
        )

    def decode_span(
        self, context_lengths: Sequence[int], stride: int, count: int
    ) -> np.ndarray:
        """Latencies of ``count`` consecutive uniform decode evaluations.

        Element ``j`` equals ``decode_step([c + j * stride for c in
        context_lengths]).seconds`` bit-for-bit: FC and TP-sync depend only
        on the (constant) batch size, and attention is linear in the exact
        integer context sum, reproduced with int64 arithmetic and float64
        divisions in the same association order as :meth:`decode_step`.
        The corresponding steps carry zero PIM utilization and zero cycle
        breakdowns, so callers may skip accumulating those.

        Preconditions (the fast engine guarantees both): every context is
        positive, and ``stride``/``count`` are positive.
        """
        contexts = list(context_lengths)
        batch = len(contexts)
        model = self.model
        bandwidth_bytes_per_s = self.gpu.memory_bandwidth_bytes

        weight_bytes_per_gpu = model.param_bytes / self.num_gpus
        weight_seconds = weight_bytes_per_gpu / (
            bandwidth_bytes_per_s * self.gpu.weight_stream_efficiency
        )
        fc_flops_per_gpu = 2.0 * batch * model.param_count / self.num_gpus
        compute_seconds = fc_flops_per_gpu / (
            self.gpu.peak_tflops * 1e12 * self.gpu.compute_efficiency
        )
        fc_seconds = max(weight_seconds, compute_seconds)

        attention_efficiency = (
            self.gpu.attention_stream_efficiency if self.flash_decoding else 0.45
        )
        sums = sum(contexts) + np.arange(count, dtype=np.int64) * (stride * batch)
        kv_bytes = sums * model.kv_bytes_per_token / self.num_gpus
        attention_seconds = kv_bytes / (bandwidth_bytes_per_s * attention_efficiency)

        sync_bytes = batch * model.d_model * model.dtype_bytes
        sync_seconds = (
            2 * model.num_layers * self.interconnect.all_reduce_seconds(sync_bytes, self.num_gpus)
        )

        return (fc_seconds + attention_seconds) + sync_seconds


def _build_gpu(
    model: LLMConfig,
    num_modules: int | None,
    plan: ParallelismPlan | None,
    pimphony: PIMphonyConfig,
) -> GPUSystemModel:
    """Experiment-API builder: A100 group, memory-matched GPU counts.

    ``num_modules`` maps to the GPU count (2 for 7B, 8 for 72B by default);
    the parallelism plan is ignored (pure tensor parallelism) and of the
    PIMphony features only DPA matters, as PagedAttention on/off.
    """
    del plan
    gpus = num_modules if num_modules is not None else (2 if model.num_layers <= 40 else 8)
    return GPUSystemModel(model=model, num_gpus=gpus, paged_attention=pimphony.dpa)


# Self-registration: "gpu" is the A100 + FlashDecoding baseline system.
register_system("gpu", _build_gpu)
