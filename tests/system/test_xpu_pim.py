"""Tests for the heterogeneous xPU+PIM (NeuPIMs-style) system model."""

import pytest

from repro.core.orchestrator import PIMphonyConfig
from repro.pim.config import neupims_module_config
from repro.system.parallelism import ParallelismPlan
from repro.system.xpu_pim import XPUPIMSystem


def make_system(model, tp=4, pp=1, config=None):
    return XPUPIMSystem(
        model=model,
        num_modules=tp * pp,
        plan=ParallelismPlan(tp, pp),
        pimphony=config or PIMphonyConfig.full(),
        module=neupims_module_config(),
    )


class TestXPUPIMSystem:
    def test_step_latency_grows_with_context_at_batch(self, llm_7b):
        # With a single request the xPU FC stream dominates and the step time
        # is context-insensitive; with a realistic batch the PIM-side
        # attention grows with context and becomes the critical path.
        system = make_system(llm_7b)
        short = system.decode_step([4096] * 8)
        long = system.decode_step([65536] * 8)
        assert short.seconds < long.seconds

    def test_pimphony_beats_baseline_at_long_context(self, llm_7b):
        contexts = [32768] * 4
        baseline = make_system(llm_7b, config=PIMphonyConfig.baseline()).decode_step(contexts)
        full = make_system(llm_7b, config=PIMphonyConfig.full()).decode_step(contexts)
        assert full.seconds < baseline.seconds

    def test_short_context_is_fc_bound_so_gains_shrink(self, llm_7b):
        """With tiny contexts the xPU FC time dominates and PIM scheduling
        barely matters -- the paper's observation that xPU+PIM gains appear
        at long context."""
        short = [256] * 4
        long = [65536] * 4
        baseline = make_system(llm_7b, config=PIMphonyConfig.baseline())
        full = make_system(llm_7b, config=PIMphonyConfig.full())
        short_gain = baseline.decode_step(short).seconds / full.decode_step(short).seconds
        long_gain = baseline.decode_step(long).seconds / full.decode_step(long).seconds
        assert long_gain > short_gain

    def test_fc_runs_on_xpu_not_pim(self, llm_7b):
        step = make_system(llm_7b).decode_step([16384] * 2)
        assert step.fc_breakdown.total == 0.0
        assert step.attention_breakdown.total > 0.0

    def test_capacity_and_channels(self, llm_7b):
        system = make_system(llm_7b)
        assert system.total_capacity_bytes == 4 * 32 * 1024**3
        assert system.total_pim_channels == 4 * 32

    def test_plan_mismatch_rejected(self, llm_7b):
        with pytest.raises(ValueError):
            XPUPIMSystem(
                model=llm_7b,
                num_modules=4,
                plan=ParallelismPlan(2, 1),
                module=neupims_module_config(),
            )
