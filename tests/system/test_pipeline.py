"""Tests for the pipeline-parallel decode-step timing model."""

import pytest

from repro.pim.simulator import ZERO_BREAKDOWN
from repro.system.pipeline import StageCost, pipeline_decode_step, split_microbatches


def linear_stage_cost(microbatch):
    """Stage time proportional to the micro-batch's total tokens."""
    seconds = 1e-6 * sum(microbatch)
    return StageCost(seconds=seconds, pim_utilization=0.5)


class TestSplitMicrobatches:
    def test_token_balanced_split(self):
        buckets = split_microbatches([100, 90, 10, 5], 2)
        totals = sorted(sum(bucket) for bucket in buckets)
        assert totals == [100, 105]

    def test_count_clamped_to_batch(self):
        buckets = split_microbatches([10, 20], 8)
        assert len(buckets) == 2

    def test_all_tokens_preserved(self):
        contexts = [7, 13, 19, 23, 29]
        buckets = split_microbatches(contexts, 3)
        assert sum(sum(bucket) for bucket in buckets) == sum(contexts)


class TestPipelineStep:
    def test_single_stage_sums_all_work(self):
        step = pipeline_decode_step([100, 200, 300], stages=1, stage_cost=linear_stage_cost)
        assert step.seconds == pytest.approx(600e-6)

    def test_deep_pipeline_with_single_request_pays_full_depth(self):
        """With one micro-batch a PP=4 pipeline is mostly bubbles."""
        step = pipeline_decode_step([100], stages=4, stage_cost=linear_stage_cost)
        assert step.seconds == pytest.approx(4 * 100e-6)
        assert step.pim_utilization < 0.2

    def test_full_pipeline_bounded_by_total_work(self):
        """With at least as many requests as stages the step time equals the
        bottleneck stage's total work, not stages x slowest micro-batch."""
        contexts = [100] * 8
        step = pipeline_decode_step(contexts, stages=4, stage_cost=linear_stage_cost)
        assert step.seconds == pytest.approx(800e-6)

    def test_adding_requests_never_lowers_tokens_per_second(self):
        small = pipeline_decode_step([100] * 4, stages=4, stage_cost=linear_stage_cost)
        large = pipeline_decode_step([100] * 6, stages=4, stage_cost=linear_stage_cost)
        assert 6 / large.seconds >= 4 / small.seconds * 0.999

    def test_empty_batch(self):
        step = pipeline_decode_step([], stages=4, stage_cost=linear_stage_cost)
        assert step.seconds == 0.0
        assert step.num_microbatches == 0
        assert step.attention_breakdown == ZERO_BREAKDOWN

    def test_invalid_stage_count_rejected(self):
        with pytest.raises(ValueError):
            pipeline_decode_step([10], stages=0, stage_cost=linear_stage_cost)

    def test_utilization_weighted_by_busy_time(self):
        def cost(microbatch):
            return StageCost(seconds=1e-3, pim_utilization=1.0)

        step = pipeline_decode_step([1, 1], stages=2, stage_cost=cost)
        # Two micro-batches, two stages: pipeline fully busy.
        assert step.pim_utilization == pytest.approx(1.0)
