"""Tests for tensor/pipeline parallelism plans."""

import pytest

from repro.system.parallelism import ParallelismPlan, best_plan, enumerate_plans


class TestPlan:
    def test_module_count_and_shards(self, llm_7b):
        plan = ParallelismPlan(tensor_parallel=4, pipeline_parallel=2)
        assert plan.num_modules == 8
        assert plan.kv_heads_per_module(llm_7b) == llm_7b.num_kv_heads // 4
        assert plan.layers_per_stage(llm_7b) == llm_7b.num_layers // 2

    def test_validation_against_model(self, llm_7b_gqa):
        # LLM-7B-128K has 8 KV heads: TP beyond 8 is invalid.
        with pytest.raises(ValueError):
            ParallelismPlan(16, 1).validate_for(llm_7b_gqa)
        ParallelismPlan(8, 1).validate_for(llm_7b_gqa)

    def test_invalid_degrees_rejected(self):
        with pytest.raises(ValueError):
            ParallelismPlan(0, 1)

    def test_str_representation(self):
        assert str(ParallelismPlan(4, 2)) == "TP4xPP2"


class TestEnumeration:
    def test_all_factorisations_enumerated(self, llm_7b):
        plans = enumerate_plans(8, llm_7b)
        pairs = {(plan.tensor_parallel, plan.pipeline_parallel) for plan in plans}
        assert pairs == {(1, 8), (2, 4), (4, 2), (8, 1)}

    def test_invalid_plans_filtered(self, llm_7b_gqa):
        plans = enumerate_plans(32, llm_7b_gqa)
        assert all(plan.tensor_parallel <= llm_7b_gqa.num_kv_heads for plan in plans)

    def test_best_plan_uses_callback(self, llm_7b):
        plan, score = best_plan(8, llm_7b, evaluate=lambda p: p.tensor_parallel)
        assert plan.tensor_parallel == 8
        assert score == 8.0

    def test_zero_modules_rejected(self, llm_7b):
        with pytest.raises(ValueError):
            enumerate_plans(0, llm_7b)
