"""Tests for the decode serving loop."""

import pytest

from repro.core.orchestrator import PIMphonyConfig
from repro.baselines.cent import cent_system_config
from repro.memory.static_alloc import AllocationError
from repro.system.serving import simulate_serving
from repro.workloads.datasets import get_dataset, synthetic_dataset
from repro.workloads.traces import generate_trace


def make_trace(model, requests=8, output=16, dataset="qmsum", seed=0):
    return generate_trace(
        get_dataset(dataset),
        num_requests=requests,
        seed=seed,
        context_window=model.context_window,
        output_tokens=output,
    )


class TestServingLoop:
    def test_every_output_token_is_generated(self, llm_7b):
        trace = make_trace(llm_7b, requests=6, output=16)
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        result = simulate_serving(system, trace, step_stride=4)
        assert result.total_output_tokens == trace.total_output_tokens
        assert result.requests_served == len(trace)
        assert result.total_seconds > 0

    def test_step_stride_preserves_token_count(self, llm_7b):
        trace = make_trace(llm_7b, requests=4, output=32)
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        fine = simulate_serving(system, trace, step_stride=1)
        coarse = simulate_serving(system, trace, step_stride=16)
        assert fine.total_output_tokens == coarse.total_output_tokens
        assert coarse.total_seconds == pytest.approx(fine.total_seconds, rel=0.05)

    def test_dpa_admits_larger_batches(self, llm_7b):
        trace = make_trace(llm_7b, requests=16, output=8)
        static_system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.tcp_dcs())
        dpa_system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        static_result = simulate_serving(static_system, trace, step_stride=4)
        dpa_result = simulate_serving(dpa_system, trace, step_stride=4)
        assert dpa_result.peak_batch_size > static_result.peak_batch_size
        assert dpa_result.average_capacity_utilization > static_result.average_capacity_utilization

    def test_max_batch_size_respected(self, llm_7b):
        trace = make_trace(llm_7b, requests=8, output=8)
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        result = simulate_serving(system, trace, max_batch_size=2, step_stride=4)
        assert result.peak_batch_size <= 2

    def test_pimphony_throughput_beats_baseline(self, llm_7b):
        trace = make_trace(llm_7b, requests=8, output=16)
        baseline = simulate_serving(
            cent_system_config(llm_7b, pimphony=PIMphonyConfig.baseline()), trace, step_stride=4
        )
        pimphony = simulate_serving(
            cent_system_config(llm_7b, pimphony=PIMphonyConfig.full()), trace, step_stride=4
        )
        assert pimphony.throughput_tokens_per_s > 1.5 * baseline.throughput_tokens_per_s

    def test_oversized_request_raises(self, llm_7b):
        huge = synthetic_dataset(
            "huge", mean=5e6, std=1.0, minimum=4_000_000, maximum=6_000_000, output_tokens=4
        )
        trace = generate_trace(huge, num_requests=1, seed=0)
        system = cent_system_config(
            llm_7b.with_context_window(8 * 1024 * 1024),
            num_modules=1,
            pimphony=PIMphonyConfig.full(),
        )
        with pytest.raises(AllocationError):
            simulate_serving(system, trace)

    def test_invalid_stride_rejected(self, llm_7b):
        trace = make_trace(llm_7b, requests=2, output=4)
        system = cent_system_config(llm_7b)
        with pytest.raises(ValueError):
            simulate_serving(system, trace, step_stride=0)

    def test_result_metrics_consistent(self, llm_7b):
        trace = make_trace(llm_7b, requests=4, output=8)
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        result = simulate_serving(system, trace, step_stride=2, system_name="cent+pimphony")
        assert result.system_name == "cent+pimphony"
        assert result.dataset == "qmsum"
        assert result.average_step_seconds == pytest.approx(
            result.total_seconds / result.steps
        )
        assert 0 <= result.average_pim_utilization <= 1
        assert 0 <= result.average_capacity_utilization <= 1
