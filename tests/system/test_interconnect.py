"""Tests for the inter-module interconnect model."""

import pytest

from repro.system.interconnect import InterconnectConfig


class TestInterconnect:
    def test_single_participant_all_reduce_is_free(self):
        link = InterconnectConfig()
        assert link.all_reduce_seconds(1024, participants=1) == 0.0

    def test_all_reduce_scales_with_bytes(self):
        link = InterconnectConfig(bandwidth_bytes_per_s=1e9, latency_s=0.0)
        small = link.all_reduce_seconds(1_000, participants=4)
        large = link.all_reduce_seconds(10_000, participants=4)
        assert large == pytest.approx(10 * small)

    def test_point_to_point_includes_latency(self):
        link = InterconnectConfig(bandwidth_bytes_per_s=1e9, latency_s=1e-6)
        assert link.point_to_point_seconds(1_000) == pytest.approx(1e-6 + 1e-6)
        assert link.point_to_point_seconds(0) == 0.0

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            InterconnectConfig(bandwidth_bytes_per_s=0)
