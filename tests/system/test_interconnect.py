"""Tests for the inter-module interconnect model."""

import pytest

from repro.system.interconnect import InterconnectConfig


class TestInterconnect:
    def test_single_participant_all_reduce_is_free(self):
        link = InterconnectConfig()
        assert link.all_reduce_seconds(1024, participants=1) == 0.0

    def test_all_reduce_scales_with_bytes(self):
        link = InterconnectConfig(bandwidth_bytes_per_s=1e9, latency_s=0.0)
        small = link.all_reduce_seconds(1_000, participants=4)
        large = link.all_reduce_seconds(10_000, participants=4)
        assert large == pytest.approx(10 * small)

    def test_point_to_point_includes_latency(self):
        link = InterconnectConfig(bandwidth_bytes_per_s=1e9, latency_s=1e-6)
        assert link.point_to_point_seconds(1_000) == pytest.approx(1e-6 + 1e-6)
        assert link.point_to_point_seconds(0) == 0.0

    def test_zero_bytes_are_free(self):
        link = InterconnectConfig()
        assert link.all_reduce_seconds(0, participants=8) == 0.0
        assert link.all_reduce_seconds(-16.0, participants=8) == 0.0
        assert link.point_to_point_seconds(0.0) == 0.0
        assert link.point_to_point_seconds(-1.0) == 0.0

    def test_ring_all_reduce_monotone_in_participants(self):
        """Ring cost 2(p-1)/p grows with p and saturates below 2x p2p."""
        link = InterconnectConfig(bandwidth_bytes_per_s=1e9, latency_s=0.0)
        times = [link.all_reduce_seconds(1e6, participants=p) for p in range(2, 10)]
        assert all(late > early for early, late in zip(times, times[1:], strict=False))
        assert times[-1] < 2 * link.point_to_point_seconds(1e6)

    def test_accepts_float_byte_counts(self):
        """KV sizes arrive as floats (bytes-per-token x tokens); no truncation."""
        link = InterconnectConfig(bandwidth_bytes_per_s=1e9, latency_s=0.0)
        assert link.point_to_point_seconds(1536.5) == pytest.approx(1536.5e-9)
        assert link.all_reduce_seconds(1000.0, participants=2) == pytest.approx(
            link.all_reduce_seconds(1000, participants=2)
        )

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            InterconnectConfig(bandwidth_bytes_per_s=0)
