"""Tests for per-module layer timing (attention + FC on PIM)."""

import pytest

from repro.core.orchestrator import PIMphonyConfig
from repro.system.layers import module_attention_time, module_fc_time


class TestModuleAttention:
    def test_tcp_fully_utilises_channels(self, cent_module):
        cycles, utilization, breakdown = module_attention_time(
            context_lengths=[16384, 8192],
            kv_heads_per_module=4,
            group_size=1,
            head_dim=128,
            module=cent_module,
            config=PIMphonyConfig.tcp_only(),
        )
        assert cycles > 0
        assert utilization == pytest.approx(1.0)
        assert breakdown.total > cycles  # aggregate across channels

    def test_hfp_underutilises_with_few_long_tasks(self, cent_module):
        cycles, utilization, _ = module_attention_time(
            context_lengths=[32768],
            kv_heads_per_module=2,
            group_size=1,
            head_dim=128,
            module=cent_module,
            config=PIMphonyConfig.baseline(),
        )
        assert cycles > 0
        assert utilization <= 2 / cent_module.num_channels + 1e-6

    def test_tcp_faster_than_hfp(self, cent_module):
        contexts = [32768, 16384]
        hfp_cycles, _, _ = module_attention_time(
            contexts, 2, 1, 128, cent_module, PIMphonyConfig.baseline()
        )
        tcp_cycles, _, _ = module_attention_time(
            contexts, 2, 1, 128, cent_module, PIMphonyConfig.tcp_only()
        )
        assert tcp_cycles < hfp_cycles / 4

    def test_dcs_accelerates_attention(self, cent_module):
        contexts = [32768] * 4
        tcp_cycles, _, _ = module_attention_time(
            contexts, 4, 1, 128, cent_module, PIMphonyConfig.tcp_only()
        )
        dcs_cycles, _, _ = module_attention_time(
            contexts, 4, 1, 128, cent_module, PIMphonyConfig.tcp_dcs()
        )
        assert dcs_cycles < tcp_cycles

    def test_empty_batch_is_free(self, cent_module):
        cycles, utilization, _ = module_attention_time(
            [], 4, 1, 128, cent_module, PIMphonyConfig.full()
        )
        assert cycles == 0.0 and utilization == 0.0

    def test_cycles_scale_with_context(self, cent_module):
        short, _, _ = module_attention_time(
            [8192], 4, 1, 128, cent_module, PIMphonyConfig.full()
        )
        long, _, _ = module_attention_time(
            [32768], 4, 1, 128, cent_module, PIMphonyConfig.full()
        )
        assert long == pytest.approx(4 * short, rel=0.25)


class TestModuleFC:
    def test_fc_time_positive_and_scales_with_batch(self, cent_module, llm_7b):
        single, _ = module_fc_time(
            1, llm_7b.d_model, llm_7b.kv_dim, llm_7b.ffn_dim, True, 8, cent_module,
            PIMphonyConfig.full(),
        )
        batched, _ = module_fc_time(
            8, llm_7b.d_model, llm_7b.kv_dim, llm_7b.ffn_dim, True, 8, cent_module,
            PIMphonyConfig.full(),
        )
        assert single > 0
        assert batched > single

    def test_more_tensor_parallelism_shrinks_fc_time(self, cent_module, llm_7b):
        narrow, _ = module_fc_time(
            4, llm_7b.d_model, llm_7b.kv_dim, llm_7b.ffn_dim, True, 1, cent_module,
            PIMphonyConfig.full(),
        )
        wide, _ = module_fc_time(
            4, llm_7b.d_model, llm_7b.kv_dim, llm_7b.ffn_dim, True, 8, cent_module,
            PIMphonyConfig.full(),
        )
        assert wide < narrow

    def test_zero_batch_is_free(self, cent_module, llm_7b):
        cycles, _ = module_fc_time(
            0, llm_7b.d_model, llm_7b.kv_dim, llm_7b.ffn_dim, True, 8, cent_module,
            PIMphonyConfig.full(),
        )
        assert cycles == 0.0
