"""Tests for the PIM-only (CENT-style) system model."""

import pytest

from repro.core.orchestrator import PIMphonyConfig
from repro.pim.config import cent_module_config
from repro.system.parallelism import ParallelismPlan
from repro.system.pim_only import PIMOnlySystem


def make_system(model, tp=8, pp=1, config=None):
    return PIMOnlySystem(
        model=model,
        num_modules=tp * pp,
        plan=ParallelismPlan(tp, pp),
        pimphony=config or PIMphonyConfig.full(),
        module=cent_module_config(),
    )


class TestConstruction:
    def test_plan_must_cover_modules(self, llm_7b):
        with pytest.raises(ValueError):
            PIMOnlySystem(
                model=llm_7b,
                num_modules=8,
                plan=ParallelismPlan(2, 2),
                module=cent_module_config(),
            )

    def test_capacity_accounts_for_weights(self, llm_7b):
        system = make_system(llm_7b)
        assert system.total_capacity_bytes == 8 * 16 * 1024**3
        assert system.kv_capacity_bytes < system.total_capacity_bytes
        assert system.kv_capacity_bytes > 0

    def test_dynamic_memory_follows_dpa(self, llm_7b):
        assert make_system(llm_7b, config=PIMphonyConfig.full()).dynamic_memory
        assert not make_system(llm_7b, config=PIMphonyConfig.baseline()).dynamic_memory


class TestDecodeStep:
    def test_step_latency_positive_and_grows_with_context(self, llm_7b):
        system = make_system(llm_7b)
        short = system.decode_step([4096] * 4)
        long = system.decode_step([32768] * 4)
        assert 0 < short.seconds < long.seconds

    def test_pimphony_beats_baseline(self, llm_7b):
        contexts = [32768, 24576, 16384, 8192]
        baseline = make_system(llm_7b, config=PIMphonyConfig.baseline()).decode_step(contexts)
        full = make_system(llm_7b, config=PIMphonyConfig.full()).decode_step(contexts)
        assert full.seconds < baseline.seconds
        assert full.pim_utilization > baseline.pim_utilization

    def test_incremental_features_never_hurt(self, llm_7b):
        contexts = [32768] * 4
        times = [
            make_system(llm_7b, config=config).decode_step(contexts).seconds
            for config in PIMphonyConfig.incremental_sweep()
        ]
        assert times[0] >= times[1] >= times[2] >= times[3] * 0.999

    def test_pipeline_bubbles_with_insufficient_microbatches(self, llm_7b):
        """With one request on a PP=4 system, three stages idle each step."""
        pp_system = make_system(llm_7b, tp=2, pp=4)
        tp_system = make_system(llm_7b, tp=8, pp=1)
        pp_step = pp_system.decode_step([16384])
        tp_step = tp_system.decode_step([16384])
        assert pp_step.pim_utilization < tp_step.pim_utilization

    def test_empty_batch(self, llm_7b):
        step = make_system(llm_7b).decode_step([])
        assert step.seconds == 0.0

    def test_breakdowns_populated_for_energy(self, llm_7b):
        step = make_system(llm_7b).decode_step([16384] * 2)
        assert step.attention_breakdown.total > 0
        assert step.fc_breakdown.total > 0


class TestDecodeSpan:
    """The memoized TCP span must replicate ``decode_step`` bit-for-bit."""

    CASES = [
        ([1], 1, 5),
        ([1, 1], 8, 7),
        ([512, 300, 17], 8, 9),
        ([4096, 4096, 123, 7], 4, 6),
        ([33, 33, 33], 3, 11),
        ([20000, 5, 5, 5, 900], 8, 5),
    ]

    def test_installed_only_for_tcp_single_stage(self, llm_7b):
        assert make_system(llm_7b, config=PIMphonyConfig.full()).decode_span is not None
        assert make_system(llm_7b, config=PIMphonyConfig.baseline()).decode_span is None
        assert make_system(llm_7b, tp=2, pp=4, config=PIMphonyConfig.full()).decode_span is None

    @pytest.mark.parametrize(("contexts", "stride", "count"), CASES)
    def test_span_matches_decode_step_bitwise(self, llm_7b, contexts, stride, count):
        system = make_system(llm_7b)
        span = system.decode_span(contexts, stride, count)
        for j in range(count):
            step = system.decode_step([c + j * stride for c in contexts])
            assert float(span[j]) == step.seconds
            assert step.pim_utilization == system.decode_span_utilization

    def test_span_utilization_constant_is_one(self, llm_7b):
        system = make_system(llm_7b)
        assert system.decode_span_utilization == 1.0
        assert make_system(llm_7b, config=PIMphonyConfig.baseline()).decode_span_utilization == 0.0

    def test_empty_contexts_priced_at_zero(self, llm_7b):
        span = make_system(llm_7b).decode_span([], 8, 3)
        assert span.shape == (3,)
        assert (span == 0.0).all()
