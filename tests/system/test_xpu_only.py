"""Tests for the xPU-only (no-PIM) system model."""

import pytest

from repro.system.xpu import XPUConfig, XPUOnlySystem
from repro.system.serving import simulate_serving
from repro.workloads.datasets import get_dataset
from repro.workloads.traces import generate_trace


def make_system(model, num_modules=2, **kwargs):
    return XPUOnlySystem(model=model, num_modules=num_modules, **kwargs)


class TestXPUOnlySystem:
    def test_decode_step_roofline_components(self, llm_7b):
        system = make_system(llm_7b)
        step = system.decode_step([8192, 8192])
        assert step.seconds > 0
        assert step.pim_utilization == 0.0
        # Attention is KV streaming: doubling every context roughly adds the
        # incremental KV read time, so the step must get strictly slower.
        slower = system.decode_step([16384, 16384])
        assert slower.seconds > step.seconds

    def test_tensor_parallel_scaling(self, llm_7b):
        contexts = [8192] * 4
        two = make_system(llm_7b, num_modules=2).decode_step(contexts)
        eight = make_system(llm_7b, num_modules=8).decode_step(contexts)
        assert eight.seconds < two.seconds

    def test_kv_capacity_excludes_weights(self, llm_7b):
        system = make_system(llm_7b)
        assert (
            system.kv_capacity_bytes
            == system.total_capacity_bytes - llm_7b.param_bytes
        )
        assert system.kv_bytes_per_token == llm_7b.kv_bytes_per_token
        assert system.max_context_tokens == llm_7b.context_window
        assert system.total_pim_channels == 0

    def test_paged_kv_toggles_dynamic_memory(self, llm_7b):
        assert make_system(llm_7b, paged_kv=True).dynamic_memory
        assert not make_system(llm_7b, paged_kv=False).dynamic_memory

    def test_empty_batch_is_free(self, llm_7b):
        step = make_system(llm_7b).decode_step([])
        assert step.seconds == 0.0

    def test_invalid_configuration_rejected(self, llm_7b):
        with pytest.raises(ValueError):
            make_system(llm_7b, num_modules=0)
        with pytest.raises(ValueError):
            make_system(llm_7b, capacity_bytes_per_module=0)
        with pytest.raises(ValueError):
            XPUConfig(peak_tflops=0)

    def test_serves_through_the_engine(self, llm_7b):
        trace = generate_trace(
            get_dataset("qmsum"),
            num_requests=6,
            seed=0,
            context_window=llm_7b.context_window,
            output_tokens=8,
        )
        result = simulate_serving(make_system(llm_7b), trace, step_stride=4)
        assert result.total_output_tokens == trace.total_output_tokens
        assert result.requests_served == 6
        assert result.average_pim_utilization == 0.0
        assert result.latency.latency_p50_s <= result.latency.latency_p99_s
