"""Tests for the xPU roofline model."""

import pytest

from repro.system.xpu import XPUConfig, fc_layer_seconds


class TestXPU:
    def test_roofline_picks_slower_bound(self):
        xpu = XPUConfig(peak_tflops=100, compute_efficiency=1.0, memory_bandwidth_bytes=1e12)
        # Tiny compute, large weights: memory bound.
        assert xpu.gemm_seconds(flops=1e6, weight_bytes=1e9) == pytest.approx(1e-3)
        # Huge compute, small weights: compute bound.
        assert xpu.gemm_seconds(flops=1e14, weight_bytes=1e3) == pytest.approx(1.0)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            XPUConfig(peak_tflops=0)
        with pytest.raises(ValueError):
            XPUConfig(compute_efficiency=0)

    def test_negative_work_rejected(self):
        with pytest.raises(ValueError):
            XPUConfig().gemm_seconds(-1, 0)


class TestFCLayer:
    def test_decode_fc_is_memory_bound(self, llm_7b):
        """At decode batch sizes the FC layers stream weights (low intensity)."""
        xpu = XPUConfig()
        one = fc_layer_seconds(xpu, 1, llm_7b.d_model, llm_7b.kv_dim, llm_7b.ffn_dim, True, 1)
        few = fc_layer_seconds(xpu, 8, llm_7b.d_model, llm_7b.kv_dim, llm_7b.ffn_dim, True, 1)
        assert one == pytest.approx(few, rel=0.2)

    def test_tensor_parallelism_divides_time(self, llm_7b):
        xpu = XPUConfig()
        full = fc_layer_seconds(xpu, 4, llm_7b.d_model, llm_7b.kv_dim, llm_7b.ffn_dim, True, 1)
        sharded = fc_layer_seconds(xpu, 4, llm_7b.d_model, llm_7b.kv_dim, llm_7b.ffn_dim, True, 4)
        assert sharded < full
        assert sharded == pytest.approx(full / 4, rel=0.3)

    def test_zero_batch_free(self, llm_7b):
        assert fc_layer_seconds(XPUConfig(), 0, 4096, 4096, 12288, True, 1) == 0.0
