"""Tests for the memory footprint analysis (paper Fig. 2(b))."""

import pytest

from repro.models.footprint import A100_CAPACITY_BYTES, memory_footprint


class TestFootprint:
    def test_growth_with_context_and_batch(self, llm_7b):
        base = memory_footprint(llm_7b, 4096, 1)
        longer = memory_footprint(llm_7b, 32 * 1024, 1)
        wider = memory_footprint(llm_7b, 4096, 16)
        assert longer.kv_cache_bytes > base.kv_cache_bytes
        assert wider.kv_cache_bytes == 16 * base.kv_cache_bytes
        assert longer.total_bytes > base.total_bytes

    def test_7b_single_short_request_fits_a100(self, llm_7b):
        assert memory_footprint(llm_7b, 4096, 1).fits(A100_CAPACITY_BYTES)

    def test_7b_large_batch_long_context_exceeds_a100(self, llm_7b):
        # The Fig. 2(b) out-of-memory region: long context x large batch.
        footprint = memory_footprint(llm_7b, 32 * 1024, 16)
        assert not footprint.fits(A100_CAPACITY_BYTES)

    def test_param_bytes_independent_of_workload(self, llm_7b):
        a = memory_footprint(llm_7b, 1024, 1)
        b = memory_footprint(llm_7b, 64 * 1024, 32)
        assert a.param_bytes == b.param_bytes

    def test_negative_inputs_rejected(self, llm_7b):
        with pytest.raises(ValueError):
            memory_footprint(llm_7b, -1, 1)
        with pytest.raises(ValueError):
            memory_footprint(llm_7b, 1, -1)

    def test_total_gib_conversion(self, llm_7b):
        footprint = memory_footprint(llm_7b, 1024, 1)
        assert footprint.total_gib == pytest.approx(footprint.total_bytes / 1024**3)
