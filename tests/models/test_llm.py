"""Tests for the LLM configuration registry (paper Table I)."""

import pytest

from repro.models.llm import LLMConfig, get_model, list_models


class TestRegistry:
    def test_all_four_paper_models_registered(self):
        names = list_models()
        for expected in ("LLM-7B-32K", "LLM-7B-128K", "LLM-72B-32K", "LLM-72B-128K"):
            assert expected in names

    def test_get_model_unknown_name_raises(self):
        with pytest.raises(KeyError, match="unknown model"):
            get_model("LLM-13B")

    def test_table1_7b_shape(self):
        model = get_model("LLM-7B-32K")
        assert model.num_layers == 32
        assert model.num_heads == 32
        assert model.head_dim == 128
        assert model.d_model == 4096
        assert not model.gqa_enabled
        assert model.context_window == 32 * 1024

    def test_table1_72b_shape(self):
        model = get_model("LLM-72B-128K")
        assert model.num_layers == 80
        assert model.num_heads == 64
        assert model.head_dim == 128
        assert model.gqa_group_size == 8
        assert model.context_window == 128 * 1024


class TestDerivedProperties:
    def test_gqa_reduces_kv_heads(self):
        dense = get_model("LLM-7B-32K")
        gqa = get_model("LLM-7B-128K")
        assert dense.num_kv_heads == 32
        assert gqa.num_kv_heads == 8
        assert gqa.kv_bytes_per_token < dense.kv_bytes_per_token

    def test_kv_bytes_per_token_structure(self):
        model = get_model("LLM-7B-32K")
        expected = model.num_layers * 2 * model.d_model * model.dtype_bytes
        assert model.kv_bytes_per_token == expected

    def test_param_count_is_roughly_model_scale(self):
        small = get_model("LLM-7B-32K")
        large = get_model("LLM-72B-32K")
        assert 5e9 < small.param_count < 10e9
        assert 50e9 < large.param_count < 90e9
        assert large.param_bytes > small.param_bytes

    def test_with_context_window_only_changes_window(self):
        base = get_model("LLM-7B-128K")
        extended = base.with_context_window(1024 * 1024)
        assert extended.context_window == 1024 * 1024
        assert extended.num_layers == base.num_layers
        assert extended.kv_bytes_per_token == base.kv_bytes_per_token


class TestValidation:
    def _kwargs(self, **overrides):
        kwargs = dict(
            name="test",
            num_layers=2,
            num_heads=4,
            head_dim=16,
            d_model=64,
            ffn_dim=128,
            gqa_group_size=1,
            context_window=1024,
        )
        kwargs.update(overrides)
        return kwargs

    def test_valid_config_builds(self):
        config = LLMConfig(**self._kwargs())
        assert config.kv_dim == 64

    def test_d_model_mismatch_rejected(self):
        with pytest.raises(ValueError, match="d_model"):
            LLMConfig(**self._kwargs(d_model=128))

    def test_group_size_must_divide_heads(self):
        with pytest.raises(ValueError, match="divisible"):
            LLMConfig(**self._kwargs(gqa_group_size=3))

    def test_non_positive_dimensions_rejected(self):
        with pytest.raises(ValueError):
            LLMConfig(**self._kwargs(num_layers=0))
        with pytest.raises(ValueError):
            LLMConfig(**self._kwargs(context_window=0))
