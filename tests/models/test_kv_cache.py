"""Tests for KV-cache sizing helpers."""

import pytest

from repro.models.kv_cache import (
    kv_bytes_per_token,
    kv_cache_bytes,
    kv_cache_bytes_for_lengths,
    max_batch_for_capacity,
)


class TestSizing:
    def test_linear_in_context_and_batch(self, llm_7b):
        single = kv_cache_bytes(llm_7b, 1000, 1)
        assert kv_cache_bytes(llm_7b, 2000, 1) == 2 * single
        assert kv_cache_bytes(llm_7b, 1000, 4) == 4 * single

    def test_matches_per_token_rate(self, llm_7b):
        assert kv_cache_bytes(llm_7b, 123, 1) == 123 * kv_bytes_per_token(llm_7b)

    def test_per_length_sum_matches_uniform(self, llm_7b):
        mixed = kv_cache_bytes_for_lengths(llm_7b, [100, 200, 300])
        assert mixed == kv_cache_bytes(llm_7b, 600, 1)

    def test_negative_inputs_rejected(self, llm_7b):
        with pytest.raises(ValueError):
            kv_cache_bytes(llm_7b, -1, 1)
        with pytest.raises(ValueError):
            kv_cache_bytes_for_lengths(llm_7b, [10, -1])


class TestMaxBatch:
    def test_reserving_params_reduces_batch(self, llm_7b):
        capacity = 128 * 1024**3
        with_params = max_batch_for_capacity(llm_7b, capacity, 32 * 1024, reserve_params=True)
        without_params = max_batch_for_capacity(llm_7b, capacity, 32 * 1024, reserve_params=False)
        assert 0 < with_params <= without_params

    def test_zero_when_params_exceed_capacity(self, llm_72b):
        assert max_batch_for_capacity(llm_72b, 8 * 1024**3, 1024) == 0

    def test_longer_context_admits_fewer_requests(self, llm_7b):
        capacity = 128 * 1024**3
        short = max_batch_for_capacity(llm_7b, capacity, 4 * 1024)
        long = max_batch_for_capacity(llm_7b, capacity, 32 * 1024)
        assert short > long

    def test_zero_context_rejected(self, llm_7b):
        with pytest.raises(ValueError):
            max_batch_for_capacity(llm_7b, 128 * 1024**3, 0)
