"""Tests for the decode-step operator workload model."""

import pytest

from repro.models.workload import OperatorKind, build_decode_workload


class TestOperatorStructure:
    def test_operator_counts_per_layer(self, llm_7b):
        workload = build_decode_workload(llm_7b, [1024])
        fc = workload.operators_of_kind(OperatorKind.FC)
        qkt = workload.operators_of_kind(OperatorKind.ATTENTION_QKT)
        sv = workload.operators_of_kind(OperatorKind.ATTENTION_SV)
        # 5 FC matrices per layer (QKV, out, gate, up, down) for a gated FFN.
        assert len(fc) == 5 * llm_7b.num_layers
        assert len(qkt) == llm_7b.num_layers * llm_7b.num_kv_heads
        assert len(sv) == len(qkt)

    def test_gqa_reduces_attention_operator_count(self, llm_7b, llm_7b_gqa):
        dense = build_decode_workload(llm_7b, [1024])
        gqa = build_decode_workload(llm_7b_gqa, [1024])
        dense_qkt = dense.operators_of_kind(OperatorKind.ATTENTION_QKT)
        gqa_qkt = gqa.operators_of_kind(OperatorKind.ATTENTION_QKT)
        assert len(gqa_qkt) == len(dense_qkt) // llm_7b_gqa.gqa_group_size

    def test_softmax_only_when_requested(self, llm_7b):
        without = build_decode_workload(llm_7b, [128])
        with_softmax = build_decode_workload(llm_7b, [128], include_softmax=True)
        assert not without.operators_of_kind(OperatorKind.SOFTMAX)
        assert with_softmax.operators_of_kind(OperatorKind.SOFTMAX)

    def test_empty_batch_has_no_operators(self, llm_7b):
        workload = build_decode_workload(llm_7b, [])
        assert workload.operators == []
        assert workload.compute_intensity == 0.0

    def test_invalid_context_rejected(self, llm_7b):
        with pytest.raises(ValueError):
            build_decode_workload(llm_7b, [0])


class TestIntensity:
    def test_attention_bytes_grow_with_context(self, llm_7b):
        short = build_decode_workload(llm_7b, [1024])
        long = build_decode_workload(llm_7b, [16 * 1024])
        assert long.attention_bytes > 8 * short.attention_bytes
        assert long.fc_bytes == short.fc_bytes

    def test_compute_intensity_decreases_with_context(self, llm_7b):
        intensities = [
            build_decode_workload(llm_7b, [context]).compute_intensity
            for context in (1024, 8 * 1024, 32 * 1024)
        ]
        assert intensities[0] > intensities[1] > intensities[2]

    def test_batching_raises_intensity(self, llm_7b):
        single = build_decode_workload(llm_7b, [4096])
        batched = build_decode_workload(llm_7b, [4096] * 8)
        assert batched.compute_intensity > single.compute_intensity

    def test_operator_flops_and_bytes_positive(self, llm_7b):
        workload = build_decode_workload(llm_7b, [2048, 1024])
        for operator in workload.operators:
            assert operator.flops > 0
            assert operator.total_bytes > 0
            assert operator.compute_intensity > 0
