"""Tests for the compute-intensity analysis (paper Fig. 2(a))."""

from repro.models.roofline import compute_intensity, decode_compute_intensity_sweep


class TestIntensitySweep:
    def test_sweep_is_monotonically_decreasing(self, llm_7b_gqa):
        # Batched decoding (the Fig. 2(a) setting): FC compute is amortised
        # across the batch while attention stays per-request, so intensity
        # collapses as the context grows.
        contexts = [1024, 4096, 16 * 1024, 64 * 1024, 128 * 1024]
        points = decode_compute_intensity_sweep(llm_7b_gqa, contexts, batch_size=8)
        intensities = [point.compute_intensity for point in points]
        assert intensities == sorted(intensities, reverse=True)

    def test_attention_fraction_grows_with_context(self, llm_7b_gqa):
        points = decode_compute_intensity_sweep(llm_7b_gqa, [1024, 64 * 1024])
        assert points[1].attention_byte_fraction > points[0].attention_byte_fraction

    def test_long_context_is_memory_bound(self, llm_7b_gqa):
        # At 128K tokens the decode step moves far more bytes than it can
        # amortise with compute: intensity well below typical machine balance.
        assert compute_intensity(llm_7b_gqa, 128 * 1024) < 5.0

    def test_sweep_points_echo_inputs(self, llm_7b):
        points = decode_compute_intensity_sweep(llm_7b, [2048], batch_size=3)
        assert points[0].context_length == 2048
        assert points[0].batch_size == 3
        assert points[0].flops > 0
        assert points[0].bytes_moved > 0
