"""Tests for command schedulers: the Fig. 7 anchor and ordering semantics."""

from itertools import pairwise

import pytest

from repro.baselines.pingpong import PingPongScheduler
from repro.core.dcs import DCSScheduler
from repro.pim.config import PIMChannelConfig
from repro.pim.isa import PIMOpcode, mac, read_output, write_input
from repro.pim.scheduling import StaticScheduler


def fig7_command_stack():
    """The command stack of paper Fig. 7: two output groups of a small GEMV."""
    return [
        write_input(0, 0),
        write_input(1, 1),
        write_input(2, 2),
        mac(3, 0, 0, row=-1),
        mac(4, 1, 0, row=-1),
        mac(5, 2, 0, row=-1),
        read_output(6, 0),
        mac(7, 0, 1, row=-1),
        mac(8, 1, 1, row=-1),
        mac(9, 2, 1, row=-1),
        read_output(10, 1),
    ]


class TestFig7Anchor:
    def test_static_schedule_takes_34_cycles(self, fig7_timing):
        """The paper's Fig. 7(b) static schedule finishes at cycle 34."""
        result = StaticScheduler(fig7_timing).schedule(fig7_command_stack())
        assert result.makespan == 34

    def test_dcs_schedule_close_to_paper_22_cycles(self, fig7_timing):
        """Fig. 7(d): DCS compresses the stack to 22 cycles (we measure 23)."""
        result = DCSScheduler(fig7_timing).schedule(fig7_command_stack())
        assert 21 <= result.makespan <= 24

    def test_dcs_much_faster_than_static(self, fig7_timing):
        static = StaticScheduler(fig7_timing).schedule(fig7_command_stack())
        dcs = DCSScheduler(fig7_timing).schedule(fig7_command_stack())
        assert static.makespan / dcs.makespan > 1.4

    def test_dcs_issues_independent_mac_before_rd_out(self, fig7_timing):
        """M7 has no dependency on R6 and may issue before it (out-of-order)."""
        result = DCSScheduler(fig7_timing).schedule(fig7_command_stack())
        order = result.issue_order()
        assert order.index(7) < order.index(6)


class TestStaticScheduler:
    def test_issues_strictly_in_program_order(self, fig7_timing):
        result = StaticScheduler(fig7_timing).schedule(fig7_command_stack())
        assert result.issue_order() == list(range(11))

    def test_category_boundary_serialises(self, fig7_timing):
        """A MAC waits for *all* preceding writes, even unrelated ones."""
        commands = [write_input(0, 0), write_input(1, 1), mac(2, 0, 0, row=-1)]
        result = StaticScheduler(fig7_timing).schedule(commands)
        issue = {entry.command.cmd_id: entry.issue for entry in result.scheduled}
        completes = {entry.command.cmd_id: entry.complete for entry in result.scheduled}
        assert issue[2] >= completes[1]

    def test_row_switch_penalty_accounted(self, timing):
        commands = [
            write_input(0, 0),
            mac(1, 0, 0, row=0),
            mac(2, 0, 0, row=1),
            mac(3, 0, 0, row=1),
        ]
        result = StaticScheduler(timing).schedule(commands)
        # Two activations: row 0 (idle->open) and row 1 (switch).
        expected = timing.dram.t_rcd + timing.dram.row_switch_cycles
        assert result.breakdown.act_pre == expected

    def test_same_category_pipelines_at_occupancy(self, fig7_timing):
        commands = [write_input(index, index % 4) for index in range(5)]
        result = StaticScheduler(fig7_timing).schedule(commands)
        issues = [entry.issue for entry in result.scheduled]
        gaps = [b - a for a, b in pairwise(issues)]
        assert all(gap == fig7_timing.wr_inp_occupancy for gap in gaps)


class TestDCSScheduler:
    def test_true_dependencies_still_respected(self, fig7_timing):
        """A MAC never issues before the write that produces its input ends."""
        result = DCSScheduler(fig7_timing).schedule(fig7_command_stack())
        times = {entry.command.cmd_id: entry for entry in result.scheduled}
        for mac_id, wr_id in ((3, 0), (4, 1), (5, 2), (7, 0), (8, 1), (9, 2)):
            assert times[mac_id].issue >= times[wr_id].complete

    def test_rd_out_waits_for_last_mac_of_its_group(self, fig7_timing):
        result = DCSScheduler(fig7_timing).schedule(fig7_command_stack())
        times = {entry.command.cmd_id: entry for entry in result.scheduled}
        assert times[6].issue >= times[5].complete
        assert times[10].issue >= times[9].complete

    def test_order_preserved_within_each_queue(self, fig7_timing):
        result = DCSScheduler(fig7_timing).schedule(fig7_command_stack())
        order = result.issue_order()
        io_ids = [cmd_id for cmd_id in order if cmd_id in (0, 1, 2, 6, 10)]
        mac_ids = [cmd_id for cmd_id in order if cmd_id in (3, 4, 5, 7, 8, 9)]
        assert io_ids == [0, 1, 2, 6, 10]
        assert mac_ids == [3, 4, 5, 7, 8, 9]

    def test_never_slower_than_static_on_gemv_streams(self, timing):
        from repro.compiler.lowering import lower_gemv_to_commands
        from repro.pim.kernels import caps_for_policy

        channel = PIMChannelConfig()
        for in_dim, out_dim in ((128, 128), (256, 256), (512, 128)):
            commands = lower_gemv_to_commands(
                in_dim, out_dim, channel, caps_for_policy(channel, "dcs")
            )
            static = StaticScheduler(timing, channel).schedule(commands)
            dcs = DCSScheduler(timing, channel).schedule(commands)
            assert dcs.makespan <= static.makespan

    def test_metadata_table_is_small(self, timing, channel):
        scheduler = DCSScheduler(timing, channel)
        assert scheduler.metadata_table_bytes <= 1024


class TestPingPongScheduler:
    def test_between_static_and_dcs_on_streamed_kernel(self, timing):
        """On a kernel that alternates fills and compute, ping-pong beats the
        static scheduler but loses to DCS (paper Fig. 18)."""
        from repro.compiler.lowering import lower_gemv_to_commands
        from repro.pim.kernels import caps_for_policy

        channel = PIMChannelConfig(gbuf_bytes=512)  # small GBuf forces streaming
        commands = lower_gemv_to_commands(
            1024, 64, channel, caps_for_policy(channel, "dcs")
        )
        static = StaticScheduler(timing, channel).schedule(commands)
        pingpong = PingPongScheduler(timing, channel).schedule(commands)
        dcs = DCSScheduler(timing, channel).schedule(commands)
        assert dcs.makespan <= pingpong.makespan <= static.makespan
        assert dcs.makespan < static.makespan

    def test_respects_write_read_dependencies(self, fig7_timing):
        result = PingPongScheduler(fig7_timing).schedule(fig7_command_stack())
        times = {entry.command.cmd_id: entry for entry in result.scheduled}
        for mac_id, wr_id in ((3, 0), (4, 1), (5, 2)):
            assert times[mac_id].issue >= times[wr_id].complete


class TestBreakdownAccounting:
    def test_static_components_sum_to_total(self, timing):
        """Under static scheduling nothing overlaps, so the busy components
        plus the residual pipeline penalty reconstruct the makespan."""
        from repro.compiler.lowering import lower_gemv_to_commands
        from repro.pim.kernels import caps_for_policy

        channel = PIMChannelConfig()
        commands = lower_gemv_to_commands(256, 256, channel, caps_for_policy(channel, "static"))
        breakdown = StaticScheduler(timing, channel).schedule(commands).breakdown
        reconstructed = (
            breakdown.mac
            + breakdown.dt_gbuf
            + breakdown.dt_outreg
            + breakdown.act_pre
            + breakdown.refresh
            + breakdown.pipeline_penalty
        )
        assert reconstructed == pytest.approx(breakdown.total, rel=1e-6)

    def test_dcs_overlaps_io_with_compute(self, timing):
        """Under DCS the busy components exceed the makespan (overlap), and
        the makespan can never drop below the MAC stream itself."""
        from repro.compiler.lowering import lower_gemv_to_commands
        from repro.pim.kernels import caps_for_policy

        channel = PIMChannelConfig()
        commands = lower_gemv_to_commands(256, 256, channel, caps_for_policy(channel, "dcs"))
        breakdown = DCSScheduler(timing, channel).schedule(commands).breakdown
        busy = breakdown.mac + breakdown.dt_gbuf + breakdown.dt_outreg + breakdown.act_pre
        assert busy > breakdown.total - breakdown.refresh - breakdown.pipeline_penalty
        assert breakdown.total >= breakdown.mac
        assert breakdown.pipeline_penalty >= 0.0

    def test_command_counts_reflected_in_busy_cycles(self, timing):
        commands = [write_input(0, 0), write_input(1, 1), mac(2, 0, 0, row=-1), read_output(3, 0)]
        breakdown = StaticScheduler(timing).schedule(commands).breakdown
        assert breakdown.dt_gbuf == 2 * timing.wr_inp_occupancy
        assert breakdown.mac == timing.mac_occupancy
        assert breakdown.dt_outreg == timing.rd_out_occupancy
