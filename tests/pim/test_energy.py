"""Tests for the PIM energy model."""

import pytest

from repro.analysis.energy_report import energy_from_breakdown
from repro.pim.energy import EnergyBreakdown, EnergyModel, ZERO_ENERGY
from repro.pim.kernels import qkt_cycles


class TestEnergyBreakdown:
    def test_total_and_fractions(self):
        breakdown = EnergyBreakdown(mac=1.0, io=2.0, background=5.0, act_pre=1.0, refresh=1.0)
        assert breakdown.total == 10.0
        assert breakdown.fraction("background") == pytest.approx(0.5)
        assert breakdown.else_energy == 2.0

    def test_addition_and_scaling(self):
        a = EnergyBreakdown(mac=1.0, io=1.0, background=1.0, act_pre=1.0, refresh=1.0)
        assert (a + a).total == pytest.approx(2 * a.total)
        assert a.scaled(3).total == pytest.approx(3 * a.total)

    def test_zero_energy_fraction(self):
        assert ZERO_ENERGY.fraction("mac") == 0.0


class TestEnergyModel:
    def test_channel_energy_components(self, channel, timing):
        model = EnergyModel()
        breakdown = qkt_cycles(4096, 128, channel, timing, "static")
        energy = model.channel_energy(
            breakdown, n_mac=1000, n_io_tiles=300, n_activations=10
        )
        assert energy.mac == pytest.approx(1000 * model.energy_per_mac_command)
        assert energy.io == pytest.approx(300 * model.energy_per_io_tile)
        assert energy.background > 0

    def test_idle_energy_is_background_only(self):
        model = EnergyModel()
        energy = model.idle_energy(1e9)
        assert energy.mac == 0 and energy.io == 0
        assert energy.background == pytest.approx(model.background_power_watts, rel=0.01)

    def test_slower_schedule_burns_more_background(self, channel, timing):
        """The Fig. 16 mechanism: background energy tracks runtime."""
        model = EnergyModel()
        static = qkt_cycles(8192, 128, channel, timing, "static")
        dcs = qkt_cycles(8192, 128, channel, timing, "dcs")
        static_energy = energy_from_breakdown(static, timing, model)
        dcs_energy = energy_from_breakdown(dcs, timing, model)
        assert static_energy.background > dcs_energy.background
        # The event-driven components are identical (same command counts).
        assert static_energy.mac == pytest.approx(dcs_energy.mac, rel=0.01)
