"""Tests for the simulator primitives: breakdowns, schedule results, stream checks."""

import pytest

from repro.pim.isa import mac, read_output, write_input
from repro.pim.simulator import (
    CycleBreakdown,
    ScheduledCommand,
    ZERO_BREAKDOWN,
    combine_serial,
    validate_stream,
)
from repro.pim.config import PIMChannelConfig
from repro.pim.scheduling import StaticScheduler


class TestCycleBreakdown:
    def _sample(self) -> CycleBreakdown:
        return CycleBreakdown(
            mac=100, dt_gbuf=50, dt_outreg=25, act_pre=10, refresh=5, pipeline_penalty=10, total=200
        )

    def test_mac_utilization(self):
        assert self._sample().mac_utilization == pytest.approx(0.5)
        assert ZERO_BREAKDOWN.mac_utilization == 0.0

    def test_io_aggregate(self):
        assert self._sample().io == 75

    def test_addition_and_scaling(self):
        doubled = self._sample() + self._sample()
        scaled = self._sample().scaled(2.0)
        assert doubled.total == scaled.total == 400
        assert doubled.mac == scaled.mac == 200

    def test_combine_serial(self):
        combined = combine_serial([self._sample(), self._sample(), ZERO_BREAKDOWN])
        assert combined.total == 400


class TestScheduledCommand:
    def test_completion_cannot_precede_issue(self):
        with pytest.raises(ValueError):
            ScheduledCommand(command=write_input(0, 0), issue=10, complete=5)


class TestScheduleResult:
    def test_makespan_and_issue_order(self, fig7_timing):
        commands = [write_input(0, 0), mac(1, 0, 0, row=-1), read_output(2, 0)]
        result = StaticScheduler(fig7_timing).schedule(commands)
        assert result.makespan == max(entry.complete for entry in result.scheduled)
        assert result.issue_order() == [0, 1, 2]
        assert result.policy == "static"

    def test_empty_stream(self, fig7_timing):
        result = StaticScheduler(fig7_timing).schedule([])
        assert result.makespan == 0
        assert result.breakdown.total == 0


class TestStreamValidation:
    def test_valid_stream_passes(self):
        channel = PIMChannelConfig()
        validate_stream([write_input(0, 0), mac(1, 0, 0), read_output(2, 0)], channel)

    def test_gbuf_overflow_detected(self):
        channel = PIMChannelConfig()
        with pytest.raises(ValueError, match="GBuf"):
            validate_stream([write_input(0, channel.gbuf_entries)], channel)

    def test_obuf_overflow_detected(self):
        channel = PIMChannelConfig()
        with pytest.raises(ValueError, match="output entry"):
            validate_stream([read_output(0, channel.obuf_entries)], channel)
