"""Tests for PIM command timing presets."""

import pytest

from repro.dram.timing import DRAMTiming
from repro.pim.timing import PIMTiming, aimx_timing, illustrative_timing


class TestPresets:
    def test_illustrative_preset_matches_fig7_granularity(self):
        timing = illustrative_timing()
        assert timing.t_ccds == 2
        assert timing.wr_inp_latency_cycles == 4
        assert timing.mac_latency_cycles == 4
        assert timing.rd_out_latency_cycles == 5

    def test_aimx_io_much_more_expensive_than_mac(self):
        timing = aimx_timing()
        assert timing.wr_inp_occupancy >= 4 * timing.mac_occupancy
        assert timing.rd_out_occupancy >= 4 * timing.mac_occupancy

    def test_cycles_to_seconds_uses_clock(self):
        timing = aimx_timing(clock_ghz=2.0)
        assert timing.cycles_to_seconds(2e9) == pytest.approx(1.0)


class TestValidation:
    def test_latency_must_cover_occupancy(self):
        with pytest.raises(ValueError):
            PIMTiming(wr_inp_occupancy=8, wr_inp_latency_cycles=4)

    def test_positive_fields_required(self):
        with pytest.raises(ValueError):
            PIMTiming(mac_occupancy=0, mac_latency_cycles=0)

    def test_custom_dram_timing_propagates(self):
        timing = PIMTiming(dram=DRAMTiming(t_ccds=4))
        assert timing.t_ccds == 4
