"""Tests for PIM channel / module configurations (paper Table IV)."""

import pytest

from repro.pim.config import (
    PIMChannelConfig,
    PIMModuleConfig,
    cent_module_config,
    neupims_module_config,
)
from repro.pim.timing import aimx_timing


class TestChannelConfig:
    def test_default_buffer_geometry(self):
        channel = PIMChannelConfig()
        assert channel.num_banks == 16
        assert channel.gbuf_entries == 64  # 2KB of 32B tiles
        assert channel.outreg_entries == 2  # 4B per bank
        assert channel.obuf_entries > channel.outreg_entries

    def test_macs_per_command(self):
        channel = PIMChannelConfig()
        assert channel.macs_per_command == 256
        assert channel.flops_per_command == 512

    def test_gbuf_must_be_tile_aligned(self):
        with pytest.raises(ValueError):
            PIMChannelConfig(gbuf_bytes=100)

    def test_non_positive_fields_rejected(self):
        with pytest.raises(ValueError):
            PIMChannelConfig(num_banks=0)


class TestModuleConfig:
    def test_neupims_module_matches_table4(self):
        module = neupims_module_config()
        assert module.num_channels == 32
        assert module.capacity_bytes == 32 * 1024**3
        assert module.internal_bandwidth_bytes == pytest.approx(32e12)
        assert module.compute_tflops == 256.0

    def test_cent_module_matches_table4(self):
        module = cent_module_config()
        assert module.num_channels == 32
        assert module.capacity_bytes == 16 * 1024**3
        assert module.internal_bandwidth_bytes == pytest.approx(16e12)
        assert module.compute_tflops == 3.0

    def test_derived_quantities(self):
        module = cent_module_config()
        assert module.capacity_per_channel == module.capacity_bytes // 32
        assert module.total_banks == 32 * 16
        assert module.peak_mac_flops_per_cycle > 0

    def test_invalid_module_rejected(self):
        with pytest.raises(ValueError):
            PIMModuleConfig(
                name="bad",
                num_channels=0,
                channel=PIMChannelConfig(),
                capacity_bytes=1,
                internal_bandwidth_bytes=1.0,
                timing=aimx_timing(),
            )
