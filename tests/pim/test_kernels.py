"""Tests for phase-level kernel programs and the closed-form estimators."""

import pytest

from repro.compiler.lowering import lower_gemv_to_commands
from repro.core.dcs import DCSScheduler
from repro.pim.config import PIMChannelConfig
from repro.pim.isa import PIMOpcode
from repro.pim.kernels import (
    BufferCaps,
    EMPTY_PROGRAM,
    build_fc_gemv_program,
    build_qkt_program,
    build_sv_program,
    caps_for_policy,
    estimate_cycles,
    fc_gemv_cycles,
    qkt_cycles,
    sv_cycles,
)
from repro.pim.scheduling import StaticScheduler


class TestCaps:
    def test_static_caps_use_small_outregs(self, channel):
        caps = caps_for_policy(channel, "static")
        assert caps.obuf_entries == channel.outreg_entries

    def test_dcs_caps_use_expanded_obuf(self, channel):
        caps = caps_for_policy(channel, "dcs")
        assert caps.obuf_entries == channel.obuf_entries

    def test_pingpong_caps_halved(self, channel):
        caps = caps_for_policy(channel, "pingpong")
        assert caps.gbuf_entries == channel.gbuf_entries // 2

    def test_unknown_policy_rejected(self, channel):
        with pytest.raises(ValueError):
            caps_for_policy(channel, "oracle")

    def test_invalid_caps_rejected(self):
        with pytest.raises(ValueError):
            BufferCaps(gbuf_entries=0, obuf_entries=1)


class TestProgramBuilders:
    def test_fc_command_counts_resident_inputs(self, channel):
        caps = caps_for_policy(channel, "dcs")
        program = build_fc_gemv_program(128, 256, channel, caps)
        # 8 input tiles written once, 16 output groups of 8 MACs + 1 drain.
        assert program.n_wr_inp == 8
        assert program.n_mac == 8 * 16
        assert program.n_rd_out == 16

    def test_fc_streaming_when_inputs_exceed_gbuf(self, channel):
        caps = caps_for_policy(channel, "dcs")
        program = build_fc_gemv_program(4096, 128, channel, caps)
        n_in = 4096 // 16
        assert program.n_wr_inp == n_in
        assert program.n_mac == n_in * (128 // channel.num_banks)
        # Partial sums drained once per block per output group.
        blocks = n_in // caps.gbuf_entries
        assert program.n_rd_out == blocks * (128 // channel.num_banks)

    def test_fc_vectors_scale_commands_but_not_activations(self, channel):
        caps = caps_for_policy(channel, "dcs")
        single = build_fc_gemv_program(256, 256, channel, caps, n_vectors=1)
        batched = build_fc_gemv_program(256, 256, channel, caps, n_vectors=4)
        assert batched.n_mac == 4 * single.n_mac
        assert batched.row_activations == single.row_activations

    def test_qkt_counts(self, channel):
        caps = caps_for_policy(channel, "dcs")
        program = build_qkt_program(1024, 128, channel, caps)
        groups = 1024 // channel.num_banks
        assert program.n_mac == 8 * groups
        assert program.n_rd_out == groups
        assert program.n_wr_inp == 8

    def test_qkt_gqa_row_reuse_shares_activations(self, channel):
        caps = caps_for_policy(channel, "dcs")
        reuse = build_qkt_program(4096, 128, channel, caps, group_size=4, row_reuse=True)
        no_reuse = build_qkt_program(4096, 128, channel, caps, group_size=4, row_reuse=False)
        assert no_reuse.row_activations == 4 * reuse.row_activations
        # Row reuse swaps inputs more often (the paper's DT-GBuf increase).
        assert reuse.n_wr_inp > build_qkt_program(
            4096, 128, channel, caps, group_size=4, row_reuse=False
        ).n_wr_inp / 4

    def test_sv_streams_scores(self, channel):
        caps = caps_for_policy(channel, "dcs")
        program = build_sv_program(8192, 128, channel, caps)
        n_in = 8192 // 16
        assert program.n_wr_inp == n_in
        assert program.n_mac == n_in * (128 // channel.num_banks)

    def test_empty_programs(self, channel):
        caps = caps_for_policy(channel, "dcs")
        assert build_qkt_program(0, 128, channel, caps).is_empty
        assert build_fc_gemv_program(0, 128, channel, caps) is EMPTY_PROGRAM

    def test_program_counts_by_opcode(self, channel):
        caps = caps_for_policy(channel, "dcs")
        program = build_fc_gemv_program(128, 128, channel, caps)
        assert program.count(PIMOpcode.WR_INP) == program.n_wr_inp
        assert program.n_io_tiles == program.n_wr_inp + program.n_rd_out


class TestEstimator:
    def test_policy_ordering_on_attention(self, channel, timing):
        for tokens in (2048, 8192):
            static = qkt_cycles(tokens, 128, channel, timing, "static")
            pingpong = qkt_cycles(tokens, 128, channel, timing, "pingpong")
            dcs = qkt_cycles(tokens, 128, channel, timing, "dcs")
            assert dcs.total <= pingpong.total <= static.total

    def test_dcs_speedup_larger_for_attention_than_fc(self, channel, timing):
        attention_speedup = (
            qkt_cycles(8192, 128, channel, timing, "static").total
            / qkt_cycles(8192, 128, channel, timing, "dcs").total
        )
        fc_speedup = (
            fc_gemv_cycles(4096, 4096, channel, timing, "static").total
            / fc_gemv_cycles(4096, 4096, channel, timing, "dcs").total
        )
        assert attention_speedup > fc_speedup

    def test_static_mac_utilization_drops_at_small_dims(self, channel, timing):
        """The Fig. 8 trend: small (attention-sized) GEMVs underutilise MACs."""
        small = fc_gemv_cycles(128, 128, channel, timing, "static").mac_utilization
        large = fc_gemv_cycles(4096, 4096, channel, timing, "static").mac_utilization
        assert small < 0.3
        assert large > 0.45
        assert large > 1.5 * small

    def test_estimates_scale_linearly_with_tokens(self, channel, timing):
        short = sv_cycles(4096, 128, channel, timing, "dcs").total
        long = sv_cycles(16384, 128, channel, timing, "dcs").total
        assert long == pytest.approx(4 * short, rel=0.15)

    def test_empty_program_estimates_zero(self, channel, timing):
        breakdown = estimate_cycles(EMPTY_PROGRAM, timing, "dcs")
        assert breakdown.total == 0.0

    def test_unknown_policy_rejected(self, channel, timing):
        program = build_qkt_program(256, 128, channel, caps_for_policy(channel, "dcs"))
        with pytest.raises(ValueError):
            estimate_cycles(program, timing, "magic")

    def test_refresh_can_be_disabled(self, channel, timing):
        program = build_qkt_program(1024, 128, channel, caps_for_policy(channel, "dcs"))
        with_refresh = estimate_cycles(program, timing, "dcs")
        without = estimate_cycles(program, timing, "dcs", include_refresh=False)
        assert without.refresh == 0.0
        assert without.total < with_refresh.total


class TestEstimatorCrossValidation:
    """The closed-form estimators must track the exact command-level schedulers."""

    @pytest.mark.parametrize("in_dim,out_dim", [(128, 128), (256, 512), (1024, 256)])
    def test_static_estimate_matches_simulation(self, channel, timing, in_dim, out_dim):
        caps = caps_for_policy(channel, "static")
        program = build_fc_gemv_program(in_dim, out_dim, channel, caps)
        estimate = estimate_cycles(program, timing, "static")
        commands = lower_gemv_to_commands(in_dim, out_dim, channel, caps)
        exact = StaticScheduler(timing, channel).schedule(commands)
        assert estimate.total == pytest.approx(exact.breakdown.total, rel=0.15)

    @pytest.mark.parametrize("in_dim,out_dim", [(128, 128), (256, 512), (1024, 256)])
    def test_dcs_estimate_matches_simulation(self, channel, timing, in_dim, out_dim):
        caps = caps_for_policy(channel, "dcs")
        program = build_fc_gemv_program(in_dim, out_dim, channel, caps)
        estimate = estimate_cycles(program, timing, "dcs")
        commands = lower_gemv_to_commands(in_dim, out_dim, channel, caps)
        exact = DCSScheduler(timing, channel).schedule(commands)
        assert estimate.total == pytest.approx(exact.breakdown.total, rel=0.2)

    def test_command_counts_match_between_builder_and_lowering(self, channel):
        caps = caps_for_policy(channel, "dcs")
        for in_dim, out_dim in ((128, 128), (2048, 256)):
            program = build_fc_gemv_program(in_dim, out_dim, channel, caps)
            commands = lower_gemv_to_commands(in_dim, out_dim, channel, caps)
            wr = sum(1 for c in commands if c.opcode is PIMOpcode.WR_INP)
            mc = sum(1 for c in commands if c.opcode is PIMOpcode.MAC)
            rd = sum(1 for c in commands if c.opcode is PIMOpcode.RD_OUT)
            assert (program.n_wr_inp, program.n_mac, program.n_rd_out) == (wr, mc, rd)
