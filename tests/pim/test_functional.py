"""Functional-correctness tests: PIM command streams compute the right values."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.lowering import lower_gemv_to_commands
from repro.pim.config import PIMChannelConfig
from repro.pim.functional import (
    FunctionalChannel,
    execute_gemv,
    reference_attention,
    tcp_attention,
)
from repro.pim.kernels import caps_for_policy


class TestFunctionalGEMV:
    @pytest.mark.parametrize("out_dim,in_dim", [(16, 16), (64, 128), (48, 32), (128, 1040)])
    def test_lowered_gemv_matches_numpy(self, out_dim, in_dim):
        rng = np.random.default_rng(out_dim + in_dim)
        matrix = rng.standard_normal((out_dim, in_dim))
        vector = rng.standard_normal(in_dim)
        result = execute_gemv(matrix, vector)
        np.testing.assert_allclose(result, matrix @ vector, rtol=1e-10, atol=1e-10)

    def test_streamed_gemv_with_partial_sum_drains(self):
        """Inputs larger than the GBuf are streamed in blocks; the per-block
        partial drains must still reduce to the exact product."""
        channel = PIMChannelConfig(gbuf_bytes=512)  # 16-entry GBuf forces 5 blocks
        rng = np.random.default_rng(7)
        matrix = rng.standard_normal((32, 1200))
        vector = rng.standard_normal(1200)
        result = execute_gemv(matrix, vector, channel=channel,
                              caps=caps_for_policy(channel, "dcs"))
        np.testing.assert_allclose(result, matrix @ vector, rtol=1e-10, atol=1e-10)

    def test_stream_requires_enough_input_tiles(self):
        channel = PIMChannelConfig()
        commands = lower_gemv_to_commands(64, 32, channel, caps_for_policy(channel, "dcs"))
        functional = FunctionalChannel(channel=channel)
        functional.load_weight_matrix(np.zeros((32, 64)))
        with pytest.raises(ValueError, match="input tiles"):
            functional.execute(commands, input_tiles=[np.zeros(16)])

    def test_mac_beyond_loaded_weights_rejected(self):
        channel = PIMChannelConfig()
        functional = FunctionalChannel(channel=channel)
        functional.load_weight_matrix(np.zeros((16, 16)))
        commands = lower_gemv_to_commands(256, 256, channel, caps_for_policy(channel, "dcs"))
        tiles = [np.zeros(16)] * 16
        with pytest.raises(ValueError, match="weight tile"):
            functional.execute(commands, tiles)

    @given(
        out_dim=st.integers(min_value=1, max_value=96),
        in_dim=st.integers(min_value=1, max_value=200),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=25, deadline=None)
    def test_gemv_property(self, out_dim, in_dim, seed):
        rng = np.random.default_rng(seed)
        matrix = rng.standard_normal((out_dim, in_dim))
        vector = rng.standard_normal(in_dim)
        np.testing.assert_allclose(
            execute_gemv(matrix, vector), matrix @ vector, rtol=1e-9, atol=1e-9
        )


class TestTCPAttentionCorrectness:
    """TCP splits tokens across channels; the HUB reduction must be exact."""

    @pytest.mark.parametrize("tokens,num_channels", [(16, 16), (100, 16), (257, 32), (5, 16)])
    def test_tcp_matches_single_device_attention(self, tokens, num_channels):
        rng = np.random.default_rng(tokens)
        head_dim = 64
        query = rng.standard_normal(head_dim)
        keys = rng.standard_normal((tokens, head_dim))
        values = rng.standard_normal((tokens, head_dim))
        expected = reference_attention(query, keys, values)
        actual = tcp_attention(query, keys, values, num_channels)
        np.testing.assert_allclose(actual, expected, rtol=1e-9, atol=1e-9)

    def test_partitioning_is_invariant_to_channel_count(self):
        rng = np.random.default_rng(0)
        query = rng.standard_normal(32)
        keys = rng.standard_normal((300, 32))
        values = rng.standard_normal((300, 32))
        results = [tcp_attention(query, keys, values, channels) for channels in (1, 4, 16, 64)]
        for result in results[1:]:
            np.testing.assert_allclose(result, results[0], rtol=1e-9, atol=1e-9)

    @given(
        tokens=st.integers(min_value=1, max_value=400),
        num_channels=st.sampled_from([2, 8, 16, 32]),
        seed=st.integers(min_value=0, max_value=500),
    )
    @settings(max_examples=25, deadline=None)
    def test_tcp_attention_property(self, tokens, num_channels, seed):
        rng = np.random.default_rng(seed)
        query = rng.standard_normal(16)
        keys = rng.standard_normal((tokens, 16))
        values = rng.standard_normal((tokens, 16))
        np.testing.assert_allclose(
            tcp_attention(query, keys, values, num_channels),
            reference_attention(query, keys, values),
            rtol=1e-8,
            atol=1e-8,
        )

    def test_empty_token_slice_handled(self):
        """More channels than tokens: some channels receive no tokens."""
        rng = np.random.default_rng(1)
        query = rng.standard_normal(16)
        keys = rng.standard_normal((3, 16))
        values = rng.standard_normal((3, 16))
        np.testing.assert_allclose(
            tcp_attention(query, keys, values, 16),
            reference_attention(query, keys, values),
            rtol=1e-9,
        )


class TestSchedulingDoesNotChangeResults:
    def test_dcs_reordering_preserves_dataflow(self):
        """The functional result depends only on the command stream, which the
        schedulers never alter -- they only pick issue times.  Execute the
        stream in DCS issue order restricted to true dependencies and check
        the drained values match the in-order execution."""
        from repro.core.dcs import DCSScheduler
        from repro.pim.timing import aimx_timing

        channel = PIMChannelConfig()
        caps = caps_for_policy(channel, "dcs")
        rng = np.random.default_rng(3)
        matrix = rng.standard_normal((64, 128))
        vector = rng.standard_normal(128)

        in_order = execute_gemv(matrix, vector, channel=channel, caps=caps)
        # Scheduling the same stream (for timing) must leave results intact.
        commands = lower_gemv_to_commands(128, 64, channel, caps)
        DCSScheduler(aimx_timing(), channel).schedule(commands)
        again = execute_gemv(matrix, vector, channel=channel, caps=caps)
        np.testing.assert_allclose(in_order, again)
        np.testing.assert_allclose(in_order, matrix @ vector, rtol=1e-10)
