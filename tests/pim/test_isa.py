"""Tests for the PIM instruction set (paper Table III)."""

import pytest

from repro.pim.isa import (
    INSTRUCTION_BYTES,
    PIMCommand,
    PIMInstruction,
    PIMOpcode,
    mac,
    read_output,
    write_input,
)


class TestOpcodes:
    def test_io_and_compute_classification(self):
        assert PIMOpcode.WR_INP.is_io
        assert PIMOpcode.RD_OUT.is_io
        assert not PIMOpcode.MAC.is_io
        assert PIMOpcode.MAC.is_compute
        assert not PIMOpcode.WR_INP.is_compute

    def test_control_classification(self):
        assert PIMOpcode.DYN_LOOP.is_control
        assert PIMOpcode.DYN_MODI.is_control
        assert not PIMOpcode.MAC.is_control


class TestInstruction:
    def test_target_channels_from_mask(self):
        instruction = PIMInstruction(opcode=PIMOpcode.MAC, ch_mask=0b1010)
        assert instruction.target_channels == [1, 3]

    def test_full_mask_targets_all_sixteen(self):
        instruction = PIMInstruction(opcode=PIMOpcode.WR_INP, ch_mask=0xFFFF)
        assert len(instruction.target_channels) == 16

    def test_encoded_bytes_constant(self):
        instruction = PIMInstruction(opcode=PIMOpcode.MAC, op_size=1000)
        assert instruction.encoded_bytes == INSTRUCTION_BYTES

    def test_invalid_op_size_rejected(self):
        with pytest.raises(ValueError):
            PIMInstruction(opcode=PIMOpcode.MAC, op_size=0)


class TestCommand:
    def test_convenience_constructors(self):
        wr = write_input(0, 5)
        mc = mac(1, 5, 2, row=7, col=3)
        rd = read_output(2, 2)
        assert wr.opcode is PIMOpcode.WR_INP and wr.gbuf_idx == 5
        assert mc.row == 7 and mc.out_idx == 2
        assert rd.opcode is PIMOpcode.RD_OUT

    def test_control_opcodes_cannot_be_channel_commands(self):
        with pytest.raises(ValueError):
            PIMCommand(cmd_id=0, opcode=PIMOpcode.DYN_LOOP)

    def test_negative_id_rejected(self):
        with pytest.raises(ValueError):
            PIMCommand(cmd_id=-1, opcode=PIMOpcode.MAC)
