"""Shared fixtures for the PIMphony reproduction test suite."""

from __future__ import annotations

import pytest

from repro.models.llm import get_model
from repro.pim.config import PIMChannelConfig, cent_module_config, neupims_module_config
from repro.pim.timing import aimx_timing, illustrative_timing


@pytest.fixture
def channel() -> PIMChannelConfig:
    """Default AiMX-class PIM channel."""
    return PIMChannelConfig()


@pytest.fixture
def timing():
    """Default AiMX-class channel timing."""
    return aimx_timing()


@pytest.fixture
def fig7_timing():
    """Timing of the paper's Fig. 7 didactic example."""
    return illustrative_timing()


@pytest.fixture
def llm_7b():
    return get_model("LLM-7B-32K")


@pytest.fixture
def llm_7b_gqa():
    return get_model("LLM-7B-128K")


@pytest.fixture
def llm_72b():
    return get_model("LLM-72B-32K")


@pytest.fixture
def llm_72b_gqa():
    return get_model("LLM-72B-128K")


@pytest.fixture
def cent_module():
    return cent_module_config()


@pytest.fixture
def neupims_module():
    return neupims_module_config()
