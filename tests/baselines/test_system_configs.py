"""Tests for the CENT and NeuPIMs baseline system configurations."""

from repro.baselines.cent import cent_system_config, default_module_count as cent_modules
from repro.baselines.neupims import (
    default_module_count as neupims_modules,
    neupims_system_config,
)
from repro.core.orchestrator import PIMphonyConfig


class TestCENTConfig:
    def test_memory_matched_module_counts(self, llm_7b, llm_72b):
        """The paper: 8 modules (128GB) for 7B, 32 modules (512GB) for 72B."""
        assert cent_modules(llm_7b) == 8
        assert cent_modules(llm_72b) == 32
        assert cent_system_config(llm_7b).total_capacity_bytes == 128 * 1024**3
        assert cent_system_config(llm_72b).total_capacity_bytes == 512 * 1024**3

    def test_baseline_features_by_default(self, llm_7b):
        system = cent_system_config(llm_7b)
        assert system.pimphony.label == "baseline"
        assert not system.dynamic_memory

    def test_prefers_tensor_parallel_plan(self, llm_7b):
        system = cent_system_config(llm_7b)
        assert system.plan.tensor_parallel == 8
        assert system.plan.pipeline_parallel == 1

    def test_pimphony_override(self, llm_7b):
        system = cent_system_config(llm_7b, pimphony=PIMphonyConfig.full())
        assert system.pimphony.dpa


class TestNeuPIMsConfig:
    def test_memory_matched_module_counts(self, llm_7b, llm_72b):
        """The paper: 4 modules (128GB) for 7B, 16 modules (512GB) for 72B."""
        assert neupims_modules(llm_7b) == 4
        assert neupims_modules(llm_72b) == 16
        assert neupims_system_config(llm_7b).total_capacity_bytes == 128 * 1024**3

    def test_module_has_xpu_compute(self, llm_7b):
        system = neupims_system_config(llm_7b)
        assert system.module.compute_tflops == 256.0
        assert system.xpu.peak_tflops > 0

    def test_baseline_features_by_default(self, llm_7b):
        assert neupims_system_config(llm_7b).pimphony.label == "baseline"
