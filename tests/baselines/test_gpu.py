"""Tests for the GPU (A100 + FlashDecoding + PagedAttention) baseline."""

import pytest

from repro.baselines.gpu import GPUConfig, GPUSystemModel, a100_config
from repro.system.serving import simulate_serving
from repro.workloads.datasets import get_dataset
from repro.workloads.traces import generate_trace


class TestGPUModel:
    def test_memory_matched_configurations(self, llm_7b, llm_72b):
        two = GPUSystemModel(model=llm_7b, num_gpus=2)
        eight = GPUSystemModel(model=llm_72b, num_gpus=8)
        assert two.total_capacity_bytes == 2 * 80 * 1024**3
        assert eight.kv_capacity_bytes > 0

    def test_step_latency_grows_with_context(self, llm_7b):
        gpu = GPUSystemModel(model=llm_7b, num_gpus=2)
        assert gpu.decode_step([4096]).seconds < gpu.decode_step([32768]).seconds

    def test_flash_decoding_speeds_up_attention(self, llm_7b):
        contexts = [32768] * 8
        with_fd = GPUSystemModel(model=llm_7b, num_gpus=2, flash_decoding=True)
        without_fd = GPUSystemModel(model=llm_7b, num_gpus=2, flash_decoding=False)
        assert with_fd.decode_step(contexts).seconds < without_fd.decode_step(contexts).seconds

    def test_paged_attention_controls_dynamic_memory(self, llm_7b):
        assert GPUSystemModel(model=llm_7b, num_gpus=2, paged_attention=True).dynamic_memory
        assert not GPUSystemModel(model=llm_7b, num_gpus=2, paged_attention=False).dynamic_memory

    def test_more_gpus_reduce_step_time(self, llm_72b):
        contexts = [16384] * 4
        four = GPUSystemModel(model=llm_72b, num_gpus=4).decode_step(contexts)
        eight = GPUSystemModel(model=llm_72b, num_gpus=8).decode_step(contexts)
        assert eight.seconds < four.seconds

    def test_serving_loop_compatibility(self, llm_7b):
        trace = generate_trace(
            get_dataset("qmsum"), 4, seed=0, context_window=llm_7b.context_window, output_tokens=8
        )
        gpu = GPUSystemModel(model=llm_7b, num_gpus=2)
        result = simulate_serving(gpu, trace, step_stride=4)
        assert result.total_output_tokens == trace.total_output_tokens
        assert result.total_pim_channels == 0

    def test_invalid_configs_rejected(self, llm_7b):
        with pytest.raises(ValueError):
            GPUSystemModel(model=llm_7b, num_gpus=0)
        with pytest.raises(ValueError):
            GPUConfig(memory_capacity_bytes=0)

    def test_a100_preset(self):
        gpu = a100_config()
        assert gpu.memory_capacity_bytes == 80 * 1024**3
        assert gpu.memory_bandwidth_bytes == pytest.approx(2e12)
