"""The curated public surface: `from repro import *` exposes exactly __all__."""

import repro


def test_star_import_exposes_exactly_all():
    namespace: dict = {}
    exec("from repro import *", namespace)  # noqa: S102 - the point of the test
    exported = set(namespace) - {"__builtins__"}
    assert exported == set(repro.__all__)


def test_all_names_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, name


def test_all_has_no_duplicates():
    assert len(repro.__all__) == len(set(repro.__all__))


def test_documented_api_names_present():
    documented = {
        # engine + router + prefill
        "ServingEngine",
        "ReplicaRouter",
        "FleetResult",
        "PrefillConfig",
        "RoundRobinRouting",
        "SessionAffinityRouting",
        # declarative experiment API
        "ExperimentSpec",
        "RunReport",
        "build",
        "run",
        "sweep_specs",
        "register_system",
        "register_admission_policy",
        "register_routing_policy",
        "register_prefill_model",
        "register_trace",
        # trace helpers incl. the seed-threaded ones
        "generate_trace",
        "poisson_arrivals",
        "random_sessions",
        "periodic_priorities",
    }
    assert documented <= set(repro.__all__)


def test_internal_result_types_stay_behind_the_api():
    """The unified RunReport is the public result; FleetResult stays importable
    for power users but the loose serving internals are not star-exported."""
    assert "AdmissionCandidate" not in repro.__all__
    assert "LifecycleTracker" not in repro.__all__
