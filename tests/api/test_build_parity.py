"""run(spec) parity with hand-constructed engines/routers, and seed threading."""

import pytest

from repro.api import (
    AdmissionSpec,
    ExperimentSpec,
    ModelSpec,
    PrefillSpec,
    RouterSpec,
    SystemSpec,
    TraceSpec,
    build,
    run,
)
from repro.api.build import build_trace, derived_seeds
from repro.baselines.cent import cent_system_config
from repro.core.orchestrator import PIMphonyConfig
from repro.models.llm import get_model
from repro.serving import (
    CapacityAwareRouting,
    FCFSAdmission,
    PrefillConfig,
    ReplicaRouter,
    ServingEngine,
    prefill_model_for,
)
from repro.workloads.datasets import get_dataset
from repro.workloads.traces import generate_trace, poisson_arrivals, random_sessions

ENGINE_METRICS = (
    "total_output_tokens",
    "total_seconds",
    "steps",
    "average_batch_size",
    "peak_batch_size",
    "average_pim_utilization",
    "average_capacity_utilization",
    "requests_served",
    "requests_dropped",
    "makespan_s",
    "idle_seconds",
    "latency",
)


def engine_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="engine-parity",
        model=ModelSpec(name="LLM-7B-32K"),
        system=SystemSpec(kind="pim-only", pimphony="full"),
        trace=TraceSpec(source="dataset", dataset="qmsum", num_requests=12, output_tokens=24),
        seed=3,
        step_stride=8,
    )


def fleet_spec() -> ExperimentSpec:
    return ExperimentSpec(
        name="fleet-parity",
        model=ModelSpec(name="LLM-7B-32K"),
        system=SystemSpec(kind="pim-only", num_modules=2, pimphony="full"),
        admission=AdmissionSpec(max_batch_size=16),
        trace=TraceSpec(
            source="synthetic",
            num_requests=48,
            prompt_tokens=256,
            heavy_every=4,
            heavy_prompt_tokens=8192,
            output_tokens=16,
            arrival="poisson",
            rate_rps=1000.0,
        ),
        router=RouterSpec(replicas=4, policy="capacity-aware"),
        seed=7,
        step_stride=8,
    )


class TestEngineParity:
    def test_metrics_match_direct_construction_exactly(self):
        spec = engine_spec()
        report = run(spec)

        model = get_model("LLM-7B-32K")
        trace_seed, _, _ = derived_seeds(spec.seed)
        trace = generate_trace(
            get_dataset("qmsum"),
            num_requests=12,
            seed=trace_seed,
            context_window=model.context_window,
            output_tokens=24,
        )
        system = cent_system_config(model, pimphony=PIMphonyConfig.full())
        direct = ServingEngine(
            system=system, admission=FCFSAdmission(), step_stride=8
        ).run(trace)

        assert report.num_replicas == 1
        assert report.routing_policy is None
        for metric in ENGINE_METRICS:
            assert getattr(report.engine_result, metric) == getattr(direct, metric), metric
        assert report.total_output_tokens == direct.total_output_tokens
        assert report.busy_seconds == direct.total_seconds
        assert report.makespan_s == direct.makespan_s
        assert report.latency == direct.latency
        assert report.throughput_tokens_per_s == direct.throughput_tokens_per_s

    def test_prefill_spec_matches_direct_prefill_config(self):
        spec = engine_spec().with_overrides(
            {"prefill.mode": "chunked", "prefill.chunk_tokens": 512}
        )
        report = run(spec)

        built = build(spec)
        system = cent_system_config(get_model("LLM-7B-32K"), pimphony=PIMphonyConfig.full())
        direct = ServingEngine(
            system=system,
            admission=FCFSAdmission(),
            step_stride=8,
            prefill=PrefillConfig(prefill_model_for(system), chunk_tokens=512),
        ).run(built.trace)

        assert report.prefill_mode == "chunked"
        assert report.engine_result.latency == direct.latency
        assert report.engine_result.total_seconds == direct.total_seconds


class TestFleetParity:
    def test_metrics_match_direct_router_exactly(self):
        spec = fleet_spec()
        report = run(spec)

        built = build(spec)  # reuse the spec's trace; construct the fleet by hand
        system = cent_system_config(
            get_model("LLM-7B-32K"), num_modules=2, pimphony=PIMphonyConfig.full()
        )
        router = ReplicaRouter.homogeneous(
            lambda: ServingEngine(
                system=system,
                admission=FCFSAdmission(),
                max_batch_size=16,
                step_stride=8,
            ),
            4,
            policy=CapacityAwareRouting(),
        )
        direct = router.run(built.trace)

        assert report.num_replicas == 4
        assert report.routing_policy == "capacity-aware"
        assert report.total_output_tokens == direct.total_output_tokens
        assert report.requests_served == direct.requests_served
        assert report.requests_dropped == direct.requests_dropped
        assert report.busy_seconds == direct.busy_seconds
        assert report.makespan_s == direct.makespan_s
        assert report.latency == direct.latency
        assert report.load_imbalance == direct.load_imbalance
        assert (
            report.aggregate_throughput_tokens_per_s
            == direct.aggregate_throughput_tokens_per_s
        )
        for ours, theirs in zip(report.replica_results, direct.replica_results, strict=True):
            assert ours.total_seconds == theirs.total_seconds
            assert ours.latency == theirs.latency


class TestSeedThreading:
    def test_identical_specs_reproduce_identical_traces(self):
        spec = fleet_spec().with_overrides({"trace.num_sessions": 8})
        first = build_trace(spec)
        second = build_trace(spec)
        assert first == second  # prompts, arrivals and sessions all equal

    def test_different_seed_changes_arrivals_and_sessions(self):
        spec = fleet_spec().with_overrides({"trace.num_sessions": 8})
        other = spec.with_overrides({"seed": 8})
        assert build_trace(spec) != build_trace(other)

    def test_sessions_derive_from_spec_seed(self):
        spec = fleet_spec().with_overrides({"trace.num_sessions": 8})
        _, _, session_seed = derived_seeds(spec.seed)
        base = fleet_spec().with_overrides({"trace.num_sessions": 0})
        expected = random_sessions(build_trace(base), 8, seed=session_seed)
        assert build_trace(spec) == expected

    def test_arrivals_derive_from_spec_seed(self):
        spec = engine_spec().with_overrides(
            {"trace.arrival": "poisson", "trace.rate_rps": 50.0}
        )
        trace_seed, arrival_seed, _ = derived_seeds(spec.seed)
        model = get_model("LLM-7B-32K")
        base = generate_trace(
            get_dataset("qmsum"),
            num_requests=12,
            seed=trace_seed,
            context_window=model.context_window,
            output_tokens=24,
        )
        assert build_trace(spec) == poisson_arrivals(base, 50.0, seed=arrival_seed)


class TestRunReportShape:
    def test_typed_metadata_fields(self):
        spec = fleet_spec()
        report = run(spec)
        assert report.spec == spec
        assert report.spec_hash == spec.spec_hash
        assert report.seed == spec.seed
        assert report.num_replicas == 4
        assert report.system_kind == "pim-only"
        assert report.admission_policy == "fcfs"
        assert report.prefill_mode == "none"
        assert report.num_requests == 48

    def test_to_dict_is_json_safe_and_typed(self):
        import json

        report = run(engine_spec())
        payload = report.to_dict()
        json.dumps(payload)
        assert payload["spec_hash"] == report.spec_hash
        assert payload["metrics"]["requests_served"] == report.requests_served
        assert len(payload["replicas"]) == 1

    def test_summary_table_renders_for_engine_and_fleet(self):
        engine_table = run(engine_spec()).summary_table()
        assert "fleet" in engine_table
        fleet_table = run(fleet_spec()).summary_table()
        assert "capacity-aware" in fleet_table

    def test_engine_result_raises_for_fleet(self):
        report = run(fleet_spec())
        with pytest.raises(ValueError, match="4 replicas"):
            report.engine_result

    def test_allocator_override_flips_dynamic_memory(self):
        static = build(engine_spec().with_overrides({"allocator.mode": "static"}))
        paged = build(engine_spec().with_overrides({"allocator.mode": "paged"}))
        assert static.system.dynamic_memory is False
        assert paged.system.dynamic_memory is True

    def test_latency_cache_bucket_attaches_cache(self):
        built = build(engine_spec().with_overrides({"latency_cache_bucket": 512}))
        assert built.engine.latency_cache is not None
        assert built.engine.latency_cache.bucket_tokens == 512
